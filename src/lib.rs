//! Umbrella crate for the SoftLoRa reproduction.
//!
//! This repository reproduces **"Attack-Aware Data Timestamping in
//! Low-Power Synchronization-Free LoRaWAN"** (Gu, Tan, Huang — ICDCS 2020)
//! as a set of Rust crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`dsp`] | FFT, windows, Hilbert envelope, AIC pickers, phase unwrap, regression, differential evolution |
//! | [`phy`] | CSS chirps, modulator/demodulator, oscillators, SDR front-end, channels, jamming windows, RN2483 behaviour |
//! | [`crypto`] | AES-128, AES-CMAC, LoRaWAN MIC / payload encryption |
//! | [`lorawan`] | frames, Class A device, duty cycle, elapsed-time timestamping, commodity gateway |
//! | [`sim`] | drifting clocks, event queue, radio medium, building/campus deployments, interception |
//! | [`attack`] | eavesdropper, stealthy jammer, USRP replayer, frame-delay orchestrator, RTT strawman |
//! | [`softlora`] | the paper's contribution: PHY timestamping, FB estimation, FB database, replay detection, the SoftLoRa gateway |
//!
//! See the repository `README.md` for a guided tour, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-versus-measured
//! record. The `examples/` directory holds runnable scenarios; the
//! `softlora-bench` crate regenerates every table and figure of the
//! paper's evaluation.
//!
//! # Quick start
//!
//! ```
//! use softlora_repro::softlora::{SoftLoraConfig, SoftLoraGateway};
//! use softlora_repro::phy::{PhyConfig, SpreadingFactor};
//!
//! let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
//! let gateway = SoftLoraGateway::new(SoftLoraConfig::new(phy), 1);
//! assert!(gateway.receiver_bias_hz().abs() < 10_000.0); // an RTL-SDR crystal
//! ```

pub use softlora;
pub use softlora_attack as attack;
pub use softlora_crypto as crypto;
pub use softlora_dsp as dsp;
pub use softlora_lorawan as lorawan;
pub use softlora_phy as phy;
pub use softlora_sim as sim;
