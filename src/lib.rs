//! Umbrella crate for the SoftLoRa reproduction.
//!
//! This repository reproduces **"Attack-Aware Data Timestamping in
//! Low-Power Synchronization-Free LoRaWAN"** (Gu, Tan, Huang — ICDCS 2020)
//! as a set of Rust crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`dsp`] | FFT, windows, Hilbert envelope, AIC pickers, phase unwrap, regression, differential evolution |
//! | [`phy`] | CSS chirps, modulator/demodulator, oscillators, SDR front-end, channels, jamming windows, RN2483 behaviour |
//! | [`crypto`] | AES-128, AES-CMAC, LoRaWAN MIC / payload encryption |
//! | [`lorawan`] | frames, Class A device, duty cycle, elapsed-time timestamping, commodity gateway |
//! | [`sim`] | drifting clocks, event queue, radio medium, building/campus deployments, interception |
//! | [`attack`] | eavesdropper, stealthy jammer, USRP replayer, frame-delay orchestrator, RTT strawman |
//! | [`runtime`] | streaming flowgraph runtime: blocks over lock-free SPSC rings, multi-threaded scheduler, runtime observers |
//! | [`store`] | durable sharded device-state store: append-only WAL with a hand-rolled binary codec, snapshots + compaction, crash recovery |
//! | [`telemetry`] | process-wide lock-free metrics registry: counters, gauges, log₂-bucketed latency histograms, text/JSON exposition |
//! | [`net`] | the wire-protocol front door: Semtech-UDP-style gateway frames, the UDP/loopback listener feeding the sharded server tail, the fleet-scale load generator |
//! | [`softlora`] | the paper's contribution: PHY timestamping, FB estimation, FB database, replay detection, the SoftLoRa gateway, the streaming network-server blocks |
//!
//! See the repository `README.md` for a guided tour, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-versus-measured
//! record. The `examples/` directory holds runnable scenarios; the
//! `softlora-bench` crate regenerates every table and figure of the
//! paper's evaluation.
//!
//! # Quick start
//!
//! The gateway is built with a fluent builder and processed deliveries
//! flow through an explicit six-stage pipeline; outcomes can be consumed
//! as observer events, and batches run the DSP front half in parallel:
//!
//! ```
//! use softlora_repro::phy::{PhyConfig, SpreadingFactor};
//! use softlora_repro::softlora::observer::GatewayStats;
//! use softlora_repro::softlora::SoftLoraGateway;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
//! let stats = Rc::new(RefCell::new(GatewayStats::default()));
//! let gateway = SoftLoraGateway::builder(phy)
//!     .seed(1)
//!     .adc_quantisation(false)
//!     .observer(Box::new(Rc::clone(&stats)))
//!     .build();
//! assert!(gateway.receiver_bias_hz().abs() < 10_000.0); // an RTL-SDR crystal
//! assert_eq!(gateway.onset_picker_runs(), 0); // one AIC pick per frame, later
//! // gateway.process(&delivery)? / gateway.process_batch(&deliveries)?
//! ```

pub use softlora;
pub use softlora_attack as attack;
pub use softlora_crypto as crypto;
pub use softlora_dsp as dsp;
pub use softlora_lorawan as lorawan;
pub use softlora_net as net;
pub use softlora_phy as phy;
pub use softlora_runtime as runtime;
pub use softlora_sim as sim;
pub use softlora_store as store;
pub use softlora_telemetry as telemetry;
