//! **softlora-store** — the durable sharded device-state store.
//!
//! The SoftLoRa defence is stateful per device: the frequency-bias
//! history that makes synchronization-free timestamping attack-aware
//! lives (or dies) with the network server's memory. This crate makes
//! that state durable without any external dependency:
//!
//! * [`codec`] — a hand-rolled binary codec (fixed-width little-endian
//!   primitives, length-prefixed byte strings) plus the CRC-32 guarding
//!   every frame;
//! * [`wal`] — an append-only write-ahead log per shard: length-prefixed
//!   CRC records in rotating segment files, snapshot installation with
//!   compaction, and recovery that replays the WAL tail over the latest
//!   snapshot, dropping a torn tail record after a crash mid-append;
//! * [`store`] — [`ShardedStore`]: N hash-keyed shards
//!   ([`shard_of`]) behind independent locks, so a shard-parallel server
//!   tail persists without cross-shard contention;
//! * [`group_commit`] — [`GroupCommitter`]: a background thread turning
//!   many buffered commits into one fsync per shard per durability
//!   window.
//!
//! The store is intentionally application-agnostic: records and
//! snapshots are opaque byte payloads; the `softlora` core crate encodes
//! its tail state (FB histories, dedup entries, MAC counters, statistics)
//! with the [`codec`] primitives.

pub mod codec;
pub mod group_commit;
pub mod store;
pub mod wal;

pub use codec::{crc32, CodecError, Crc32, Decoder, Encoder};
pub use group_commit::GroupCommitter;
pub use store::{peek_shard_count, shard_of, ShardedStore};
pub use wal::{Recovery, ShardWal, WalOptions};

use std::path::PathBuf;

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// On-disk data is damaged beyond the recoverable torn-tail case.
    Corrupt {
        /// The offending file or directory.
        path: PathBuf,
        /// What recovery found.
        detail: String,
    },
    /// A record or snapshot payload failed to decode.
    Codec(CodecError),
    /// The store was created with a different shard count; key placement
    /// depends on it, so reopening with another count is refused.
    ShardCountMismatch {
        /// Store directory.
        dir: PathBuf,
        /// Shard count pinned in the meta file.
        on_disk: usize,
        /// Shard count this open requested.
        requested: usize,
    },
    /// Recovered state is inconsistent with the requested configuration
    /// (e.g. a gateway-count change under a persisted server).
    Config {
        /// What does not line up.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt { path, detail } => {
                write!(f, "store corruption in {}: {detail}", path.display())
            }
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
            StoreError::ShardCountMismatch { dir, on_disk, requested } => write!(
                f,
                "store {} was created with {on_disk} shards, reopen requested {requested}",
                dir.display()
            ),
            StoreError::Config { detail } => write!(f, "store configuration mismatch: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Creates a fresh, uniquely named scratch directory under the system
/// temp dir — the helper every store test, bench and example uses so
/// parallel runs never collide. The caller owns cleanup (or leaves it to
/// the OS temp reaper).
pub fn test_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("softlora-store-{label}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        use std::error::Error;
        let io: StoreError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("i/o"));
        assert!(io.source().is_some());
        let codec: StoreError = CodecError::Truncated { needed: 8, available: 2 }.into();
        assert!(codec.to_string().contains("codec"));
        let corrupt = StoreError::Corrupt { path: "/x".into(), detail: "bad".into() };
        assert!(corrupt.to_string().contains("corruption"));
        assert!(corrupt.source().is_none());
        let cfg = StoreError::Config { detail: "gateways changed".into() };
        assert!(cfg.to_string().contains("configuration"));
    }

    #[test]
    fn test_dirs_are_unique() {
        let a = test_dir("uniq");
        let b = test_dir("uniq");
        assert_ne!(a, b);
        assert!(a.is_dir() && b.is_dir());
    }
}
