//! The append-only write-ahead log of one shard: length-prefixed
//! CRC-guarded records in rotating segment files, plus snapshot
//! installation and compaction.
//!
//! # On-disk layout
//!
//! A shard directory holds segment files and snapshot files:
//!
//! ```text
//! shard-0003/
//!   wal-0000000000000001.seg     records 1..=57
//!   wal-000000000000003a.seg     records 58..
//!   snapshot-0000000000000039.snap
//! ```
//!
//! * A **segment** `wal-<first>.seg` is a run of record frames; `<first>`
//!   (hex) is the sequence number of its first record, so segment
//!   boundaries carry the numbering and no index file is needed.
//! * A **frame** is `[len: u32 LE][crc32(payload): u32 LE][payload]`, and
//!   the payload is a **coalesced run of records**, each
//!   `[rec_len: u32 LE][rec bytes]`. One [`ShardWal::append`] writes a
//!   frame of one record; [`ShardWal::append_batch`] writes every record
//!   a committed batch produced as **one frame — one header, one CRC, one
//!   syscall run** — which is what cuts append overhead at group-commit
//!   rates. Sequence numbers advance per *record*, so frame layout is
//!   invisible to replay: the same records coalesced differently recover
//!   to the same state.
//! * A **snapshot** `snapshot-<seq>.snap` holds one frame whose payload is
//!   the application state after applying records `1..=<seq>` (raw, not
//!   inner-framed); it is written to a temp file and atomically renamed,
//!   after which fully covered segments and older snapshots are deleted
//!   (compaction). [`ShardWal::install_snapshot_at`] installs a snapshot
//!   *behind* the append head — the background-installer case — deleting
//!   only fully covered segments.
//!
//! # Recovery
//!
//! [`ShardWal::open`] loads the newest intact snapshot, replays every
//! record after it, and validates the chain. A **torn tail** — a frame
//! that runs past the end of the *last* segment, or whose CRC fails on
//! the final frame (a crash mid-write) — is dropped **whole** (all of a
//! coalesced frame's records are dropped together; the group either
//! committed durably or did not) and the file is truncated back to the
//! last intact frame, so appends resume cleanly. A bad frame anywhere
//! *else* is real corruption and surfaces as [`StoreError::Corrupt`].

use crate::codec::{crc32, Crc32};
use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Frame header size: `len` + `crc`.
const FRAME_HEADER: usize = 8;

/// Registry handles for WAL health telemetry, shared by every shard
/// (one process-wide series per event kind). Resolved once; each hook
/// is a relaxed atomic add on the commit path.
struct WalMetrics {
    append_ns: softlora_telemetry::Histogram,
    fsyncs: softlora_telemetry::Counter,
    fsync_batch_records: softlora_telemetry::Histogram,
    segment_rotations: softlora_telemetry::Counter,
    snapshot_installs: softlora_telemetry::Counter,
    recovered_records: softlora_telemetry::Counter,
    torn_tails: softlora_telemetry::Counter,
}

fn wal_metrics() -> &'static WalMetrics {
    static METRICS: std::sync::OnceLock<WalMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = softlora_telemetry::global();
        WalMetrics {
            append_ns: registry.histogram("store_wal_append_ns"),
            fsyncs: registry.counter("store_fsyncs_total"),
            fsync_batch_records: registry.histogram("store_fsync_batch_records"),
            segment_rotations: registry.counter("store_segment_rotations_total"),
            snapshot_installs: registry.counter("store_snapshot_installs_total"),
            recovered_records: registry.counter("store_recovered_records_total"),
            torn_tails: registry.counter("store_torn_tails_total"),
        }
    })
}

/// Tuning knobs of a [`ShardWal`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the current one reaches this size.
    pub segment_bytes: u64,
    /// Open for inspection only: recovery reads everything (a torn tail
    /// is still *reported* via [`Recovery::dropped_torn_tail`]) but
    /// nothing on disk is created, truncated or opened for writing, and
    /// [`ShardWal::append`] / [`ShardWal::install_snapshot`] refuse.
    /// This is what `fsck`-style tooling uses so inspecting a store
    /// never repairs it.
    pub read_only: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        // Small enough that rotation and compaction actually exercise in
        // tests and benches, large enough that a segment holds thousands
        // of commit records.
        WalOptions { segment_bytes: 1 << 20, read_only: false }
    }
}

impl WalOptions {
    /// The inspection configuration: see [`WalOptions::read_only`].
    pub fn read_only() -> Self {
        WalOptions { read_only: true, ..WalOptions::default() }
    }
}

/// Everything recovery found in the shard directory.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The newest intact snapshot payload, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Sequence number the snapshot covers through (0 = none).
    pub snapshot_seq: u64,
    /// Record payloads after the snapshot, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn tail record was excluded from replay (crash
    /// mid-append). The file is truncated back to the last intact record
    /// unless the log was opened read-only.
    pub dropped_torn_tail: bool,
}

/// One shard's durable log: see the module docs.
#[derive(Debug)]
pub struct ShardWal {
    dir: PathBuf,
    options: WalOptions,
    /// Open writer into the newest segment, if one is active.
    writer: Option<BufWriter<File>>,
    /// Bytes already in the active segment.
    segment_len: u64,
    /// Sequence number the next appended record receives (1-based).
    next_seq: u64,
    /// Sequence covered by the newest installed snapshot.
    snapshot_seq: u64,
    /// Records appended since the last fsync (group-commit accounting).
    unsynced_records: u64,
    /// Recovery data collected by `open`, until taken.
    recovery: Option<Recovery>,
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:016x}.seg"))
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:016x}.snap"))
}

/// Parses `<prefix>-<hex>.<ext>` into the hex number.
fn parse_numbered(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_suffix(ext)?;
    u64::from_str_radix(rest, 16).ok()
}

/// What scanning one frame at `pos` found.
enum Frame {
    /// An intact record: payload range and the offset after the frame.
    Record { start: usize, end: usize },
    /// Clean end of buffer.
    Eof,
    /// The frame runs past the end of the buffer (torn write).
    Torn,
    /// The frame fits but its CRC fails.
    BadCrc {
        /// Offset just past the bad frame.
        end: usize,
    },
}

fn scan_frame(buf: &[u8], pos: usize) -> Frame {
    if pos == buf.len() {
        return Frame::Eof;
    }
    if buf.len() - pos < FRAME_HEADER {
        return Frame::Torn;
    }
    let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
    let start = pos + FRAME_HEADER;
    let Some(end) = start.checked_add(len).filter(|&e| e <= buf.len()) else {
        return Frame::Torn;
    };
    if crc32(&buf[start..end]) != crc {
        return Frame::BadCrc { end };
    }
    Frame::Record { start, end }
}

impl ShardWal {
    /// Opens (or creates) the shard directory, recovers its state and
    /// positions the log for appending. Call [`ShardWal::take_recovery`]
    /// to consume what was found.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Corrupt`]
    /// when a non-tail record or the segment chain is damaged.
    pub fn open(dir: impl Into<PathBuf>, options: WalOptions) -> Result<Self, StoreError> {
        let dir = dir.into();
        if !options.read_only {
            std::fs::create_dir_all(&dir)?;
        }

        let mut segments: Vec<u64> = Vec::new();
        let mut snapshots: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = parse_numbered(&name, "wal-", ".seg") {
                segments.push(seq);
            } else if let Some(seq) = parse_numbered(&name, "snapshot-", ".snap") {
                snapshots.push(seq);
            }
        }
        segments.sort_unstable();
        snapshots.sort_unstable();

        // Only the newest snapshot is authoritative: installing it
        // compacted away the segments any older snapshot would need, so
        // a damaged newest snapshot is unrecoverable corruption — never
        // a silent fallback to an emptier state. (Multiple snapshot
        // files exist only in the crash window between rename and
        // compaction, and the newest was written and fsynced first.)
        let mut snapshot = None;
        let mut snapshot_seq = 0;
        if let Some(&seq) = snapshots.last() {
            snapshot = Some(Self::load_snapshot(&snapshot_path(&dir, seq))?);
            snapshot_seq = seq;
        }

        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut next_seq = if segments.is_empty() { snapshot_seq + 1 } else { segments[0] };
        if next_seq > snapshot_seq + 1 {
            return Err(StoreError::Corrupt {
                path: dir.clone(),
                detail: format!(
                    "first segment starts at record {next_seq} but snapshot covers only through \
                     {snapshot_seq}"
                ),
            });
        }
        let mut dropped_torn_tail = false;
        let mut segment_len = 0u64;
        for (k, &first) in segments.iter().enumerate() {
            if next_seq != first {
                return Err(StoreError::Corrupt {
                    path: segment_path(&dir, first),
                    detail: format!(
                        "segment chain gap: expected record {next_seq}, file starts at {first}"
                    ),
                });
            }
            let is_last = k + 1 == segments.len();
            let path = segment_path(&dir, first);
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            loop {
                match scan_frame(&buf, pos) {
                    Frame::Record { start, end } => {
                        // A frame is a coalesced run of `[rec_len][bytes]`
                        // records; the CRC already passed, so a malformed
                        // inner structure is real corruption, not a tear.
                        let mut inner = start;
                        while inner < end {
                            let bad_inner = |detail: String| StoreError::Corrupt {
                                path: segment_path(&dir, first),
                                detail,
                            };
                            if end - inner < 4 {
                                return Err(bad_inner(format!(
                                    "dangling coalesced-record prefix at offset {inner}"
                                )));
                            }
                            let rec_len = u32::from_le_bytes(
                                buf[inner..inner + 4].try_into().expect("4 bytes"),
                            ) as usize;
                            let rec_start = inner + 4;
                            let Some(rec_end) =
                                rec_start.checked_add(rec_len).filter(|&e| e <= end)
                            else {
                                return Err(bad_inner(format!(
                                    "coalesced record at offset {inner} overruns its frame"
                                )));
                            };
                            if next_seq > snapshot_seq {
                                records.push(buf[rec_start..rec_end].to_vec());
                            }
                            next_seq += 1;
                            inner = rec_end;
                        }
                        pos = end;
                    }
                    Frame::Eof => break,
                    Frame::Torn if is_last => {
                        // Crash mid-append: drop only the torn record (in
                        // read-only mode report it, repair nothing).
                        if !options.read_only {
                            Self::truncate(&path, pos as u64)?;
                        }
                        buf.truncate(pos);
                        dropped_torn_tail = true;
                        break;
                    }
                    Frame::BadCrc { end } if is_last && end == buf.len() => {
                        // The final frame's payload was partially flushed:
                        // same torn-tail case, dressed as a CRC failure.
                        if !options.read_only {
                            Self::truncate(&path, pos as u64)?;
                        }
                        buf.truncate(pos);
                        dropped_torn_tail = true;
                        break;
                    }
                    Frame::Torn | Frame::BadCrc { .. } => {
                        return Err(StoreError::Corrupt {
                            path,
                            detail: format!("damaged record {next_seq} at offset {pos}"),
                        });
                    }
                }
            }
            if is_last {
                segment_len = buf.len() as u64;
            }
        }

        // Resume appending into the last segment (rotation will move on
        // once it fills); with no segments, the first append creates one.
        let writer = match segments.last() {
            _ if options.read_only => None,
            Some(&first) if segment_len < options.segment_bytes => {
                let file = OpenOptions::new().append(true).open(segment_path(&dir, first))?;
                Some(BufWriter::new(file))
            }
            _ => None,
        };

        let metrics = wal_metrics();
        metrics.recovered_records.add(records.len() as u64);
        if dropped_torn_tail {
            metrics.torn_tails.inc();
        }

        Ok(ShardWal {
            dir,
            options,
            writer,
            segment_len,
            next_seq,
            snapshot_seq,
            unsynced_records: 0,
            recovery: Some(Recovery { snapshot, snapshot_seq, records, dropped_torn_tail }),
        })
    }

    fn refuse_if_read_only(&self, operation: &str) -> Result<(), StoreError> {
        if self.options.read_only {
            return Err(StoreError::Config {
                detail: format!("{operation} refused: log opened read-only"),
            });
        }
        Ok(())
    }

    fn truncate(path: &Path, len: u64) -> Result<(), StoreError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        Ok(())
    }

    fn load_snapshot(path: &Path) -> Result<Vec<u8>, StoreError> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        match scan_frame(&buf, 0) {
            Frame::Record { start, end } if end == buf.len() => Ok(buf[start..end].to_vec()),
            _ => Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                detail: "damaged snapshot frame".into(),
            }),
        }
    }

    /// Consumes the recovery data collected at open (once).
    pub fn take_recovery(&mut self) -> Recovery {
        self.recovery.take().unwrap_or_default()
    }

    /// Sequence number of the most recently appended record (0 = none yet,
    /// counting from the beginning of the log's life, snapshots included).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records appended after the newest snapshot.
    pub fn records_since_snapshot(&self) -> u64 {
        self.last_seq() - self.snapshot_seq
    }

    /// Records appended since the last fsync — the group committer's
    /// dirty check (and the `store_fsync_batch_records` histogram's
    /// sample when the fsync lands).
    pub fn unsynced_records(&self) -> u64 {
        self.unsynced_records
    }

    /// Rotates to a fresh segment when none is active or the current one
    /// is full.
    fn ensure_segment(&mut self) -> Result<(), StoreError> {
        if self.writer.is_none() || self.segment_len >= self.options.segment_bytes {
            let path = segment_path(&self.dir, self.next_seq);
            let file = OpenOptions::new().create_new(true).append(true).open(path)?;
            if let Some(mut old) = self.writer.replace(BufWriter::new(file)) {
                old.flush()?;
            }
            self.segment_len = 0;
            wal_metrics().segment_rotations.inc();
        }
        Ok(())
    }

    /// Appends one record (a coalesced frame of one); returns its
    /// sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the segment cannot be written, and
    /// [`StoreError::Config`] on a read-only log.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let start = std::time::Instant::now();
        self.refuse_if_read_only("append")?;
        self.ensure_segment()?;
        let writer = self.writer.as_mut().expect("writer installed above");
        let rec_len = u32::try_from(payload.len()).expect("record longer than 4 GiB");
        let frame_len = rec_len + 4;
        let mut crc = Crc32::new();
        crc.update(&rec_len.to_le_bytes());
        crc.update(payload);
        writer.write_all(&frame_len.to_le_bytes())?;
        writer.write_all(&crc.finish().to_le_bytes())?;
        writer.write_all(&rec_len.to_le_bytes())?;
        writer.write_all(payload)?;
        self.segment_len += FRAME_HEADER as u64 + u64::from(frame_len);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unsynced_records += 1;
        wal_metrics().append_ns.record_duration(start.elapsed());
        Ok(seq)
    }

    /// Appends one **coalesced frame** of `count` records — `payload`
    /// must already be the inner-framed run `[rec_len][bytes]...` (the
    /// commit path builds it in a reusable [`crate::Encoder`] via
    /// `mark_len`/`patch_len`). One frame header, one CRC, one contiguous
    /// write for the whole batch. Returns the first record's sequence
    /// number; the frame occupies `first..first + count`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the segment cannot be written, and
    /// [`StoreError::Config`] on a read-only log or a zero-record frame.
    pub fn append_batch(&mut self, payload: &[u8], count: u64) -> Result<u64, StoreError> {
        let start = std::time::Instant::now();
        self.refuse_if_read_only("append")?;
        if count == 0 {
            return Err(StoreError::Config { detail: "empty coalesced frame".into() });
        }
        self.ensure_segment()?;
        let writer = self.writer.as_mut().expect("writer installed above");
        let frame_len = u32::try_from(payload.len()).expect("frame longer than 4 GiB");
        writer.write_all(&frame_len.to_le_bytes())?;
        writer.write_all(&crc32(payload).to_le_bytes())?;
        writer.write_all(payload)?;
        self.segment_len += FRAME_HEADER as u64 + u64::from(frame_len);
        let first = self.next_seq;
        self.next_seq += count;
        self.unsynced_records += count;
        wal_metrics().append_ns.record_duration(start.elapsed());
        Ok(first)
    }

    /// Flushes buffered appends to the OS.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the flush fails.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Flushes and fsyncs the active segment (hard durability point).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the flush or sync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
            w.get_ref().sync_all()?;
            let metrics = wal_metrics();
            metrics.fsyncs.inc();
            metrics.fsync_batch_records.record(self.unsynced_records);
            self.unsynced_records = 0;
        }
        Ok(())
    }

    /// Installs a snapshot covering every record appended so far, then
    /// compacts: fully covered segments and older snapshots are deleted
    /// and the next append starts a fresh segment.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when writing, renaming or deleting fails, and
    /// [`StoreError::Config`] on a read-only log.
    pub fn install_snapshot(&mut self, state: &[u8]) -> Result<(), StoreError> {
        let seq = self.last_seq();
        self.install_snapshot_at(state, seq)
    }

    /// Installs a snapshot covering records `1..=covered_seq`, which may
    /// run **behind** the append head — the background-installer case,
    /// where commits kept landing while the snapshot was being encoded.
    /// Compaction deletes only segments whose records are all covered
    /// (the tail past `covered_seq` stays replayable) and snapshots older
    /// than `covered_seq`. An install older than the newest snapshot on
    /// disk is a no-op: a newer install already superseded it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when writing, renaming or deleting fails,
    /// [`StoreError::Config`] on a read-only log or a `covered_seq`
    /// beyond the last appended record.
    pub fn install_snapshot_at(
        &mut self,
        state: &[u8],
        covered_seq: u64,
    ) -> Result<(), StoreError> {
        self.refuse_if_read_only("install_snapshot")?;
        if covered_seq > self.last_seq() {
            return Err(StoreError::Config {
                detail: format!(
                    "snapshot claims to cover record {covered_seq} but only {} were appended",
                    self.last_seq()
                ),
            });
        }
        if covered_seq < self.snapshot_seq {
            return Ok(());
        }
        self.flush()?;
        let final_path = snapshot_path(&self.dir, covered_seq);
        let tmp_path = final_path.with_extension("snap.tmp");
        {
            let mut tmp = BufWriter::new(File::create(&tmp_path)?);
            let len = u32::try_from(state.len()).expect("snapshot longer than 4 GiB");
            tmp.write_all(&len.to_le_bytes())?;
            tmp.write_all(&crc32(state).to_le_bytes())?;
            tmp.write_all(state)?;
            tmp.flush()?;
            tmp.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        wal_metrics().snapshot_installs.inc();
        self.snapshot_seq = covered_seq;

        // Partial compaction: segments are contiguous and sorted, so the
        // covered ones form a prefix. A segment's records end where the
        // next segment begins (the last one ends at `last_seq`); delete
        // it only when that end is covered. The active segment is only
        // ever deleted on full coverage, where the writer resets too.
        let mut segments: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(first) = parse_numbered(&name, "wal-", ".seg") {
                segments.push(first);
            } else if let Some(s) = parse_numbered(&name, "snapshot-", ".snap") {
                if s < covered_seq {
                    std::fs::remove_file(entry.path())?;
                }
            }
        }
        segments.sort_unstable();
        for (k, &first) in segments.iter().enumerate() {
            let is_last = k + 1 == segments.len();
            let end = if is_last { self.last_seq() } else { segments[k + 1] - 1 };
            if end > covered_seq {
                break;
            }
            std::fs::remove_file(segment_path(&self.dir, first))?;
            if is_last {
                self.writer = None;
                self.segment_len = 0;
                // The snapshot itself was fsynced and supersedes any
                // unflushed appends it covers.
                self.unsynced_records = 0;
            }
        }
        Ok(())
    }

    /// Number of segment files currently on disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be listed.
    pub fn segment_count(&self) -> Result<usize, StoreError> {
        let mut n = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if parse_numbered(&entry.file_name().to_string_lossy(), "wal-", ".seg").is_some() {
                n += 1;
            }
        }
        Ok(n)
    }
}

impl Drop for ShardWal {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn append_and_recover_round_trip() {
        let dir = test_dir("wal-roundtrip");
        {
            let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
            assert!(wal.take_recovery().records.is_empty());
            for k in 0..20u32 {
                wal.append(&k.to_le_bytes()).unwrap();
            }
        }
        let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
        let rec = wal.take_recovery();
        assert!(rec.snapshot.is_none());
        assert!(!rec.dropped_torn_tail);
        let got: Vec<u32> =
            rec.records.iter().map(|r| u32::from_le_bytes(r[..].try_into().unwrap())).collect();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert_eq!(wal.last_seq(), 20);
        // Appending after recovery continues the numbering.
        assert_eq!(wal.append(b"next").unwrap(), 21);
    }

    #[test]
    fn segments_rotate_and_chain() {
        let dir = test_dir("wal-rotate");
        let opts = WalOptions { segment_bytes: 64, ..WalOptions::default() };
        {
            let mut wal = ShardWal::open(&dir, opts).unwrap();
            for k in 0..30u64 {
                wal.append(&k.to_le_bytes()).unwrap();
            }
            assert!(wal.segment_count().unwrap() > 1, "64-byte segments must rotate");
        }
        let mut wal = ShardWal::open(&dir, opts).unwrap();
        let rec = wal.take_recovery();
        assert_eq!(rec.records.len(), 30);
        for (k, r) in rec.records.iter().enumerate() {
            assert_eq!(u64::from_le_bytes(r[..].try_into().unwrap()), k as u64);
        }
    }

    #[test]
    fn snapshot_replay_and_compaction() {
        let dir = test_dir("wal-snapshot");
        let opts = WalOptions { segment_bytes: 64, ..WalOptions::default() };
        {
            let mut wal = ShardWal::open(&dir, opts).unwrap();
            for k in 0..10u64 {
                wal.append(&k.to_le_bytes()).unwrap();
            }
            wal.install_snapshot(b"state-after-10").unwrap();
            assert_eq!(wal.segment_count().unwrap(), 0, "compaction deletes covered segments");
            assert_eq!(wal.records_since_snapshot(), 0);
            for k in 10..14u64 {
                wal.append(&k.to_le_bytes()).unwrap();
            }
            assert_eq!(wal.records_since_snapshot(), 4);
        }
        let mut wal = ShardWal::open(&dir, opts).unwrap();
        let rec = wal.take_recovery();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state-after-10"[..]));
        assert_eq!(rec.snapshot_seq, 10);
        let got: Vec<u64> =
            rec.records.iter().map(|r| u64::from_le_bytes(r[..].try_into().unwrap())).collect();
        assert_eq!(got, vec![10, 11, 12, 13]);
    }

    #[test]
    fn coalesced_batch_recovers_record_by_record() {
        let dir = test_dir("wal-batch");
        {
            let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
            // One frame holding records 1..=3, then a frame of one.
            let mut enc = crate::Encoder::new();
            for k in 0..3u64 {
                let mark = enc.mark_len();
                enc.u64(k);
                enc.patch_len(mark);
            }
            assert_eq!(wal.append_batch(enc.as_bytes(), 3).unwrap(), 1);
            assert_eq!(wal.last_seq(), 3);
            assert_eq!(wal.append(&3u64.to_le_bytes()).unwrap(), 4);
            assert!(matches!(wal.append_batch(b"", 0), Err(StoreError::Config { .. })));
        }
        let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
        let rec = wal.take_recovery();
        let got: Vec<u64> =
            rec.records.iter().map(|r| u64::from_le_bytes(r[..].try_into().unwrap())).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn snapshot_behind_the_head_compacts_only_covered_segments() {
        let dir = test_dir("wal-snap-behind");
        // 20-byte segments: each 20-byte frame (8 header + 4 inner len +
        // 8 payload) fills a segment, so every record gets its own file.
        let opts = WalOptions { segment_bytes: 20, ..WalOptions::default() };
        let mut wal = ShardWal::open(&dir, opts).unwrap();
        for k in 0..4u64 {
            wal.append(&k.to_le_bytes()).unwrap();
        }
        assert_eq!(wal.segment_count().unwrap(), 4);
        // Covering through record 2 deletes segments 1 and 2 only.
        wal.install_snapshot_at(b"through-2", 2).unwrap();
        assert_eq!(wal.segment_count().unwrap(), 2);
        assert_eq!(wal.records_since_snapshot(), 2);
        // A stale install (behind the newest snapshot) is a no-op.
        wal.install_snapshot_at(b"through-1", 1).unwrap();
        assert_eq!(wal.records_since_snapshot(), 2);
        // Covering past the head refuses.
        assert!(matches!(wal.install_snapshot_at(b"through-9", 9), Err(StoreError::Config { .. })));
        // Appends continue, and recovery stitches snapshot + tail.
        wal.append(&4u64.to_le_bytes()).unwrap();
        drop(wal);
        let mut wal = ShardWal::open(&dir, opts).unwrap();
        let rec = wal.take_recovery();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"through-2"[..]));
        assert_eq!(rec.snapshot_seq, 2);
        let got: Vec<u64> =
            rec.records.iter().map(|r| u64::from_le_bytes(r[..].try_into().unwrap())).collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn read_only_open_reports_torn_tail_without_repairing() {
        let dir = test_dir("wal-ro");
        {
            let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
            for k in 0..5u64 {
                wal.append(&k.to_le_bytes()).unwrap();
            }
        }
        // Tear the last record: chop 3 bytes off the file.
        let seg = segment_path(&dir, 1);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        let torn_len = std::fs::metadata(&seg).unwrap().len();

        let mut wal = ShardWal::open(&dir, WalOptions::read_only()).unwrap();
        let rec = wal.take_recovery();
        assert!(rec.dropped_torn_tail, "the torn tail must be reported");
        assert_eq!(rec.records.len(), 4, "the torn record is excluded from replay");
        // ... but the file on disk is untouched, and writes refuse.
        assert_eq!(std::fs::metadata(&seg).unwrap().len(), torn_len);
        assert!(matches!(wal.append(b"nope"), Err(StoreError::Config { .. })));
        assert!(matches!(wal.install_snapshot(b"nope"), Err(StoreError::Config { .. })));
        drop(wal);
        // A read-write open afterwards still sees and repairs the tear.
        let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
        assert!(wal.take_recovery().dropped_torn_tail);
        assert!(std::fs::metadata(&seg).unwrap().len() < torn_len);
    }

    #[test]
    fn read_only_open_refuses_missing_directory() {
        let dir = test_dir("wal-ro-missing");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(ShardWal::open(&dir, WalOptions::read_only()).is_err());
        // A read-write open creates it as before.
        assert!(ShardWal::open(&dir, WalOptions::default()).is_ok());
    }

    #[test]
    fn torn_tail_is_dropped_and_appends_resume() {
        let dir = test_dir("wal-torn");
        {
            let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
            for k in 0..5u64 {
                wal.append(&k.to_le_bytes()).unwrap();
            }
        }
        // Tear the last record: chop 3 bytes off the file.
        let seg = segment_path(&dir, 1);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();

        let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
        let rec = wal.take_recovery();
        assert!(rec.dropped_torn_tail);
        assert_eq!(rec.records.len(), 4, "only the torn record is dropped");
        assert_eq!(wal.last_seq(), 4);
        // The next append reuses the torn record's sequence slot cleanly.
        assert_eq!(wal.append(b"recovered").unwrap(), 5);
        drop(wal);
        let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
        let rec = wal.take_recovery();
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.records[4], b"recovered");
    }

    #[test]
    fn mid_stream_corruption_is_an_error() {
        let dir = test_dir("wal-corrupt");
        {
            let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
            for k in 0..5u64 {
                wal.append(&[k as u8; 16]).unwrap();
            }
        }
        // Flip a payload byte of the SECOND record: a CRC failure that is
        // not the torn tail.
        let seg = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[(8 + 4 + 16) + 8 + 4 + 2] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        match ShardWal::open(&dir, WalOptions::default()) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn damaged_snapshot_is_corruption_not_silent_loss() {
        // Once compaction has deleted the covered segments, a damaged
        // snapshot cannot be papered over — recovery must refuse rather
        // than resurrect a state missing the compacted records.
        let dir = test_dir("wal-snapdamage");
        let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        wal.install_snapshot(b"snap-2").unwrap();
        wal.append(b"c").unwrap();
        drop(wal);
        let snap = snapshot_path(&dir, 2);
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        match ShardWal::open(&dir, WalOptions::default()) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn damaged_snapshot_with_no_tail_is_still_corruption() {
        // The steady state after compaction is a lone snapshot file and
        // no segments: a damaged snapshot there must NOT be mistaken for
        // an empty shard (which would silently reset all device state).
        let dir = test_dir("wal-snaponly");
        let mut wal = ShardWal::open(&dir, WalOptions::default()).unwrap();
        wal.append(b"a").unwrap();
        wal.install_snapshot(b"snap-1").unwrap();
        drop(wal);
        assert_eq!(
            ShardWal::open(&dir, WalOptions::default()).unwrap().segment_count().unwrap(),
            0,
            "precondition: nothing but the snapshot on disk"
        );
        let snap = snapshot_path(&dir, 1);
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        match ShardWal::open(&dir, WalOptions::default()) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
