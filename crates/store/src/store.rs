//! [`ShardedStore`]: N hash-keyed shards, each an independent
//! [`ShardWal`] behind its own lock.
//!
//! The store partitions a keyed state space (device state, in the
//! SoftLoRa network server) across `shards` directories. Keys are mapped
//! by [`shard_of`] — a stable SplitMix64 hash, so the placement survives
//! restarts and is identical on every machine. Each shard owns a private
//! `Mutex`: writers for different shards never contend, which is what
//! lets a shard-parallel server tail append commit records concurrently.

use crate::wal::{Recovery, ShardWal, WalOptions};
use crate::StoreError;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Stable shard placement for a key: SplitMix64 finalizer, modulo the
/// shard count. Must never change — on-disk state depends on it.
pub fn shard_of(key: u64, shards: usize) -> usize {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}"))
}

/// Reads the shard count pinned in an existing store's `meta` file
/// without opening (or creating) the store; `None` when no store exists
/// under `dir` yet. Lets a caller default its shard count from the disk
/// instead of from the machine, so an unchanged deployment reopens its
/// own store whatever `available_parallelism()` says today.
pub fn peek_shard_count(dir: impl AsRef<Path>) -> Result<Option<usize>, StoreError> {
    let meta_path = dir.as_ref().join("meta");
    match std::fs::read_to_string(&meta_path) {
        Ok(meta) => {
            let shards = meta
                .lines()
                .find_map(|l| l.strip_prefix("shards "))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .ok_or(StoreError::Corrupt {
                    path: meta_path,
                    detail: "unreadable meta file".into(),
                })?;
            Ok(Some(shards))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// The durable sharded store: see the module docs.
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    shards: Vec<Mutex<ShardWal>>,
}

impl ShardedStore {
    /// Opens (or creates) a store of `shards` shards under `dir`,
    /// recovering every shard's WAL. The shard count is pinned in a
    /// `meta` file on first open — key placement depends on it, so a
    /// reopen with a different count is refused.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShardCountMismatch`] on a count change,
    /// [`StoreError::Io`] / [`StoreError::Corrupt`] from shard recovery.
    pub fn open(
        dir: impl Into<PathBuf>,
        shards: usize,
        options: WalOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        let shards = shards.max(1);
        if !options.read_only {
            std::fs::create_dir_all(&dir)?;
        }
        match peek_shard_count(&dir)? {
            Some(on_disk) if on_disk != shards => {
                return Err(StoreError::ShardCountMismatch {
                    dir: dir.clone(),
                    on_disk,
                    requested: shards,
                });
            }
            Some(_) => {}
            None if options.read_only => {
                return Err(StoreError::Config {
                    detail: format!(
                        "{} is not an initialised store (read-only open refuses to create it)",
                        dir.display()
                    ),
                });
            }
            None => {
                std::fs::write(dir.join("meta"), format!("softlora-store v1\nshards {shards}\n"))?;
            }
        }
        let shards = (0..shards)
            .map(|k| Ok(Mutex::new(ShardWal::open(shard_dir(&dir, k), options)?)))
            .collect::<Result<Vec<_>, StoreError>>()?;
        Ok(ShardedStore { dir, shards })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning `key`.
    pub fn shard_for(&self, key: u64) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Lock handle of shard `k`'s WAL — independent per shard, so
    /// concurrent appends to different shards never contend.
    pub fn shard(&self, k: usize) -> &Mutex<ShardWal> {
        &self.shards[k]
    }

    /// Takes every shard's recovery data (shard-indexed), once.
    pub fn take_recovery(&self) -> Vec<Recovery> {
        self.shards.iter().map(|s| s.lock().expect("shard wal poisoned").take_recovery()).collect()
    }

    /// Flushes every shard.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when any shard's flush fails.
    pub fn flush(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            shard.lock().expect("shard wal poisoned").flush()?;
        }
        Ok(())
    }

    /// Flushes and fsyncs every shard (hard durability point).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when any shard's sync fails.
    pub fn sync(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            shard.lock().expect("shard wal poisoned").sync()?;
        }
        Ok(())
    }

    /// Fsyncs only the shards with unsynced appends — the group
    /// committer's periodic pass. Clean shards are not touched (no
    /// no-op fsync syscalls, no histogram pollution).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when any dirty shard's sync fails.
    pub fn sync_dirty(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            let mut wal = shard.lock().expect("shard wal poisoned");
            if wal.unsynced_records() > 0 {
                wal.sync()?;
            }
        }
        Ok(())
    }

    /// The store's replication epoch (0 until one is ever set). The
    /// epoch is a monotonic fencing token: a promoted follower bumps it
    /// past its dead primary's, and replication refuses frames stamped
    /// with an older epoch — a zombie primary cannot overwrite history.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the epoch file cannot be read, and
    /// [`StoreError::Corrupt`] when it holds garbage.
    pub fn epoch(&self) -> Result<u64, StoreError> {
        let path = self.dir.join("epoch");
        match std::fs::read_to_string(&path) {
            Ok(text) => text
                .trim()
                .parse::<u64>()
                .map_err(|_| StoreError::Corrupt { path, detail: "unreadable epoch file".into() }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    /// Durably records a new replication epoch. Refuses to move the
    /// epoch backwards — fencing tokens only advance.
    ///
    /// # Errors
    ///
    /// [`StoreError::Config`] when `epoch` is lower than the stored one,
    /// [`StoreError::Io`] when the write fails.
    pub fn set_epoch(&self, epoch: u64) -> Result<(), StoreError> {
        let current = self.epoch()?;
        if epoch < current {
            return Err(StoreError::Config {
                detail: format!("epoch may only advance: stored {current}, requested {epoch}"),
            });
        }
        let path = self.dir.join("epoch");
        let tmp = self.dir.join("epoch.tmp");
        std::fs::write(&tmp, format!("{epoch}\n"))?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // Pinned values: the placement function is an on-disk contract.
        assert_eq!(shard_of(0, 8), shard_of(0, 8));
        assert_eq!(shard_of(0x2601_0001, 4), shard_of(0x2601_0001, 4));
        for key in 0..1000u64 {
            assert!(shard_of(key, 7) < 7);
        }
        assert_eq!(shard_of(42, 1), 0, "one shard takes everything");
        assert_eq!(shard_of(42, 0), 0, "zero shards is floored to one");
        // The hash actually spreads consecutive keys.
        let hits: std::collections::HashSet<usize> = (0..64u64).map(|k| shard_of(k, 8)).collect();
        assert!(hits.len() >= 6, "poor spread: {hits:?}");
    }

    #[test]
    fn open_recovers_per_shard_and_pins_count() {
        let dir = test_dir("store-open");
        {
            let store = ShardedStore::open(&dir, 3, WalOptions::default()).unwrap();
            let _ = store.take_recovery();
            for key in 0..12u64 {
                let shard = store.shard_for(key);
                store.shard(shard).lock().unwrap().append(format!("key-{key}").as_bytes()).unwrap();
            }
            store.flush().unwrap();
        }
        let store = ShardedStore::open(&dir, 3, WalOptions::default()).unwrap();
        let recovered = store.take_recovery();
        assert_eq!(recovered.len(), 3);
        let total: usize = recovered.iter().map(|r| r.records.len()).sum();
        assert_eq!(total, 12);
        // Each record landed on the shard its key hashes to.
        for (shard, rec) in recovered.iter().enumerate() {
            for record in &rec.records {
                let key: u64 = std::str::from_utf8(record)
                    .unwrap()
                    .strip_prefix("key-")
                    .unwrap()
                    .parse()
                    .unwrap();
                assert_eq!(shard_of(key, 3), shard);
            }
        }
        // Shard count is pinned.
        match ShardedStore::open(&dir, 5, WalOptions::default()) {
            Err(StoreError::ShardCountMismatch { on_disk: 3, requested: 5, .. }) => {}
            other => panic!("expected ShardCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn epoch_persists_and_only_advances() {
        let dir = test_dir("store-epoch");
        {
            let store = ShardedStore::open(&dir, 2, WalOptions::default()).unwrap();
            assert_eq!(store.epoch().unwrap(), 0, "a fresh store starts at epoch 0");
            store.set_epoch(3).unwrap();
            assert_eq!(store.epoch().unwrap(), 3);
            assert!(matches!(store.set_epoch(2), Err(StoreError::Config { .. })));
            store.set_epoch(3).unwrap();
        }
        let store = ShardedStore::open(&dir, 2, WalOptions::default()).unwrap();
        assert_eq!(store.epoch().unwrap(), 3, "the epoch survives reopen");
    }

    #[test]
    fn sync_dirty_clears_only_dirty_shards() {
        let dir = test_dir("store-sync-dirty");
        let store = ShardedStore::open(&dir, 2, WalOptions::default()).unwrap();
        let _ = store.take_recovery();
        store.shard(0).lock().unwrap().append(b"dirty").unwrap();
        assert_eq!(store.shard(0).lock().unwrap().unsynced_records(), 1);
        assert_eq!(store.shard(1).lock().unwrap().unsynced_records(), 0);
        store.sync_dirty().unwrap();
        assert_eq!(store.shard(0).lock().unwrap().unsynced_records(), 0);
    }
}
