//! Interval-based group-commit fsync: a [`GroupCommitter`] background
//! thread wakes every *durability window* and fsyncs the shards that
//! accumulated appends since the last pass ([`crate::ShardedStore::sync_dirty`]).
//!
//! The commit path itself only buffers (`append` / `append_batch` write
//! into the segment's `BufWriter`); the committer turns many commits
//! into one fsync per shard per window. The window bounds data-at-risk:
//! a crash loses at most the records appended inside the current window
//! — the same contract as PostgreSQL's `commit_delay` or etcd's batched
//! WAL sync. A zero window degenerates to sync-per-wakeup as fast as the
//! thread can spin; callers wanting sync-per-commit should instead call
//! [`crate::ShardedStore::sync`] inline and skip the committer.
//!
//! Shutdown is drain-first: dropping the committer (or calling
//! [`GroupCommitter::stop`]) performs one final `sync_dirty`, so no
//! buffered record is abandoned by a clean exit.

use crate::{ShardedStore, StoreError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Handle to the background fsync thread: see the module docs.
#[derive(Debug)]
pub struct GroupCommitter {
    inner: Arc<Inner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct Inner {
    store: Arc<ShardedStore>,
    window: Duration,
    stop: AtomicBool,
    /// Wakes the thread early on stop (the mutex guards nothing but the
    /// condvar's protocol).
    gate: Mutex<()>,
    bell: Condvar,
    /// First error the background thread hit, surfaced by `stop`.
    error: Mutex<Option<StoreError>>,
}

impl GroupCommitter {
    /// Spawns the committer thread syncing `store`'s dirty shards every
    /// `window`.
    pub fn spawn(store: Arc<ShardedStore>, window: Duration) -> Self {
        let inner = Arc::new(Inner {
            store,
            window,
            stop: AtomicBool::new(false),
            gate: Mutex::new(()),
            bell: Condvar::new(),
            error: Mutex::new(None),
        });
        let worker = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("group-commit".into())
            .spawn(move || worker.run())
            .expect("spawn group-commit thread");
        GroupCommitter { inner, thread: Some(thread) }
    }

    /// The configured durability window.
    pub fn window(&self) -> Duration {
        self.inner.window
    }

    /// Stops the thread after one final dirty-shard sync and surfaces
    /// the first error it hit (a failed fsync means buffered records may
    /// not be durable — callers treat it like a failed [`ShardedStore::sync`]).
    ///
    /// # Errors
    ///
    /// The first [`StoreError`] the background thread encountered.
    pub fn stop(mut self) -> Result<(), StoreError> {
        self.shutdown();
        self.inner.error.lock().expect("committer error lock poisoned").take().map_or(Ok(()), Err)
    }

    fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.bell.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn run(&self) {
        loop {
            let guard = self.gate.lock().expect("committer gate poisoned");
            let (_guard, _timeout) = self
                .bell
                .wait_timeout_while(guard, self.window, |()| !self.stop.load(Ordering::Acquire))
                .expect("committer gate poisoned");
            let stopping = self.stop.load(Ordering::Acquire);
            if let Err(e) = self.store.sync_dirty() {
                let mut slot = self.error.lock().expect("committer error lock poisoned");
                slot.get_or_insert(e);
            }
            if stopping {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{test_dir, WalOptions};

    #[test]
    fn committer_syncs_within_the_window_and_drains_on_stop() {
        let dir = test_dir("group-commit");
        let store = Arc::new(ShardedStore::open(&dir, 2, WalOptions::default()).unwrap());
        let _ = store.take_recovery();
        let committer = GroupCommitter::spawn(Arc::clone(&store), Duration::from_millis(5));
        store.shard(0).lock().unwrap().append(b"windowed").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.shard(0).lock().unwrap().unsynced_records() > 0 {
            assert!(std::time::Instant::now() < deadline, "committer never synced");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Stop drains whatever is still buffered.
        store.shard(1).lock().unwrap().append(b"draining").unwrap();
        committer.stop().unwrap();
        assert_eq!(store.shard(1).lock().unwrap().unsynced_records(), 0);
    }
}
