//! Hand-rolled binary codec: fixed-width little-endian primitives with
//! length-prefixed byte strings, plus the CRC-32 every WAL record and
//! snapshot is guarded by.
//!
//! The store crate is deliberately dependency-free, so the on-disk format
//! is spelled out here instead of delegated to a serialisation framework:
//!
//! * integers are little-endian, fixed width;
//! * `f64` is the IEEE-754 bit pattern, little-endian (`to_bits`), so
//!   encode/decode round-trips are bit-exact including NaN payloads;
//! * byte strings are `u32` length + raw bytes;
//! * `Option<T>` is a presence byte (`0`/`1`) followed by `T` when `1`.
//!
//! Nothing here touches the filesystem; [`crate::wal`] frames encoded
//! payloads into records.

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// used by every record frame and snapshot in the store.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC-32 over discontiguous parts — the WAL's single-record
/// append path checksums the inner length prefix and the payload without
/// first copying them into one buffer.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        const TABLE: [u32; 256] = crc32_table();
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The finished CRC-32 value.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// A decode failure: the buffer did not hold what the reader expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes left in the buffer.
        available: usize,
    },
    /// A presence byte was neither `0` nor `1`.
    BadPresence {
        /// The byte found.
        found: u8,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated value: needed {needed} bytes, {available} available")
            }
            CodecError::BadPresence { found } => {
                write!(f, "invalid Option presence byte {found:#x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends primitives to a growing byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clears the buffer while keeping its capacity — hot paths (the
    /// server tail's per-shard WAL encode, the net tier's datagram
    /// assembly) reuse one encoder instead of allocating per record.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Consumes the encoder, yielding the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Encodes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Encodes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Encodes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Encodes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Encodes an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Encodes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Encodes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(u32::try_from(v.len()).expect("byte string longer than 4 GiB"));
        self.buf.extend_from_slice(v);
        self
    }

    /// Reserves a `u32` length slot and returns its offset; encode the
    /// framed content, then close the frame with [`Encoder::patch_len`].
    /// The commit path uses this to build coalesced WAL frames — every
    /// record is prefixed by its length without a second encode pass or a
    /// temporary buffer.
    pub fn mark_len(&mut self) -> usize {
        let at = self.buf.len();
        self.u32(0);
        at
    }

    /// Back-patches the length slot reserved by [`Encoder::mark_len`]
    /// with the number of bytes encoded since.
    pub fn patch_len(&mut self, mark: usize) -> &mut Self {
        let len = u32::try_from(self.buf.len() - mark - 4).expect("frame longer than 4 GiB");
        self.buf[mark..mark + 4].copy_from_slice(&len.to_le_bytes());
        self
    }

    /// Encodes an optional value via a presence byte.
    pub fn option<T>(&mut self, v: &Option<T>, mut enc: impl FnMut(&mut Self, &T)) -> &mut Self {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                enc(self, inner);
                self
            }
        }
    }
}

/// Reads primitives back out of a byte buffer, in encode order.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decodes one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the buffer is exhausted.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Decodes a `u16`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("take(2)")))
    }

    /// Decodes a `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("take(4)")))
    }

    /// Decodes a `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("take(8)")))
    }

    /// Decodes an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Decodes a `bool` (any non-zero byte is `true`).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the buffer is exhausted.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Decodes a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the prefix or payload is cut short.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Decodes an optional value via its presence byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadPresence`] for a presence byte other than `0`/`1`,
    /// or whatever `dec` returns.
    pub fn option<T>(
        &mut self,
        mut dec: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(dec(self)?)),
            found => Err(CodecError::BadPresence { found }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.u8(0xAB)
            .u16(0xCDEF)
            .u32(0xDEAD_BEEF)
            .u64(0x0123_4567_89AB_CDEF)
            .f64(-22_000.125)
            .bool(true)
            .bytes(b"softlora")
            .option(&Some(7u32), |e, v| {
                e.u32(*v);
            })
            .option(&None::<u32>, |e, v| {
                e.u32(*v);
            });
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u16().unwrap(), 0xCDEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(d.f64().unwrap(), -22_000.125);
        assert!(d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), b"softlora");
        assert_eq!(d.option(|d| d.u32()).unwrap(), Some(7));
        assert_eq!(d.option(|d| d.u32()).unwrap(), None);
        assert!(d.is_exhausted());
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 1e-308, -543.21] {
            let mut e = Encoder::new();
            e.f64(v);
            let bytes = e.into_bytes();
            let got = Decoder::new(&bytes).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn truncation_is_reported() {
        let mut e = Encoder::new();
        e.u64(42);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..5]);
        assert_eq!(d.u64(), Err(CodecError::Truncated { needed: 8, available: 5 }));
    }

    #[test]
    fn bad_presence_byte_rejected() {
        let mut d = Decoder::new(&[9]);
        assert_eq!(d.option(|d| d.u8()), Err(CodecError::BadPresence { found: 9 }));
    }
}
