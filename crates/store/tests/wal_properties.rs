//! Property tests for the WAL record codec and recovery:
//!
//! * arbitrary payload sequences survive a write → reopen → replay
//!   round-trip byte-for-byte, across arbitrary segment-rotation sizes;
//! * the codec primitives round-trip bit-exactly (including `f64` NaN
//!   payloads and empty byte strings);
//! * a truncation anywhere inside the final record frame — the torn tail
//!   a crash mid-append leaves behind — drops **only** that record.

use proptest::prelude::*;
use softlora_store::{test_dir, Decoder, Encoder, ShardWal, WalOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Write → reopen → replay returns the identical payload sequence,
    /// whatever the payload sizes and however often segments rotate.
    #[test]
    fn wal_round_trips_arbitrary_payloads(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..40),
        segment_bytes in 32usize..600,
    ) {
        let dir = test_dir("prop-roundtrip");
        let options = WalOptions { segment_bytes: segment_bytes as u64, ..WalOptions::default() };
        {
            let mut wal = ShardWal::open(&dir, options).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
        }
        let mut wal = ShardWal::open(&dir, options).unwrap();
        let recovery = wal.take_recovery();
        prop_assert!(!recovery.dropped_torn_tail);
        prop_assert_eq!(recovery.records, payloads.clone());
        prop_assert_eq!(wal.last_seq(), payloads.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The binary codec round-trips every primitive bit-exactly through
    /// an encode/decode chain in arbitrary order-preserving composition.
    #[test]
    fn codec_round_trips_primitives(
        a in any::<u8>(),
        b in any::<u16>(),
        c in any::<u32>(),
        d in any::<u64>(),
        f in any::<f64>(),
        flag in any::<bool>(),
        bytes in prop::collection::vec(any::<u8>(), 0..300),
        opt_value in any::<u64>(),
        opt_present in any::<bool>(),
    ) {
        let opt = opt_present.then_some(opt_value);
        let mut e = Encoder::new();
        e.u8(a).u16(b).u32(c).u64(d).f64(f).bool(flag).bytes(&bytes).option(&opt, |e, v| {
            e.u64(*v);
        });
        let buf = e.into_bytes();
        let mut dec = Decoder::new(&buf);
        prop_assert_eq!(dec.u8().unwrap(), a);
        prop_assert_eq!(dec.u16().unwrap(), b);
        prop_assert_eq!(dec.u32().unwrap(), c);
        prop_assert_eq!(dec.u64().unwrap(), d);
        // f64 comparison is by bit pattern: the codec must be bit-exact.
        prop_assert_eq!(dec.f64().unwrap().to_bits(), f.to_bits());
        prop_assert_eq!(dec.bool().unwrap(), flag);
        prop_assert_eq!(dec.bytes().unwrap(), &bytes[..]);
        prop_assert_eq!(dec.option(|d| d.u64()).unwrap(), opt);
        prop_assert!(dec.is_exhausted());
    }

    /// Truncating the file anywhere inside the last record's frame (the
    /// torn tail of a crash mid-append) makes recovery drop exactly that
    /// record: every earlier record survives, appends resume cleanly.
    #[test]
    fn torn_tail_drops_only_the_torn_record(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..100), 2..20),
        cut_seed in any::<u64>(),
    ) {
        let dir = test_dir("prop-torn");
        // One big segment so the tear lands in the only file.
        let options = WalOptions { segment_bytes: 1 << 20, ..WalOptions::default() };
        {
            let mut wal = ShardWal::open(&dir, options).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
        }
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        // Cut 1..frame_size-1 bytes: strictly inside the last frame
        // (8-byte header + 4-byte inner length + payload), never a clean
        // record boundary.
        let last_frame = 8 + 4 + payloads.last().unwrap().len() as u64;
        let cut = 1 + cut_seed % (last_frame - 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - cut)
            .unwrap();

        let mut wal = ShardWal::open(&dir, options).unwrap();
        let recovery = wal.take_recovery();
        prop_assert!(recovery.dropped_torn_tail, "cut {cut} of {last_frame} must tear");
        prop_assert_eq!(&recovery.records[..], &payloads[..payloads.len() - 1]);
        // The torn record's sequence slot is reused by the next append.
        prop_assert_eq!(wal.append(b"resume").unwrap(), payloads.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Coalesced multi-record frames replay identically to the same
    /// records appended one frame apiece, whatever the batch boundaries
    /// and however often segments rotate — frame layout is invisible.
    #[test]
    fn coalesced_frames_round_trip_across_rotation(
        batches in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 1..8),
            1..12,
        ),
        segment_bytes in 48usize..600,
    ) {
        let dir = test_dir("prop-coalesced");
        let options = WalOptions { segment_bytes: segment_bytes as u64, ..WalOptions::default() };
        let flat: Vec<Vec<u8>> = batches.iter().flatten().cloned().collect();
        {
            let mut wal = ShardWal::open(&dir, options).unwrap();
            let mut enc = Encoder::new();
            let mut next = 1u64;
            for batch in &batches {
                enc.clear();
                for record in batch {
                    let mark = enc.mark_len();
                    for &b in record {
                        enc.u8(b);
                    }
                    enc.patch_len(mark);
                }
                let first = wal.append_batch(enc.as_bytes(), batch.len() as u64).unwrap();
                prop_assert_eq!(first, next);
                next += batch.len() as u64;
            }
        }
        let mut wal = ShardWal::open(&dir, options).unwrap();
        let recovery = wal.take_recovery();
        prop_assert!(!recovery.dropped_torn_tail);
        prop_assert_eq!(recovery.records, flat.clone());
        prop_assert_eq!(wal.last_seq(), flat.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Tearing the final coalesced frame drops exactly that frame — all
    /// of its records together, none of the earlier frames' records.
    /// A group either committed durably or it did not.
    #[test]
    fn torn_coalesced_frame_drops_exactly_that_frame(
        batches in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(any::<u8>(), 1..60), 1..6),
            2..8,
        ),
        cut_seed in any::<u64>(),
    ) {
        let dir = test_dir("prop-torn-frame");
        // One big segment so the tear lands in the only file.
        let options = WalOptions { segment_bytes: 1 << 20, ..WalOptions::default() };
        {
            let mut wal = ShardWal::open(&dir, options).unwrap();
            let mut enc = Encoder::new();
            for batch in &batches {
                enc.clear();
                for record in batch {
                    let mark = enc.mark_len();
                    for &b in record {
                        enc.u8(b);
                    }
                    enc.patch_len(mark);
                }
                wal.append_batch(enc.as_bytes(), batch.len() as u64).unwrap();
            }
        }
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        // Cut strictly inside the last frame: 8-byte header plus the
        // inner-framed run (4 extra bytes per record).
        let last_batch = batches.last().unwrap();
        let last_frame =
            8 + last_batch.iter().map(|r| 4 + r.len() as u64).sum::<u64>();
        let cut = 1 + cut_seed % (last_frame - 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - cut)
            .unwrap();

        let survivors: Vec<Vec<u8>> =
            batches[..batches.len() - 1].iter().flatten().cloned().collect();
        let mut wal = ShardWal::open(&dir, options).unwrap();
        let recovery = wal.take_recovery();
        prop_assert!(recovery.dropped_torn_tail, "cut {cut} of {last_frame} must tear");
        prop_assert_eq!(&recovery.records[..], &survivors[..]);
        // The dropped frame's whole sequence range is reused.
        prop_assert_eq!(wal.append(b"resume").unwrap(), survivors.len() as u64 + 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
