//! LoRaWAN 1.0.2 cryptographic constructions.
//!
//! Two session keys protect every LoRaWAN data frame:
//!
//! * `AppSKey` encrypts the `FRMPayload` with an AES-CTR-style keystream of
//!   `A_i` blocks;
//! * `NwkSKey` authenticates the whole PHY payload with a 4-byte MIC,
//!   computed as the truncated AES-CMAC over a `B0` block and the message.
//!
//! The paper's frame-delay attack does not break either — it replays the
//! recorded waveform with both intact, which is exactly why "conventional
//! security measures such as frame counting" cannot stop it (paper §1).

use crate::aes::Aes128;
use crate::cmac::Cmac;

/// Uplink/downlink direction bit used in the crypto blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// End device to gateway/network (0).
    Uplink,
    /// Network to end device (1).
    Downlink,
}

impl Direction {
    fn bit(self) -> u8 {
        match self {
            Direction::Uplink => 0,
            Direction::Downlink => 1,
        }
    }
}

/// Encrypts or decrypts a `FRMPayload` in place (the keystream XOR is an
/// involution), per LoRaWAN 1.0.2 §4.3.3.
///
/// `dev_addr` is the 4-byte device address (little-endian on the wire),
/// `fcnt` the 32-bit frame counter.
pub fn crypt_frm_payload(
    app_skey: &[u8; 16],
    dev_addr: u32,
    fcnt: u32,
    direction: Direction,
    payload: &mut [u8],
) {
    let aes = Aes128::new(app_skey);
    let len = payload.len();
    let blocks = len.div_ceil(16);
    for i in 0..blocks {
        let a = a_block(dev_addr, fcnt, direction, (i + 1) as u8);
        let s = aes.encrypt_block(&a);
        let end = ((i + 1) * 16).min(len);
        for (j, byte) in payload[i * 16..end].iter_mut().enumerate() {
            *byte ^= s[j];
        }
    }
}

/// Computes the 4-byte frame MIC per LoRaWAN 1.0.2 §4.4:
/// `MIC = CMAC(NwkSKey, B0 | msg)[0..4]` where `msg = MHDR | FHDR | FPort |
/// FRMPayload`.
pub fn compute_mic(
    nwk_skey: &[u8; 16],
    dev_addr: u32,
    fcnt: u32,
    direction: Direction,
    msg: &[u8],
) -> [u8; 4] {
    let b0 = b0_block(dev_addr, fcnt, direction, msg.len() as u8);
    let mut buf = Vec::with_capacity(16 + msg.len());
    buf.extend_from_slice(&b0);
    buf.extend_from_slice(msg);
    let tag = Cmac::new(nwk_skey).compute(&buf);
    [tag[0], tag[1], tag[2], tag[3]]
}

/// Verifies a frame MIC.
pub fn verify_mic(
    nwk_skey: &[u8; 16],
    dev_addr: u32,
    fcnt: u32,
    direction: Direction,
    msg: &[u8],
    mic: &[u8; 4],
) -> bool {
    let want = compute_mic(nwk_skey, dev_addr, fcnt, direction, msg);
    let mut diff = 0u8;
    for (a, b) in want.iter().zip(mic.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// The `A_i` keystream block.
fn a_block(dev_addr: u32, fcnt: u32, direction: Direction, i: u8) -> [u8; 16] {
    let mut a = [0u8; 16];
    a[0] = 0x01;
    a[5] = direction.bit();
    a[6..10].copy_from_slice(&dev_addr.to_le_bytes());
    a[10..14].copy_from_slice(&fcnt.to_le_bytes());
    a[15] = i;
    a
}

/// The `B0` MIC prefix block.
fn b0_block(dev_addr: u32, fcnt: u32, direction: Direction, msg_len: u8) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[0] = 0x49;
    b[5] = direction.bit();
    b[6..10].copy_from_slice(&dev_addr.to_le_bytes());
    b[10..14].copy_from_slice(&fcnt.to_le_bytes());
    b[15] = msg_len;
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: [u8; 16] = [0x11; 16];
    const NWK: [u8; 16] = [0x22; 16];

    #[test]
    fn payload_encryption_is_involution() {
        let mut data = b"sensor reading: 23.4C, 55%RH".to_vec();
        let orig = data.clone();
        crypt_frm_payload(&APP, 0x2601_1234, 7, Direction::Uplink, &mut data);
        assert_ne!(data, orig);
        crypt_frm_payload(&APP, 0x2601_1234, 7, Direction::Uplink, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn keystream_depends_on_all_inputs() {
        let enc = |addr: u32, fcnt: u32, dir: Direction| {
            let mut d = vec![0u8; 24];
            crypt_frm_payload(&APP, addr, fcnt, dir, &mut d);
            d
        };
        let base = enc(1, 1, Direction::Uplink);
        assert_ne!(base, enc(2, 1, Direction::Uplink));
        assert_ne!(base, enc(1, 2, Direction::Uplink));
        assert_ne!(base, enc(1, 1, Direction::Downlink));
    }

    #[test]
    fn multi_block_payload_uses_distinct_keystream_blocks() {
        let mut d = vec![0u8; 40];
        crypt_frm_payload(&APP, 5, 9, Direction::Uplink, &mut d);
        assert_ne!(&d[0..16], &d[16..32], "keystream blocks repeated");
    }

    #[test]
    fn empty_payload_is_noop() {
        let mut d: Vec<u8> = Vec::new();
        crypt_frm_payload(&APP, 1, 1, Direction::Uplink, &mut d);
        assert!(d.is_empty());
    }

    #[test]
    fn mic_round_trip() {
        let msg = b"\x40\x34\x12\x01\x26\x00\x07\x00\x01payload";
        let mic = compute_mic(&NWK, 0x2601_1234, 7, Direction::Uplink, msg);
        assert!(verify_mic(&NWK, 0x2601_1234, 7, Direction::Uplink, msg, &mic));
    }

    #[test]
    fn mic_rejects_any_field_change() {
        let msg = b"frame bytes here".to_vec();
        let mic = compute_mic(&NWK, 10, 20, Direction::Uplink, &msg);
        // Message tamper.
        let mut tampered = msg.clone();
        tampered[0] ^= 1;
        assert!(!verify_mic(&NWK, 10, 20, Direction::Uplink, &tampered, &mic));
        // Counter change (replay with wrong counter).
        assert!(!verify_mic(&NWK, 10, 21, Direction::Uplink, &msg, &mic));
        // Address change.
        assert!(!verify_mic(&NWK, 11, 20, Direction::Uplink, &msg, &mic));
        // Direction change.
        assert!(!verify_mic(&NWK, 10, 20, Direction::Downlink, &msg, &mic));
        // Key change.
        assert!(!verify_mic(&APP, 10, 20, Direction::Uplink, &msg, &mic));
    }

    #[test]
    fn replayed_frame_passes_mic_check() {
        // The paper's crucial property: a bit-exact replay carries a valid
        // MIC — cryptography cannot detect the frame-delay attack.
        let msg = b"recorded waveform payload".to_vec();
        let mic = compute_mic(&NWK, 99, 1234, Direction::Uplink, &msg);
        // ... time passes, the replayer re-transmits the identical bytes ...
        let replay_msg = msg.clone();
        let replay_mic = mic;
        assert!(verify_mic(&NWK, 99, 1234, Direction::Uplink, &replay_msg, &replay_mic));
    }

    #[test]
    fn block_layout() {
        let a = a_block(0x0102_0304, 0x0A0B_0C0D, Direction::Downlink, 3);
        assert_eq!(a[0], 0x01);
        assert_eq!(a[5], 1);
        assert_eq!(&a[6..10], &[0x04, 0x03, 0x02, 0x01]); // little-endian
        assert_eq!(&a[10..14], &[0x0D, 0x0C, 0x0B, 0x0A]);
        assert_eq!(a[15], 3);
        let b = b0_block(1, 2, Direction::Uplink, 42);
        assert_eq!(b[0], 0x49);
        assert_eq!(b[15], 42);
    }
}
