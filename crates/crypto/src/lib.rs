//! Cryptographic substrate for the SoftLoRa reproduction.
//!
//! The paper's threat model (Definition 1) assumes LoRaWAN frames are
//! cryptographically protected: the frame-delay attack succeeds *despite*
//! valid MICs and frame counters, because it replays a recorded waveform
//! unmodified. To reproduce that property faithfully, the simulated
//! LoRaWAN stack carries real cryptography — implemented here from
//! scratch (no crypto crate exists in the offline dependency set):
//!
//! * [`aes`] — AES-128 block cipher (FIPS 197), encryption and decryption;
//! * [`cmac`] — AES-CMAC (RFC 4493 / NIST SP 800-38B);
//! * [`lorawan`] — the LoRaWAN 1.0.2 constructions: frame-payload
//!   encryption with the `A`-block keystream and the `B0`-block MIC.
//!
//! This is a *simulation-grade* implementation: correct against the
//! standard test vectors (see the tests), but table-based and not
//! hardened against side channels. Do not reuse it outside this
//! reproduction.

pub mod aes;
pub mod cmac;
pub mod lorawan;

pub use aes::Aes128;
pub use cmac::Cmac;

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Aes128>();
        assert_send_sync::<crate::Cmac>();
    }
}
