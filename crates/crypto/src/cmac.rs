//! AES-CMAC (RFC 4493 / NIST SP 800-38B).
//!
//! LoRaWAN computes its frame MIC as the first four bytes of
//! `AES-CMAC(NwkSKey, B0 | msg)`; this module provides the full CMAC and
//! is verified against the four RFC 4493 test vectors.

use crate::aes::Aes128;

/// AES-CMAC keyed MAC.
///
/// # Example
///
/// ```
/// use softlora_crypto::Cmac;
/// let cmac = Cmac::new(&[0u8; 16]);
/// let tag = cmac.compute(b"message");
/// assert_eq!(tag.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Cmac {
    aes: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

impl Cmac {
    /// Derives the CMAC subkeys from `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let l = aes.encrypt_block(&[0u8; 16]);
        let k1 = double(&l);
        let k2 = double(&k1);
        Cmac { aes, k1, k2 }
    }

    /// Computes the 16-byte CMAC tag of `msg`.
    pub fn compute(&self, msg: &[u8]) -> [u8; 16] {
        let n = msg.len().div_ceil(16).max(1);
        let complete_last = !msg.is_empty() && msg.len().is_multiple_of(16);

        let mut x = [0u8; 16];
        for i in 0..n - 1 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&msg[i * 16..(i + 1) * 16]);
            xor_into(&mut x, &block);
            x = self.aes.encrypt_block(&x);
        }

        // Last block: XOR with K1 if complete, else pad and XOR with K2.
        let mut last = [0u8; 16];
        let tail = &msg[(n - 1) * 16..];
        if complete_last {
            last.copy_from_slice(tail);
            xor_into(&mut last, &self.k1);
        } else {
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            xor_into(&mut last, &self.k2);
        }
        xor_into(&mut x, &last);
        self.aes.encrypt_block(&x)
    }

    /// Computes a truncated tag of `len` bytes (LoRaWAN uses 4).
    ///
    /// # Panics
    ///
    /// Panics if `len > 16`.
    pub fn compute_truncated(&self, msg: &[u8], len: usize) -> Vec<u8> {
        assert!(len <= 16, "CMAC tag is at most 16 bytes");
        self.compute(msg)[..len].to_vec()
    }

    /// Constant-time-ish verification of a tag.
    pub fn verify(&self, msg: &[u8], tag: &[u8]) -> bool {
        if tag.is_empty() || tag.len() > 16 {
            return false;
        }
        let full = self.compute(msg);
        let mut diff = 0u8;
        for (a, b) in full[..tag.len()].iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// GF(2^128) doubling used in subkey generation.
fn double(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let carry = block[0] >> 7;
    for i in 0..16 {
        out[i] = block[i] << 1;
        if i < 15 {
            out[i] |= block[i + 1] >> 7;
        }
    }
    if carry != 0 {
        out[15] ^= 0x87;
    }
    out
}

fn xor_into(dst: &mut [u8; 16], src: &[u8; 16]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    fn rfc_key() -> [u8; 16] {
        hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap()
    }

    #[test]
    fn rfc4493_subkeys() {
        let cmac = Cmac::new(&rfc_key());
        assert_eq!(cmac.k1.to_vec(), hex("fbeed618357133667c85e08f7236a8de"));
        assert_eq!(cmac.k2.to_vec(), hex("f7ddac306ae266ccf90bc11ee46d513b"));
    }

    #[test]
    fn rfc4493_example_1_empty() {
        let cmac = Cmac::new(&rfc_key());
        assert_eq!(cmac.compute(b"").to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example_2_16_bytes() {
        let cmac = Cmac::new(&rfc_key());
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(cmac.compute(&msg).to_vec(), hex("070a16b46b4d4144f79bdd9dd04a287c"));
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let cmac = Cmac::new(&rfc_key());
        let msg =
            hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411");
        assert_eq!(cmac.compute(&msg).to_vec(), hex("dfa66747de9ae63030ca32611497c827"));
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let cmac = Cmac::new(&rfc_key());
        let msg = hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710");
        assert_eq!(cmac.compute(&msg).to_vec(), hex("51f0bebf7e3b9d92fc49741779363cfe"));
    }

    #[test]
    fn truncation_and_verify() {
        let cmac = Cmac::new(&rfc_key());
        let msg = b"lorawan frame bytes";
        let tag4 = cmac.compute_truncated(msg, 4);
        assert_eq!(tag4.len(), 4);
        assert!(cmac.verify(msg, &tag4));
        assert!(cmac.verify(msg, &cmac.compute(msg)));
        let mut bad = tag4.clone();
        bad[0] ^= 1;
        assert!(!cmac.verify(msg, &bad));
        assert!(!cmac.verify(b"other message", &tag4));
        assert!(!cmac.verify(msg, &[]));
        assert!(!cmac.verify(msg, &[0u8; 17]));
    }

    #[test]
    #[should_panic(expected = "at most 16")]
    fn oversized_truncation_panics() {
        Cmac::new(&rfc_key()).compute_truncated(b"x", 17);
    }

    #[test]
    fn double_shifts_and_reduces() {
        // Doubling 0x80... triggers the reduction constant.
        let mut block = [0u8; 16];
        block[0] = 0x80;
        let d = double(&block);
        assert_eq!(d[15], 0x87);
        // Doubling without the top bit is a plain shift.
        let mut b2 = [0u8; 16];
        b2[15] = 0x01;
        assert_eq!(double(&b2)[15], 0x02);
    }
}
