//! AES-128 block cipher (FIPS 197).
//!
//! Straightforward table-free implementation: S-box lookups, shift-rows,
//! mix-columns over GF(2^8), and the 10-round key schedule. Verified
//! against the FIPS 197 Appendix C known-answer vectors in the tests.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box (computed at construction).
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// Multiplication in GF(2^8) with the AES polynomial 0x11B.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// AES-128 with a precomputed key schedule.
///
/// # Example
///
/// ```
/// use softlora_crypto::Aes128;
/// let key = [0u8; 16];
/// let aes = Aes128::new(&key);
/// let block = [0u8; 16];
/// let ct = aes.encrypt_block(&block);
/// assert_eq!(aes.decrypt_block(&ct), block);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    inv_sbox: [u8; 256],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut round_keys = [[0u8; 16]; 11];
        round_keys[0] = *key;
        let mut rcon: u8 = 1;
        for r in 1..11 {
            let prev = round_keys[r - 1];
            let mut word = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon.
            word.rotate_left(1);
            for b in word.iter_mut() {
                *b = SBOX[*b as usize];
            }
            word[0] ^= rcon;
            rcon = gmul(rcon, 2);
            for c in 0..4 {
                for i in 0..4 {
                    let idx = c * 4 + i;
                    let left = if c == 0 { word[i] } else { round_keys[r][(c - 1) * 4 + i] };
                    round_keys[r][idx] = prev[idx] ^ left;
                }
            }
        }
        Aes128 { round_keys, inv_sbox: inv_sbox() }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[10]);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state, &self.inv_sbox);
        for round in (1..10).rev() {
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state, &self.inv_sbox);
        }
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

fn add_round_key(state: &mut [u8; 16], key: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(key.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16], inv: &[u8; 256]) {
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

/// State layout: column-major, `state[c*4 + r]` is row r column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[c * 4 + r] = s[((c + r) % 4) * 4 + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[((c + r) % 4) * 4 + r] = s[c * 4 + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[c * 4], state[c * 4 + 1], state[c * 4 + 2], state[c * 4 + 3]];
        state[c * 4] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[c * 4 + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[c * 4], state[c * 4 + 1], state[c * 4 + 2], state[c * 4 + 3]];
        state[c * 4] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[c * 4 + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[c * 4 + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[c * 4 + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS 197 Appendix C.1: AES-128.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let want: [u8; 16] = hex("69c4e0d86a7b0430d8cdb78070b4c55a").try_into().unwrap();
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&pt), want);
        assert_eq!(aes.decrypt_block(&want), pt);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS 197 Appendix B example.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let pt: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        let want: [u8; 16] = hex("3925841d02dc09fbdc118597196a0b32").try_into().unwrap();
        assert_eq!(Aes128::new(&key).encrypt_block(&pt), want);
    }

    #[test]
    fn rfc4493_key_expansion_block() {
        // The RFC 4493 examples rely on E(K, 0^128) = 7df76b0c1ab899b33e42f047b91b546f.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let want: [u8; 16] = hex("7df76b0c1ab899b33e42f047b91b546f").try_into().unwrap();
        assert_eq!(Aes128::new(&key).encrypt_block(&[0u8; 16]), want);
    }

    #[test]
    fn round_trip_many_blocks() {
        let aes = Aes128::new(&[0x5A; 16]);
        for i in 0u8..32 {
            let mut block = [0u8; 16];
            for (j, b) in block.iter_mut().enumerate() {
                *b = i.wrapping_mul(31).wrapping_add(j as u8 * 7);
            }
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let pt = [0u8; 16];
        let a = Aes128::new(&[0u8; 16]).encrypt_block(&pt);
        let b = Aes128::new(&[1u8; 16]).encrypt_block(&pt);
        assert_ne!(a, b);
    }

    #[test]
    fn avalanche_effect() {
        // Single plaintext bit flip changes about half the ciphertext bits.
        let key = [0x42u8; 16];
        let aes = Aes128::new(&key);
        let a = aes.encrypt_block(&[0u8; 16]);
        let mut flipped = [0u8; 16];
        flipped[0] = 1;
        let b = aes.encrypt_block(&flipped);
        let dist: u32 = a.iter().zip(b.iter()).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!((40..=90).contains(&dist), "hamming distance {dist}");
    }

    #[test]
    fn gmul_known_values() {
        assert_eq!(gmul(0x57, 0x83), 0xC1); // FIPS 197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xFE);
        assert_eq!(gmul(1, 0xAB), 0xAB);
        assert_eq!(gmul(0, 0xFF), 0);
    }

    #[test]
    fn sbox_inverse_is_consistent() {
        let inv = inv_sbox();
        for i in 0..256 {
            assert_eq!(inv[SBOX[i] as usize] as usize, i);
        }
    }
}
