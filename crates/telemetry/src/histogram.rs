//! Log₂-bucketed latency histograms.
//!
//! A [`HistogramCell`] is a fixed array of 65 relaxed atomic buckets:
//! bucket 0 holds the exact value 0, bucket `i ≥ 1` covers the half-open
//! power-of-two range `[2^(i-1), 2^i)`. Recording a sample is three
//! relaxed `fetch_add`s — no locks, no heap, no floating point — which
//! keeps the warm signal path allocation-free (the zero-alloc pins from
//! PRs 5–7 extend to metric recording).
//!
//! [`HistogramSnapshot`] is the frozen, mergeable view: bucket-wise
//! addition merges shards, and quantiles are estimated by walking the
//! cumulative counts and interpolating linearly inside the bucket that
//! contains the requested rank. The estimate is always inside that
//! bucket's range, so its error is bounded by the bucket width — the
//! property the crate's proptests pin.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

/// Index of the bucket a value lands in.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `[low, high]` range of values covered by bucket `index`.
///
/// # Panics
/// Panics if `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range: {index}");
    if index == 0 {
        (0, 0)
    } else if index == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

/// The live, concurrently-written histogram storage.
///
/// All writes are relaxed atomics: samples recorded from many threads
/// land exactly (counts never tear), while a concurrent
/// [`HistogramCell::snapshot`] may observe a momentarily inconsistent
/// `count`/`sum`/bucket triple — acceptable for monitoring, and the
/// final post-quiescence snapshot is exact.
#[derive(Debug)]
pub struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCell {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self { buckets: [ZERO; BUCKETS], count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// Records one sample. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Freezes the current contents into a mergeable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen histogram: mergeable, quantile-queryable, wire-encodable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded sample values (wrapping on overflow).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub const fn empty() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bucket-wise merge: the result is exactly the histogram that
    /// would have been produced by recording both sample streams into
    /// one cell.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.wrapping_add(*src);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean sample value, or 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 < q <= 1.0`) by linear
    /// interpolation inside the bucket containing rank `⌈q·count⌉`.
    ///
    /// The estimate always lies inside `[low, high + 1]` of that
    /// bucket, so the error versus the true sample is bounded by the
    /// bucket width. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                let (low, high) = bucket_bounds(index);
                let position = (rank - cumulative) as f64 / n as f64;
                let width = (high - low) as f64 + 1.0;
                return low as f64 + position * width;
            }
            cumulative += n;
        }
        // Unreachable when count equals the bucket total, but a racing
        // snapshot can under-read `buckets` versus `count`.
        bucket_bounds(BUCKETS - 1).1 as f64
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    #[must_use]
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for index in 0..BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(bucket_index(low), index);
            assert_eq!(bucket_index(high), index);
        }
    }

    #[test]
    fn quantile_lies_in_the_right_bucket() {
        let cell = HistogramCell::new();
        for v in [0u64, 1, 5, 9, 100, 1000, 1000, 50_000] {
            cell.record(v);
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, 8);
        let p50 = snap.p50();
        // Rank ⌈0.5·8⌉ = 4 → sorted sample 9, bucket [8, 15].
        assert!((8.0..=16.0).contains(&p50), "p50 = {p50}");
        let p999 = snap.p999();
        // Rank 8 → 50 000, bucket [32768, 65535].
        assert!((32768.0..=65536.0).contains(&p999), "p999 = {p999}");
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = HistogramCell::new();
        let b = HistogramCell::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 3);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let all = HistogramCell::new();
        for v in 0..100u64 {
            all.record(v);
            all.record(v * 3);
        }
        assert_eq!(merged, all.snapshot());
    }
}
