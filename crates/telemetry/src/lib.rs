//! # softlora-telemetry — process-wide lock-free metrics registry
//!
//! Every layer of the SoftLoRa stack (dsp → core → runtime → store →
//! net) records into one [`Registry`]: relaxed-atomic [`Counter`]s and
//! [`Gauge`]s, and log₂-bucketed latency [`Histogram`]s with mergeable
//! snapshots (see [`histogram`]). The design splits cost asymmetrically:
//!
//! * **Registration** (`Registry::counter_with(...)`) may allocate — it
//!   renders the series key, takes the registry mutex, and hands back an
//!   `Arc` handle. Do it once, at construction.
//! * **Recording** (`counter.inc()`, `histogram.record(ns)`) is a
//!   relaxed atomic op on the handle — no locks, no heap, safe on the
//!   per-frame warm path (pinned by `zero_alloc_telemetry.rs`).
//!
//! Series are keyed by `name{label="value",...}`; [`Registry::snapshot`]
//! freezes every series into a [`RegistrySnapshot`] sorted by key, which
//! renders as Prometheus-style text ([`RegistrySnapshot::render_text`])
//! or a hand-rolled JSON dump ([`RegistrySnapshot::to_json`]), and is
//! carried over the gateway ctrl socket by `softlora-net`'s
//! `METRICS_REQ`/`METRICS_RESP` frames.
//!
//! ```
//! use softlora_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let frames = registry.counter("frames_total");
//! let latency = registry.histogram_with("stage_ns", &[("stage", "fb")]);
//! frames.inc();
//! latency.record(1_250);
//! let snap = registry.snapshot();
//! assert_eq!(snap.series.len(), 2);
//! assert!(snap.render_text().contains("frames_total 1"));
//! ```

#![warn(missing_docs)]

pub mod histogram;

pub use histogram::{bucket_bounds, bucket_index, HistogramCell, HistogramSnapshot, BUCKETS};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The kind of a registered series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone non-decreasing `u64`.
    Counter,
    /// Arbitrary `f64` point-in-time value.
    Gauge,
    /// Log₂-bucketed sample distribution.
    Histogram,
}

// One `Cell` lives per registered series, behind an `Arc`, for the
// process lifetime — the histogram variant's inline bucket array is the
// point (no indirection on the record path), not a size accident.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Cell {
    Counter(AtomicU64),
    Gauge(AtomicU64),
    Histogram(HistogramCell),
}

#[derive(Debug)]
struct SeriesCell {
    name: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// Handle to a monotone counter. Cloning is cheap (an `Arc` bump);
/// recording is one relaxed `fetch_add`.
#[derive(Clone, Debug)]
pub struct Counter {
    series: Arc<SeriesCell>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        match &self.series.cell {
            Cell::Counter(c) => {
                c.fetch_add(n, Ordering::Relaxed);
            }
            _ => unreachable!("counter handle over non-counter cell"),
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        match &self.series.cell {
            Cell::Counter(c) => c.load(Ordering::Relaxed),
            _ => unreachable!("counter handle over non-counter cell"),
        }
    }
}

/// Handle to an `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Clone, Debug)]
pub struct Gauge {
    series: Arc<SeriesCell>,
}

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, value: f64) {
        match &self.series.cell {
            Cell::Gauge(g) => g.store(value.to_bits(), Ordering::Relaxed),
            _ => unreachable!("gauge handle over non-gauge cell"),
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        match &self.series.cell {
            Cell::Gauge(g) => f64::from_bits(g.load(Ordering::Relaxed)),
            _ => unreachable!("gauge handle over non-gauge cell"),
        }
    }
}

/// Handle to a log₂-bucketed histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    series: Arc<SeriesCell>,
}

impl Histogram {
    /// Records one sample (three relaxed `fetch_add`s, no heap).
    #[inline]
    pub fn record(&self, value: u64) {
        match &self.series.cell {
            Cell::Histogram(h) => h.record(value),
            _ => unreachable!("histogram handle over non-histogram cell"),
        }
    }

    /// Records a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Freezes the current contents.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.series.cell {
            Cell::Histogram(h) => h.snapshot(),
            _ => unreachable!("histogram handle over non-histogram cell"),
        }
    }
}

/// A metrics registry: a keyed set of live series.
///
/// Use [`global()`] for the process-wide instance every SoftLoRa layer
/// records into, or [`Registry::new`] for an isolated one (tests).
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<BTreeMap<String, Arc<SeriesCell>>>,
    /// Per-name cap on distinct labeled series (0 = unlimited). See
    /// [`Registry::set_label_budget`].
    label_budget: std::sync::atomic::AtomicUsize,
}

/// The label value every over-budget series collapses into.
pub const OVERFLOW_LABEL: &str = "other";

/// Renders the canonical series key: `name` or `name{k="v",...}`.
#[must_use]
pub fn render_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{v}\"");
    }
    key.push('}');
    key
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of distinct labeled series per metric name.
    ///
    /// Label values are often data-derived (device addresses, gateway
    /// ids); an attacker spraying addresses must not be able to grow the
    /// registry without bound. Once a name holds `budget` labeled series,
    /// every *new* label combination collapses into one overflow series
    /// whose label values are all [`OVERFLOW_LABEL`] (`other`) — the
    /// counts survive in aggregate, the cardinality stays bounded. The
    /// overflow series itself occupies one budget slot. `0` (the
    /// default) disables the cap. Already-registered series are never
    /// evicted.
    pub fn set_label_budget(&self, budget: usize) {
        self.label_budget.store(budget, Ordering::Relaxed);
    }

    fn get_or_register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: SeriesKind,
    ) -> Arc<SeriesCell> {
        let key = render_key(name, labels);
        let mut map = self.series.lock().expect("registry poisoned");
        let budget = self.label_budget.load(Ordering::Relaxed);
        if budget != 0
            && !labels.is_empty()
            && !map.contains_key(&key)
            && !labels.iter().all(|(_, v)| *v == OVERFLOW_LABEL)
            && map.values().filter(|c| c.name == name && !c.labels.is_empty()).count() >= budget
        {
            drop(map);
            let overflow: Vec<(&str, &str)> =
                labels.iter().map(|(k, _)| (*k, OVERFLOW_LABEL)).collect();
            return self.get_or_register(name, &overflow, kind);
        }
        let cell = map.entry(key).or_insert_with(|| {
            Arc::new(SeriesCell {
                name: name.to_string(),
                labels: labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect(),
                cell: match kind {
                    SeriesKind::Counter => Cell::Counter(AtomicU64::new(0)),
                    SeriesKind::Gauge => Cell::Gauge(AtomicU64::new(0.0f64.to_bits())),
                    SeriesKind::Histogram => Cell::Histogram(HistogramCell::new()),
                },
            })
        });
        let found = match cell.cell {
            Cell::Counter(_) => SeriesKind::Counter,
            Cell::Gauge(_) => SeriesKind::Gauge,
            Cell::Histogram(_) => SeriesKind::Histogram,
        };
        assert_eq!(
            found, kind,
            "series {:?} already registered as {found:?}, requested {kind:?}",
            cell.name
        );
        Arc::clone(cell)
    }

    /// Counter handle for an unlabeled series (registers on first use).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Counter handle for a labeled series (registers on first use).
    ///
    /// # Panics
    /// Panics if the key already exists with a different kind.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter { series: self.get_or_register(name, labels, SeriesKind::Counter) }
    }

    /// Gauge handle for an unlabeled series (registers on first use).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gauge handle for a labeled series (registers on first use).
    ///
    /// # Panics
    /// Panics if the key already exists with a different kind.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge { series: self.get_or_register(name, labels, SeriesKind::Gauge) }
    }

    /// Histogram handle for an unlabeled series (registers on first use).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Histogram handle for a labeled series (registers on first use).
    ///
    /// # Panics
    /// Panics if the key already exists with a different kind.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram { series: self.get_or_register(name, labels, SeriesKind::Histogram) }
    }

    /// Freezes every registered series, sorted by key.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.series.lock().expect("registry poisoned");
        let series = map
            .values()
            .map(|cell| SeriesSnapshot {
                name: cell.name.clone(),
                labels: cell.labels.clone(),
                value: match &cell.cell {
                    Cell::Counter(c) => SeriesValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => SeriesValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                    Cell::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        RegistrySnapshot { series }
    }

    /// Prometheus-style text exposition of the current contents.
    #[must_use]
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every SoftLoRa layer records into.
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// One frozen series: name, labels, value.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// Metric name, e.g. `gateway_stage_ns`.
    pub name: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: SeriesValue,
}

impl SeriesSnapshot {
    /// The canonical `name{k="v"}` key.
    #[must_use]
    pub fn key(&self) -> String {
        let borrowed: Vec<(&str, &str)> =
            self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        render_key(&self.name, &borrowed)
    }

    /// Label value for `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A frozen series value.
///
/// The histogram variant carries its full bucket array inline so
/// snapshots stay `Copy`-composable and mergeable without heap hops;
/// a `RegistrySnapshot` holds few series, so the size skew is cheap.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum SeriesValue {
    /// Monotone counter value.
    Counter(u64),
    /// Point-in-time gauge value.
    Gauge(f64),
    /// Frozen histogram.
    Histogram(HistogramSnapshot),
}

impl SeriesValue {
    /// Counter value, if this is a counter.
    #[must_use]
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            SeriesValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram, if this is a histogram.
    #[must_use]
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            SeriesValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// A frozen registry: every series at one instant, sorted by key.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// All series, sorted by canonical key.
    pub series: Vec<SeriesSnapshot>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl RegistrySnapshot {
    /// First series whose name matches `name` (any labels).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Series with exactly this name and label set.
    #[must_use]
    pub fn find_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        let key = render_key(name, labels);
        self.series.iter().find(|s| s.key() == key)
    }

    /// Sum of all counter series whose name matches `name`.
    #[must_use]
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.series.iter().filter(|s| s.name == name).filter_map(|s| s.value.as_counter()).sum()
    }

    /// Prometheus-style text exposition.
    ///
    /// Counters and gauges render as `key value`; histograms expand to
    /// cumulative `name_bucket{le="..."}` lines plus `_sum` and
    /// `_count`, with only occupied buckets (plus `+Inf`) emitted.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.series {
            match &s.value {
                SeriesValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", s.key());
                }
                SeriesValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {v}", s.key());
                }
                SeriesValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (index, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let (_, high) = bucket_bounds(index);
                        let _ = writeln!(
                            out,
                            "{}_bucket{{le=\"{high}\"{}}} {cumulative}",
                            s.name,
                            render_label_tail(&s.labels),
                        );
                    }
                    let tail = render_label_tail(&s.labels);
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"{tail}}} {}", s.name, h.count);
                    let _ = writeln!(out, "{}_sum{} {}", s.name, brace(&s.labels), h.sum);
                    let _ = writeln!(out, "{}_count{} {}", s.name, brace(&s.labels), h.count);
                }
            }
        }
        out
    }

    /// Hand-rolled JSON dump (no external dependencies), one object per
    /// series. Histograms carry sparse buckets and pre-computed
    /// quantile estimates so dashboards need no bucket math.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"labels\":{{", json_escape(&s.name));
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push_str("},");
            match &s.value {
                SeriesValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                SeriesValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}");
                }
                SeriesValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                         \"mean\":{:.1},\"p50\":{:.1},\"p90\":{:.1},\
                         \"p99\":{:.1},\"p999\":{:.1},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.p999(),
                    );
                    let mut first = true;
                    for (index, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(out, "[{index},{n}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn render_label_tail(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (k, v) in labels {
        let _ = write!(out, ",{k}=\"{v}\"");
    }
    out
}

fn brace(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let borrowed: Vec<(&str, &str)> =
        labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    render_key("", &borrowed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_handles_share_state() {
        let r = Registry::new();
        let a = r.counter_with("hits", &[("shard", "0")]);
        let b = r.counter_with("hits", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter_sum("hits"), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").add(5);
        r.gauge("load").set(0.75);
        r.histogram_with("lat_ns", &[("stage", "fb")]).record(1000);
        let snap = r.snapshot();
        let keys: Vec<String> = snap.series.iter().map(SeriesSnapshot::key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let text = snap.render_text();
        assert!(text.contains("alpha 5"));
        assert!(text.contains("zeta 1"));
        assert!(text.contains("load 0.75"));
        assert!(text.contains("lat_ns_bucket{le=\"1023\",stage=\"fb\"} 1"));
        assert!(text.contains("lat_ns_count{stage=\"fb\"} 1"));
        let json = snap.to_json();
        assert!(json.contains("\"name\":\"lat_ns\""));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"buckets\":[[10,1]]"));
    }

    #[test]
    fn label_budget_collapses_overflow_into_other() {
        let r = Registry::new();
        r.set_label_budget(2);
        r.counter_with("lag", &[("follower", "a")]).add(1);
        r.counter_with("lag", &[("follower", "b")]).add(2);
        // Third and fourth distinct label sets collapse into one
        // `other` series; their counts aggregate there.
        r.counter_with("lag", &[("follower", "c")]).add(10);
        r.counter_with("lag", &[("follower", "d")]).add(20);
        let snap = r.snapshot();
        assert_eq!(snap.series.len(), 3, "{}", snap.render_text());
        assert_eq!(
            snap.find_with("lag", &[("follower", OVERFLOW_LABEL)])
                .and_then(|s| s.value.as_counter()),
            Some(30)
        );
        // Pre-budget series keep recording under their own labels.
        r.counter_with("lag", &[("follower", "a")]).add(5);
        assert_eq!(
            r.snapshot().find_with("lag", &[("follower", "a")]).and_then(|s| s.value.as_counter()),
            Some(6)
        );
        // Unlabeled series and other names are untouched by the budget.
        r.counter("totals").inc();
        r.counter_with("depth", &[("shard", "7")]).inc();
        assert_eq!(r.snapshot().counter_sum("depth"), 1);
    }

    #[test]
    fn label_budget_zero_is_unlimited() {
        let r = Registry::new();
        for k in 0..64 {
            r.counter_with("free", &[("k", &k.to_string())]).inc();
        }
        assert_eq!(r.snapshot().series.len(), 64);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("telemetry_selftest_total");
        let before = c.get();
        global().counter("telemetry_selftest_total").inc();
        assert_eq!(c.get(), before + 1);
    }
}
