//! Property tests for the histogram and registry:
//!
//! * merged quantile estimates stay within one bucket width of the true
//!   order statistic of the combined sample stream;
//! * merge equals recording both streams into one cell;
//! * concurrent increments from N threads sum exactly (no lost
//!   updates under the relaxed-atomic scheme).

use proptest::prelude::*;
use softlora_telemetry::{bucket_bounds, bucket_index, HistogramCell, Registry};

/// The true order statistic at Prometheus-style rank ⌈q·n⌉.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every quantile in the report set, the estimate from the
    /// merged histogram lands inside (or within one unit of) the bucket
    /// that contains the true combined-order statistic — the error is
    /// bounded by the bucket width.
    #[test]
    fn merged_quantiles_bounded_by_bucket_width(
        a in prop::collection::vec(any::<u64>(), 1..200),
        b in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let ca = HistogramCell::new();
        let cb = HistogramCell::new();
        for &v in &a { ca.record(v); }
        for &v in &b { cb.record(v); }
        let mut merged = ca.snapshot();
        merged.merge(&cb.snapshot());

        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(merged.count, all.len() as u64);

        for q in [0.5, 0.9, 0.99, 0.999] {
            let truth = exact_quantile(&all, q);
            let (low, high) = bucket_bounds(bucket_index(truth));
            let estimate = merged.quantile(q);
            prop_assert!(
                estimate >= low as f64 && estimate <= high as f64 + 1.0,
                "q={} estimate {} outside bucket [{}, {}] of true {}",
                q, estimate, low, high, truth
            );
        }
    }

    /// Merging snapshots is exactly equivalent to recording both
    /// streams into a single cell.
    #[test]
    fn merge_equals_single_stream(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let ca = HistogramCell::new();
        let cb = HistogramCell::new();
        let combined = HistogramCell::new();
        for &v in &a { ca.record(v); combined.record(v); }
        for &v in &b { cb.record(v); combined.record(v); }
        let mut merged = ca.snapshot();
        merged.merge(&cb.snapshot());
        prop_assert_eq!(merged, combined.snapshot());
    }
}

/// N threads hammering one counter and one histogram through cloned
/// handles lose no updates: the final count is exactly N·per_thread.
#[test]
fn concurrent_increments_sum_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("concurrent_total");
    let histogram = registry.histogram("concurrent_ns");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    let snap = histogram.snapshot();
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), THREADS as u64 * PER_THREAD);
}
