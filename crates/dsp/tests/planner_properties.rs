//! Property tests pinning the planned FFT to the unplanned reference.
//!
//! The allocation-free signal path routes every transform through
//! [`softlora_dsp::FftPlan`]s with cached twiddle tables. The gateway's
//! verdict-equality guarantees (batch vs sequential vs streaming) only
//! hold if the planned butterflies produce **bit-for-bit** the same
//! output as the original per-call transform — which these properties
//! pin across all power-of-two sizes up to 2^14.

use proptest::prelude::*;
use softlora_dsp::fft::{fft_in_place, ifft_in_place, FftPlanner};
use softlora_dsp::Complex;

/// Deterministic pseudo-random complex buffer for a given size/seed.
fn signal(n: usize, seed: u64) -> Vec<Complex> {
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64, mapped into [-1, 1).
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    };
    (0..n).map(|_| Complex::new(next(), next())).collect()
}

/// Exhaustive sweep: every pow2 size up to 2^14, forward and inverse,
/// planned output must equal the reference bit for bit.
#[test]
fn planned_fft_matches_reference_all_sizes() {
    let mut planner = FftPlanner::new();
    for log2 in 0..=14u32 {
        let n = 1usize << log2;
        let data = signal(n, 0xF0CC + u64::from(log2));

        let mut reference = data.clone();
        fft_in_place(&mut reference);
        let mut planned = data.clone();
        planner.plan(n).forward(&mut planned);
        assert_eq!(
            reference.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect::<Vec<_>>(),
            planned.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect::<Vec<_>>(),
            "forward mismatch at n = {n}"
        );

        let mut reference = data.clone();
        ifft_in_place(&mut reference);
        let mut planned = data;
        planner.plan(n).inverse(&mut planned);
        assert_eq!(
            reference.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect::<Vec<_>>(),
            planned.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect::<Vec<_>>(),
            "inverse mismatch at n = {n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random sizes and contents: `forward_into` (the zero-padding entry
    /// the dechirp path uses) equals the reference `fft_in_place` over the
    /// padded buffer, bit for bit.
    #[test]
    fn forward_into_matches_reference(log2 in 0u32..12, seed in any::<u64>()) {
        let n = 1usize << log2;
        // A non-pow2 length exercises the zero-padding path too.
        let len = n - n / 3;
        let data = signal(len.max(1), seed);

        let mut reference = data.clone();
        reference.resize(softlora_dsp::fft::next_pow2(data.len()), Complex::ZERO);
        fft_in_place(&mut reference);

        let mut planner = FftPlanner::new();
        let mut planned = Vec::new();
        planner.forward_into(&data, &mut planned);

        prop_assert_eq!(reference.len(), planned.len());
        for (k, (a, b)) in reference.iter().zip(planned.iter()).enumerate() {
            prop_assert!(a.re.to_bits() == b.re.to_bits(), "re bin {}", k);
            prop_assert!(a.im.to_bits() == b.im.to_bits(), "im bin {}", k);
        }
    }

    /// `forward_real_into` under the pinned `Reference` kernel (the
    /// embedding path) equals the reference transform of the embedded
    /// real signal, bit for bit. The default fast kernel runs the N/2
    /// real-input trick instead, which is only ulp-close — its bound is
    /// pinned in `kernel_equivalence.rs`.
    #[test]
    fn forward_real_into_matches_reference(log2 in 1u32..12, seed in any::<u64>()) {
        let n = 1usize << log2;
        let xs: Vec<f64> = signal(n, seed).into_iter().map(|z| z.re).collect();

        let mut reference: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_in_place(&mut reference);

        let mut planner = FftPlanner::with_kernel(softlora_dsp::FftKernel::Reference);
        let mut planned = Vec::new();
        planner.forward_real_into(&xs, &mut planned);

        prop_assert_eq!(reference.len(), planned.len());
        for (k, (a, b)) in reference.iter().zip(planned.iter()).enumerate() {
            prop_assert!(a.re.to_bits() == b.re.to_bits(), "re bin {}", k);
            prop_assert!(a.im.to_bits() == b.im.to_bits(), "im bin {}", k);
        }
    }

    /// Plan reuse is stateless: transforming twice through the same cached
    /// plan gives identical results (no accumulated state in the planner).
    #[test]
    fn plan_reuse_is_stateless(log2 in 0u32..10, seed in any::<u64>()) {
        let n = 1usize << log2;
        let data = signal(n, seed);
        let mut planner = FftPlanner::new();
        let mut a = data.clone();
        planner.plan(n).forward(&mut a);
        let mut b = data;
        planner.plan(n).forward(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}
