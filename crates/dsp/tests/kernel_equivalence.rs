//! Equivalence harness for the fast DSP kernels.
//!
//! Contract (mirrors the module docs of `softlora_dsp::kernels`): every
//! fast path is **bit-for-bit identical** to its reference twin — the
//! fused radix-4 FFT schedule, the batched `forward_many`, and the
//! chunked multiply/fold kernels — *except* the real-input N/2
//! transform, which is gated on the fast-kernel switch and pinned here
//! to a bounded relative error instead. Exhaustive over all pow2 sizes
//! to 2^14 plus proptest-randomized contents.

use proptest::prelude::*;
use softlora_dsp::fft::{FftPlan, FftPlanner};
use softlora_dsp::kernels::{
    dechirp_fold_chunked, dechirp_fold_reference, mul_chunked, mul_reference,
};
use softlora_dsp::{Complex, FftKernel};

/// Deterministic pseudo-random complex buffer for a given size/seed
/// (SplitMix64, same generator as `planner_properties`).
fn signal(n: usize, seed: u64) -> Vec<Complex> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0
    };
    (0..n).map(|_| Complex::new(next(), next())).collect()
}

fn assert_bits_eq(a: &[Complex], b: &[Complex], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re bin {k}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im bin {k}");
    }
}

/// Exact claim #1: the fused radix-4 schedule is bit-identical to the
/// reference radix-2 schedule at every pow2 size up to 2^14, forward
/// and inverse.
#[test]
fn fused_schedule_is_bit_identical_all_sizes() {
    for log2 in 0..=14u32 {
        let n = 1usize << log2;
        let data = signal(n, 0xABBA + u64::from(log2));
        let reference = FftPlan::with_kernel(n, FftKernel::Reference);
        let fused = FftPlan::with_kernel(n, FftKernel::Fused);

        let mut a = data.clone();
        reference.forward(&mut a);
        let mut b = data.clone();
        fused.forward(&mut b);
        assert_bits_eq(&a, &b, &format!("forward n={n}"));

        let mut a = data.clone();
        reference.inverse(&mut a);
        let mut b = data;
        fused.inverse(&mut b);
        assert_bits_eq(&a, &b, &format!("inverse n={n}"));
    }
}

/// Exact claim #2: `forward_many` over a batch equals transforming each
/// frame alone, bit for bit, under both schedules.
#[test]
fn forward_many_matches_per_frame_forward() {
    for kernel in [FftKernel::Reference, FftKernel::Fused] {
        for (frames, log2) in [(1usize, 9u32), (8, 9), (64, 5), (3, 12), (16, 0)] {
            let n = 1usize << log2;
            let plan = FftPlan::with_kernel(n, kernel);
            let data = signal(frames * n, 0xC0DE + u64::from(log2) + frames as u64);

            let mut batched = data.clone();
            plan.forward_many(&mut batched);

            let mut single = data;
            for frame in single.chunks_exact_mut(n) {
                plan.forward(frame);
            }
            assert_bits_eq(&single, &batched, &format!("{kernel:?} frames={frames} n={n}"));
        }
    }
}

/// Gated claim: the real-input N/2 transform is ulp-close to the
/// embedded reference — bounded relative error across all pow2 sizes to
/// 2^14, and exactly conjugate-symmetric output shape.
#[test]
fn real_input_fast_path_is_ulp_close_all_sizes() {
    let mut reference = FftPlanner::with_kernel(FftKernel::Reference);
    let mut fast = FftPlanner::with_kernel(FftKernel::Fused);
    for log2 in 0..=14u32 {
        let n = 1usize << log2;
        let xs: Vec<f64> = signal(n, 0x5EED + u64::from(log2)).into_iter().map(|z| z.re).collect();

        let mut want = Vec::new();
        reference.forward_real_into(&xs, &mut want);
        let mut got = Vec::new();
        fast.forward_real_into(&xs, &mut got);

        assert_eq!(want.len(), got.len(), "n={n}");
        // Scale-relative bound: both paths build twiddles by the
        // `w *= wlen` recurrence, whose rounding grows with stage
        // length, so the two algorithms drift ~1e-13 of the spectrum
        // scale at 2^14; 1e-12 keeps ~10x headroom while still catching
        // any algebra slip (a wrong unpack term is O(scale)).
        let scale = want.iter().map(|z| z.norm()).fold(1e-300, f64::max);
        for (k, (a, b)) in want.iter().zip(&got).enumerate() {
            let err = (*a - *b).norm();
            assert!(err <= 1e-12 * scale, "n={n} bin {k}: |Δ|={err:.3e} vs scale {scale:.3e}");
        }
        // The fast path must keep the DC/Nyquist bins exactly real.
        assert_eq!(got[0].im.to_bits(), 0f64.to_bits(), "n={n} DC");
        if n >= 2 {
            assert_eq!(got[n / 2].im.to_bits(), 0f64.to_bits(), "n={n} Nyquist");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact claim #3: chunked elementwise multiply is bit-identical to
    /// the scalar reference loop for arbitrary lengths.
    #[test]
    fn chunked_mul_matches_reference(len in 0usize..700, seed in any::<u64>()) {
        let a = signal(len, seed);
        let b = signal(len, seed.wrapping_add(1));
        let mut want = vec![Complex::ZERO; len];
        let mut got = vec![Complex::ZERO; len];
        mul_reference(&a, &b, &mut want);
        mul_chunked(&a, &b, &mut got);
        for (x, y) in want.iter().zip(&got) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    /// Exact claim #4: the chunked dechirp fold accumulates every FFT
    /// slot in the same order as the demodulator's original
    /// bounds-checked loop — bit-identical for any oversampling factor.
    #[test]
    fn chunked_fold_matches_reference(
        chips_log2 in 0u32..10,
        os in 1usize..5,
        seed in any::<u64>(),
    ) {
        let chips = 1usize << chips_log2;
        let w = signal(chips * os, seed);
        let r = signal(chips * os, seed.wrapping_add(7));
        let mut want = vec![Complex::ZERO; chips];
        let mut got = vec![Complex::ZERO; chips];
        dechirp_fold_reference(&w, &r, os, &mut want);
        dechirp_fold_chunked(&w, &r, os, &mut got);
        for (x, y) in want.iter().zip(&got) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    /// Exact claim #5: random batches through `forward_many` under the
    /// fused schedule equal the reference schedule frame by frame.
    #[test]
    fn fused_batch_matches_reference_schedule(
        frames in 1usize..9,
        log2 in 0u32..10,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log2;
        let data = signal(frames * n, seed);
        let mut fused = data.clone();
        FftPlan::with_kernel(n, FftKernel::Fused).forward_many(&mut fused);
        let mut reference = data;
        FftPlan::with_kernel(n, FftKernel::Reference).forward_many(&mut reference);
        for (x, y) in reference.iter().zip(&fused) {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}
