//! Reusable per-worker scratch memory for the per-frame signal path.
//!
//! Every received frame runs the same DSP chain (dechirp, FFT, onset
//! pick, FB estimation), and before this module existed each link of that
//! chain allocated fresh `Vec`s per call — the front half of the gateway
//! was allocation-bound, not compute-bound. A [`DspScratch`] bundles an
//! [`FftPlanner`] with pools of complex/real buffers so a worker can run
//! the whole chain allocation-free in steady state: the first few frames
//! warm the pools (and the twiddle tables), after which `take`/`put`
//! cycles only move capacity around.
//!
//! # Checkout semantics
//!
//! Buffers are checked out **by value**: [`DspScratch::take_complex`]
//! pops the most recently returned buffer (LIFO), clears it and resizes
//! it to the requested length (zero-filled), and [`DspScratch::put_complex`]
//! returns it for reuse. Holding buffers by value sidesteps borrow
//! conflicts when a computation needs several buffers at once; forgetting
//! to `put` a buffer back is not an error, it just costs a fresh
//! allocation on the next `take`.
//!
//! Because checkout is LIFO and a frame's call chain is shaped the same
//! way every time, each `take` resolves to a buffer whose capacity
//! already fits — which is what makes the steady state allocation-free
//! (pinned by the counting-allocator test in `softlora-bench`).

use crate::complex::Complex;
use crate::fft::FftPlanner;
use std::cell::RefCell;

/// A per-worker arena: an FFT planner plus pooled complex/real buffers.
///
/// Not `Sync` by design — every worker (rayon `map_init` slot, flowgraph
/// block, sequential gateway) owns its own instance.
#[derive(Debug, Default)]
pub struct DspScratch {
    planner: FftPlanner,
    complex: Vec<Vec<Complex>>,
    real: Vec<Vec<f64>>,
}

impl DspScratch {
    /// Creates an empty arena; pools and twiddle tables fill on first use.
    pub fn new() -> Self {
        DspScratch::default()
    }

    /// The arena's FFT planner (cached twiddle tables per size).
    pub fn planner(&mut self) -> &mut FftPlanner {
        &mut self.planner
    }

    /// Checks out a complex buffer of exactly `len` zeroed elements.
    pub fn take_complex(&mut self, len: usize) -> Vec<Complex> {
        let mut buf = self.complex.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, Complex::ZERO);
        buf
    }

    /// Checks out an empty complex buffer (capacity reused; fill it
    /// yourself with `extend`/`push`).
    pub fn take_complex_empty(&mut self) -> Vec<Complex> {
        let mut buf = self.complex.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a complex buffer to the pool.
    pub fn put_complex(&mut self, buf: Vec<Complex>) {
        if buf.capacity() > 0 {
            self.complex.push(buf);
        }
    }

    /// Checks out a zeroed batch lane: `frames` contiguous `n`-point
    /// frames in one buffer, shaped for [`crate::fft::FftPlan::forward_many`].
    /// Return it with [`DspScratch::put_complex`].
    pub fn take_batch(&mut self, frames: usize, n: usize) -> Vec<Complex> {
        self.take_complex(frames * n)
    }

    /// Checks out a real buffer of exactly `len` zeroed elements.
    pub fn take_real(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.real.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Checks out an empty real buffer (capacity reused).
    pub fn take_real_empty(&mut self) -> Vec<f64> {
        let mut buf = self.real.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a real buffer to the pool.
    pub fn put_real(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.real.push(buf);
        }
    }

    /// Buffers currently parked in the pools, `(complex, real)` — useful
    /// for asserting that a code path returns what it takes.
    pub fn pooled(&self) -> (usize, usize) {
        (self.complex.len(), self.real.len())
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<DspScratch> = RefCell::new(DspScratch::new());
}

/// Runs `f` with the calling thread's shared [`DspScratch`].
///
/// This is the delegation point for the original allocating APIs
/// (`Demodulator::demodulate`, `PhyTimestamper::timestamp`, ...): they
/// borrow the thread's arena so even legacy callers reuse buffers and
/// twiddle tables. Do not re-enter (`f` must not call another
/// `with_thread_scratch`-based API); scratch-aware code should thread an
/// explicit `&mut DspScratch` instead.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut DspScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_and_sized() {
        let mut s = DspScratch::new();
        let mut c = s.take_complex(8);
        assert_eq!(c.len(), 8);
        assert!(c.iter().all(|z| *z == Complex::ZERO));
        c[3] = Complex::ONE;
        s.put_complex(c);
        // Reused buffer comes back zeroed at the new length.
        let c = s.take_complex(4);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|z| *z == Complex::ZERO));
    }

    #[test]
    fn pool_reuses_capacity() {
        let mut s = DspScratch::new();
        let c = s.take_complex(1024);
        let ptr = c.as_ptr();
        s.put_complex(c);
        let c = s.take_complex(512);
        assert_eq!(c.as_ptr(), ptr, "LIFO take must reuse the returned buffer");
        s.put_complex(c);
        assert_eq!(s.pooled(), (1, 0));
    }

    #[test]
    fn real_pool_round_trips() {
        let mut s = DspScratch::new();
        let mut r = s.take_real_empty();
        r.extend([1.0, 2.0]);
        s.put_real(r);
        let r = s.take_real(3);
        assert_eq!(r, vec![0.0; 3]);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut s = DspScratch::new();
        s.put_complex(Vec::new());
        s.put_real(Vec::new());
        assert_eq!(s.pooled(), (0, 0));
    }

    #[test]
    fn thread_scratch_is_reused() {
        let first = with_thread_scratch(|s| {
            let b = s.take_complex(64);
            let p = b.as_ptr();
            s.put_complex(b);
            p
        });
        let second = with_thread_scratch(|s| {
            let b = s.take_complex(64);
            let p = b.as_ptr();
            s.put_complex(b);
            p
        });
        assert_eq!(first, second);
    }

    #[test]
    fn planner_is_per_arena() {
        let mut s = DspScratch::new();
        let plan = s.planner().plan_arc(256);
        assert_eq!(plan.len(), 256);
    }
}
