//! Minimal `f64` complex-number type used throughout the workspace.
//!
//! The offline dependency set has no `num-complex`, so the SDR I/Q sample
//! type is defined here. The representation is the usual Cartesian pair; an
//! I/Q sample from the SDR front-end maps as `I -> re`, `Q -> im`
//! (paper §5.2).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components, used as the I/Q baseband sample
/// type.
///
/// # Example
///
/// ```
/// use softlora_dsp::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!(z * Complex::I, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form `r * e^{i theta}`.
    ///
    /// ```
    /// use softlora_dsp::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// `e^{i theta}` — a unit phasor. This is the workhorse for chirp
    /// synthesis where the instantaneous angle is evaluated per sample.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2` (cheaper than [`Complex::norm`], used for
    /// power computations).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-pi, pi]`, computed with `atan2(im, re)`.
    ///
    /// This is exactly the `atan2(Q(t), I(t))` quantity the paper feeds into
    /// its phase-unwrapping step (paper §7.1.1).
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a pair of infinities/NaNs if `z` is zero, matching `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex { re: self.re / d, im: -self.im / d }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    // Division by multiplication with the inverse is the intended formula.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    /// Embeds a real number as `x + 0i`.
    #[inline]
    fn from(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }
}

impl From<(f64, f64)> for Complex {
    /// Interprets an `(I, Q)` pair as a complex baseband sample.
    #[inline]
    fn from((re, im): (f64, f64)) -> Complex {
        Complex { re, im }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
        assert_eq!(Complex::from((1.0, -2.0)), Complex::new(1.0, -2.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(3.0, PI / 3.0);
        assert!((z.norm() - 3.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..100 {
            let theta = k as f64 * 0.17 - 8.0;
            assert!((Complex::cis(theta).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * a.inv(), Complex::ONE));
        assert!(close(-a + a, Complex::ZERO));
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(2.0, 3.0);
        assert!(close(a * a.conj(), Complex::from(a.norm_sqr())));
        assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 1.234;
        assert!(close(Complex::new(0.0, theta).exp(), Complex::cis(theta)));
    }

    #[test]
    fn scalar_ops() {
        let a = Complex::new(1.0, -2.0);
        assert_eq!(a * 2.0, Complex::new(2.0, -4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Complex::new(0.5, -1.0));
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex::new(1.0, 1.0);
        a += Complex::ONE;
        a -= Complex::I;
        a *= Complex::new(2.0, 0.0);
        a /= Complex::new(2.0, 0.0);
        assert!(close(a, Complex::new(2.0, 0.0)));
    }

    #[test]
    fn sum_over_iterator() {
        let s: Complex = (0..4).map(|i| Complex::new(i as f64, -(i as f64))).sum();
        assert_eq!(s, Complex::new(6.0, -6.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn nan_detection() {
        assert!(Complex::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex::new(1.0, 2.0).is_nan());
    }
}
