//! Global and local optimisers for the least-squares FB estimator.
//!
//! The paper (§7.1.2) solves its non-convex least-squares template fit with
//! scipy's differential evolution [Storn & Price 1997]. This module provides
//! a from-scratch implementation of the classic `DE/rand/1/bin` strategy
//! plus a small Nelder–Mead simplex search for local polishing.

use crate::DspError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Outcome of an optimisation run.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// Number of generations (DE) or iterations (Nelder–Mead) executed.
    pub iterations: usize,
    /// Whether the convergence tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Differential evolution (`DE/rand/1/bin`) global minimiser.
///
/// # Example
///
/// ```
/// use softlora_dsp::optimize::DifferentialEvolution;
///
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let de = DifferentialEvolution::new(vec![(-5.0, 5.0); 3]).with_seed(42);
/// let result = de.minimize(sphere)?;
/// assert!(result.value < 1e-8);
/// # Ok::<(), softlora_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DifferentialEvolution {
    bounds: Vec<(f64, f64)>,
    population: usize,
    weight: f64,
    crossover: f64,
    max_generations: usize,
    tolerance: f64,
    seed: u64,
}

impl DifferentialEvolution {
    /// Creates a minimiser over the given per-dimension `(lo, hi)` bounds
    /// with scipy-like defaults (population `15 * dims`, `F = 0.7`,
    /// `CR = 0.9`).
    pub fn new(bounds: Vec<(f64, f64)>) -> Self {
        let dims = bounds.len().max(1);
        DifferentialEvolution {
            bounds,
            population: 15 * dims,
            weight: 0.7,
            crossover: 0.9,
            max_generations: 300,
            tolerance: 1e-10,
            seed: 0x5EED_50F7_10A4,
        }
    }

    /// Sets the population size (minimum 4 enforced at run time).
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Sets the differential weight `F` (typically in `[0.4, 1.0]`).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the crossover probability `CR` in `[0, 1]`.
    pub fn with_crossover(mut self, crossover: f64) -> Self {
        self.crossover = crossover;
        self
    }

    /// Sets the generation cap.
    pub fn with_max_generations(mut self, max_generations: usize) -> Self {
        self.max_generations = max_generations;
        self
    }

    /// Sets the convergence tolerance on the population's objective spread.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the RNG seed, making the run fully deterministic.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the minimisation.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidBounds`] if the bounds are empty, contain
    /// NaN, or have `lo >= hi` in any dimension.
    pub fn minimize<F>(&self, mut objective: F) -> Result<OptimResult, DspError>
    where
        F: FnMut(&[f64]) -> f64,
    {
        if self.bounds.is_empty() {
            return Err(DspError::InvalidBounds { reason: "bounds must be non-empty" });
        }
        for &(lo, hi) in &self.bounds {
            if lo >= hi || !lo.is_finite() || !hi.is_finite() {
                return Err(DspError::InvalidBounds {
                    reason: "each bound must satisfy finite lo < hi",
                });
            }
        }
        let dims = self.bounds.len();
        let np = self.population.max(4);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Initial population: uniform in bounds.
        let mut pop: Vec<Vec<f64>> = (0..np)
            .map(|_| {
                self.bounds.iter().map(|&(lo, hi)| lo + (hi - lo) * rng.random::<f64>()).collect()
            })
            .collect();
        let mut fitness: Vec<f64> = pop.iter().map(|x| objective(x)).collect();
        let mut evaluations = np;

        let mut best = argmin(&fitness);
        let mut iterations = 0;
        let mut converged = false;

        for gen in 0..self.max_generations {
            iterations = gen + 1;
            for i in 0..np {
                // Pick three distinct indices != i.
                let (a, b, c) = distinct_three(&mut rng, np, i);
                // Mutation + binomial crossover.
                let jrand = rng.random_range(0..dims);
                let mut trial = pop[i].clone();
                for j in 0..dims {
                    if j == jrand || rng.random::<f64>() < self.crossover {
                        let v = pop[a][j] + self.weight * (pop[b][j] - pop[c][j]);
                        let (lo, hi) = self.bounds[j];
                        // Reflect out-of-bounds trials back inside.
                        trial[j] = reflect_into(v, lo, hi);
                    }
                }
                let f = objective(&trial);
                evaluations += 1;
                if f <= fitness[i] {
                    pop[i] = trial;
                    fitness[i] = f;
                    if f < fitness[best] {
                        best = i;
                    }
                }
            }
            // Convergence: population objective spread small relative to mean.
            let fmin = fitness[best];
            let fmax = fitness.iter().cloned().fold(f64::MIN, f64::max);
            if (fmax - fmin).abs() <= self.tolerance * (1.0 + fmin.abs()) {
                converged = true;
                break;
            }
        }

        Ok(OptimResult {
            x: pop[best].clone(),
            value: fitness[best],
            evaluations,
            iterations,
            converged,
        })
    }
}

/// Nelder–Mead downhill-simplex local minimiser.
///
/// Used to polish the DE winner so the frequency-bias estimate reaches
/// sub-bin (hertz-level) resolution without thousands of extra DE
/// generations.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `start` is empty or `scale` is
/// not positive.
pub fn nelder_mead<F>(
    mut objective: F,
    start: &[f64],
    scale: f64,
    max_iters: usize,
    tolerance: f64,
) -> Result<OptimResult, DspError>
where
    F: FnMut(&[f64]) -> f64,
{
    if start.is_empty() {
        return Err(DspError::InvalidParameter { reason: "start point must be non-empty" });
    }
    if scale <= 0.0 || !scale.is_finite() {
        return Err(DspError::InvalidParameter { reason: "scale must be positive and finite" });
    }
    let n = start.len();
    // Build initial simplex.
    let mut simplex: Vec<Vec<f64>> = vec![start.to_vec()];
    for j in 0..n {
        let mut v = start.to_vec();
        v[j] += scale * if v[j].abs() > 1e-12 { v[j].abs() } else { 1.0 };
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|x| objective(x)).collect();
    let mut evaluations = n + 1;

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut iterations = 0;
    let mut converged = false;

    for it in 0..max_iters {
        iterations = it + 1;
        // Order simplex by objective.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let reordered: Vec<Vec<f64>> = order.iter().map(|&i| simplex[i].clone()).collect();
        let revalues: Vec<f64> = order.iter().map(|&i| values[i]).collect();
        simplex = reordered;
        values = revalues;

        if (values[n] - values[0]).abs() <= tolerance * (1.0 + values[0].abs()) {
            converged = true;
            break;
        }

        // Centroid of all but worst.
        let mut centroid = vec![0.0; n];
        for v in &simplex[..n] {
            for j in 0..n {
                centroid[j] += v[j] / n as f64;
            }
        }
        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter().zip(b.iter()).map(|(&x, &y)| x + t * (y - x)).collect()
        };

        // Reflection.
        let reflected = lerp(&centroid, &simplex[n], -alpha);
        let fr = objective(&reflected);
        evaluations += 1;
        if fr < values[0] {
            // Expansion.
            let expanded = lerp(&centroid, &simplex[n], -gamma);
            let fe = objective(&expanded);
            evaluations += 1;
            if fe < fr {
                simplex[n] = expanded;
                values[n] = fe;
            } else {
                simplex[n] = reflected;
                values[n] = fr;
            }
        } else if fr < values[n - 1] {
            simplex[n] = reflected;
            values[n] = fr;
        } else {
            // Contraction.
            let contracted = lerp(&centroid, &simplex[n], rho);
            let fc = objective(&contracted);
            evaluations += 1;
            if fc < values[n] {
                simplex[n] = contracted;
                values[n] = fc;
            } else {
                // Shrink toward best.
                for i in 1..=n {
                    simplex[i] = lerp(&simplex[0], &simplex[i], sigma);
                    values[i] = objective(&simplex[i]);
                    evaluations += 1;
                }
            }
        }
    }

    let best = argmin(&values);
    Ok(OptimResult {
        x: simplex[best].clone(),
        value: values[best],
        evaluations,
        iterations,
        converged,
    })
}

/// Golden-section search for a 1-D unimodal minimum on `[lo, hi]`.
///
/// # Errors
///
/// Returns [`DspError::InvalidBounds`] unless `lo < hi` and both are finite.
pub fn golden_section<F>(mut f: F, lo: f64, hi: f64, tolerance: f64) -> Result<(f64, f64), DspError>
where
    F: FnMut(f64) -> f64,
{
    if lo >= hi || !lo.is_finite() || !hi.is_finite() {
        return Err(DspError::InvalidBounds { reason: "need finite lo < hi" });
    }
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tolerance {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = (a + b) / 2.0;
    let v = f(x);
    Ok((x, v))
}

fn argmin(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v < values[best] {
            best = i;
        }
    }
    best
}

fn distinct_three(rng: &mut StdRng, np: usize, exclude: usize) -> (usize, usize, usize) {
    debug_assert!(np >= 4);
    let mut pick = |used: &[usize]| loop {
        let k = rng.random_range(0..np);
        if k != exclude && !used.contains(&k) {
            return k;
        }
    };
    let a = pick(&[]);
    let b = pick(&[a]);
    let c = pick(&[a, b]);
    (a, b, c)
}

fn reflect_into(v: f64, lo: f64, hi: f64) -> f64 {
    let mut x = v;
    let span = hi - lo;
    // A couple of reflections almost always suffice; clamp as a backstop.
    for _ in 0..4 {
        if x < lo {
            x = lo + (lo - x);
        } else if x > hi {
            x = hi - (x - hi);
        } else {
            return x;
        }
        if !x.is_finite() {
            break;
        }
        // Guard against points far outside.
        if (x - lo).abs() > 2.0 * span {
            break;
        }
    }
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    fn rosenbrock(x: &[f64]) -> f64 {
        (0..x.len() - 1)
            .map(|i| 100.0 * (x[i + 1] - x[i] * x[i]).powi(2) + (1.0 - x[i]).powi(2))
            .sum()
    }

    /// Multi-modal objective similar in shape to the FB least-squares
    /// surface: a cosine comb with a global quadratic envelope.
    fn comb(x: &[f64]) -> f64 {
        let v = x[0];
        (v - 2.0) * (v - 2.0) + 5.0 * (1.0 - (3.0 * (v - 2.0)).cos())
    }

    #[test]
    fn de_minimizes_sphere() {
        let de = DifferentialEvolution::new(vec![(-10.0, 10.0); 4]).with_seed(1);
        let r = de.minimize(sphere).unwrap();
        assert!(r.value < 1e-6, "value {}", r.value);
        for v in &r.x {
            assert!(v.abs() < 1e-2);
        }
    }

    #[test]
    fn de_minimizes_rosenbrock_2d() {
        let de =
            DifferentialEvolution::new(vec![(-5.0, 5.0); 2]).with_seed(2).with_max_generations(600);
        let r = de.minimize(rosenbrock).unwrap();
        assert!(r.value < 1e-4, "value {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 0.05);
        assert!((r.x[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn de_escapes_local_minima_of_comb() {
        let de = DifferentialEvolution::new(vec![(-10.0, 10.0)]).with_seed(3);
        let r = de.minimize(comb).unwrap();
        assert!((r.x[0] - 2.0).abs() < 1e-3, "x {}", r.x[0]);
    }

    #[test]
    fn de_is_deterministic_for_fixed_seed() {
        let de = DifferentialEvolution::new(vec![(-3.0, 3.0); 2]).with_seed(99);
        let r1 = de.minimize(sphere).unwrap();
        let r2 = de.minimize(sphere).unwrap();
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.value, r2.value);
    }

    #[test]
    fn de_never_worse_than_best_initial_population_member() {
        // Run a single generation and confirm monotone improvement.
        let de =
            DifferentialEvolution::new(vec![(-8.0, 8.0); 3]).with_seed(5).with_max_generations(1);
        let r = de.minimize(sphere).unwrap();
        // The best initial member of a uniform population on [-8,8]^3 has
        // an expected value far above machine epsilon; here we only check
        // the invariant that the result respects the bounds.
        for (v, &(lo, hi)) in r.x.iter().zip([(-8.0, 8.0); 3].iter()) {
            assert!(*v >= lo && *v <= hi);
        }
        assert!(r.evaluations > 0);
    }

    #[test]
    fn de_validates_bounds() {
        assert!(DifferentialEvolution::new(vec![]).minimize(sphere).is_err());
        assert!(DifferentialEvolution::new(vec![(1.0, 1.0)]).minimize(sphere).is_err());
        assert!(DifferentialEvolution::new(vec![(2.0, -2.0)]).minimize(sphere).is_err());
        assert!(DifferentialEvolution::new(vec![(f64::NAN, 1.0)]).minimize(sphere).is_err());
    }

    #[test]
    fn nelder_mead_polishes_to_high_precision() {
        let r = nelder_mead(sphere, &[0.3, -0.2], 0.1, 500, 1e-15).unwrap();
        assert!(r.value < 1e-12, "value {}", r.value);
    }

    #[test]
    fn nelder_mead_on_rosenbrock() {
        let r = nelder_mead(rosenbrock, &[-1.2, 1.0], 0.5, 2000, 1e-14).unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-4);
        assert!((r.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_validates() {
        assert!(nelder_mead(sphere, &[], 0.1, 10, 1e-6).is_err());
        assert!(nelder_mead(sphere, &[1.0], 0.0, 10, 1e-6).is_err());
        assert!(nelder_mead(sphere, &[1.0], f64::INFINITY, 10, 1e-6).is_err());
    }

    #[test]
    fn de_then_nm_pipeline() {
        // The production FB estimator runs DE coarse + NM polish; verify the
        // pipeline reaches near machine precision on a nasty objective.
        let de =
            DifferentialEvolution::new(vec![(-10.0, 10.0)]).with_seed(7).with_max_generations(60);
        let coarse = de.minimize(comb).unwrap();
        let fine = nelder_mead(comb, &coarse.x, 0.01, 300, 1e-15).unwrap();
        assert!((fine.x[0] - 2.0).abs() < 1e-8, "x {}", fine.x[0]);
    }

    #[test]
    fn golden_section_finds_parabola_min() {
        let (x, v) = golden_section(|x| (x - 1.5) * (x - 1.5) + 2.0, -10.0, 10.0, 1e-10).unwrap();
        // Accuracy near the minimum is limited by the flatness of the
        // objective in f64 (differences below ~1e-16 of the offset are
        // unresolvable), so expect ~sqrt(eps) localisation.
        assert!((x - 1.5).abs() < 1e-6);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_validates() {
        assert!(golden_section(|x| x, 1.0, 1.0, 1e-6).is_err());
        assert!(golden_section(|x| x, 2.0, 1.0, 1e-6).is_err());
    }

    #[test]
    fn reflect_into_stays_in_bounds() {
        for v in [-100.0, -1.1, 0.0, 0.5, 1.0, 1.7, 55.0] {
            let x = reflect_into(v, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x), "{v} -> {x}");
        }
    }
}
