//! Phase unwrapping (paper §7.1.1).
//!
//! The linear-regression frequency-bias estimator needs the instantaneous
//! angle `Θ(t)` as a continuous function of time, but `atan2(Q, I)` is only
//! available modulo 2π. The paper rectifies it by tracking a counter `k`
//! that decrements when the wrapped phase jumps from −π to π and increments
//! on the opposite jump; the unwrapped phase is `atan2(Q,I) + 2kπ`. This
//! module implements exactly that bookkeeping.

use std::f64::consts::PI;

/// Unwraps a wrapped phase sequence in place-free style, returning the
/// continuous phase.
///
/// A jump between consecutive samples larger than `pi` in magnitude is
/// interpreted as a wrap and compensated by ±2π. This matches the paper's
/// `2kπ` rectification and NumPy's `unwrap` with default discontinuity.
///
/// Empty input yields empty output.
///
/// ```
/// use softlora_dsp::unwrap::unwrap_phase;
/// // A phase ramp of 0.5 rad/sample, wrapped into (-pi, pi].
/// let wrapped: Vec<f64> = (0..100)
///     .map(|i| {
///         let p = 0.5 * i as f64;
///         (p + std::f64::consts::PI).rem_euclid(2.0 * std::f64::consts::PI)
///             - std::f64::consts::PI
///     })
///     .collect();
/// let unwrapped = unwrap_phase(&wrapped);
/// let slope = (unwrapped[99] - unwrapped[0]) / 99.0;
/// assert!((slope - 0.5).abs() < 1e-9);
/// ```
pub fn unwrap_phase(wrapped: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(wrapped.len());
    unwrap_phase_into(wrapped, &mut out);
    out
}

/// [`unwrap_phase`] into a caller-owned buffer (`out` is cleared and
/// refilled; capacity reused across calls).
pub fn unwrap_phase_into(wrapped: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let mut k = 0.0f64; // the paper's integer k, stored as f64 multiples of 2π
    let mut prev = match wrapped.first() {
        Some(&p) => {
            out.push(p);
            p
        }
        None => return,
    };
    for &p in &wrapped[1..] {
        let d = p - prev;
        if d > PI {
            k -= 1.0;
        } else if d < -PI {
            k += 1.0;
        }
        out.push(p + 2.0 * PI * k);
        prev = p;
    }
}

/// Wraps a phase into `(-pi, pi]`.
pub fn wrap_to_pi(phase: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut p = (phase + PI).rem_euclid(two_pi) - PI;
    if p == -PI {
        p = PI;
    }
    p
}

/// Unwraps the phase of an I/Q pair sequence: `atan2(Q, I)` then
/// [`unwrap_phase`]. This is the first two steps of the paper's Fig. 12
/// pipeline.
pub fn unwrap_iq(i: &[f64], q: &[f64]) -> Vec<f64> {
    let wrapped: Vec<f64> = i.iter().zip(q.iter()).map(|(&ii, &qq)| qq.atan2(ii)).collect();
    unwrap_phase(&wrapped)
}

/// [`unwrap_iq`] with arena-held temporaries: the wrapped-phase buffer
/// comes from the scratch pool and `out` receives the unwrapped phase.
pub fn unwrap_iq_with(
    i: &[f64],
    q: &[f64],
    scratch: &mut crate::scratch::DspScratch,
    out: &mut Vec<f64>,
) {
    let mut wrapped = scratch.take_real_empty();
    wrapped.extend(i.iter().zip(q.iter()).map(|(&ii, &qq)| qq.atan2(ii)));
    unwrap_phase_into(&wrapped, out);
    scratch.put_real(wrapped);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_no_wraps() {
        let phases = vec![0.0, 0.1, 0.2, -0.3, 0.4];
        assert_eq!(unwrap_phase(&phases), phases);
    }

    #[test]
    fn empty_and_single() {
        assert!(unwrap_phase(&[]).is_empty());
        assert_eq!(unwrap_phase(&[1.5]), vec![1.5]);
    }

    #[test]
    fn positive_ramp_reconstructed() {
        let true_phase: Vec<f64> = (0..500).map(|i| 0.3 * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_to_pi(p)).collect();
        let un = unwrap_phase(&wrapped);
        for (u, t) in un.iter().zip(true_phase.iter()) {
            // Reconstruction up to a global 2π multiple of the first sample.
            assert!((u - t).abs() < 1e-9, "{u} vs {t}");
        }
    }

    #[test]
    fn negative_ramp_reconstructed() {
        let true_phase: Vec<f64> = (0..500).map(|i| -0.45 * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_to_pi(p)).collect();
        let un = unwrap_phase(&wrapped);
        for (u, t) in un.iter().zip(true_phase.iter()) {
            assert!((u - t).abs() < 1e-9);
        }
    }

    #[test]
    fn quadratic_phase_reconstructed() {
        // Chirp-like quadratic phase, as in the LoRa FB estimator.
        let true_phase: Vec<f64> =
            (0..2000).map(|i| 1e-4 * (i as f64) * (i as f64) - 0.2 * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_to_pi(p)).collect();
        let un = unwrap_phase(&wrapped);
        for (u, t) in un.iter().zip(true_phase.iter()) {
            assert!((u - t).abs() < 1e-6);
        }
    }

    #[test]
    fn wrap_to_pi_domain() {
        for k in -20..20 {
            let p = 0.77 * k as f64;
            let w = wrap_to_pi(p);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
            // Same angle modulo 2π.
            assert!(((p - w) / (2.0 * PI)).round() * 2.0 * PI - (p - w) < 1e-9);
        }
    }

    #[test]
    fn unwrap_iq_matches_manual() {
        let n = 300;
        let phase: Vec<f64> = (0..n).map(|i| 0.9 * i as f64).collect();
        let i: Vec<f64> = phase.iter().map(|p| p.cos()).collect();
        let q: Vec<f64> = phase.iter().map(|p| p.sin()).collect();
        let un = unwrap_iq(&i, &q);
        for (u, t) in un.iter().zip(phase.iter()) {
            assert!((u - t).abs() < 1e-9);
        }
    }

    #[test]
    fn small_noise_does_not_cause_spurious_wraps() {
        let n = 1000;
        let mut state = 42u64;
        let mut noise = || {
            // xorshift for cheap determinism
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let true_phase: Vec<f64> = (0..n).map(|i| 0.2 * i as f64).collect();
        let wrapped: Vec<f64> =
            true_phase.iter().map(|&p| wrap_to_pi(p + 0.05 * noise())).collect();
        let un = unwrap_phase(&wrapped);
        let slope = (un[n - 1] - un[0]) / (n - 1) as f64;
        assert!((slope - 0.2).abs() < 1e-3, "slope {slope}");
    }
}
