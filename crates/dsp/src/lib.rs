//! Signal-processing substrate for the SoftLoRa reproduction.
//!
//! The paper ("Attack-Aware Data Timestamping in Low-Power Synchronization-Free
//! LoRaWAN", ICDCS 2020) builds its gateway defence out of a small set of
//! time-domain signal-processing primitives applied to I/Q traces captured by a
//! cheap SDR receiver:
//!
//! * a short-time FFT **spectrogram** (paper Fig. 6) — [`spectrogram`],
//! * a Hilbert-transform **envelope detector** for preamble onset picking
//!   (paper §6.1.2, Fig. 9a) — [`hilbert`], [`envelope`],
//! * an autoregressive **AIC picker** borrowed from seismology (paper §6.1.2,
//!   Fig. 9b) — [`aic`],
//! * **phase unwrapping** and **linear regression** for the closed-form
//!   frequency-bias estimator (paper §7.1.1, Fig. 12) — [`unwrap`],
//!   [`regression`],
//! * **differential evolution** for the low-SNR least-squares frequency-bias
//!   estimator (paper §7.1.2, Fig. 14) — [`optimize`].
//!
//! None of these exist in the offline dependency set, so this crate implements
//! them from scratch on top of a minimal [`Complex`] type and a radix-2
//! [`fft`]. Everything is pure, deterministic (given a seeded RNG) and
//! `f64`-based.
//!
//! # Example
//!
//! ```
//! use softlora_dsp::{Complex, fft::fft_forward};
//!
//! // FFT of a pure tone concentrates energy in one bin.
//! let n = 64;
//! let tone: Vec<Complex> = (0..n)
//!     .map(|i| Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * 4.0 * i as f64 / n as f64))
//!     .collect();
//! let spec = fft_forward(&tone);
//! let peak = spec
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! assert_eq!(peak, 4);
//! ```

pub mod aic;
pub mod complex;
pub mod envelope;
pub mod fft;
pub mod filter;
pub mod kernels;
pub mod optimize;
pub mod regression;
pub mod scratch;
pub mod spectrogram;
pub mod stats;
pub mod unwrap;
pub mod window;

pub mod hilbert;

pub use complex::Complex;
pub use fft::{FftPlan, FftPlanner};
pub use kernels::{fast_kernels, set_fast_kernels, FftKernel};
pub use scratch::DspScratch;

/// Errors returned by fallible DSP routines.
///
/// Most routines in this crate validate their inputs (empty traces, windows
/// longer than the signal, malformed optimisation bounds) and return this
/// error rather than panicking, so that upstream gateway code can degrade
/// gracefully on truncated SDR captures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// The input slice was empty or shorter than the algorithm requires.
    InputTooShort {
        /// Minimum number of samples required.
        required: usize,
        /// Number of samples actually provided.
        actual: usize,
    },
    /// A window/segment length parameter was invalid (zero, or larger than
    /// the signal it is applied to).
    InvalidWindow {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// Optimisation bounds were malformed (`lo >= hi`, NaN, or empty).
    InvalidBounds {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// A numeric parameter was out of its documented domain.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
}

impl std::fmt::Display for DspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DspError::InputTooShort { required, actual } => {
                write!(f, "input too short: need at least {required} samples, got {actual}")
            }
            DspError::InvalidWindow { reason } => write!(f, "invalid window: {reason}"),
            DspError::InvalidBounds { reason } => write!(f, "invalid bounds: {reason}"),
            DspError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = DspError::InputTooShort { required: 8, actual: 3 };
        assert!(e.to_string().contains("8"));
        assert!(e.to_string().contains("3"));
        let e = DspError::InvalidWindow { reason: "window longer than signal" };
        assert!(e.to_string().contains("window"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
