//! FIR/IIR filtering and decimation.
//!
//! Models the low-pass filter stage of the SDR receiver front-end (paper
//! Fig. 5): after quadrature mixing, the double-frequency images must be
//! removed before ADC sampling. A windowed-sinc FIR design is provided for
//! that role, together with a simple decimator used when converting the
//! 2.4 Msps SDR stream to the demodulator's processing rate.

use crate::complex::Complex;
use crate::window::{window, WindowKind};
use crate::DspError;

/// Designs a windowed-sinc low-pass FIR filter.
///
/// `cutoff` is the normalised cutoff in cycles/sample (i.e. `f_c / f_s`),
/// must lie in `(0, 0.5)`; `taps` is the filter length (odd lengths give a
/// symmetric, linear-phase filter — even lengths are rounded up).
///
/// The returned coefficients are normalised to unit DC gain.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for an out-of-range cutoff or zero
/// taps.
pub fn lowpass_fir(cutoff: f64, taps: usize, kind: WindowKind) -> Result<Vec<f64>, DspError> {
    if !(cutoff > 0.0 && cutoff < 0.5) {
        return Err(DspError::InvalidParameter { reason: "cutoff must be in (0, 0.5)" });
    }
    if taps == 0 {
        return Err(DspError::InvalidParameter { reason: "taps must be positive" });
    }
    let taps = if taps.is_multiple_of(2) { taps + 1 } else { taps };
    let mid = (taps / 2) as isize;
    let w = window(kind, taps);
    let mut h: Vec<f64> = (0..taps as isize)
        .map(|i| {
            let n = (i - mid) as f64;
            let sinc = if n == 0.0 {
                2.0 * cutoff
            } else {
                (2.0 * std::f64::consts::PI * cutoff * n).sin() / (std::f64::consts::PI * n)
            };
            sinc * w[i as usize]
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for v in h.iter_mut() {
        *v /= sum;
    }
    Ok(h)
}

/// Applies an FIR filter to a complex signal, compensating the group delay
/// so the output is time-aligned with the input (same length; edges are
/// zero-padded).
pub fn fir_filter(signal: &[Complex], taps: &[f64]) -> Vec<Complex> {
    let mut out = Vec::new();
    fir_filter_into(signal, taps, &mut out);
    out
}

/// [`fir_filter`] into a caller-owned buffer: `out` is cleared and
/// refilled (capacity reused across calls, so a warm buffer makes the
/// filter allocation-free).
pub fn fir_filter_into(signal: &[Complex], taps: &[f64], out: &mut Vec<Complex>) {
    let n = signal.len();
    let t = taps.len();
    out.clear();
    if n == 0 || t == 0 {
        out.extend_from_slice(signal);
        return;
    }
    let delay = t / 2;
    out.resize(n, Complex::ZERO);
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        // y[i] = sum_k h[k] * x[i + delay - k]
        for (k, &hk) in taps.iter().enumerate() {
            let idx = i as isize + delay as isize - k as isize;
            if idx >= 0 && (idx as usize) < n {
                acc += signal[idx as usize].scale(hk);
            }
        }
        *o = acc;
    }
}

/// Applies an FIR filter to a real signal (group-delay compensated).
pub fn fir_filter_real(signal: &[f64], taps: &[f64]) -> Vec<f64> {
    crate::scratch::with_thread_scratch(|scratch| {
        let mut out = Vec::new();
        fir_filter_real_with(signal, taps, scratch, &mut out);
        out
    })
}

/// [`fir_filter_real`] with arena-held temporaries: the complex embedding
/// and filter output are scratch buffers; `out` receives the real part.
pub fn fir_filter_real_with(
    signal: &[f64],
    taps: &[f64],
    scratch: &mut crate::scratch::DspScratch,
    out: &mut Vec<f64>,
) {
    let mut z = scratch.take_complex_empty();
    z.extend(signal.iter().map(|&x| Complex::new(x, 0.0)));
    let mut filtered = scratch.take_complex_empty();
    fir_filter_into(&z, taps, &mut filtered);
    out.clear();
    out.extend(filtered.iter().map(|c| c.re));
    scratch.put_complex(filtered);
    scratch.put_complex(z);
}

/// Single-pole IIR low-pass (`y[i] = a*x[i] + (1-a)*y[i-1]`), `a` in `(0,1]`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `alpha` is outside `(0, 1]`.
pub fn iir_single_pole(signal: &[f64], alpha: f64) -> Result<Vec<f64>, DspError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(DspError::InvalidParameter { reason: "alpha must be in (0, 1]" });
    }
    let mut out = Vec::with_capacity(signal.len());
    let mut y = 0.0;
    for (i, &x) in signal.iter().enumerate() {
        y = if i == 0 { x } else { alpha * x + (1.0 - alpha) * y };
        out.push(y);
    }
    Ok(out)
}

/// Keeps every `factor`-th sample (no anti-alias filtering — pair with
/// [`lowpass_fir`] when decimating wideband signals).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `factor` is zero.
pub fn decimate(signal: &[Complex], factor: usize) -> Result<Vec<Complex>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidParameter { reason: "decimation factor must be positive" });
    }
    Ok(signal.iter().step_by(factor).cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn complex_tone(n: usize, f_norm: f64) -> Vec<Complex> {
        (0..n).map(|i| Complex::cis(2.0 * PI * f_norm * i as f64)).collect()
    }

    #[test]
    fn lowpass_passes_low_rejects_high() {
        let taps = lowpass_fir(0.1, 101, WindowKind::Hamming).unwrap();
        let low = complex_tone(2000, 0.02);
        let high = complex_tone(2000, 0.35);
        let low_out = fir_filter(&low, &taps);
        let high_out = fir_filter(&high, &taps);
        let pwr = |v: &[Complex]| -> f64 {
            v[200..1800].iter().map(|z| z.norm_sqr()).sum::<f64>() / 1600.0
        };
        assert!(pwr(&low_out) > 0.9, "passband power {}", pwr(&low_out));
        assert!(pwr(&high_out) < 1e-4, "stopband power {}", pwr(&high_out));
    }

    #[test]
    fn lowpass_unit_dc_gain() {
        let taps = lowpass_fir(0.2, 63, WindowKind::Blackman).unwrap();
        assert!((taps.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_is_symmetric_linear_phase() {
        let taps = lowpass_fir(0.15, 51, WindowKind::Hamming).unwrap();
        for i in 0..taps.len() {
            assert!((taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-15);
        }
    }

    #[test]
    fn even_tap_count_rounded_up() {
        let taps = lowpass_fir(0.1, 50, WindowKind::Hamming).unwrap();
        assert_eq!(taps.len(), 51);
    }

    #[test]
    fn design_validation() {
        assert!(lowpass_fir(0.0, 31, WindowKind::Rect).is_err());
        assert!(lowpass_fir(0.5, 31, WindowKind::Rect).is_err());
        assert!(lowpass_fir(0.6, 31, WindowKind::Rect).is_err());
        assert!(lowpass_fir(0.1, 0, WindowKind::Rect).is_err());
    }

    #[test]
    fn group_delay_compensated() {
        // A delayed impulse stays centred after filtering.
        let mut sig = vec![Complex::ZERO; 101];
        sig[50] = Complex::ONE;
        let taps = lowpass_fir(0.25, 21, WindowKind::Hamming).unwrap();
        let out = fir_filter(&sig, &taps);
        let (peak, _) = crate::fft::argmax_bin(&out);
        assert_eq!(peak, 50);
    }

    #[test]
    fn real_wrapper_consistent() {
        let x: Vec<f64> = (0..500).map(|i| (0.05 * i as f64).sin()).collect();
        let taps = lowpass_fir(0.2, 31, WindowKind::Hamming).unwrap();
        let a = fir_filter_real(&x, &taps);
        let z: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let b = fir_filter(&z, &taps);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v.re).abs() < 1e-12);
        }
    }

    #[test]
    fn iir_smooths_step() {
        let mut x = vec![0.0; 50];
        x.extend(vec![1.0; 100]);
        let y = iir_single_pole(&x, 0.1).unwrap();
        assert!(y[49] < 0.01);
        assert!(y[60] > 0.3 && y[60] < 0.9);
        assert!(y[149] > 0.95);
        assert!(iir_single_pole(&x, 0.0).is_err());
        assert!(iir_single_pole(&x, 1.5).is_err());
    }

    #[test]
    fn decimate_picks_every_kth() {
        let sig: Vec<Complex> = (0..10).map(|i| Complex::new(i as f64, 0.0)).collect();
        let d = decimate(&sig, 3).unwrap();
        let vals: Vec<f64> = d.iter().map(|z| z.re).collect();
        assert_eq!(vals, vec![0.0, 3.0, 6.0, 9.0]);
        assert!(decimate(&sig, 0).is_err());
    }
}
