//! Vector-friendly inner-loop kernels for the dechirp signal path, plus
//! the process-wide fast-kernel switch.
//!
//! The per-frame budget of the receiver is spent in two loop shapes:
//! elementwise complex multiplies (the dechirp: a
//! `volk_32fc_x2_multiply` shape, see FutureSDR's `fft_demod.rs`) and
//! the FFT butterflies they feed. This module keeps **portable and
//! specialized paths side by side** (futuredsp kernel/taps style): every
//! kernel has a `_reference` form — the exact loop the consumer ran
//! before, bounds checks and all — and a `_chunked` form written over
//! `[f64; LANES]` blocks so the autovectorizer emits packed arithmetic.
//! The chunked forms perform the **same floating-point operations in the
//! same per-element order** as the reference forms, so they are
//! bit-for-bit identical (pinned by `kernel_equivalence` proptests), and
//! the top-level entry points may select either path freely.
//!
//! # Kernel selection
//!
//! [`fast_kernels`] is a process-wide switch, seeded from the
//! `SOFTLORA_DSP_KERNEL` environment variable (`reference`/`0`/`off`
//! disable, anything else — including unset — enables) and adjustable at
//! runtime via [`set_fast_kernels`] (e.g. from `SoftLoraConfig`). It
//! controls which loop shape runs *and* whether
//! [`crate::fft::FftPlanner::forward_real_into`] may use the N/2
//! real-input transform (the only path that is ulp-close rather than
//! bit-identical). Flip it before the first frame of a run: planners
//! capture the FFT schedule when a plan is built (both schedules are
//! bit-identical, so a stale schedule is a perf detail, not a
//! correctness one).

use crate::complex::Complex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Lane width of the chunked kernels: each inner-loop block touches
/// `LANES` complex elements (`2 * LANES` f64s), sized for 256-bit
/// vectors while still splitting evenly across 128-bit SSE registers.
pub const LANES: usize = 4;

/// Which transform/kernel schedule new plans and kernel entry points use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftKernel {
    /// The original per-stage radix-2 schedule and scalar loops — the
    /// reference everything else is pinned against.
    Reference,
    /// Fused-stage radix-4 FFT schedule + chunked multiply kernels.
    /// Bit-identical to `Reference` everywhere except the real-input
    /// transform, which is ulp-close.
    Fused,
}

impl FftKernel {
    /// The process-wide active kernel (see [`fast_kernels`]).
    pub fn active() -> Self {
        if fast_kernels() {
            FftKernel::Fused
        } else {
            FftKernel::Reference
        }
    }
}

static FAST_KERNELS: AtomicBool = AtomicBool::new(true);
static ENV_SEED: OnceLock<()> = OnceLock::new();

fn seed_from_env() {
    ENV_SEED.get_or_init(|| {
        if let Ok(v) = std::env::var("SOFTLORA_DSP_KERNEL") {
            let v = v.to_ascii_lowercase();
            let off = matches!(v.as_str(), "reference" | "ref" | "off" | "0" | "false");
            FAST_KERNELS.store(!off, Ordering::Relaxed);
        }
    });
}

/// Whether the fast (chunked/fused) kernels are active process-wide.
///
/// Defaults to `true`; `SOFTLORA_DSP_KERNEL=reference` (or `0`/`off`)
/// in the environment flips the default, and [`set_fast_kernels`]
/// overrides it at runtime.
pub fn fast_kernels() -> bool {
    seed_from_env();
    FAST_KERNELS.load(Ordering::Relaxed)
}

/// Sets the process-wide kernel switch (see [`fast_kernels`]).
///
/// Process-wide by design: scratch arenas and thread-local planners are
/// shared across pipelines, so per-pipeline kernel choices would be
/// fiction. Call it once at startup (e.g. `SoftLoraConfig::fast_dsp`
/// does, via `Pipeline::new`).
pub fn set_fast_kernels(on: bool) {
    seed_from_env();
    FAST_KERNELS.store(on, Ordering::Relaxed);
}

/// Elementwise complex multiply `out[i] = a[i] * b[i]` — the dechirp
/// kernel shape. Selects the chunked path when fast kernels are active;
/// both paths are bit-identical.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn mul_into(a: &[Complex], b: &[Complex], out: &mut [Complex]) {
    assert!(a.len() == b.len() && a.len() == out.len(), "mul_into: length mismatch");
    if fast_kernels() {
        mul_chunked(a, b, out);
    } else {
        mul_reference(a, b, out);
    }
}

/// Portable reference form of [`mul_into`].
#[inline]
pub fn mul_reference(a: &[Complex], b: &[Complex], out: &mut [Complex]) {
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = *x * *y;
    }
}

/// Chunked form of [`mul_into`]: `[f64; LANES]` re/im blocks so the
/// products vectorize. Same multiply-add order per element as
/// [`mul_reference`] → bit-identical.
#[inline]
pub fn mul_chunked(a: &[Complex], b: &[Complex], out: &mut [Complex]) {
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut oc = out.chunks_exact_mut(LANES);
    for ((xs, ys), os) in (&mut ac).zip(&mut bc).zip(&mut oc) {
        let mut re = [0.0f64; LANES];
        let mut im = [0.0f64; LANES];
        for l in 0..LANES {
            re[l] = xs[l].re * ys[l].re - xs[l].im * ys[l].im;
            im[l] = xs[l].re * ys[l].im + xs[l].im * ys[l].re;
        }
        for l in 0..LANES {
            os[l] = Complex::new(re[l], im[l]);
        }
    }
    for ((o, x), y) in oc.into_remainder().iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
        *o = *x * *y;
    }
}

/// Multiply a signal by a cyclically repeated reference:
/// `out[k] = a[k] * cycle[k % cycle.len()]` — the matched filter's
/// dechirp over up to two chirp periods.
///
/// # Panics
///
/// Panics if `out.len() != a.len()` or `cycle` is empty.
#[inline]
pub fn mul_cycle_into(a: &[Complex], cycle: &[Complex], out: &mut [Complex]) {
    assert_eq!(a.len(), out.len(), "mul_cycle_into: length mismatch");
    assert!(!cycle.is_empty(), "mul_cycle_into: empty cycle");
    let n = cycle.len();
    let mut k = 0;
    while k < a.len() {
        let span = (a.len() - k).min(n);
        mul_into(&a[k..k + span], &cycle[..span], &mut out[k..k + span]);
        k += span;
    }
}

/// Fused dechirp-and-fold: multiplies `window` by the (pre-conjugated)
/// `reference` chirp and folds the product into `out` with oversampling
/// factor `os`: `out[i] += sum_{k<os} window[i*os+k] * reference[i*os+k]`.
///
/// This is the FFT *input pass* of the dechirp demodulator — the product
/// never materializes, it lands folded into the `out.len()` FFT slots
/// directly. `out` is accumulated into (callers pass zeroed slots).
///
/// Both paths accumulate each slot in ascending-`k` order, so they are
/// bit-identical; the chunked path additionally requires `window` and
/// `reference` to cover `out.len() * os` samples and falls back to the
/// bounds-checked reference loop otherwise.
#[inline]
pub fn dechirp_fold_into(
    window: &[Complex],
    reference: &[Complex],
    os: usize,
    out: &mut [Complex],
) {
    let need = out.len() * os;
    if fast_kernels() && os >= 1 && window.len() >= need && reference.len() >= need {
        dechirp_fold_chunked(&window[..need], &reference[..need], os, out);
    } else {
        dechirp_fold_reference(window, reference, os, out);
    }
}

/// Portable reference form of [`dechirp_fold_into`]: the exact
/// bounds-checked loop the demodulator ran before this module existed.
#[inline]
pub fn dechirp_fold_reference(
    window: &[Complex],
    reference: &[Complex],
    os: usize,
    out: &mut [Complex],
) {
    for (i, slot) in out.iter_mut().enumerate() {
        for k in 0..os {
            let idx = i * os + k;
            if idx < window.len() && idx < reference.len() {
                *slot += window[idx] * reference[idx];
            }
        }
    }
}

/// Chunked form of [`dechirp_fold_into`]: per output slot, the `os`
/// window/reference products are computed in `2 * LANES`-wide tiles of
/// **consecutive** samples (contiguous loads, so the multiplies pack into
/// vector registers), then folded into the slot accumulator in
/// ascending-`k` order. The products are IEEE-identical to the reference
/// loop's and each slot sees the same sequence of adds from a zeroed
/// start, so the result is bit-identical.
///
/// # Panics
///
/// Panics if `window`/`reference` are shorter than `out.len() * os`.
#[inline]
pub fn dechirp_fold_chunked(
    window: &[Complex],
    reference: &[Complex],
    os: usize,
    out: &mut [Complex],
) {
    assert!(window.len() >= out.len() * os && reference.len() >= out.len() * os);
    const TILE: usize = 2 * LANES;
    for (i, slot) in out.iter_mut().enumerate() {
        let w = &window[i * os..(i + 1) * os];
        let r = &reference[i * os..(i + 1) * os];
        let mut acc_re = 0.0f64;
        let mut acc_im = 0.0f64;
        let mut wt = w.chunks_exact(TILE);
        let mut rt = r.chunks_exact(TILE);
        for (ws, rs) in (&mut wt).zip(&mut rt) {
            let mut re = [0.0f64; TILE];
            let mut im = [0.0f64; TILE];
            for t in 0..TILE {
                re[t] = ws[t].re * rs[t].re - ws[t].im * rs[t].im;
                im[t] = ws[t].re * rs[t].im + ws[t].im * rs[t].re;
            }
            for t in 0..TILE {
                acc_re += re[t];
                acc_im += im[t];
            }
        }
        for (x, y) in wt.remainder().iter().zip(rt.remainder()) {
            acc_re += x.re * y.re - x.im * y.im;
            acc_im += x.re * y.im + x.im * y.re;
        }
        *slot += Complex::new(acc_re, acc_im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: usize, seed: u64) -> Vec<Complex> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    #[test]
    fn chunked_mul_is_bit_identical() {
        for n in [0, 1, 3, 4, 7, 16, 33, 257] {
            let a = sig(n, 1);
            let b = sig(n, 2);
            let mut want = vec![Complex::ZERO; n];
            let mut got = vec![Complex::ZERO; n];
            mul_reference(&a, &b, &mut want);
            mul_chunked(&a, &b, &mut got);
            for (w, g) in want.iter().zip(&got) {
                assert_eq!(w.re.to_bits(), g.re.to_bits());
                assert_eq!(w.im.to_bits(), g.im.to_bits());
            }
        }
    }

    #[test]
    fn chunked_fold_is_bit_identical() {
        for os in [1usize, 2, 3, 4] {
            for chips in [1usize, 4, 7, 32, 129] {
                let w = sig(chips * os, 3);
                let r = sig(chips * os, 4);
                let mut want = vec![Complex::ZERO; chips];
                let mut got = vec![Complex::ZERO; chips];
                dechirp_fold_reference(&w, &r, os, &mut want);
                dechirp_fold_chunked(&w, &r, os, &mut got);
                for (a, b) in want.iter().zip(&got) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "os={os} chips={chips}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "os={os} chips={chips}");
                }
            }
        }
    }

    #[test]
    fn fold_with_short_window_matches_reference_semantics() {
        // The entry point must preserve the bounds-checked semantics when
        // the window does not cover every slot.
        let w = sig(10, 5);
        let r = sig(12, 6);
        let mut want = vec![Complex::ZERO; 8];
        let mut got = vec![Complex::ZERO; 8];
        dechirp_fold_reference(&w, &r, 2, &mut want);
        dechirp_fold_into(&w, &r, 2, &mut got);
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
        }
    }

    #[test]
    fn mul_cycle_matches_modular_indexing() {
        let a = sig(23, 7);
        let c = sig(9, 8);
        let mut out = vec![Complex::ZERO; 23];
        mul_cycle_into(&a, &c, &mut out);
        for (k, o) in out.iter().enumerate() {
            let want = a[k] * c[k % 9];
            assert_eq!(want.re.to_bits(), o.re.to_bits());
            assert_eq!(want.im.to_bits(), o.im.to_bits());
        }
    }

    #[test]
    fn kernel_switch_round_trips() {
        let before = fast_kernels();
        set_fast_kernels(false);
        assert_eq!(FftKernel::active(), FftKernel::Reference);
        set_fast_kernels(true);
        assert_eq!(FftKernel::active(), FftKernel::Fused);
        set_fast_kernels(before);
    }
}
