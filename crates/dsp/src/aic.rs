//! Akaike-Information-Criterion onset pickers (paper §6.1.2, Fig. 9b).
//!
//! The paper adapts the autoregressive AIC phase picker used in seismology
//! (Sleeman & van Eck, 1999 \[21\]) to pick the LoRa preamble onset on SDR I/Q
//! traces with single-sample accuracy. Two variants are provided:
//!
//! * [`aic_pick`] — the variance-based "Maeda AIC" formulation
//!   `AIC(k) = k·ln σ²(x[..k]) + (N−k−1)·ln σ²(x[k..])`, which is the common
//!   on-line implementation and what SoftLoRa runs per frame;
//! * [`ar_aic_pick`] — the full autoregressive variant that fits AR models
//!   (via Burg's method) to the segments before and after each candidate and
//!   compares prediction-error variances, closer to the original seismology
//!   formulation and slightly more robust on strongly coloured noise.
//!
//! Both formulate onset detection as an argmin, so — like the envelope
//! detector — they need no detection threshold.

use crate::scratch::DspScratch;
use crate::DspError;

/// Result of an AIC onset pick.
#[derive(Debug, Clone)]
pub struct AicPick {
    /// Index of the detected onset sample (argmin of the AIC curve).
    pub onset: usize,
    /// The AIC curve (same length as the input; edge samples hold `INFINITY`
    /// where the criterion is undefined).
    pub curve: Vec<f64>,
}

/// Variance-based (Maeda) AIC picker.
///
/// For every candidate split point `k`, the criterion rewards splits where
/// the leading segment (noise) has small variance and the trailing segment
/// (signal + noise) has large variance, with the global argmin marking the
/// changepoint. Runs in `O(N)` using running sums.
///
/// `guard` samples at each edge are excluded from the argmin (tiny segments
/// make the log-variance estimate degenerate).
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] if fewer than `2 * guard + 8` samples
/// are supplied.
///
/// ```
/// use softlora_dsp::aic::aic_pick;
/// // Quiet noise, then a loud oscillation from sample 300.
/// let x: Vec<f64> = (0..600)
///     .map(|i| if i < 300 { 0.01 * ((i * 7) % 13) as f64 } else { (0.4 * i as f64).sin() })
///     .collect();
/// let pick = aic_pick(&x, 16)?;
/// assert!((pick.onset as i64 - 300).abs() <= 3);
/// # Ok::<(), softlora_dsp::DspError>(())
/// ```
pub fn aic_pick(x: &[f64], guard: usize) -> Result<AicPick, DspError> {
    let mut sum = Vec::new();
    let mut sumsq = Vec::new();
    let mut curve = Vec::new();
    let onset = aic_curve_into(x, guard, &mut sum, &mut sumsq, &mut curve)?;
    Ok(AicPick { onset, curve })
}

/// Scratch-backed [`aic_pick`] returning only the onset: the running sums
/// and the AIC curve live in the arena. Identical pick to `aic_pick` (the
/// same arithmetic runs over arena-held buffers); allocation-free once
/// the arena is warm.
///
/// # Errors
///
/// Same as [`aic_pick`].
pub fn aic_onset_with(
    x: &[f64],
    guard: usize,
    scratch: &mut DspScratch,
) -> Result<usize, DspError> {
    let mut sum = scratch.take_real_empty();
    let mut sumsq = scratch.take_real_empty();
    let mut curve = scratch.take_real_empty();
    let result = aic_curve_into(x, guard, &mut sum, &mut sumsq, &mut curve);
    scratch.put_real(curve);
    scratch.put_real(sumsq);
    scratch.put_real(sum);
    result
}

/// The Maeda-AIC core shared by the allocating and scratch paths: fills
/// `curve` (edge samples `INFINITY`) and returns the argmin.
fn aic_curve_into(
    x: &[f64],
    guard: usize,
    sum: &mut Vec<f64>,
    sumsq: &mut Vec<f64>,
    curve: &mut Vec<f64>,
) -> Result<usize, DspError> {
    let n = x.len();
    let min_len = 2 * guard + 8;
    if n < min_len {
        return Err(DspError::InputTooShort { required: min_len, actual: n });
    }

    // Running sums for O(1) segment variances.
    sum.clear();
    sum.resize(n + 1, 0.0);
    sumsq.clear();
    sumsq.resize(n + 1, 0.0);
    for (i, &v) in x.iter().enumerate() {
        sum[i + 1] = sum[i] + v;
        sumsq[i + 1] = sumsq[i] + v * v;
    }
    let var = |a: usize, b: usize| -> f64 {
        // Population variance of x[a..b].
        let m = (b - a) as f64;
        let s = sum[b] - sum[a];
        let ss = sumsq[b] - sumsq[a];
        ((ss - s * s / m) / m).max(f64::MIN_POSITIVE)
    };

    let lo = guard.max(2);
    let hi = n - guard.max(2);
    curve.clear();
    curve.resize(n, f64::INFINITY);
    let mut best = lo;
    for k in lo..hi {
        let aic = k as f64 * var(0, k).ln() + (n - k - 1) as f64 * var(k, n).ln();
        curve[k] = aic;
        if aic < curve[best] {
            best = k;
        }
    }
    Ok(best)
}

/// Joint AIC pick over the I and Q traces of an SDR capture.
///
/// The two component AIC curves are summed before the argmin, which uses the
/// diversity of the two channels for a slightly more stable pick than either
/// component alone.
///
/// # Errors
///
/// Returns [`DspError::InvalidWindow`] if the traces differ in length, plus
/// the errors of [`aic_pick`].
pub fn aic_pick_iq(i: &[f64], q: &[f64], guard: usize) -> Result<AicPick, DspError> {
    if i.len() != q.len() {
        return Err(DspError::InvalidWindow { reason: "I and Q traces must have equal length" });
    }
    let pi = aic_pick(i, guard)?;
    let pq = aic_pick(q, guard)?;
    let n = i.len();
    let mut curve = vec![f64::INFINITY; n];
    let mut best = None;
    for k in 0..n {
        if pi.curve[k].is_finite() && pq.curve[k].is_finite() {
            curve[k] = pi.curve[k] + pq.curve[k];
            match best {
                None => best = Some(k),
                Some(b) if curve[k] < curve[b] => best = Some(k),
                _ => {}
            }
        }
    }
    let onset = best.expect("guarded region is non-empty by aic_pick's length check");
    Ok(AicPick { onset, curve })
}

/// Scratch-backed [`aic_pick_iq`] returning only the joint onset: both
/// component curves live in the arena. Identical pick to `aic_pick_iq`.
///
/// # Errors
///
/// Same as [`aic_pick_iq`].
pub fn aic_onset_iq_with(
    i: &[f64],
    q: &[f64],
    guard: usize,
    scratch: &mut DspScratch,
) -> Result<usize, DspError> {
    if i.len() != q.len() {
        return Err(DspError::InvalidWindow { reason: "I and Q traces must have equal length" });
    }
    let mut sum = scratch.take_real_empty();
    let mut sumsq = scratch.take_real_empty();
    let mut curve_i = scratch.take_real_empty();
    let mut curve_q = scratch.take_real_empty();
    let result = (|| {
        aic_curve_into(i, guard, &mut sum, &mut sumsq, &mut curve_i)?;
        aic_curve_into(q, guard, &mut sum, &mut sumsq, &mut curve_q)?;
        // Joint argmin over the summed curves, exactly as `aic_pick_iq`
        // computes it (the combined value is never materialised).
        let mut best: Option<(usize, f64)> = None;
        for k in 0..i.len() {
            if curve_i[k].is_finite() && curve_q[k].is_finite() {
                let joint = curve_i[k] + curve_q[k];
                match best {
                    None => best = Some((k, joint)),
                    Some((_, b)) if joint < b => best = Some((k, joint)),
                    _ => {}
                }
            }
        }
        Ok(best.expect("guarded region is non-empty by aic_pick's length check").0)
    })();
    scratch.put_real(curve_q);
    scratch.put_real(curve_i);
    scratch.put_real(sumsq);
    scratch.put_real(sum);
    result
}

/// Autoregressive AIC picker.
///
/// For each candidate onset `k` (evaluated on a decimated grid of `step`
/// samples and then refined), AR(`order`) models are fitted with Burg's
/// method to the segments before and after `k`, and the pick minimises
/// `k·ln σ²_fwd + (N−k)·ln σ²_bwd`, where the σ² are the AR prediction-error
/// variances. This matches the Sleeman & van Eck formulation the paper cites.
///
/// # Errors
///
/// * [`DspError::InvalidParameter`] if `order` is zero or `step` is zero.
/// * [`DspError::InputTooShort`] if the trace cannot hold two segments of at
///   least `4 * order` samples.
pub fn ar_aic_pick(x: &[f64], order: usize, step: usize) -> Result<AicPick, DspError> {
    if order == 0 || step == 0 {
        return Err(DspError::InvalidParameter { reason: "order and step must be positive" });
    }
    let seg = 4 * order;
    let n = x.len();
    if n < 2 * seg + 2 {
        return Err(DspError::InputTooShort { required: 2 * seg + 2, actual: n });
    }

    let eval = |k: usize| -> f64 {
        let fwd = burg_prediction_error(&x[..k], order);
        let bwd = burg_prediction_error(&x[k..], order);
        k as f64 * fwd.max(f64::MIN_POSITIVE).ln()
            + (n - k) as f64 * bwd.max(f64::MIN_POSITIVE).ln()
    };

    // Coarse pass on a decimated grid.
    let mut curve = vec![f64::INFINITY; n];
    let mut best = seg;
    let mut k = seg;
    while k < n - seg {
        let v = eval(k);
        curve[k] = v;
        if v < curve[best] || !curve[best].is_finite() {
            best = k;
        }
        k += step;
    }
    // Fine pass around the coarse winner.
    let lo = best.saturating_sub(step).max(seg);
    let hi = (best + step).min(n - seg);
    for k in lo..hi {
        if !curve[k].is_finite() {
            let v = eval(k);
            curve[k] = v;
            if v < curve[best] {
                best = k;
            }
        }
    }
    Ok(AicPick { onset: best, curve })
}

/// Power-trace changepoint picker for complex captures.
///
/// Operates on the instantaneous **log-power** `x[k] = ln(I[k]² + Q[k]²)`.
/// For complex Gaussian noise the power is exponentially distributed, so
/// its logarithm has *constant variance* (π²/6) at any noise level, and a
/// signal onset appears as a clean mean shift of `ln(1 + S/N)`. The picker
/// minimises the two-segment sum of squared errors around the segment
/// means — the optimal Gaussian mean-changepoint statistic — in `O(N)`
/// via prefix sums.
///
/// Two robustness properties make this the gateway's default:
///
/// * the detectable contrast is the *power mean* ratio, not the
///   per-component variance ratio that defeats [`aic_pick`] at low SNR;
/// * impulsive interference bursts (which out-compete the true onset in
///   linear power) are logarithmically compressed.
///
/// # Errors
///
/// Returns [`DspError::InvalidWindow`] if the traces differ in length,
/// plus the length requirements of [`aic_pick`].
pub fn power_aic_pick(i: &[f64], q: &[f64], guard: usize) -> Result<AicPick, DspError> {
    let mut prefix = Vec::new();
    let mut prefix_sq = Vec::new();
    let mut curve = Vec::new();
    let onset = power_aic_curve_into(i, q, guard, &mut prefix, &mut prefix_sq, &mut curve)?;
    Ok(AicPick { onset, curve })
}

/// Scratch-backed [`power_aic_pick`] returning only the onset: the
/// log-power prefix sums and the cost curve live in the arena. Identical
/// pick to `power_aic_pick` (the same core runs over arena-held
/// buffers); allocation-free once the arena is warm.
///
/// # Errors
///
/// Same as [`power_aic_pick`].
pub fn power_aic_onset_with(
    i: &[f64],
    q: &[f64],
    guard: usize,
    scratch: &mut DspScratch,
) -> Result<usize, DspError> {
    let mut prefix = scratch.take_real_empty();
    let mut prefix_sq = scratch.take_real_empty();
    let mut curve = scratch.take_real_empty();
    let result = power_aic_curve_into(i, q, guard, &mut prefix, &mut prefix_sq, &mut curve);
    scratch.put_real(curve);
    scratch.put_real(prefix_sq);
    scratch.put_real(prefix);
    result
}

/// The log-power changepoint core shared by the allocating and scratch
/// paths: fills `curve` (edge samples `INFINITY`) and returns the argmin.
fn power_aic_curve_into(
    i: &[f64],
    q: &[f64],
    guard: usize,
    prefix: &mut Vec<f64>,
    prefix_sq: &mut Vec<f64>,
    curve: &mut Vec<f64>,
) -> Result<usize, DspError> {
    if i.len() != q.len() {
        return Err(DspError::InvalidWindow { reason: "I and Q traces must have equal length" });
    }
    let n = i.len();
    let min_len = 2 * guard + 8;
    if n < min_len {
        return Err(DspError::InputTooShort { required: min_len, actual: n });
    }
    prefix.clear();
    prefix.resize(n + 1, 0.0);
    prefix_sq.clear();
    prefix_sq.resize(n + 1, 0.0);
    for k in 0..n {
        let x = (i[k] * i[k] + q[k] * q[k]).max(1e-300).ln();
        prefix[k + 1] = prefix[k] + x;
        prefix_sq[k + 1] = prefix_sq[k] + x * x;
    }
    // SSE of segment [a, b) around its own mean.
    let sse = |a: usize, b: usize| -> f64 {
        let m = (b - a) as f64;
        let s = prefix[b] - prefix[a];
        (prefix_sq[b] - prefix_sq[a]) - s * s / m
    };
    let lo = guard.max(2);
    let hi = n - guard.max(2);
    curve.clear();
    curve.resize(n, f64::INFINITY);
    let mut best = lo;
    for k in lo..hi {
        let cost = sse(0, k) + sse(k, n);
        curve[k] = cost;
        if cost < curve[best] {
            best = k;
        }
    }
    Ok(best)
}

/// Final prediction-error variance of an AR(`order`) model fitted with
/// Burg's method. Falls back to the raw variance when the segment is too
/// short for the requested order.
pub fn burg_prediction_error(x: &[f64], order: usize) -> f64 {
    let n = x.len();
    if n < 2 {
        return f64::MIN_POSITIVE;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let mut e = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    if n <= order + 1 {
        return e.max(f64::MIN_POSITIVE);
    }
    // Burg recursion on forward/backward prediction errors.
    let mut f: Vec<f64> = x.iter().map(|&v| v - mean).collect();
    let mut b = f.clone();
    let mut a = vec![0.0f64; order + 1];
    a[0] = 1.0;
    for m in 1..=order {
        // Reflection coefficient.
        let mut num = 0.0;
        let mut den = 0.0;
        for i in m..n {
            num += f[i] * b[i - 1];
            den += f[i] * f[i] + b[i - 1] * b[i - 1];
        }
        let k = if den > 0.0 { -2.0 * num / den } else { 0.0 };
        // Update AR coefficients.
        let prev = a.clone();
        for i in 1..=m {
            a[i] = prev[i] + k * prev[m - i];
        }
        // Update prediction errors.
        for i in (m..n).rev() {
            let fi = f[i] + k * b[i - 1];
            let bi = b[i - 1] + k * f[i];
            f[i] = fi;
            b[i] = bi;
        }
        e *= 1.0 - k * k;
        if e <= 0.0 {
            return f64::MIN_POSITIVE;
        }
    }
    e.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::f64::consts::PI;

    fn gaussian(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }

    fn onset_trace(n: usize, onset: usize, amp: f64, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let s = if i >= onset {
                    amp * (2.0 * PI * 0.05 * i as f64 + 0.2 * (i as f64 * 0.001).powi(2)).sin()
                } else {
                    0.0
                };
                s + noise * gaussian(&mut rng)
            })
            .collect()
    }

    #[test]
    fn picks_clean_onset_exactly() {
        let x = onset_trace(2000, 900, 1.0, 0.01, 7);
        let p = aic_pick(&x, 16).unwrap();
        assert!((p.onset as i64 - 900).abs() <= 2, "got {}", p.onset);
    }

    #[test]
    fn picks_noisy_onset_within_tolerance() {
        let x = onset_trace(2000, 600, 1.0, 0.2, 8);
        let p = aic_pick(&x, 16).unwrap();
        assert!((p.onset as i64 - 600).abs() <= 20, "got {}", p.onset);
    }

    #[test]
    fn aic_beats_envelope_on_this_family() {
        // Statistical sanity check mirroring paper Table 2 (AIC < ENV error).
        let mut aic_err = 0i64;
        let mut env_err = 0i64;
        for seed in 0..10u64 {
            let onset = 700;
            let x = onset_trace(2000, onset, 1.0, 0.08, 100 + seed);
            let a = aic_pick(&x, 16).unwrap();
            let e = crate::envelope::EnvelopeDetector::new().detect(&x).unwrap();
            aic_err += (a.onset as i64 - onset as i64).abs();
            env_err += (e.onset as i64 - onset as i64).abs();
        }
        assert!(aic_err <= env_err, "aic {aic_err} vs env {env_err}");
    }

    #[test]
    fn curve_minimum_at_onset() {
        let x = onset_trace(1200, 500, 1.0, 0.05, 9);
        let p = aic_pick(&x, 16).unwrap();
        let at_onset = p.curve[p.onset];
        assert!(at_onset <= p.curve[100]);
        assert!(at_onset <= p.curve[1100]);
    }

    #[test]
    fn iq_joint_pick_works() {
        let i = onset_trace(1500, 750, 1.0, 0.1, 10);
        let q = onset_trace(1500, 750, 1.0, 0.1, 11);
        let p = aic_pick_iq(&i, &q, 16).unwrap();
        assert!((p.onset as i64 - 750).abs() <= 12, "got {}", p.onset);
    }

    #[test]
    fn iq_rejects_mismatched_lengths() {
        let i = vec![0.0; 100];
        let q = vec![0.0; 90];
        assert!(matches!(aic_pick_iq(&i, &q, 4), Err(DspError::InvalidWindow { .. })));
    }

    #[test]
    fn too_short_is_error() {
        assert!(matches!(aic_pick(&[1.0, 2.0, 3.0], 4), Err(DspError::InputTooShort { .. })));
    }

    #[test]
    fn ar_aic_picks_onset() {
        let x = onset_trace(1600, 800, 1.0, 0.1, 12);
        let p = ar_aic_pick(&x, 4, 16).unwrap();
        assert!((p.onset as i64 - 800).abs() <= 24, "got {}", p.onset);
    }

    #[test]
    fn ar_aic_validates_params() {
        let x = vec![0.0; 100];
        assert!(ar_aic_pick(&x, 0, 4).is_err());
        assert!(ar_aic_pick(&x, 4, 0).is_err());
        assert!(ar_aic_pick(&[0.0; 10], 4, 2).is_err());
    }

    #[test]
    fn power_aic_picks_onset_at_low_snr() {
        // Complex tone at SNR 0 dB per component pair: the power-mean
        // contrast is 2.0 even though each component's variance contrast
        // is only 1.5.
        let mut rng = StdRng::seed_from_u64(21);
        let n = 4000;
        let onset = 1700;
        let mut i = vec![0.0; n];
        let mut q = vec![0.0; n];
        for k in 0..n {
            let (si, sq) = if k >= onset {
                let ph = 0.21 * k as f64;
                (ph.cos(), ph.sin())
            } else {
                (0.0, 0.0)
            };
            i[k] = si + 0.7 * gaussian(&mut rng);
            q[k] = sq + 0.7 * gaussian(&mut rng);
        }
        let p = power_aic_pick(&i, &q, 16).unwrap();
        assert!((p.onset as i64 - onset as i64).abs() <= 60, "got {}", p.onset);
    }

    #[test]
    fn power_aic_beats_variance_aic_at_low_snr() {
        // At strongly negative SNR the single-component variance contrast
        // collapses while the power-mean contrast survives.
        // The per-trial errors are heavy-tailed at this SNR, so a handful
        // of seeds cannot resolve the ranking; 20 trials keeps the test
        // fast while making the comparison statistically meaningful.
        const TRIALS: u64 = 20;
        let mut power_err = 0i64;
        let mut var_err = 0i64;
        for seed in 0..TRIALS {
            let mut rng = StdRng::seed_from_u64(400 + seed);
            let n = 4000;
            let onset = 1500;
            let sigma = 1.3; // per component; complex SNR ≈ −5.3 dB
            let mut i = vec![0.0; n];
            let mut q = vec![0.0; n];
            for k in 0..n {
                let (si, sq) = if k >= onset {
                    let ph = 0.37 * k as f64;
                    (ph.cos(), ph.sin())
                } else {
                    (0.0, 0.0)
                };
                i[k] = si + sigma * gaussian(&mut rng);
                q[k] = sq + sigma * gaussian(&mut rng);
            }
            power_err += (power_aic_pick(&i, &q, 16).unwrap().onset as i64 - onset as i64).abs();
            var_err += (aic_pick(&i, 16).unwrap().onset as i64 - onset as i64).abs();
        }
        assert!(power_err <= var_err, "power {power_err} vs var {var_err}");
        let mean = power_err / TRIALS as i64;
        assert!(mean < 120, "mean power-aic error {mean} samples");
    }

    #[test]
    fn power_aic_validates_inputs() {
        assert!(power_aic_pick(&[0.0; 10], &[0.0; 9], 2).is_err());
        assert!(power_aic_pick(&[0.0; 4], &[0.0; 4], 4).is_err());
    }

    #[test]
    fn burg_white_noise_error_close_to_variance() {
        let mut rng = StdRng::seed_from_u64(13);
        let x: Vec<f64> = (0..4000).map(|_| gaussian(&mut rng)).collect();
        let e = burg_prediction_error(&x, 4);
        // AR modelling cannot compress white noise much.
        assert!(e > 0.8 && e < 1.2, "e = {e}");
    }

    #[test]
    fn burg_predicts_ar1_process() {
        // x[t] = 0.9 x[t-1] + w: AR(1) fit should reduce error variance to ~var(w).
        let mut rng = StdRng::seed_from_u64(14);
        let mut x = vec![0.0f64; 5000];
        for t in 1..x.len() {
            x[t] = 0.9 * x[t - 1] + 0.1 * gaussian(&mut rng);
        }
        let raw_var = {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
        };
        let e = burg_prediction_error(&x, 1);
        assert!(e < raw_var * 0.3, "e {e} vs var {raw_var}");
    }

    #[test]
    fn burg_degenerate_inputs() {
        assert!(burg_prediction_error(&[], 2) > 0.0);
        assert!(burg_prediction_error(&[1.0], 2) > 0.0);
        assert!(burg_prediction_error(&[1.0, 1.0, 1.0], 8) >= 0.0);
    }
}
