//! Window functions for spectral analysis.
//!
//! The paper's spectrogram (Fig. 6) uses a Kaiser window with a `2^S`-point
//! short-time FFT; the Kaiser window requires the zeroth-order modified
//! Bessel function of the first kind, implemented here by its power series.

/// Zeroth-order modified Bessel function of the first kind, `I0(x)`.
///
/// Computed by the rapidly converging power series
/// `I0(x) = sum_{k>=0} ((x/2)^k / k!)^2`; terms are accumulated until they
/// fall below `1e-16` of the running sum.
///
/// ```
/// use softlora_dsp::window::bessel_i0;
/// assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
/// // Reference value I0(1) = 1.2660658777520084...
/// assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
/// ```
pub fn bessel_i0(x: f64) -> f64 {
    let half = x / 2.0;
    let mut term = 1.0f64;
    let mut sum = 1.0f64;
    let mut k = 1.0f64;
    loop {
        term *= (half / k) * (half / k);
        sum += term;
        if term < sum * 1e-16 {
            return sum;
        }
        k += 1.0;
        if k > 1000.0 {
            return sum;
        }
    }
}

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowKind {
    /// Rectangular (no tapering).
    Rect,
    /// Hann (raised cosine).
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman (three-term).
    Blackman,
    /// Kaiser with shape parameter `beta`; `beta = 0` reduces to Rect.
    Kaiser {
        /// Shape parameter controlling the sidelobe/mainlobe trade-off.
        beta: f64,
    },
}

impl Default for WindowKind {
    /// The paper's spectrogram uses a Kaiser window; `beta = 8.6` gives
    /// roughly Blackman-like sidelobe suppression and is a common default.
    fn default() -> Self {
        WindowKind::Kaiser { beta: 8.6 }
    }
}

/// Generates the `n` coefficients of the chosen window.
///
/// All windows are symmetric; a length-1 window is `[1.0]` and a length-0
/// window is empty.
///
/// ```
/// use softlora_dsp::window::{window, WindowKind};
/// let w = window(WindowKind::Hann, 8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0].abs() < 1e-12); // Hann starts at zero
/// ```
pub fn window(kind: WindowKind, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let m = (n - 1) as f64;
    (0..n)
        .map(|i| {
            let x = i as f64;
            match kind {
                WindowKind::Rect => 1.0,
                WindowKind::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x / m).cos(),
                WindowKind::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x / m).cos(),
                WindowKind::Blackman => {
                    let a = 2.0 * std::f64::consts::PI * x / m;
                    0.42 - 0.5 * a.cos() + 0.08 * (2.0 * a).cos()
                }
                WindowKind::Kaiser { beta } => {
                    let r = 2.0 * x / m - 1.0;
                    bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) / bessel_i0(beta)
                }
            }
        })
        .collect()
}

/// Coherent gain of a window: `sum(w) / n`.
///
/// Used to renormalise amplitude estimates taken through a window.
pub fn coherent_gain(w: &[f64]) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    w.iter().sum::<f64>() / w.len() as f64
}

/// Equivalent noise bandwidth of a window in bins:
/// `n * sum(w^2) / sum(w)^2`.
pub fn enbw(w: &[f64]) -> f64 {
    let s1: f64 = w.iter().sum();
    let s2: f64 = w.iter().map(|x| x * x).sum();
    if s1 == 0.0 {
        return 0.0;
    }
    w.len() as f64 * s2 / (s1 * s1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bessel_known_values() {
        // Abramowitz & Stegun table values.
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        assert!((bessel_i0(1.0) - 1.266_065_877_752_008_4).abs() < 1e-12);
        assert!((bessel_i0(2.0) - 2.279_585_302_336_067).abs() < 1e-11);
        assert!((bessel_i0(5.0) - 27.239_871_823_604_45).abs() < 1e-9);
    }

    #[test]
    fn bessel_is_even_growing() {
        assert!(bessel_i0(3.0) > bessel_i0(2.0));
        assert!(bessel_i0(10.0) > bessel_i0(5.0));
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [
            WindowKind::Rect,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Kaiser { beta: 8.6 },
        ] {
            let w = window(kind, 33);
            for i in 0..w.len() {
                assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-12, "{kind:?} not symmetric at {i}");
            }
        }
    }

    #[test]
    fn windows_peak_at_center_and_bounded() {
        for kind in [
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
            WindowKind::Kaiser { beta: 6.0 },
        ] {
            let w = window(kind, 65);
            let center = w[32];
            assert!((center - 1.0).abs() < 1e-9, "{kind:?} center {center}");
            for &x in &w {
                assert!((-1e-12..=1.0 + 1e-12).contains(&x), "{kind:?} out of range: {x}");
            }
        }
    }

    #[test]
    fn kaiser_beta_zero_is_rect() {
        let w = window(WindowKind::Kaiser { beta: 0.0 }, 16);
        for &x in &w {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(window(WindowKind::Hann, 0).is_empty());
        assert_eq!(window(WindowKind::Hann, 1), vec![1.0]);
    }

    #[test]
    fn hann_starts_and_ends_at_zero() {
        let w = window(WindowKind::Hann, 32);
        assert!(w[0].abs() < 1e-12);
        assert!(w[31].abs() < 1e-12);
    }

    #[test]
    fn gains_reasonable() {
        let w = window(WindowKind::Hann, 1024);
        assert!((coherent_gain(&w) - 0.5).abs() < 1e-3);
        // Hann ENBW is 1.5 bins.
        assert!((enbw(&w) - 1.5).abs() < 0.01);
        let r = window(WindowKind::Rect, 64);
        assert!((coherent_gain(&r) - 1.0).abs() < 1e-12);
        assert!((enbw(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gain_of_empty_window_is_zero() {
        assert_eq!(coherent_gain(&[]), 0.0);
        assert_eq!(enbw(&[]), 0.0);
    }
}
