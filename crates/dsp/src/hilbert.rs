//! Hilbert transform and amplitude envelope extraction.
//!
//! The paper's envelope onset detector (§6.1.2, Fig. 9a) first applies the
//! Hilbert transform to the I (or Q) trace to obtain the analytic signal,
//! whose magnitude is the amplitude envelope. The analytic signal is
//! computed in the frequency domain: zero the negative-frequency half of the
//! spectrum and double the positive half.

use crate::complex::Complex;
use crate::fft::next_pow2;
use crate::scratch::DspScratch;
use crate::DspError;

/// Computes the analytic signal of a real trace via the FFT method.
///
/// The input is zero-padded to a power of two internally; the returned
/// vector is truncated back to the input length. For input `x`, the result
/// is `x + i * H(x)` where `H` is the Hilbert transform.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] for inputs shorter than 2 samples.
pub fn analytic_signal(x: &[f64]) -> Result<Vec<Complex>, DspError> {
    crate::scratch::with_thread_scratch(|scratch| {
        let mut out = Vec::new();
        analytic_signal_with(x, scratch, &mut out)?;
        Ok(out)
    })
}

/// Scratch-backed [`analytic_signal`]: the transform runs through the
/// arena's planner and `out` is cleared and refilled (its capacity is
/// reused across frames). Allocation-free once `out` and the arena are
/// warm.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] for inputs shorter than 2 samples.
pub fn analytic_signal_with(
    x: &[f64],
    scratch: &mut DspScratch,
    out: &mut Vec<Complex>,
) -> Result<(), DspError> {
    if x.len() < 2 {
        return Err(DspError::InputTooShort { required: 2, actual: x.len() });
    }
    let n = next_pow2(x.len());
    // The forward transform of a real trace is the real-input fast
    // path's home turf (half the butterflies when fast kernels are on;
    // the bit-stable embedding otherwise).
    scratch.planner().forward_real_into(x, out);
    let plan = scratch.planner().plan(n);

    // Single-sided spectrum: keep DC and Nyquist, double positive
    // frequencies, zero negative frequencies.
    for (k, z) in out.iter_mut().enumerate() {
        if k == 0 || k == n / 2 {
            // unchanged
        } else if k < n / 2 {
            *z = z.scale(2.0);
        } else {
            *z = Complex::ZERO;
        }
    }
    plan.inverse(out);
    out.truncate(x.len());
    Ok(())
}

/// Amplitude envelope of a real trace: `|analytic_signal(x)|`.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] for inputs shorter than 2 samples.
///
/// ```
/// use softlora_dsp::hilbert::envelope;
/// // Envelope of a pure tone is (approximately) its constant amplitude.
/// let x: Vec<f64> = (0..512).map(|i| 3.0 * (0.3 * i as f64).sin()).collect();
/// let env = envelope(&x)?;
/// let mid = &env[64..448];
/// let avg: f64 = mid.iter().sum::<f64>() / mid.len() as f64;
/// assert!((avg - 3.0).abs() < 0.05);
/// # Ok::<(), softlora_dsp::DspError>(())
/// ```
pub fn envelope(x: &[f64]) -> Result<Vec<f64>, DspError> {
    crate::scratch::with_thread_scratch(|scratch| {
        let mut out = Vec::new();
        envelope_with(x, scratch, &mut out)?;
        Ok(out)
    })
}

/// Scratch-backed [`envelope`]: `out` is cleared and refilled with the
/// amplitude envelope; temporaries come from the arena.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] for inputs shorter than 2 samples.
pub fn envelope_with(
    x: &[f64],
    scratch: &mut DspScratch,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    let mut analytic = scratch.take_complex_empty();
    let result = analytic_signal_with(x, scratch, &mut analytic);
    if let Err(e) = result {
        scratch.put_complex(analytic);
        return Err(e);
    }
    out.clear();
    out.extend(analytic.iter().map(|z| z.norm()));
    scratch.put_complex(analytic);
    Ok(())
}

/// Instantaneous phase of a real trace, i.e. the argument of the analytic
/// signal, in `(-pi, pi]` per sample (not unwrapped).
pub fn instantaneous_phase(x: &[f64]) -> Result<Vec<f64>, DspError> {
    Ok(analytic_signal(x)?.into_iter().map(Complex::arg).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn analytic_signal_real_part_is_input() {
        let x: Vec<f64> = (0..256).map(|i| (0.1 * i as f64).sin() + 0.2).collect();
        let a = analytic_signal(&x).unwrap();
        for (ai, xi) in a.iter().zip(x.iter()) {
            assert!((ai.re - xi).abs() < 1e-9);
        }
    }

    #[test]
    fn hilbert_of_cos_is_sin() {
        // H(cos) = sin for frequencies away from DC/Nyquist.
        let n = 1024;
        let k = 37.0;
        let x: Vec<f64> = (0..n).map(|i| (2.0 * PI * k * i as f64 / n as f64).cos()).collect();
        let a = analytic_signal(&x).unwrap();
        for (i, z) in a.iter().enumerate() {
            let want = (2.0 * PI * k * i as f64 / n as f64).sin();
            assert!((z.im - want).abs() < 1e-6, "sample {i}");
        }
    }

    #[test]
    fn envelope_tracks_amplitude_modulation() {
        // AM tone: (1 + 0.5 cos(wm t)) * cos(wc t)
        let n = 2048;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (1.0 + 0.5 * (2.0 * PI * 4.0 * t).cos()) * (2.0 * PI * 200.0 * t).cos()
            })
            .collect();
        let env = envelope(&x).unwrap();
        // Compare to the known modulation envelope away from edges.
        for (i, e) in env.iter().enumerate().take(n - 128).skip(128) {
            let t = i as f64 / n as f64;
            let want = 1.0 + 0.5 * (2.0 * PI * 4.0 * t).cos();
            assert!((e - want).abs() < 0.05, "sample {i}: {e} vs {want}");
        }
    }

    #[test]
    fn envelope_of_step_rises_at_step() {
        // Silence then a tone: envelope should be near zero before, near one after.
        let n = 1024;
        let onset = 512;
        let x: Vec<f64> =
            (0..n).map(|i| if i < onset { 0.0 } else { (0.4 * i as f64).sin() }).collect();
        let env = envelope(&x).unwrap();
        let before: f64 = env[64..onset - 64].iter().sum::<f64>() / (onset - 128) as f64;
        let after: f64 = env[onset + 64..n - 64].iter().sum::<f64>() / (n - onset - 128) as f64;
        assert!(before < 0.15, "before {before}");
        assert!(after > 0.8, "after {after}");
    }

    #[test]
    fn instantaneous_phase_advances_for_tone() {
        let n = 512;
        let k = 10.0;
        let x: Vec<f64> = (0..n).map(|i| (2.0 * PI * k * i as f64 / n as f64).cos()).collect();
        let ph = instantaneous_phase(&x).unwrap();
        // Phase increment per sample ~ 2*pi*k/n.
        let want = 2.0 * PI * k / n as f64;
        let mut ok = 0;
        for i in 100..400 {
            let mut d = ph[i + 1] - ph[i];
            if d < -PI {
                d += 2.0 * PI;
            }
            if (d - want).abs() < 0.01 {
                ok += 1;
            }
        }
        assert!(ok > 250, "only {ok} good increments");
    }

    #[test]
    fn rejects_tiny_input() {
        assert!(analytic_signal(&[1.0]).is_err());
        assert!(envelope(&[]).is_err());
    }

    #[test]
    fn non_pow2_length_handled() {
        let x: Vec<f64> = (0..1000).map(|i| (0.05 * i as f64).sin()).collect();
        let env = envelope(&x).unwrap();
        assert_eq!(env.len(), 1000);
        let mid: f64 = env[200..800].iter().sum::<f64>() / 600.0;
        assert!((mid - 1.0).abs() < 0.05);
    }
}
