//! Short-time FFT spectrogram.
//!
//! Reproduces the analysis behind paper Fig. 6: a `2^S`-point Kaiser-windowed
//! short-time FFT over a chirp, with a configurable overlap between
//! neighbouring windows (the paper uses a 16-point overlap). The paper uses
//! the spectrogram only to *illustrate* the chirp's time–frequency ridge and
//! to argue that its ~50 µs time resolution is too coarse for PHY-layer
//! timestamping — which is exactly what [`Spectrogram::time_resolution`]
//! exposes.

use crate::complex::Complex;
use crate::scratch::DspScratch;
use crate::window::{window, WindowKind};
use crate::DspError;

/// Configuration for a short-time FFT.
#[derive(Debug, Clone, PartialEq)]
pub struct StftConfig {
    /// Samples per analysis window (FFT length is the next power of two).
    pub window_len: usize,
    /// Overlap between neighbouring windows, in samples (`< window_len`).
    pub overlap: usize,
    /// Window shape.
    pub kind: WindowKind,
    /// Sample rate in Hz; used only to annotate the time/frequency axes.
    pub sample_rate: f64,
}

impl StftConfig {
    /// The paper's Fig. 6 settings for spreading factor `sf`: a `2^sf`-point
    /// Kaiser window with 16-point overlap at the SDR rate of 2.4 Msps.
    pub fn paper_fig6(sf: u32, sample_rate: f64) -> Self {
        StftConfig {
            window_len: 1usize << sf,
            overlap: 16,
            kind: WindowKind::default(),
            sample_rate,
        }
    }

    /// Hop size between window starts.
    pub fn hop(&self) -> usize {
        self.window_len.saturating_sub(self.overlap).max(1)
    }
}

/// A computed spectrogram: a time-by-frequency power matrix.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    /// `power[t][f]`: linear power of frame `t`, FFT bin `f`.
    pub power: Vec<Vec<f64>>,
    /// FFT length used per frame.
    pub fft_len: usize,
    /// Hop between frame starts, in samples.
    pub hop: usize,
    /// Sample rate in Hz.
    pub sample_rate: f64,
}

impl Spectrogram {
    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.power.len()
    }

    /// Time-axis resolution in seconds (one hop).
    ///
    /// For the paper's Fig. 6 parameters (SF7, 2.4 Msps down-sampled to
    /// 20 frames over 1.024 ms) this is ~50 µs, motivating the time-domain
    /// onset detectors of §6.1.2.
    pub fn time_resolution(&self) -> f64 {
        self.hop as f64 / self.sample_rate
    }

    /// Frequency-axis resolution in Hz (one FFT bin).
    pub fn freq_resolution(&self) -> f64 {
        self.sample_rate / self.fft_len as f64
    }

    /// Centre time (seconds) of frame `t`.
    pub fn frame_time(&self, t: usize) -> f64 {
        (t * self.hop) as f64 / self.sample_rate
    }

    /// Baseband frequency (Hz) of bin `f`, mapping the upper half of the FFT
    /// to negative frequencies (complex baseband convention).
    pub fn bin_frequency(&self, f: usize) -> f64 {
        let n = self.fft_len;
        let k = if f < n / 2 { f as f64 } else { f as f64 - n as f64 };
        k * self.sample_rate / n as f64
    }

    /// For each frame, the baseband frequency (Hz) of the strongest bin.
    ///
    /// On a clean up-chirp this traces the linearly increasing instantaneous
    /// frequency ridge of paper Fig. 6.
    pub fn ridge(&self) -> Vec<f64> {
        self.power
            .iter()
            .map(|row| {
                let (best, _) = row.iter().enumerate().fold((0usize, f64::MIN), |acc, (i, &p)| {
                    if p > acc.1 {
                        (i, p)
                    } else {
                        acc
                    }
                });
                self.bin_frequency(best)
            })
            .collect()
    }
}

/// Computes the spectrogram of a complex baseband signal.
///
/// # Errors
///
/// * [`DspError::InvalidWindow`] if `window_len` is zero or the overlap is
///   not smaller than the window.
/// * [`DspError::InputTooShort`] if the signal is shorter than one window.
pub fn stft(signal: &[Complex], cfg: &StftConfig) -> Result<Spectrogram, DspError> {
    crate::scratch::with_thread_scratch(|scratch| stft_with(signal, cfg, scratch))
}

/// [`stft`] with arena-held temporaries: the windowed segment and its
/// transform reuse one scratch buffer across frames, and all frames share
/// one cached FFT plan. Only the returned power matrix allocates.
///
/// # Errors
///
/// Same as [`stft`].
pub fn stft_with(
    signal: &[Complex],
    cfg: &StftConfig,
    scratch: &mut DspScratch,
) -> Result<Spectrogram, DspError> {
    if cfg.window_len == 0 {
        return Err(DspError::InvalidWindow { reason: "window_len must be positive" });
    }
    if cfg.overlap >= cfg.window_len {
        return Err(DspError::InvalidWindow { reason: "overlap must be smaller than window_len" });
    }
    if signal.len() < cfg.window_len {
        return Err(DspError::InputTooShort { required: cfg.window_len, actual: signal.len() });
    }
    let w = window(cfg.kind, cfg.window_len);
    let hop = cfg.hop();
    let fft_len = crate::fft::next_pow2(cfg.window_len);
    let mut seg = scratch.take_complex_empty();
    let mut power = Vec::new();
    let mut start = 0;
    while start + cfg.window_len <= signal.len() {
        seg.clear();
        seg.extend(
            signal[start..start + cfg.window_len].iter().zip(w.iter()).map(|(z, &wi)| z.scale(wi)),
        );
        seg.resize(fft_len, Complex::ZERO);
        scratch.planner().plan(fft_len).forward(&mut seg);
        power.push(seg.iter().map(|z| z.norm_sqr()).collect());
        start += hop;
    }
    scratch.put_complex(seg);
    Ok(Spectrogram { power, fft_len, hop, sample_rate: cfg.sample_rate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, freq: f64, fs: f64) -> Vec<Complex> {
        (0..n).map(|i| Complex::cis(2.0 * PI * freq * i as f64 / fs)).collect()
    }

    #[test]
    fn tone_ridge_is_flat_at_tone_frequency() {
        let fs = 8000.0;
        let sig = tone(2048, 1000.0, fs);
        let cfg =
            StftConfig { window_len: 256, overlap: 128, kind: WindowKind::Hann, sample_rate: fs };
        let sg = stft(&sig, &cfg).unwrap();
        for f in sg.ridge() {
            assert!((f - 1000.0).abs() < sg.freq_resolution(), "ridge {f}");
        }
    }

    #[test]
    fn negative_frequency_tone_maps_below_zero() {
        let fs = 8000.0;
        let sig = tone(1024, -1500.0, fs);
        let cfg =
            StftConfig { window_len: 256, overlap: 0, kind: WindowKind::Hann, sample_rate: fs };
        let sg = stft(&sig, &cfg).unwrap();
        for f in sg.ridge() {
            assert!((f + 1500.0).abs() < 2.0 * sg.freq_resolution());
        }
    }

    #[test]
    fn linear_chirp_ridge_increases() {
        // Discrete chirp sweeping 0 -> fs/4 over the trace.
        let fs = 10_000.0;
        let n = 4096;
        let k = (fs / 4.0) / (n as f64 / fs); // Hz per second
        let sig: Vec<Complex> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                Complex::cis(2.0 * PI * (0.5 * k * t * t))
            })
            .collect();
        let cfg =
            StftConfig { window_len: 256, overlap: 128, kind: WindowKind::Hann, sample_rate: fs };
        let sg = stft(&sig, &cfg).unwrap();
        let ridge = sg.ridge();
        // Compare early vs late thirds; monotone increase overall.
        let early: f64 = ridge[..ridge.len() / 3].iter().sum::<f64>() / (ridge.len() / 3) as f64;
        let late: f64 = ridge[2 * ridge.len() / 3..].iter().sum::<f64>()
            / (ridge.len() - 2 * ridge.len() / 3) as f64;
        assert!(late > early + 500.0, "early {early} late {late}");
    }

    #[test]
    fn paper_fig6_geometry() {
        // SF7 chirp time 1.024 ms at 2.4 Msps = 2458 samples; 2^7-point
        // window with 16-point overlap gives about 2458/112 ≈ 21 frames —
        // the paper reports 20 power spectra over the chirp.
        let fs = 2.4e6;
        let n = (1.024e-3 * fs) as usize;
        let sig = tone(n, 1000.0, fs);
        let cfg = StftConfig::paper_fig6(7, fs);
        let sg = stft(&sig, &cfg).unwrap();
        assert!((19..=22).contains(&sg.frames()), "frames {}", sg.frames());
        // Time resolution ≈ 50 µs as the paper states.
        assert!((sg.time_resolution() - 46.7e-6).abs() < 5e-6);
    }

    #[test]
    fn rejects_bad_configs() {
        let sig = tone(64, 100.0, 1000.0);
        let bad_overlap =
            StftConfig { window_len: 32, overlap: 32, kind: WindowKind::Rect, sample_rate: 1000.0 };
        assert!(matches!(stft(&sig, &bad_overlap), Err(DspError::InvalidWindow { .. })));
        let too_long =
            StftConfig { window_len: 128, overlap: 0, kind: WindowKind::Rect, sample_rate: 1000.0 };
        assert!(matches!(stft(&sig, &too_long), Err(DspError::InputTooShort { .. })));
        let zero =
            StftConfig { window_len: 0, overlap: 0, kind: WindowKind::Rect, sample_rate: 1000.0 };
        assert!(stft(&sig, &zero).is_err());
    }

    #[test]
    fn frame_time_axis() {
        let sig = tone(1000, 100.0, 1000.0);
        let cfg = StftConfig {
            window_len: 100,
            overlap: 50,
            kind: WindowKind::Rect,
            sample_rate: 1000.0,
        };
        let sg = stft(&sig, &cfg).unwrap();
        assert_eq!(sg.frame_time(0), 0.0);
        assert!((sg.frame_time(2) - 0.1).abs() < 1e-12);
    }
}
