//! Envelope-ratio preamble onset detector (paper §6.1.2, Fig. 9a).
//!
//! The detector extracts the amplitude envelope of the I or Q trace with the
//! Hilbert transform, then picks as the onset the sample with the largest
//! ratio between its envelope amplitude and the previous sample's envelope
//! amplitude. Being formulated as an optimisation (argmax), it needs no
//! detection threshold — a property the paper emphasises.

use crate::hilbert::envelope_with;
use crate::scratch::DspScratch;
use crate::DspError;

/// Result of an envelope-ratio onset detection.
#[derive(Debug, Clone)]
pub struct EnvelopeOnset {
    /// Index of the detected onset sample.
    pub onset: usize,
    /// The amplitude envelope of the trace.
    pub envelope: Vec<f64>,
    /// Ratio curve `env[i] / env[i-1]` (index 0 holds 1.0).
    pub ratio: Vec<f64>,
}

/// Configuration for the envelope detector.
#[derive(Debug, Clone)]
pub struct EnvelopeDetector {
    /// Samples at each edge excluded from the argmax, to avoid FFT edge
    /// artefacts of the Hilbert transform dominating the ratio curve.
    pub guard: usize,
    /// Smoothing half-width applied to the envelope before the ratio is
    /// computed (0 = no smoothing). A small moving average suppresses
    /// single-sample noise spikes that would otherwise win the argmax at low
    /// SNR.
    pub smooth: usize,
    /// Floor added to the denominator of each ratio, as a fraction of the
    /// trace's mean envelope, preventing division blow-ups during silence.
    pub ratio_floor: f64,
    /// Number of preceding samples averaged to form the ratio denominator.
    /// The paper describes the ratio to "the previous sample" (`lag = 1`);
    /// a short trailing mean makes the argmax robust to Rayleigh-distributed
    /// noise-envelope spikes at lower SNR without moving the peak.
    pub lag: usize,
}

impl Default for EnvelopeDetector {
    fn default() -> Self {
        EnvelopeDetector { guard: 8, smooth: 3, ratio_floor: 1e-3, lag: 6 }
    }
}

impl EnvelopeDetector {
    /// Creates a detector with the default guard/smoothing settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detects the signal onset in a real trace (one of the I/Q components).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InputTooShort`] if the trace has fewer than
    /// `2 * guard + 4` samples.
    pub fn detect(&self, trace: &[f64]) -> Result<EnvelopeOnset, DspError> {
        crate::scratch::with_thread_scratch(|scratch| {
            let mut env = Vec::new();
            let mut ratio = Vec::new();
            let onset = self.run(trace, scratch, &mut env, &mut ratio)?;
            Ok(EnvelopeOnset { onset, envelope: env, ratio })
        })
    }

    /// Scratch-backed onset pick: same arithmetic as
    /// [`EnvelopeDetector::detect`], but every intermediate (envelope,
    /// ratio curve, prefix sums) lives in the arena and only the onset
    /// index is returned. Allocation-free once the arena is warm.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InputTooShort`] if the trace has fewer than
    /// `2 * guard + 4` samples.
    pub fn detect_onset_with(
        &self,
        trace: &[f64],
        scratch: &mut DspScratch,
    ) -> Result<usize, DspError> {
        let mut env = scratch.take_real_empty();
        let mut ratio = scratch.take_real_empty();
        let result = self.run(trace, scratch, &mut env, &mut ratio);
        scratch.put_real(ratio);
        scratch.put_real(env);
        result
    }

    /// The shared detection core: fills `env`/`ratio` and returns the
    /// onset. `detect` and `detect_onset_with` differ only in who owns
    /// the output buffers.
    fn run(
        &self,
        trace: &[f64],
        scratch: &mut DspScratch,
        env: &mut Vec<f64>,
        ratio: &mut Vec<f64>,
    ) -> Result<usize, DspError> {
        let min_len = 2 * self.guard + 4;
        if trace.len() < min_len {
            return Err(DspError::InputTooShort { required: min_len, actual: trace.len() });
        }
        envelope_with(trace, scratch, env)?;
        if self.smooth > 0 {
            let mut prefix = scratch.take_real_empty();
            let mut smoothed = scratch.take_real_empty();
            moving_average_into(env, self.smooth, &mut prefix, &mut smoothed);
            std::mem::swap(env, &mut smoothed);
            scratch.put_real(smoothed);
            scratch.put_real(prefix);
        }
        let mean_env = env.iter().sum::<f64>() / env.len() as f64;
        let floor = (mean_env * self.ratio_floor).max(f64::MIN_POSITIVE);

        let lag = self.lag.max(1);
        ratio.clear();
        ratio.resize(env.len(), 1.0);
        // Prefix sums of the envelope for O(1) trailing means.
        let mut prefix = scratch.take_real_empty();
        prefix.push(0.0);
        for &v in env.iter() {
            prefix.push(prefix.last().unwrap() + v);
        }
        for i in 1..env.len() {
            let a = i.saturating_sub(lag);
            let trailing = (prefix[i] - prefix[a]) / (i - a) as f64;
            ratio[i] = env[i] / (trailing + floor);
        }
        scratch.put_real(prefix);

        let lo = self.guard.max(lag);
        let hi = env.len() - self.guard;
        let mut best = lo;
        for i in lo..hi {
            if ratio[i] > ratio[best] {
                best = i;
            }
        }
        Ok(best)
    }
}

/// Centered moving average with half-width `h` (window `2h+1`, clamped at
/// the edges). The detector itself runs the buffer-reusing
/// [`moving_average_into`]; this wrapper exists for the unit tests.
#[cfg(test)]
fn moving_average(x: &[f64], h: usize) -> Vec<f64> {
    let mut prefix = Vec::new();
    let mut out = Vec::new();
    moving_average_into(x, h, &mut prefix, &mut out);
    out
}

/// [`moving_average`] into caller-owned buffers (`prefix` is workspace,
/// `out` receives the result).
fn moving_average_into(x: &[f64], h: usize, prefix: &mut Vec<f64>, out: &mut Vec<f64>) {
    let n = x.len();
    // Prefix sums for O(n) averaging.
    prefix.clear();
    prefix.push(0.0);
    for &v in x {
        prefix.push(prefix.last().unwrap() + v);
    }
    out.clear();
    for i in 0..n {
        let a = i.saturating_sub(h);
        let b = (i + h + 1).min(n);
        out.push((prefix[b] - prefix[a]) / (b - a) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Silence + Gaussian noise, then a tone starting at `onset`.
    fn trace_with_onset(n: usize, onset: usize, amp: f64, noise: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let s = if i >= onset { amp * (0.37 * i as f64).sin() } else { 0.0 };
                // Box-Muller Gaussian noise.
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                s + noise * g
            })
            .collect()
    }

    #[test]
    fn finds_clean_onset() {
        let onset = 700;
        let x = trace_with_onset(2048, onset, 1.0, 0.001, 1);
        let det = EnvelopeDetector::new();
        let r = det.detect(&x).unwrap();
        assert!((r.onset as i64 - onset as i64).abs() <= 8, "got {}", r.onset);
    }

    #[test]
    fn finds_onset_with_moderate_noise() {
        let onset = 500;
        let x = trace_with_onset(2048, onset, 1.0, 0.05, 2);
        let det = EnvelopeDetector::new();
        let r = det.detect(&x).unwrap();
        assert!((r.onset as i64 - onset as i64).abs() <= 16, "got {}", r.onset);
    }

    #[test]
    fn ratio_curve_peaks_at_onset() {
        let onset = 800;
        let x = trace_with_onset(2048, onset, 2.0, 0.01, 3);
        let det = EnvelopeDetector::new();
        let r = det.detect(&x).unwrap();
        let peak_ratio = r.ratio[r.onset];
        // The ratio at onset should dominate the pre-onset region.
        let pre_max = r.ratio[16..onset - 16].iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak_ratio > pre_max, "peak {peak_ratio} vs pre {pre_max}");
    }

    #[test]
    fn respects_guard_bands() {
        let x = trace_with_onset(256, 10, 1.0, 0.0, 4);
        let det = EnvelopeDetector { guard: 32, smooth: 0, ratio_floor: 1e-3, lag: 1 };
        let r = det.detect(&x).unwrap();
        assert!(r.onset >= 32 && r.onset < 256 - 32);
    }

    #[test]
    fn too_short_input_is_error() {
        let det = EnvelopeDetector::new();
        assert!(matches!(det.detect(&[0.0; 5]), Err(DspError::InputTooShort { .. })));
    }

    #[test]
    fn outputs_have_input_length() {
        let x = trace_with_onset(512, 300, 1.0, 0.01, 5);
        let r = EnvelopeDetector::new().detect(&x).unwrap();
        assert_eq!(r.envelope.len(), 512);
        assert_eq!(r.ratio.len(), 512);
    }

    #[test]
    fn moving_average_preserves_constant() {
        let x = vec![2.5; 100];
        let y = moving_average(&x, 3);
        for v in y {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_smooths_spike() {
        let mut x = vec![0.0; 21];
        x[10] = 7.0;
        let y = moving_average(&x, 3);
        assert!((y[10] - 1.0).abs() < 1e-12); // 7 / 7
    }
}
