//! Statistics and decibel helpers shared across the workspace.

use crate::DspError;

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance; returns 0 for slices shorter than 2.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Linear interpolation percentile, `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] on empty input and
/// [`DspError::InvalidParameter`] if `p` is outside `[0, 100]`.
pub fn percentile(x: &[f64], p: f64) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::InputTooShort { required: 1, actual: 0 });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(DspError::InvalidParameter { reason: "percentile must be in [0, 100]" });
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
///
/// # Errors
///
/// Returns [`DspError::InputTooShort`] on empty input.
pub fn median(x: &[f64]) -> Result<f64, DspError> {
    percentile(x, 50.0)
}

/// Converts a linear power ratio to decibels (`10 log10`).
pub fn power_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a linear power ratio.
pub fn db_to_power(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear amplitude ratio to decibels (`20 log10`).
pub fn amplitude_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Converts decibels to a linear amplitude ratio.
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Mean power (mean of squares) of a real trace.
pub fn mean_power(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64
    }
}

/// SNR in dB given separate signal and noise traces, per the paper's
/// definition `10 log10(signal power / noise power)` (§6.2).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the noise trace has zero power.
pub fn snr_db(signal: &[f64], noise: &[f64]) -> Result<f64, DspError> {
    let np = mean_power(noise);
    if np <= 0.0 {
        return Err(DspError::InvalidParameter { reason: "noise power must be positive" });
    }
    Ok(power_to_db(mean_power(signal) / np))
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the gateway's frequency-bias database to keep per-device
/// statistics without storing every frame's estimate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Running population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Running population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bin histogram over `[lo, hi)` with out-of-range counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidBounds`] unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, DspError> {
        if lo.is_nan() || hi.is_nan() || lo >= hi || bins == 0 {
            return Err(DspError::InvalidBounds { reason: "need lo < hi and bins > 0" });
        }
        Ok(Histogram { lo, hi, bins: vec![0; bins], below: 0, above: 0 })
    }

    /// Records an observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `lo`.
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Count of observations at or above `hi`.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.below + self.above + self.bins.iter().sum::<u64>()
    }

    /// Centre value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&x), 2.5);
        assert!((variance(&x) - 1.25).abs() < 1e-12);
        assert!((std_dev(&x) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let x = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&x, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&x, 100.0).unwrap(), 4.0);
        assert_eq!(median(&x).unwrap(), 2.5);
        assert!(percentile(&[], 50.0).is_err());
        assert!(percentile(&x, -1.0).is_err());
        assert!(percentile(&x, 101.0).is_err());
    }

    #[test]
    fn decibel_round_trips() {
        for db in [-30.0, -3.0, 0.0, 10.0, 25.5] {
            assert!((power_to_db(db_to_power(db)) - db).abs() < 1e-10);
            assert!((amplitude_to_db(db_to_amplitude(db)) - db).abs() < 1e-10);
        }
        assert!((power_to_db(100.0) - 20.0).abs() < 1e-12);
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn snr_definition_matches_paper() {
        // Signal power 1.0, noise power 0.01 -> 20 dB.
        let signal = vec![1.0, -1.0, 1.0, -1.0];
        let noise = vec![0.1, -0.1, 0.1, -0.1];
        assert!((snr_db(&signal, &noise).unwrap() - 20.0).abs() < 1e-9);
        assert!(snr_db(&signal, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn running_stats_match_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.13).collect();
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 1000);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-9);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-9);
        assert_eq!(rs.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(rs.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn running_stats_merge_matches_concatenation() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.7).collect();
        let b: Vec<f64> = (0..250).map(|i| (i as f64 - 40.0) * 1.3).collect();
        let mut ra = RunningStats::new();
        a.iter().for_each(|&x| ra.push(x));
        let mut rb = RunningStats::new();
        b.iter().for_each(|&x| rb.push(x));
        ra.merge(&rb);
        let all: Vec<f64> = a.iter().chain(b.iter()).cloned().collect();
        assert!((ra.mean() - mean(&all)).abs() < 1e-9);
        assert!((ra.variance() - variance(&all)).abs() < 1e-9);
        assert_eq!(ra.count(), 350);
    }

    #[test]
    fn running_stats_empty_merge() {
        let mut a = RunningStats::new();
        let b = RunningStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        a.push(2.0);
        let mut c = RunningStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 2.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 11.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.below(), 1);
        assert_eq!(h.above(), 2);
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_validates() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }
}
