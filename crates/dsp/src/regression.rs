//! Ordinary least-squares linear regression.
//!
//! The paper's closed-form frequency-bias estimator (§7.1.1) reduces the
//! de-quadratic'd chirp phase `Θ(t) − πW²/2^S·t² + πW·t = 2πδt + θ` to a
//! straight line whose slope is `2πδ`; the fit is performed here.

use crate::DspError;

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 for a perfect line).
    pub r_squared: f64,
    /// Standard deviation of the residuals.
    pub residual_std: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// # Errors
///
/// * [`DspError::InvalidWindow`] if `x` and `y` differ in length.
/// * [`DspError::InputTooShort`] if fewer than 2 points are given.
/// * [`DspError::InvalidParameter`] if all `x` are identical (vertical line).
///
/// ```
/// use softlora_dsp::regression::linear_fit;
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [1.0, 3.0, 5.0, 7.0];
/// let fit = linear_fit(&x, &y)?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// # Ok::<(), softlora_dsp::DspError>(())
/// ```
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit, DspError> {
    if x.len() != y.len() {
        return Err(DspError::InvalidWindow { reason: "x and y must have equal length" });
    }
    if x.len() < 2 {
        return Err(DspError::InputTooShort { required: 2, actual: x.len() });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        let dx = xi - mx;
        let dy = yi - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(DspError::InvalidParameter { reason: "all x values identical" });
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = x
        .iter()
        .zip(y.iter())
        .map(|(&xi, &yi)| {
            let r = yi - (slope * xi + intercept);
            r * r
        })
        .sum();
    let r_squared = if syy > 0.0 { (1.0 - ss_res / syy).clamp(0.0, 1.0) } else { 1.0 };
    let residual_std = (ss_res / n).sqrt();
    Ok(LinearFit { slope, intercept, r_squared, residual_std })
}

/// Fits a line to uniformly sampled data `y[i] ≈ slope·(i·dt) + intercept`.
///
/// Convenience wrapper used by the FB estimator where the abscissa is the
/// sample clock.
///
/// # Errors
///
/// Same as [`linear_fit`], plus [`DspError::InvalidParameter`] if
/// `dt <= 0`.
pub fn linear_fit_uniform(y: &[f64], dt: f64) -> Result<LinearFit, DspError> {
    if dt <= 0.0 || !dt.is_finite() {
        return Err(DspError::InvalidParameter { reason: "dt must be positive and finite" });
    }
    let x: Vec<f64> = (0..y.len()).map(|i| i as f64 * dt).collect();
    linear_fit(&x, y)
}

/// Robust line fit via iteratively re-weighted least squares with a Huber
/// influence function. Useful when low-SNR phase unwrapping leaves a few
/// cycle-slip outliers in the de-quadratic'd phase.
///
/// `k_sigma` is the Huber threshold in units of the residual standard
/// deviation (1.345 is the classical choice); `iters` bounds the reweighting
/// rounds.
///
/// # Errors
///
/// Same as [`linear_fit`].
pub fn huber_fit(x: &[f64], y: &[f64], k_sigma: f64, iters: usize) -> Result<LinearFit, DspError> {
    let mut fit = linear_fit(x, y)?;
    for _ in 0..iters {
        let sigma = fit.residual_std.max(1e-300);
        let k = k_sigma * sigma;
        // Weighted least squares with Huber weights.
        let mut sw = 0.0;
        let mut swx = 0.0;
        let mut swy = 0.0;
        let mut swxx = 0.0;
        let mut swxy = 0.0;
        for (&xi, &yi) in x.iter().zip(y.iter()) {
            let r = yi - fit.predict(xi);
            let w = if r.abs() <= k { 1.0 } else { k / r.abs() };
            sw += w;
            swx += w * xi;
            swy += w * yi;
            swxx += w * xi * xi;
            swxy += w * xi * yi;
        }
        let det = sw * swxx - swx * swx;
        if det.abs() < 1e-300 {
            break;
        }
        let slope = (sw * swxy - swx * swy) / det;
        let intercept = (swy - slope * swx) / sw;
        let ss_res: f64 = x
            .iter()
            .zip(y.iter())
            .map(|(&xi, &yi)| {
                let r = yi - (slope * xi + intercept);
                r * r
            })
            .sum();
        let n = x.len() as f64;
        let converged = (slope - fit.slope).abs() < 1e-14 * slope.abs().max(1.0);
        fit = LinearFit {
            slope,
            intercept,
            r_squared: fit.r_squared,
            residual_std: (ss_res / n).sqrt(),
        };
        if converged {
            break;
        }
    }
    Ok(fit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = x.iter().map(|&v| -3.5 * v + 2.0).collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope + 3.5).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.residual_std < 1e-12);
    }

    #[test]
    fn noisy_line_slope_close() {
        let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let mut state = 7u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let y: Vec<f64> = x.iter().map(|&v| 0.5 * v + 10.0 + noise()).collect();
        let fit = linear_fit(&x, &y).unwrap();
        assert!((fit.slope - 0.5).abs() < 0.01);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn uniform_wrapper_matches() {
        let y: Vec<f64> = (0..100).map(|i| 2.0 * (i as f64 * 0.01) + 1.0).collect();
        let fit = linear_fit_uniform(&y, 0.01).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-9);
    }

    #[test]
    fn input_validation() {
        assert!(linear_fit(&[1.0], &[1.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_err());
        assert!(linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_err());
        assert!(linear_fit_uniform(&[1.0, 2.0], 0.0).is_err());
        assert!(linear_fit_uniform(&[1.0, 2.0], f64::NAN).is_err());
    }

    #[test]
    fn predict_evaluates_line() {
        let fit = LinearFit { slope: 2.0, intercept: -1.0, r_squared: 1.0, residual_std: 0.0 };
        assert_eq!(fit.predict(3.0), 5.0);
    }

    #[test]
    fn huber_resists_outliers() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let mut y: Vec<f64> = x.iter().map(|&v| 1.0 * v).collect();
        // Corrupt 5% of points with huge outliers (cycle slips).
        for i in (0..200).step_by(40) {
            y[i] += 500.0;
        }
        let ols = linear_fit(&x, &y).unwrap();
        let rob = huber_fit(&x, &y, 1.345, 20).unwrap();
        assert!((rob.slope - 1.0).abs() < (ols.slope - 1.0).abs());
        assert!((rob.slope - 1.0).abs() < 0.02, "robust slope {}", rob.slope);
    }

    #[test]
    fn huber_on_clean_data_matches_ols() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = x.iter().map(|&v| -2.0 * v + 4.0).collect();
        let rob = huber_fit(&x, &y, 1.345, 10).unwrap();
        assert!((rob.slope + 2.0).abs() < 1e-10);
        assert!((rob.intercept - 4.0).abs() < 1e-9);
    }
}
