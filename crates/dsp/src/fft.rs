//! Radix-2 fast Fourier transform.
//!
//! Implemented from scratch (no external FFT crate in the offline set): an
//! iterative, in-place, decimation-in-time Cooley–Tukey transform for
//! power-of-two lengths, plus convenience wrappers that zero-pad arbitrary
//! lengths. Used by the spectrogram (paper Fig. 6), the Hilbert-transform
//! envelope detector (paper §6.1.2) and the dechirp-based LoRa demodulator.

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and `>= 1`).
///
/// ```
/// use softlora_dsp::fft::next_pow2;
/// assert_eq!(next_pow2(1), 1);
/// assert_eq!(next_pow2(5), 8);
/// assert_eq!(next_pow2(1024), 1024);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two. Use [`fft_forward`] for
/// arbitrary lengths (it zero-pads).
pub fn fft_in_place(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT, including the `1/N` normalisation.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = *x / n;
    }
}

/// Forward FFT of an arbitrary-length slice; the input is zero-padded to the
/// next power of two.
///
/// The returned vector has `next_pow2(input.len())` bins.
pub fn fft_forward(input: &[Complex]) -> Vec<Complex> {
    let n = next_pow2(input.len());
    let mut buf = vec![Complex::ZERO; n];
    buf[..input.len()].copy_from_slice(input);
    fft_in_place(&mut buf);
    buf
}

/// Inverse FFT of an arbitrary-length slice (zero-padded to a power of two,
/// `1/N` normalised).
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = next_pow2(input.len());
    let mut buf = vec![Complex::ZERO; n];
    buf[..input.len()].copy_from_slice(input);
    ifft_in_place(&mut buf);
    buf
}

/// Forward FFT of a real-valued signal (imaginary parts zero).
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let n = next_pow2(input.len());
    let mut buf = vec![Complex::ZERO; n];
    for (b, &x) in buf.iter_mut().zip(input.iter()) {
        *b = Complex::new(x, 0.0);
    }
    fft_in_place(&mut buf);
    buf
}

/// Power spectrum `|X_k|^2` of a complex signal (zero-padded FFT).
pub fn power_spectrum(input: &[Complex]) -> Vec<f64> {
    fft_forward(input).iter().map(|z| z.norm_sqr()).collect()
}

/// Index of the largest-magnitude FFT bin together with its magnitude.
///
/// This is the core of the LoRa dechirp demodulator: after multiplying a
/// received symbol by the conjugate base chirp, the symbol value appears as
/// the argmax bin of the FFT.
///
/// Returns `(0, 0.0)` for an empty spectrum.
pub fn argmax_bin(spectrum: &[Complex]) -> (usize, f64) {
    let mut best = (0usize, 0.0f64);
    for (i, z) in spectrum.iter().enumerate() {
        let m = z.norm();
        if m > best.1 {
            best = (i, m);
        }
    }
    best
}

/// Circular cross-correlation of two equal-length complex signals via FFT:
/// `r[k] = sum_n a[n] * conj(b[n-k])`.
///
/// # Errors
///
/// Returns [`crate::DspError::InvalidWindow`] if the inputs have different
/// lengths, and [`crate::DspError::InputTooShort`] if they are empty.
pub fn circular_cross_correlation(
    a: &[Complex],
    b: &[Complex],
) -> Result<Vec<Complex>, crate::DspError> {
    if a.len() != b.len() {
        return Err(crate::DspError::InvalidWindow { reason: "inputs must have equal length" });
    }
    if a.is_empty() {
        return Err(crate::DspError::InputTooShort { required: 1, actual: 0 });
    }
    let n = next_pow2(a.len());
    // Zero-padding a circular correlation changes its semantics, so require
    // power-of-two input for the exact circular case; otherwise fall back to
    // a direct O(N^2) computation, which is fine for the short preamble
    // segments this is used on.
    if a.len() == n {
        let mut fa = fft_forward(a);
        let fb = fft_forward(b);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x *= y.conj();
        }
        Ok(ifft(&fa))
    } else {
        let len = a.len();
        let mut out = vec![Complex::ZERO; len];
        for (k, o) in out.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for (i, ai) in a.iter().enumerate() {
                let j = (i + len - k) % len;
                acc += *ai * b[j].conj();
            }
            *o = acc;
        }
        Ok(out)
    }
}

/// Iterative decimation-in-time radix-2 transform.
fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(129), 256);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft_in_place(&mut data);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_is_impulse() {
        let mut data = vec![Complex::ONE; 16];
        fft_in_place(&mut data);
        assert!((data[0].re - 16.0).abs() < 1e-12);
        for z in &data[1..] {
            assert!(z.norm() < 1e-10);
        }
    }

    #[test]
    fn tone_lands_in_expected_bin() {
        let n = 128;
        let k = 9;
        let tone: Vec<Complex> =
            (0..n).map(|i| Complex::cis(2.0 * PI * k as f64 * i as f64 / n as f64)).collect();
        let spec = fft_forward(&tone);
        let (bin, mag) = argmax_bin(&spec);
        assert_eq!(bin, k);
        assert!((mag - n as f64).abs() < 1e-9);
    }

    #[test]
    fn negative_frequency_tone_lands_in_high_bin() {
        let n = 64;
        let tone: Vec<Complex> =
            (0..n).map(|i| Complex::cis(-2.0 * PI * 3.0 * i as f64 / n as f64)).collect();
        let spec = fft_forward(&tone);
        let (bin, _) = argmax_bin(&spec);
        assert_eq!(bin, n - 3);
    }

    #[test]
    fn round_trip_identity() {
        let data: Vec<Complex> =
            (0..64).map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos())).collect();
        let mut buf = data.clone();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (a, b) in data.iter().zip(buf.iter()) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let data: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 0.11).sin() * 2.0, (i as f64 * 0.05).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let spec = fft_forward(&data);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..32).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..32).map(|i| Complex::new(0.0, (i as f64).sqrt())).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft_forward(&a);
        let fb = fft_forward(&b);
        let fsum = fft_forward(&sum);
        for i in 0..32 {
            assert!((fa[i] + fb[i] - fsum[i]).norm() < 1e-9);
        }
    }

    #[test]
    fn zero_padding_applied_for_non_pow2() {
        let input = vec![Complex::ONE; 5];
        let out = fft_forward(&input);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn fft_real_matches_complex() {
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let zs: Vec<Complex> = xs.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let a = fft_real(&xs);
        let b = fft_forward(&zs);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((*x - *y).norm() < 1e-12);
        }
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let xs: Vec<f64> =
            (0..128).map(|i| (i as f64 * 0.3).sin() + 0.5 * (i as f64 * 1.1).cos()).collect();
        let spec = fft_real(&xs);
        let n = spec.len();
        for k in 1..n / 2 {
            assert!((spec[k] - spec[n - k].conj()).norm() < 1e-9);
        }
    }

    #[test]
    fn cross_correlation_peak_at_lag() {
        let n = 64;
        let base: Vec<Complex> =
            (0..n).map(|i| Complex::cis(2.0 * PI * (i * i) as f64 / n as f64)).collect();
        // b is a circularly shifted copy of a; correlation should peak at the shift.
        let shift = 13;
        let shifted: Vec<Complex> = (0..n).map(|i| base[(i + n - shift) % n]).collect();
        let corr = circular_cross_correlation(&shifted, &base).unwrap();
        let (peak, _) = argmax_bin(&corr);
        assert_eq!(peak, shift);
    }

    #[test]
    fn cross_correlation_rejects_mismatched_lengths() {
        let a = vec![Complex::ONE; 4];
        let b = vec![Complex::ONE; 8];
        assert!(circular_cross_correlation(&a, &b).is_err());
    }

    #[test]
    fn cross_correlation_direct_path_matches_fft_path() {
        // length 12 (non pow2) exercises the direct path; compare against
        // manually computed circular correlation.
        let a: Vec<Complex> =
            (0..12).map(|i| Complex::new((i as f64).sin(), 0.3 * i as f64)).collect();
        let b: Vec<Complex> =
            (0..12).map(|i| Complex::new((i as f64 * 0.5).cos(), -0.1 * i as f64)).collect();
        let got = circular_cross_correlation(&a, &b).unwrap();
        for k in 0..12 {
            let mut want = Complex::ZERO;
            for i in 0..12 {
                want += a[i] * b[(i + 12 - k) % 12].conj();
            }
            assert!((got[k] - want).norm() < 1e-9, "lag {k}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn in_place_rejects_non_pow2() {
        let mut data = vec![Complex::ONE; 6];
        fft_in_place(&mut data);
    }
}
