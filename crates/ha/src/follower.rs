//! The standby's replication half: a [`Follower`] owns a warm
//! [`NetworkServer`] and applies the primary's commit stream through
//! the same live-replay paths crash recovery uses.
//!
//! Three orderings are reconciled here:
//!
//! 1. **Stream order** — datagrams can arrive reordered or duplicated;
//!    frames are buffered until the stream sequence is contiguous
//!    (cumulative acks + the shipper's go-back-N fill any gap).
//! 2. **Global commit order** — the primary seals shard frames from
//!    parallel commit threads, so the per-shard streams interleave
//!    arbitrarily. Each record's global sequence is peeked without
//!    applying it ([`NetworkServer::peek_replicated_seq`]) and records
//!    are applied strictly in global order.
//! 3. **Snapshot points** — a [`Frame::SnapMark`] is queued per shard
//!    and the follower installs its own snapshot exactly when that
//!    shard's WAL head reaches the marker's covered sequence, stamping
//!    the marker's global sequence and frame indices — which makes the
//!    snapshot bytes (and therefore `repro_fsck` digests) bit-identical
//!    to the primary's.
//!
//! **Promotion** ([`Follower::promote`]) durably advances the epoch
//! past everything this follower has seen, announces the handoff to the
//! old primary's shipper, and hands back the [`NetworkServer`] — which
//! continues taking live traffic with verdicts bit-for-bit identical to
//! a server that never failed over. Frames from a deposed primary
//! (lower epoch) are refused and counted.
//!
//! [`NetworkServer`]: softlora::NetworkServer

use crate::protocol::{decode_frame, encode_frame, split_record_run, Frame};
use crate::HaError;
use softlora::NetworkServer;
use softlora_telemetry::{Counter, Gauge};
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, UdpSocket};

/// Largest replication datagram the follower will accept. Coalesced
/// frames carry one commit record per uplink group in the batch, so
/// this bounds the batch sizes the shipper may relay.
const MAX_DATAGRAM: usize = 1 << 16;

struct Marker {
    covered_seq: u64,
    global_seq: u64,
    frames_cumulative: Vec<u64>,
}

enum StreamItem {
    Chunk { shard: usize, payload: Vec<u8> },
    Mark { shard: usize, marker: Marker },
}

struct FollowerMetrics {
    lag: Gauge,
    applied: Counter,
    snapshots_installed: Counter,
    chunks_refused: Counter,
    heartbeats: Counter,
}

impl FollowerMetrics {
    fn new() -> Self {
        let registry = softlora_telemetry::global();
        let labels = &[("role", "follower")];
        FollowerMetrics {
            lag: registry.gauge_with("ha_replication_lag_records", labels),
            applied: registry.counter_with("ha_records_applied_total", labels),
            snapshots_installed: registry.counter_with("ha_snapshots_installed_total", labels),
            chunks_refused: registry.counter_with("ha_chunks_refused_total", labels),
            heartbeats: registry.counter_with("ha_heartbeats_total", labels),
        }
    }
}

/// A warm standby tailing one primary's WAL. See the module docs.
pub struct Follower {
    server: NetworkServer,
    socket: UdpSocket,
    /// Where acks go: the last address that shipped us a frame (or the
    /// address given to [`Follower::subscribe`]).
    primary: Option<SocketAddr>,
    epoch: u64,
    /// Next stream sequence to process (starts at 1).
    next_stream_seq: u64,
    /// Stream frames received ahead of the contiguous point.
    out_of_order: BTreeMap<u64, StreamItem>,
    /// Decoded records waiting for their global-order turn.
    ready: BTreeMap<u64, (usize, Vec<u8>)>,
    /// Snapshot markers per shard, installed when the shard's WAL head
    /// reaches the covered sequence.
    markers: Vec<VecDeque<Marker>>,
    /// Records applied per shard — the standby's WAL heads.
    shard_heads: Vec<u64>,
    metrics: FollowerMetrics,
}

impl Follower {
    /// Wraps a freshly built standby server (empty or recovered store)
    /// and binds an ephemeral loopback socket for the stream.
    ///
    /// The follower bootstraps from shard-sequence zero: pair it with a
    /// primary whose WAL starts at the same point (both built over
    /// fresh directories), or recover both from copies of one store.
    ///
    /// # Errors
    ///
    /// [`HaError::Io`] when the socket cannot be bound;
    /// [`HaError::Server`] when the store's epoch cannot be read.
    pub fn new(server: NetworkServer) -> Result<Self, HaError> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_nonblocking(true)?;
        let epoch = server.epoch()?;
        let shards = server.shard_count();
        Ok(Follower {
            server,
            socket,
            primary: None,
            epoch,
            next_stream_seq: 1,
            out_of_order: BTreeMap::new(),
            ready: BTreeMap::new(),
            markers: (0..shards).map(|_| VecDeque::new()).collect(),
            shard_heads: vec![0; shards],
            metrics: FollowerMetrics::new(),
        })
    }

    /// The follower's local socket address (what the shipper targets).
    ///
    /// # Errors
    ///
    /// [`HaError::Io`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, HaError> {
        Ok(self.socket.local_addr()?)
    }

    /// The standby server, for inspection (stats, global sequence).
    #[must_use]
    pub fn server(&self) -> &NetworkServer {
        &self.server
    }

    /// Stream frames and records received but not yet applied.
    #[must_use]
    pub fn lag(&self) -> u64 {
        (self.out_of_order.len() + self.ready.len()) as u64
    }

    /// The follower's current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stale-epoch frames refused so far (the zombie-primary counter).
    #[must_use]
    pub fn chunks_refused(&self) -> u64 {
        self.metrics.chunks_refused.get()
    }

    /// Announces this follower to a primary's shipper: adopts `primary`
    /// as the ack target and requests a replay from the next stream
    /// sequence this follower still needs.
    ///
    /// # Errors
    ///
    /// [`HaError::Io`] when the datagram cannot be sent.
    pub fn subscribe(&mut self, primary: SocketAddr) -> Result<(), HaError> {
        self.primary = Some(primary);
        let frame = Frame::Subscribe {
            follower_id: 0,
            epoch: self.epoch,
            resume_from: self.next_stream_seq,
        };
        self.socket.send_to(&encode_frame(&frame), primary)?;
        Ok(())
    }

    /// Drains the socket, processes every contiguous stream frame,
    /// applies every record whose global-order turn has come, installs
    /// any snapshot marker whose point has been reached, and acks.
    /// Returns the number of records applied this poll.
    ///
    /// # Errors
    ///
    /// [`HaError::Server`] when the standby refuses a record (the
    /// stream is then poisoned — rebuild the follower);
    /// [`HaError::CorruptRecordRun`] on a malformed chunk payload;
    /// [`HaError::Io`] on socket failure.
    pub fn poll(&mut self) -> Result<u64, HaError> {
        let mut buf = vec![0u8; MAX_DATAGRAM];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((len, src)) => {
                    let Ok(frame) = decode_frame(&buf[..len]) else { continue };
                    self.ingest(frame, src)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(HaError::Io(e)),
            }
        }
        let applied = self.drain()?;
        if let Some(primary) = self.primary {
            let ack = Frame::Ack { epoch: self.epoch, acked_through: self.next_stream_seq - 1 };
            let _ = self.socket.send_to(&encode_frame(&ack), primary);
        }
        self.metrics.lag.set(self.lag() as f64);
        Ok(applied)
    }

    /// Fails over: durably advances the epoch past everything seen,
    /// announces the handoff to the old primary, and returns the
    /// standby server, now writable.
    ///
    /// Anything not yet applied (stream gaps, out-of-global-order
    /// records) is discarded — those commits were never acknowledged as
    /// applied and die with the old primary, exactly like unreplicated
    /// tail writes in any primary/standby system.
    ///
    /// # Errors
    ///
    /// [`HaError::Server`] when the epoch cannot be advanced durably.
    pub fn promote(self) -> Result<NetworkServer, HaError> {
        let new_epoch = self.epoch + 1;
        self.server.set_epoch(new_epoch)?;
        if let Some(primary) = self.primary {
            let handoff = Frame::EpochHandoff { epoch: new_epoch };
            let _ = self.socket.send_to(&encode_frame(&handoff), primary);
        }
        Ok(self.server)
    }

    /// Routes one decoded frame: epoch-fences, buffers by stream order.
    fn ingest(&mut self, frame: Frame, src: SocketAddr) -> Result<(), HaError> {
        match frame {
            Frame::SegmentChunk { epoch, stream_seq, shard, payload, .. } => {
                if !self.admit(epoch)? {
                    return Ok(());
                }
                self.primary = Some(src);
                if stream_seq >= self.next_stream_seq {
                    self.out_of_order
                        .entry(stream_seq)
                        .or_insert(StreamItem::Chunk { shard: shard as usize, payload });
                }
            }
            Frame::SnapMark {
                epoch,
                stream_seq,
                shard,
                covered_seq,
                global_seq,
                frames_cumulative,
            } => {
                if !self.admit(epoch)? {
                    return Ok(());
                }
                self.primary = Some(src);
                if stream_seq >= self.next_stream_seq {
                    self.out_of_order.entry(stream_seq).or_insert(StreamItem::Mark {
                        shard: shard as usize,
                        marker: Marker { covered_seq, global_seq, frames_cumulative },
                    });
                }
            }
            Frame::Heartbeat { epoch, .. } => {
                if !self.admit(epoch)? {
                    return Ok(());
                }
                self.primary = Some(src);
                self.metrics.heartbeats.inc();
            }
            Frame::EpochHandoff { epoch } => {
                // Another standby won a race to promote: adopt its epoch
                // so the deposed primary is refused here too.
                if epoch > self.epoch {
                    self.server.set_epoch(epoch)?;
                    self.epoch = epoch;
                }
            }
            Frame::Subscribe { .. } | Frame::Ack { .. } => {}
        }
        Ok(())
    }

    /// Epoch admission: refuses stale epochs, adopts newer ones
    /// durably. Returns whether the frame may be processed.
    fn admit(&mut self, epoch: u64) -> Result<bool, HaError> {
        if epoch < self.epoch {
            self.metrics.chunks_refused.inc();
            return Ok(false);
        }
        if epoch > self.epoch {
            self.server.set_epoch(epoch)?;
            self.epoch = epoch;
        }
        Ok(true)
    }

    /// Processes contiguous stream frames, then applies records in
    /// global order, installing snapshot markers as their points are
    /// reached.
    fn drain(&mut self) -> Result<u64, HaError> {
        while let Some(item) = self.out_of_order.remove(&self.next_stream_seq) {
            match item {
                StreamItem::Chunk { shard, payload } => {
                    for record in split_record_run(&payload)? {
                        let global_seq = NetworkServer::peek_replicated_seq(record)?;
                        self.ready.insert(global_seq, (shard, record.to_vec()));
                    }
                }
                StreamItem::Mark { shard, marker } => {
                    self.markers[shard].push_back(marker);
                    self.try_install(shard)?;
                }
            }
            self.next_stream_seq += 1;
        }

        let mut applied = 0u64;
        while let Some(entry) = self.ready.first_entry() {
            let global_seq = *entry.key();
            let expected = self.server.global_seq() + 1;
            if global_seq < expected {
                // Duplicate delivery of an already-applied record.
                entry.remove();
                continue;
            }
            if global_seq > expected {
                break;
            }
            let (shard, record) = entry.remove();
            self.server.apply_replicated_record(shard, &record)?;
            self.shard_heads[shard] += 1;
            applied += 1;
            self.metrics.applied.inc();
            self.try_install(shard)?;
        }
        Ok(applied)
    }

    /// Installs every queued marker whose covered sequence the shard's
    /// WAL head has reached.
    fn try_install(&mut self, shard: usize) -> Result<(), HaError> {
        while let Some(front) = self.markers[shard].front() {
            if front.covered_seq > self.shard_heads[shard] {
                break;
            }
            let marker = self.markers[shard].pop_front().expect("front checked");
            if marker.covered_seq < self.shard_heads[shard] {
                // A duplicate of an already-installed marker.
                continue;
            }
            self.server.install_replica_snapshot(
                shard,
                marker.covered_seq,
                marker.global_seq,
                &marker.frames_cumulative,
            )?;
            self.metrics.snapshots_installed.inc();
        }
        Ok(())
    }
}
