//! The replication wire format.
//!
//! Same datagram discipline as `softlora-net`'s gateway protocol —
//! little-endian primitives through `softlora-store`'s
//! [`Encoder`]/[`Decoder`], a fixed header, a trailing CRC-32 — but
//! under its own magic (`0x5253`, "SR") and version, so replication
//! traffic and gateway traffic can never be mistaken for each other
//! even when misrouted:
//!
//! | magic  | version | type |     payload     | crc32 |
//! |--------|---------|------|-----------------|-------|
//! | 2 B    | 1 B     | 1 B  | type-dependent  | 4 B   |
//!
//! Frame types:
//!
//! | type byte | frame | direction | payload |
//! |-----------|-------|-----------|---------|
//! | `0x00` | `SUBSCRIBE` | follower → primary | follower id, epoch, resume stream seq |
//! | `0x01` | `SEGMENT_CHUNK` | primary → follower | epoch, stream seq, shard, first, count, coalesced record run |
//! | `0x02` | `SNAP_MARK` | primary → follower | epoch, stream seq, shard, covered seq, global seq, frame indices |
//! | `0x03` | `HEARTBEAT` | primary → follower | epoch, next stream seq |
//! | `0x04` | `ACK` | follower → primary | epoch, cumulative acked stream seq |
//! | `0x05` | `EPOCH_HANDOFF` | promoted follower → old primary | new epoch |
//!
//! Every primary→follower frame carries the primary's **epoch**: the
//! monotone fencing token the store persists. A receiver refuses any
//! frame whose epoch is below its own — that single rule is the whole
//! zombie-primary defence.
//!
//! `SEGMENT_CHUNK` carries the coalesced WAL frame payload **verbatim**
//! (the `[rec_len u32][record bytes]` run `ShardWal::append_batch`
//! wrote), so the follower appends the exact record bytes the primary
//! logged and the two stores digest identically.
//!
//! [`Encoder`]: softlora_store::Encoder
//! [`Decoder`]: softlora_store::Decoder

use crate::HaError;
use softlora_store::codec::{crc32, Decoder, Encoder};

/// Magic bytes: `0x5253`, "SR" little-endian.
pub const MAGIC: u16 = 0x5253;
/// Protocol version.
pub const VERSION: u8 = 1;

/// Fixed header length: magic (2) + version (1) + type (1).
pub const HEADER_LEN: usize = 4;
/// Trailer length: CRC-32.
pub const TRAILER_LEN: usize = 4;

const TYPE_SUBSCRIBE: u8 = 0x00;
const TYPE_SEGMENT_CHUNK: u8 = 0x01;
const TYPE_SNAP_MARK: u8 = 0x02;
const TYPE_HEARTBEAT: u8 = 0x03;
const TYPE_ACK: u8 = 0x04;
const TYPE_EPOCH_HANDOFF: u8 = 0x05;

/// One replication datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Follower announces itself (and where its stream resumes).
    Subscribe {
        /// Follower identity (free-form; metrics label fodder).
        follower_id: u64,
        /// The follower's current epoch.
        epoch: u64,
        /// First stream sequence the follower still needs.
        resume_from: u64,
    },
    /// One coalesced WAL frame, shipped as the primary sealed it.
    SegmentChunk {
        /// Shipping primary's epoch.
        epoch: u64,
        /// Position in the replication stream (starts at 1).
        stream_seq: u64,
        /// Shard whose WAL the frame was appended to.
        shard: u32,
        /// Shard-local sequence of the first record in the run.
        first: u64,
        /// Records in the run.
        count: u64,
        /// The `[rec_len u32][record bytes]` run, verbatim.
        payload: Vec<u8>,
    },
    /// The primary scheduled a snapshot: the follower should install its
    /// own at exactly this point.
    SnapMark {
        /// Shipping primary's epoch.
        epoch: u64,
        /// Position in the replication stream (starts at 1).
        stream_seq: u64,
        /// Shard being snapshotted.
        shard: u32,
        /// The snapshot covers shard-local records `1..=covered_seq`.
        covered_seq: u64,
        /// Global commit sequence captured by the snapshot.
        global_seq: u64,
        /// Per-gateway cumulative frame indices at the capture point.
        frames_cumulative: Vec<u64>,
    },
    /// Liveness + lag signal when no commits are flowing.
    Heartbeat {
        /// Shipping primary's epoch.
        epoch: u64,
        /// The stream sequence the primary will assign next.
        next_stream_seq: u64,
    },
    /// Cumulative acknowledgement: everything `<= acked_through` is
    /// applied (or buffered durably) on the follower.
    Ack {
        /// Follower's epoch.
        epoch: u64,
        /// Highest contiguously received stream sequence.
        acked_through: u64,
    },
    /// A follower was promoted under `epoch`; whoever receives this and
    /// holds a lower epoch must stop shipping.
    EpochHandoff {
        /// The new (higher) epoch.
        epoch: u64,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Subscribe { .. } => TYPE_SUBSCRIBE,
            Frame::SegmentChunk { .. } => TYPE_SEGMENT_CHUNK,
            Frame::SnapMark { .. } => TYPE_SNAP_MARK,
            Frame::Heartbeat { .. } => TYPE_HEARTBEAT,
            Frame::Ack { .. } => TYPE_ACK,
            Frame::EpochHandoff { .. } => TYPE_EPOCH_HANDOFF,
        }
    }
}

/// Encodes a frame into a fresh datagram buffer.
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u16(MAGIC).u8(VERSION).u8(frame.type_byte());
    match frame {
        Frame::Subscribe { follower_id, epoch, resume_from } => {
            e.u64(*follower_id).u64(*epoch).u64(*resume_from);
        }
        Frame::SegmentChunk { epoch, stream_seq, shard, first, count, payload } => {
            e.u64(*epoch).u64(*stream_seq).u32(*shard).u64(*first).u64(*count).bytes(payload);
        }
        Frame::SnapMark {
            epoch,
            stream_seq,
            shard,
            covered_seq,
            global_seq,
            frames_cumulative,
        } => {
            e.u64(*epoch).u64(*stream_seq).u32(*shard).u64(*covered_seq).u64(*global_seq);
            e.u32(frames_cumulative.len() as u32);
            for &n in frames_cumulative {
                e.u64(n);
            }
        }
        Frame::Heartbeat { epoch, next_stream_seq } => {
            e.u64(*epoch).u64(*next_stream_seq);
        }
        Frame::Ack { epoch, acked_through } => {
            e.u64(*epoch).u64(*acked_through);
        }
        Frame::EpochHandoff { epoch } => {
            e.u64(*epoch);
        }
    }
    let crc = crc32(e.as_bytes());
    e.u32(crc);
    e.into_bytes()
}

/// Decodes one datagram.
///
/// Never panics on any input; every malformation maps to a structured
/// [`HaError`] variant (CRC is checked before anything else is trusted).
///
/// # Errors
///
/// See the [`HaError`] variants.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, HaError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(HaError::TooShort { len: bytes.len() });
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - TRAILER_LEN);
    let found = u32::from_le_bytes(crc_bytes.try_into().expect("split_at(4)"));
    let expected = crc32(body);
    if expected != found {
        return Err(HaError::BadCrc { expected, found });
    }

    let mut d = Decoder::new(body);
    let magic = d.u16()?;
    if magic != MAGIC {
        return Err(HaError::BadMagic { found: magic });
    }
    let version = d.u8()?;
    if version != VERSION {
        return Err(HaError::BadVersion { found: version });
    }
    let frame_type = d.u8()?;
    let frame = match frame_type {
        TYPE_SUBSCRIBE => {
            Frame::Subscribe { follower_id: d.u64()?, epoch: d.u64()?, resume_from: d.u64()? }
        }
        TYPE_SEGMENT_CHUNK => Frame::SegmentChunk {
            epoch: d.u64()?,
            stream_seq: d.u64()?,
            shard: d.u32()?,
            first: d.u64()?,
            count: d.u64()?,
            payload: d.bytes()?.to_vec(),
        },
        TYPE_SNAP_MARK => {
            let epoch = d.u64()?;
            let stream_seq = d.u64()?;
            let shard = d.u32()?;
            let covered_seq = d.u64()?;
            let global_seq = d.u64()?;
            let count = d.u32()? as usize;
            let mut frames_cumulative = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                frames_cumulative.push(d.u64()?);
            }
            Frame::SnapMark { epoch, stream_seq, shard, covered_seq, global_seq, frames_cumulative }
        }
        TYPE_HEARTBEAT => Frame::Heartbeat { epoch: d.u64()?, next_stream_seq: d.u64()? },
        TYPE_ACK => Frame::Ack { epoch: d.u64()?, acked_through: d.u64()? },
        TYPE_EPOCH_HANDOFF => Frame::EpochHandoff { epoch: d.u64()? },
        other => return Err(HaError::BadFrameType { found: other }),
    };
    // `body` still carries the 4 header bytes the decoder consumed, so
    // `remaining` counts only undecoded payload bytes.
    if !d.is_exhausted() {
        return Err(HaError::TrailingBytes { remaining: d.remaining() });
    }
    Ok(frame)
}

/// Splits a coalesced WAL frame payload back into its records — the
/// `[rec_len u32][record bytes]` run `ShardWal::append_batch` wrote.
///
/// # Errors
///
/// [`HaError::CorruptRecordRun`] when a length header is truncated or
/// points past the end of the payload.
pub fn split_record_run(payload: &[u8]) -> Result<Vec<&[u8]>, HaError> {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < payload.len() {
        if payload.len() - off < 4 {
            return Err(HaError::CorruptRecordRun { offset: off });
        }
        let len =
            u32::from_le_bytes(payload[off..off + 4].try_into().expect("4-byte slice")) as usize;
        off += 4;
        if payload.len() - off < len {
            return Err(HaError::CorruptRecordRun { offset: off });
        }
        records.push(&payload[off..off + len]);
        off += len;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let decoded = decode_frame(&bytes).expect("round trip");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame::Subscribe { follower_id: 7, epoch: 3, resume_from: 101 });
        round_trip(Frame::SegmentChunk {
            epoch: 2,
            stream_seq: 41,
            shard: 1,
            first: 17,
            count: 3,
            payload: vec![4, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD],
        });
        round_trip(Frame::SnapMark {
            epoch: 2,
            stream_seq: 42,
            shard: 0,
            covered_seq: 20,
            global_seq: 39,
            frames_cumulative: vec![11, 28],
        });
        round_trip(Frame::Heartbeat { epoch: 5, next_stream_seq: 43 });
        round_trip(Frame::Ack { epoch: 5, acked_through: 42 });
        round_trip(Frame::EpochHandoff { epoch: 6 });
    }

    #[test]
    fn corruption_is_refused() {
        let mut bytes = encode_frame(&Frame::Heartbeat { epoch: 1, next_stream_seq: 9 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(decode_frame(&bytes), Err(HaError::BadCrc { .. })));
        assert!(matches!(decode_frame(&bytes[..3]), Err(HaError::TooShort { .. })));

        // Wrong magic: a gateway-protocol datagram must be refused even
        // though it carries a valid CRC in the same trailer position.
        let mut alien = Encoder::new();
        alien.u16(0x4E53).u8(1).u8(0);
        let crc = crc32(alien.as_bytes());
        alien.u32(crc);
        assert!(matches!(decode_frame(&alien.into_bytes()), Err(HaError::BadMagic { .. })));
    }

    #[test]
    fn record_runs_split_and_refuse_truncation() {
        let mut run = Vec::new();
        for rec in [&b"alpha"[..], &b"bee"[..], &b""[..]] {
            run.extend_from_slice(&(rec.len() as u32).to_le_bytes());
            run.extend_from_slice(rec);
        }
        let records = split_record_run(&run).expect("well-formed run");
        assert_eq!(records, vec![&b"alpha"[..], &b"bee"[..], &b""[..]]);

        assert!(matches!(
            split_record_run(&run[..run.len() - 5]),
            Err(HaError::CorruptRecordRun { .. })
        ));
        let mut overlong = run.clone();
        let n = overlong.len();
        overlong[n - 4] = 0xFF;
        assert!(matches!(split_record_run(&overlong), Err(HaError::CorruptRecordRun { .. })));
    }
}
