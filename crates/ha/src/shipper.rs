//! Primary-side WAL shipping: a [`CommitHook`] that tails the sealed
//! commit stream onto the wire.
//!
//! The shipper is attached at build time
//! (`NetworkServerBuilder::commit_hook`) and is called synchronously
//! from whichever thread seals each shard's coalesced WAL frame. The
//! send is one non-blocking UDP datagram — the primary never waits on
//! the follower; durability-wise the follower is an *option*, not a
//! quorum. Reliability comes from the pending queue: every shipped
//! frame stays queued until the follower's cumulative [`Frame::Ack`]
//! covers it, and [`Shipper::pump`] retransmits the whole unacked
//! window (go-back-N — the follower processes the stream strictly in
//! order, so selective repeat buys nothing) once the oldest entry has
//! waited out the resend timer.
//!
//! **Fencing**: the first [`Frame::EpochHandoff`] carrying a higher
//! epoch than ours marks this shipper dead — a standby was promoted.
//! From then on every hook call is dropped on the floor; a zombie
//! primary can keep committing locally but ships nothing.
//!
//! [`CommitHook`]: softlora::CommitHook

use crate::protocol::{decode_frame, encode_frame, Frame};
use crate::HaError;
use softlora::CommitHook;
use softlora_telemetry::Counter;
use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning knobs for the shipper.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// Retransmit the unacked window when its oldest frame has waited
    /// this long without a covering ack.
    pub resend_after: Duration,
}

impl Default for ShipperConfig {
    fn default() -> Self {
        ShipperConfig { resend_after: Duration::from_millis(50) }
    }
}

struct Pending {
    stream_seq: u64,
    datagram: Vec<u8>,
    sent_at: Instant,
}

struct ShipperInner {
    socket: UdpSocket,
    follower: SocketAddr,
    epoch: u64,
    /// Stream sequence the next shipped frame gets (starts at 1).
    next_stream_seq: u64,
    pending: VecDeque<Pending>,
    /// `Some(epoch)` once a higher-epoch handoff fenced this shipper.
    fenced_by: Option<u64>,
    resend_after: Duration,
}

struct ShipperMetrics {
    shipped_bytes: Counter,
    shipped_records: Counter,
    markers_shipped: Counter,
    heartbeats: Counter,
    resends: Counter,
}

impl ShipperMetrics {
    fn new() -> Self {
        let registry = softlora_telemetry::global();
        let counter = |name: &str| registry.counter_with(name, &[("role", "primary")]);
        ShipperMetrics {
            shipped_bytes: counter("ha_shipped_bytes_total"),
            shipped_records: counter("ha_shipped_records_total"),
            markers_shipped: counter("ha_markers_shipped_total"),
            heartbeats: counter("ha_heartbeats_total"),
            resends: counter("ha_resends_total"),
        }
    }
}

/// The primary's replication half: ships every sealed WAL frame and
/// snapshot marker to one follower. See the module docs.
pub struct Shipper {
    inner: Mutex<ShipperInner>,
    metrics: ShipperMetrics,
}

impl Shipper {
    /// Binds an ephemeral loopback socket shipping to `follower`,
    /// stamping every frame with `epoch` (the primary's current store
    /// epoch — `NetworkServer::epoch()`).
    ///
    /// # Errors
    ///
    /// [`HaError::Io`] when the socket cannot be bound.
    pub fn new(follower: SocketAddr, epoch: u64, config: ShipperConfig) -> Result<Self, HaError> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_nonblocking(true)?;
        Ok(Shipper {
            inner: Mutex::new(ShipperInner {
                socket,
                follower,
                epoch,
                next_stream_seq: 1,
                pending: VecDeque::new(),
                fenced_by: None,
                resend_after: config.resend_after,
            }),
            metrics: ShipperMetrics::new(),
        })
    }

    /// The shipper's local socket address (where acks and handoffs must
    /// be sent).
    ///
    /// # Errors
    ///
    /// [`HaError::Io`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, HaError> {
        Ok(self.inner.lock().expect("shipper lock poisoned").socket.local_addr()?)
    }

    /// Frames shipped but not yet covered by a cumulative ack.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.inner.lock().expect("shipper lock poisoned").pending.len()
    }

    /// `Some(epoch)` once a higher-epoch handoff fenced this shipper.
    #[must_use]
    pub fn fenced_by(&self) -> Option<u64> {
        self.inner.lock().expect("shipper lock poisoned").fenced_by
    }

    /// Ships one already-encoded frame and queues it for resend. Called
    /// under the inner lock, which is what serialises the stream
    /// sequence across shard-parallel commit threads.
    fn ship(inner: &mut ShipperInner, metrics: &ShipperMetrics, frame: &Frame) {
        let datagram = encode_frame(frame);
        // A send failure is not fatal: the datagram stays pending and
        // the resend timer re-ships it on the next pump.
        let _ = inner.socket.send_to(&datagram, inner.follower);
        metrics.shipped_bytes.add(datagram.len() as u64);
        let stream_seq = inner.next_stream_seq;
        inner.next_stream_seq += 1;
        inner.pending.push_back(Pending { stream_seq, datagram, sent_at: Instant::now() });
    }

    /// Drains incoming acks/handoffs and retransmits the unacked window
    /// if its oldest frame has waited out the resend timer.
    ///
    /// # Errors
    ///
    /// [`HaError::Fenced`] once a higher-epoch handoff has fenced this
    /// shipper (the pending queue is dropped — those commits now belong
    /// to the new primary's history).
    pub fn pump(&self) -> Result<(), HaError> {
        let mut inner = self.inner.lock().expect("shipper lock poisoned");
        let inner = &mut *inner;
        let mut buf = [0u8; 2048];
        loop {
            match inner.socket.recv_from(&mut buf) {
                Ok((len, src)) => {
                    let Ok(frame) = decode_frame(&buf[..len]) else { continue };
                    match frame {
                        Frame::Ack { epoch, acked_through } if epoch >= inner.epoch => {
                            while inner
                                .pending
                                .front()
                                .is_some_and(|p| p.stream_seq <= acked_through)
                            {
                                inner.pending.pop_front();
                            }
                        }
                        Frame::EpochHandoff { epoch } if epoch > inner.epoch => {
                            inner.fenced_by = Some(epoch);
                            inner.pending.clear();
                        }
                        Frame::Subscribe { resume_from, .. } => {
                            // (Re)registration: adopt the source address
                            // and replay everything it still needs.
                            inner.follower = src;
                            let resend: Vec<Vec<u8>> = inner
                                .pending
                                .iter()
                                .filter(|p| p.stream_seq >= resume_from)
                                .map(|p| p.datagram.clone())
                                .collect();
                            for datagram in resend {
                                let _ = inner.socket.send_to(&datagram, inner.follower);
                                self.metrics.resends.inc();
                            }
                        }
                        _ => {}
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(HaError::Io(e)),
            }
        }
        if let Some(epoch) = inner.fenced_by {
            return Err(HaError::Fenced { epoch });
        }
        let stale =
            inner.pending.front().is_some_and(|p| p.sent_at.elapsed() >= inner.resend_after);
        if stale {
            let now = Instant::now();
            let follower = inner.follower;
            for p in &mut inner.pending {
                let _ = inner.socket.send_to(&p.datagram, follower);
                p.sent_at = now;
                self.metrics.resends.inc();
            }
        }
        Ok(())
    }

    /// Ships a heartbeat carrying the epoch and the next stream
    /// sequence, so an idle follower can tell lag from silence.
    pub fn heartbeat(&self) {
        let inner = self.inner.lock().expect("shipper lock poisoned");
        if inner.fenced_by.is_some() {
            return;
        }
        let frame = Frame::Heartbeat { epoch: inner.epoch, next_stream_seq: inner.next_stream_seq };
        let _ = inner.socket.send_to(&encode_frame(&frame), inner.follower);
        self.metrics.heartbeats.inc();
    }
}

impl CommitHook for Shipper {
    fn on_frame(&self, shard: usize, first: u64, count: u64, payload: &[u8]) {
        let mut inner = self.inner.lock().expect("shipper lock poisoned");
        if inner.fenced_by.is_some() {
            return;
        }
        let frame = Frame::SegmentChunk {
            epoch: inner.epoch,
            stream_seq: inner.next_stream_seq,
            shard: shard as u32,
            first,
            count,
            payload: payload.to_vec(),
        };
        Self::ship(&mut inner, &self.metrics, &frame);
        self.metrics.shipped_records.add(count);
    }

    fn on_snapshot_marker(
        &self,
        shard: usize,
        covered_seq: u64,
        global_seq: u64,
        frames_cumulative: &[u64],
    ) {
        let mut inner = self.inner.lock().expect("shipper lock poisoned");
        if inner.fenced_by.is_some() {
            return;
        }
        let frame = Frame::SnapMark {
            epoch: inner.epoch,
            stream_seq: inner.next_stream_seq,
            shard: shard as u32,
            covered_seq,
            global_seq,
            frames_cumulative: frames_cumulative.to_vec(),
        };
        Self::ship(&mut inner, &self.metrics, &frame);
        self.metrics.markers_shipped.inc();
    }
}
