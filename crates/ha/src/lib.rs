//! WAL-shipping replication, group-commit durability and live failover
//! for the sharded device-state store.
//!
//! A SoftLoRa network server is the authority for attack verdicts: it
//! owns the FB database, the dedup window and the MAC counters. Losing
//! it mid-deployment loses the attack-detection state the paper's whole
//! scheme depends on. This crate keeps a warm standby bit-for-bit in
//! sync without the primary ever blocking on it:
//!
//! * [`protocol`] — the replication wire format: CRC-framed datagrams
//!   (`SUBSCRIBE`, `SEGMENT_CHUNK`, `SNAP_MARK`, `HEARTBEAT`, `ACK`,
//!   `EPOCH_HANDOFF`) in the same versioned-magic discipline as
//!   `softlora-net`'s gateway protocol, but under their own magic so a
//!   misrouted datagram can never be confused for gateway traffic;
//! * [`shipper`] — [`Shipper`] implements the server's
//!   [`CommitHook`]: every coalesced WAL frame the primary seals (one
//!   per shard per committed batch) and every snapshot marker is
//!   shipped to the follower as it happens, with go-back-N resend
//!   driven by cumulative acks;
//! * [`follower`] — [`Follower`] owns a standby [`NetworkServer`] and
//!   applies the stream through the **same live-replay paths crash
//!   recovery uses**, reordering shard-parallel commits by global
//!   sequence and installing its own snapshots at the primary's marker
//!   points — so a `repro_fsck` digest of the follower's store equals
//!   the primary's.
//!
//! Failover is [`Follower::promote`]: the standby durably advances the
//! replication **epoch** (a monotonic fencing token persisted in the
//! store) and announces the handoff. A zombie primary still shipping
//! frames under the old epoch is refused by every surviving party —
//! its shipper fences itself on the first `EPOCH_HANDOFF` it hears.
//!
//! [`CommitHook`]: softlora::CommitHook
//! [`NetworkServer`]: softlora::NetworkServer

#![warn(missing_docs)]

pub mod follower;
pub mod protocol;
pub mod shipper;

pub use follower::Follower;
pub use protocol::{decode_frame, encode_frame, Frame};
pub use shipper::{Shipper, ShipperConfig};

use softlora::SoftLoraError;
use softlora_store::CodecError;

/// Everything that can go wrong on the replication path.
#[derive(Debug)]
pub enum HaError {
    /// A primitive failed to decode (truncated buffer, bad presence byte).
    Codec(CodecError),
    /// The datagram was too short to hold even the fixed header + CRC.
    TooShort {
        /// Bytes in the datagram.
        len: usize,
    },
    /// The magic bytes did not identify a replication datagram.
    BadMagic {
        /// The first two bytes, little-endian.
        found: u16,
    },
    /// The protocol version byte is unknown.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The frame-type byte is unknown.
    BadFrameType {
        /// The type byte found.
        found: u8,
    },
    /// The trailing CRC-32 did not match the frame bytes.
    BadCrc {
        /// CRC computed over the frame bytes.
        expected: u32,
        /// CRC carried by the datagram.
        found: u32,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// Undecoded byte count.
        remaining: usize,
    },
    /// A chunk's inner record run was malformed (a record length header
    /// pointed past the end of the payload).
    CorruptRecordRun {
        /// Byte offset of the malformed record header.
        offset: usize,
    },
    /// A socket operation failed.
    Io(std::io::Error),
    /// The standby server refused a record or snapshot install.
    Server(SoftLoraError),
    /// This party has been fenced by a higher epoch — a promotion
    /// happened elsewhere and this stream is dead.
    Fenced {
        /// The epoch that fenced us.
        epoch: u64,
    },
}

impl std::fmt::Display for HaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HaError::Codec(e) => write!(f, "codec error: {e}"),
            HaError::TooShort { len } => write!(f, "datagram too short: {len} bytes"),
            HaError::BadMagic { found } => write!(f, "bad magic {found:#06x}"),
            HaError::BadVersion { found } => write!(f, "unknown protocol version {found}"),
            HaError::BadFrameType { found } => write!(f, "unknown frame type {found:#04x}"),
            HaError::BadCrc { expected, found } => {
                write!(f, "CRC mismatch: computed {expected:#010x}, datagram carried {found:#010x}")
            }
            HaError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
            HaError::CorruptRecordRun { offset } => {
                write!(f, "malformed record run at byte {offset}")
            }
            HaError::Io(e) => write!(f, "socket error: {e}"),
            HaError::Server(e) => write!(f, "server error: {e}"),
            HaError::Fenced { epoch } => {
                write!(f, "fenced by epoch {epoch}: a newer primary exists")
            }
        }
    }
}

impl std::error::Error for HaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HaError::Codec(e) => Some(e),
            HaError::Io(e) => Some(e),
            HaError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for HaError {
    fn from(e: CodecError) -> Self {
        HaError::Codec(e)
    }
}

impl From<std::io::Error> for HaError {
    fn from(e: std::io::Error) -> Self {
        HaError::Io(e)
    }
}

impl From<SoftLoraError> for HaError {
    fn from(e: SoftLoraError) -> Self {
        HaError::Server(e)
    }
}
