//! Failover acceptance tests: the WAL-shipping replication path end to
//! end, over real loopback sockets.
//!
//! * **Kill and fail over**: a primary that dies mid-attacked-fleet is
//!   replaced by its promoted follower, and the joined verdict stream
//!   is **bit-for-bit identical** to an uninterrupted run — including
//!   the replay-attack detections. The promoted store's `fsck` digests
//!   equal the uninterrupted store's: the follower logged the same
//!   record bytes and installed snapshots at the same points.
//! * **Zombie fencing**: promotion advances the epoch; frames from the
//!   deposed primary (lower epoch) are refused and counted, and the
//!   deposed shipper fences itself on the first handoff it hears.

use softlora::{fsck_store, NetworkServer, ServerVerdict};
use softlora_attack::FrameDelayAttack;
use softlora_ha::protocol::{encode_frame, Frame};
use softlora_ha::{Follower, Shipper, ShipperConfig};
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::{FleetDeployment, HonestChannel, Position, Scenario, UplinkDeliveries};
use softlora_store::test_dir;
use std::net::UdpSocket;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const GATEWAYS: usize = 2;
const DEVICES: usize = 3;
/// Groups per committed batch — the same chunking everywhere, so the
/// deterministic snapshot points line up between runs.
const CHUNK: usize = 3;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

/// The pinned workload from the persistence acceptance tests: a
/// 2-gateway fleet, clean traffic until t = 1500 s, then the
/// frame-delay attack (τ = 40 s) against the first meter until
/// t = 2600 s. Fully deterministic.
fn pinned_scenario() -> Scenario {
    let fleet = FleetDeployment::with_gateways(GATEWAYS);
    let gateways = fleet.gateway_positions();
    let mut scenario =
        Scenario::new_fleet(phy(), fleet.medium(), gateways.clone(), Box::new(HonestChannel));
    let positions = fleet.device_positions(DEVICES, 21);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2601_5000 + k as u32, *pos, 300.0, k as u64);
    }
    let target = positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target.x + 2.0, target.y + 1.0, target.z),
        &gateways,
        0,
        2.0,
        40.0,
        phy(),
        7,
    )
    .with_targets(vec![0x2601_5000]);
    scenario.schedule_interceptor(1500.0, Box::new(attack));
    scenario
}

fn build_server(
    scenario: &Scenario,
    dir: Option<&Path>,
    hook: Option<Arc<Shipper>>,
) -> NetworkServer {
    let mut builder = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(2)
        .gateway(1)
        .gateway(2)
        .shards(2)
        // Aggressive persistence tuning so the short run exercises
        // snapshot markers, replica installs and segment rotation.
        .snapshot_every(4)
        .wal_segment_bytes(512);
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    if let Some(dir) = dir {
        builder = builder.with_persistence(dir);
    }
    if let Some(hook) = hook {
        builder = builder.commit_hook(hook);
    }
    builder.build()
}

fn pinned_groups() -> Vec<UplinkDeliveries> {
    let mut scenario = pinned_scenario();
    let mut groups = Vec::new();
    scenario.run(2600.0, |u| groups.push(u.clone()));
    assert!(groups.len() >= 15, "too few uplinks: {}", groups.len());
    assert!(
        groups.iter().any(|g| g.copies.iter().any(|c| c.delivery.is_replay)),
        "the attack phase must put replay groups on the stream"
    );
    groups
}

/// Pumps the shipper and polls the follower until the follower's tail
/// has caught up to `target` and every shipped frame is acked.
fn replicate_until(shipper: &Shipper, follower: &mut Follower, target: u64) {
    for _ in 0..2_000 {
        shipper.pump().expect("shipper pump");
        follower.poll().expect("follower poll");
        if follower.server().global_seq() >= target
            && follower.lag() == 0
            && shipper.pending_len() == 0
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!(
        "follower never caught up: at {} of {target}, lag {}, {} pending",
        follower.server().global_seq(),
        follower.lag(),
        shipper.pending_len()
    );
}

#[test]
fn failover_matches_uninterrupted_run_bit_for_bit() {
    let groups = pinned_groups();
    // Fail over at a batch boundary so baseline and primary commit the
    // same batches up to the kill point.
    let mid = (groups.len() / 2 / CHUNK) * CHUNK;
    assert!(mid > 0, "pinned workload too small to split");

    // The uninterrupted baseline, persisted, same chunking.
    let dir_c = test_dir("ha-baseline");
    let mut baseline = build_server(&pinned_scenario(), Some(&dir_c), None);
    let mut expected = Vec::new();
    for chunk in groups.chunks(CHUNK) {
        expected.extend(baseline.process_batch(chunk).expect("baseline pipeline"));
    }

    // Primary over dir A shipping to a warm standby over dir B.
    let dir_a = test_dir("ha-primary");
    let dir_b = test_dir("ha-follower");
    let standby = build_server(&pinned_scenario(), Some(&dir_b), None);
    let mut follower = Follower::new(standby).expect("follower");
    let shipper = Arc::new(
        Shipper::new(follower.local_addr().expect("follower addr"), 0, ShipperConfig::default())
            .expect("shipper"),
    );
    let mut primary = build_server(&pinned_scenario(), Some(&dir_a), Some(Arc::clone(&shipper)));
    follower.subscribe(shipper.local_addr().expect("shipper addr")).expect("subscribe");

    let mut first_half = Vec::new();
    for chunk in groups[..mid].chunks(CHUNK) {
        first_half.extend(primary.process_batch(chunk).expect("primary pipeline"));
        replicate_until(&shipper, &mut follower, primary.global_seq());
    }
    shipper.heartbeat();
    follower.poll().expect("heartbeat poll");
    assert_eq!(follower.server().global_seq(), primary.global_seq(), "follower caught up");
    assert_eq!(follower.server().stats(), primary.stats(), "replicated statistics");

    // The primary dies hard — no shutdown flush — and the standby takes
    // over under a fresh epoch.
    primary.abandon();
    let mut promoted = follower.promote().expect("promotion");
    assert_eq!(promoted.epoch().expect("epoch"), 1, "promotion advanced the epoch durably");

    let mut second_half = Vec::new();
    for chunk in groups[mid..].chunks(CHUNK) {
        second_half.extend(promoted.process_batch(chunk).expect("promoted pipeline"));
    }

    // The acceptance criterion: failover must not change a single
    // verdict, statistic or detection score.
    let rejoined: Vec<ServerVerdict> = first_half.into_iter().chain(second_half).collect();
    assert_eq!(rejoined, expected, "failover must not change a single verdict");
    assert_eq!(promoted.stats(), baseline.stats());
    assert_eq!(promoted.detection_stats(), baseline.detection_stats());

    // Digest parity: the promoted store replays — and fscks — exactly
    // like the uninterrupted one.
    promoted.drain_snapshots().expect("promoted installs");
    baseline.drain_snapshots().expect("baseline installs");
    drop(promoted);
    drop(baseline);
    let report_b = fsck_store(&dir_b).expect("fsck follower store");
    let report_c = fsck_store(&dir_c).expect("fsck baseline store");
    assert_eq!(report_b.shards.len(), report_c.shards.len());
    for (b, c) in report_b.shards.iter().zip(&report_c.shards) {
        assert_eq!(b.digest, c.digest, "shard {} digest", b.shard);
        assert_eq!(b.wal_records, c.wal_records, "shard {} wal records", b.shard);
        assert_eq!(b.snapshot_seq, c.snapshot_seq, "shard {} snapshot seq", b.shard);
    }
    assert_eq!(report_b.digest(), report_c.digest(), "store digests");

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&dir_c).ok();
}

#[test]
fn zombie_primary_frames_are_refused_after_handoff() {
    let server = build_server(&pinned_scenario(), None, None);
    let mut follower = Follower::new(server).expect("follower");
    let addr = follower.local_addr().expect("addr");
    let zombie = UdpSocket::bind("127.0.0.1:0").expect("zombie socket");

    // A handoff under epoch 2 fences every lower epoch.
    zombie.send_to(&encode_frame(&Frame::EpochHandoff { epoch: 2 }), addr).expect("send handoff");
    for _ in 0..200 {
        follower.poll().expect("poll");
        if follower.epoch() == 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(follower.epoch(), 2, "handoff adopted");

    // The zombie keeps shipping under its stale epoch: refused, counted,
    // nothing buffered.
    let refused_before = follower.chunks_refused();
    let stale = Frame::SegmentChunk {
        epoch: 1,
        stream_seq: 1,
        shard: 0,
        first: 1,
        count: 0,
        payload: Vec::new(),
    };
    zombie.send_to(&encode_frame(&stale), addr).expect("send stale chunk");
    for _ in 0..200 {
        follower.poll().expect("poll");
        if follower.chunks_refused() > refused_before {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(follower.chunks_refused(), refused_before + 1, "stale chunk counted");
    assert_eq!(follower.lag(), 0, "stale chunk not buffered");
}

#[test]
fn deposed_shipper_fences_itself_and_stops_shipping() {
    let sink = UdpSocket::bind("127.0.0.1:0").expect("sink socket");
    let shipper = Shipper::new(sink.local_addr().expect("sink addr"), 0, ShipperConfig::default())
        .expect("shipper");

    use softlora::CommitHook;
    shipper.on_frame(0, 1, 1, &[2, 0, 0, 0, 0xAB, 0xCD]);
    assert_eq!(shipper.pending_len(), 1, "frame queued until acked");

    let promoted = UdpSocket::bind("127.0.0.1:0").expect("promoted socket");
    promoted
        .send_to(
            &encode_frame(&Frame::EpochHandoff { epoch: 3 }),
            shipper.local_addr().expect("shipper addr"),
        )
        .expect("send handoff");
    let fenced = (0..200).find_map(|_| match shipper.pump() {
        Err(softlora_ha::HaError::Fenced { epoch }) => Some(epoch),
        _ => {
            std::thread::sleep(Duration::from_millis(1));
            None
        }
    });
    assert_eq!(fenced, Some(3), "shipper fenced by the promotion epoch");
    assert_eq!(shipper.fenced_by(), Some(3));

    // A zombie primary keeps committing locally; nothing ships.
    shipper.on_frame(0, 2, 1, &[2, 0, 0, 0, 0xEF, 0x01]);
    assert_eq!(shipper.pending_len(), 0, "fenced shipper drops frames on the floor");
}
