//! Commit-stream hooks and the background snapshot installer — the two
//! pieces that decouple the durable tail from the commit path.
//!
//! * [`CommitHook`] is the server's outbound replication surface: every
//!   sealed WAL frame (one coalesced frame per shard per committed
//!   batch) and every snapshot marker is announced to the hook, in
//!   shard-local order. `softlora-ha`'s shipper implements it to tail
//!   the primary's WAL onto the wire without the server knowing what a
//!   follower is.
//! * `SnapshotInstaller` (crate-private) moves snapshot installation off the commit
//!   path: the committing shard captures its state (cheap, in-memory)
//!   and enqueues; the encode, the fsync'd file write and the segment
//!   compaction all happen on one background thread. `snapshot_now`
//!   stays synchronous for tests — it drains the installer first so the
//!   on-disk store is deterministic afterwards.

use crate::persist::ShardSnapshot;
use softlora_store::{ShardedStore, StoreError};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Hooks the durable tail calls as it seals WAL frames — the feed a
/// WAL-shipping replicator subscribes to. Calls arrive from whichever
/// thread commits the shard (batch commits run shard-parallel), hence
/// `Send + Sync`; per shard, calls are strictly ordered.
pub trait CommitHook: Send + Sync {
    /// One coalesced WAL frame was appended to `shard`'s log: `count`
    /// records occupying shard-local sequences `first..first + count`,
    /// with `payload` the frame's inner-framed record run (exactly the
    /// bytes [`softlora_store::ShardWal::append_batch`] wrote).
    fn on_frame(&self, shard: usize, first: u64, count: u64, payload: &[u8]);

    /// `shard` scheduled a snapshot covering shard-local records
    /// `1..=covered_seq`, capturing the server at `global_seq` with the
    /// per-gateway frame indices in `frames_cumulative`. A follower
    /// installing its own snapshot at exactly this point produces
    /// bit-identical snapshot bytes — which is what keeps `repro_fsck`
    /// digests equal between primary and caught-up follower.
    fn on_snapshot_marker(
        &self,
        shard: usize,
        covered_seq: u64,
        global_seq: u64,
        frames_cumulative: &[u64],
    );
}

enum InstallerMsg {
    Install { shard: usize, covered_seq: u64, snapshot: Box<ShardSnapshot> },
    Drain(mpsc::Sender<()>),
}

/// The background snapshot-installation thread: see the module docs.
pub(crate) struct SnapshotInstaller {
    tx: Mutex<Option<mpsc::Sender<InstallerMsg>>>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// First error the installer hit (a failed install never corrupts —
    /// the WAL still holds every record — but the caller should know
    /// compaction stalled).
    error: Arc<Mutex<Option<StoreError>>>,
}

impl SnapshotInstaller {
    pub(crate) fn spawn(store: Arc<ShardedStore>) -> Self {
        let (tx, rx) = mpsc::channel::<InstallerMsg>();
        let error: Arc<Mutex<Option<StoreError>>> = Arc::new(Mutex::new(None));
        let error_slot = Arc::clone(&error);
        let thread = std::thread::Builder::new()
            .name("snapshot-install".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        InstallerMsg::Install { shard, covered_seq, snapshot } => {
                            let bytes = snapshot.encode();
                            let result = store
                                .shard(shard)
                                .lock()
                                .expect("shard wal poisoned")
                                .install_snapshot_at(&bytes, covered_seq);
                            if let Err(e) = result {
                                let mut slot =
                                    error_slot.lock().expect("installer error lock poisoned");
                                slot.get_or_insert(e);
                            }
                        }
                        InstallerMsg::Drain(reply) => {
                            let _ = reply.send(());
                        }
                    }
                }
            })
            .expect("spawn snapshot-install thread");
        SnapshotInstaller { tx: Mutex::new(Some(tx)), thread: Mutex::new(Some(thread)), error }
    }

    /// Enqueues one shard snapshot for background installation. After
    /// shutdown the job is silently dropped — the WAL still holds every
    /// record, so only compaction is lost.
    pub(crate) fn enqueue(&self, shard: usize, covered_seq: u64, snapshot: ShardSnapshot) {
        let tx = self.tx.lock().expect("installer sender poisoned");
        if let Some(tx) = tx.as_ref() {
            let _ =
                tx.send(InstallerMsg::Install { shard, covered_seq, snapshot: Box::new(snapshot) });
        }
    }

    /// Blocks until every enqueued install has completed and surfaces
    /// the first install error, if any.
    pub(crate) fn drain(&self) -> Result<(), StoreError> {
        let reply = {
            let tx = self.tx.lock().expect("installer sender poisoned");
            let Some(tx) = tx.as_ref() else {
                return Ok(());
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            if tx.send(InstallerMsg::Drain(reply_tx)).is_err() {
                return Ok(());
            }
            reply_rx
        };
        let _ = reply.recv();
        self.error.lock().expect("installer error lock poisoned").take().map_or(Ok(()), Err)
    }

    /// Finishes queued installs and joins the thread. Idempotent; also
    /// runs on drop. Explicit shutdown matters for simulated crashes
    /// ([`crate::NetworkServer::abandon`]): the shards' `Arc`s are
    /// leaked there, so thread teardown cannot wait for the last `Arc`.
    pub(crate) fn shutdown(&self) {
        let tx = self.tx.lock().expect("installer sender poisoned").take();
        drop(tx);
        let thread = self.thread.lock().expect("installer thread poisoned").take();
        if let Some(thread) = thread {
            let _ = thread.join();
        }
    }
}

impl Drop for SnapshotInstaller {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SnapshotInstaller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotInstaller").finish_non_exhaustive()
    }
}
