//! On-disk encodings of the server tail's durable state.
//!
//! The network server persists through `softlora-store` in two shapes:
//!
//! * a [`CommitRecord`] per committed uplink group — the WAL entry. It
//!   carries the **state mutations** of that commit (FB learn, dedup
//!   insert, MAC counter advance) plus the shard's **absolute** counters
//!   after it, so replay is idempotent per record and the last replayed
//!   record pins every counter exactly;
//! * a [`ShardSnapshot`] — the shard's full tail state, installed every
//!   `snapshot_every` records so recovery replays a bounded WAL tail.
//!
//! Replaying a `ShardSnapshot` and then every later `CommitRecord`
//! through the live mutation paths (`FbDatabase::update`,
//! `DedupCache::observe`, MAC counter restore) reproduces the shard's
//! in-memory state **bit for bit** — including LRU ticks and eviction
//! order — which is what makes kill-and-recover verdict-identical to an
//! uninterrupted run.
//!
//! Both payloads start with a version byte; unknown versions are refused
//! rather than misread.

use crate::network_server::ServerStats;
use crate::replay_detect::DetectionStats;
use softlora_store::{CodecError, Decoder, Encoder, StoreError};

/// Format version of both payload kinds.
const VERSION: u8 = 1;

fn version_error(found: u8) -> StoreError {
    StoreError::Config { detail: format!("unknown persistence format version {found}") }
}

fn encode_server_stats(e: &mut Encoder, s: &ServerStats) {
    e.u64(s.uplinks)
        .u64(s.accepted)
        .u64(s.fb_replays_flagged)
        .u64(s.cross_gateway_replays_flagged)
        .u64(s.duplicates_suppressed)
        .u64(s.not_received)
        .u64(s.lorawan_rejected);
}

fn decode_server_stats(d: &mut Decoder<'_>) -> Result<ServerStats, CodecError> {
    Ok(ServerStats {
        uplinks: d.u64()?,
        accepted: d.u64()?,
        fb_replays_flagged: d.u64()?,
        cross_gateway_replays_flagged: d.u64()?,
        duplicates_suppressed: d.u64()?,
        not_received: d.u64()?,
        lorawan_rejected: d.u64()?,
    })
}

fn encode_detection_stats(e: &mut Encoder, s: &DetectionStats) {
    e.u64(s.true_positives).u64(s.false_positives).u64(s.false_negatives).u64(s.true_negatives);
}

fn decode_detection_stats(d: &mut Decoder<'_>) -> Result<DetectionStats, CodecError> {
    Ok(DetectionStats {
        true_positives: d.u64()?,
        false_positives: d.u64()?,
        false_negatives: d.u64()?,
        true_negatives: d.u64()?,
    })
}

fn encode_frames(e: &mut Encoder, frames: &[u64]) {
    e.u32(frames.len() as u32);
    for &f in frames {
        e.u64(f);
    }
}

fn decode_frames(d: &mut Decoder<'_>) -> Result<Vec<u64>, CodecError> {
    let n = d.u32()? as usize;
    let mut frames = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        frames.push(d.u64()?);
    }
    Ok(frames)
}

/// One remembered dedup-cache uplink, as persisted.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DedupRecord {
    /// Device address from the frame header.
    pub dev_addr: u32,
    /// Frame counter.
    pub fcnt: u16,
    /// Frame-byte digest (`softlora_lorawan::payload_hash`).
    pub payload_hash: u64,
    /// Arrival of the first observed copy, seconds.
    pub arrival_global_s: f64,
    /// Gateway that observed the first copy.
    pub gateway: u32,
}

fn encode_dedup(e: &mut Encoder, r: &DedupRecord) {
    e.u32(r.dev_addr).u16(r.fcnt).u64(r.payload_hash).f64(r.arrival_global_s).u32(r.gateway);
}

fn decode_dedup(d: &mut Decoder<'_>) -> Result<DedupRecord, CodecError> {
    Ok(DedupRecord {
        dev_addr: d.u32()?,
        fcnt: d.u16()?,
        payload_hash: d.u64()?,
        arrival_global_s: d.f64()?,
        gateway: d.u32()?,
    })
}

/// The WAL entry for one committed uplink group.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CommitRecord {
    /// Server-wide commit sequence number of this group.
    pub global_seq: u64,
    /// The group's uplink id (for audit trails; replay ignores it).
    pub uplink: u64,
    /// Shard statistics *after* this commit (absolute).
    pub stats: ServerStats,
    /// Shard detection statistics after this commit (absolute).
    pub det: DetectionStats,
    /// Shard MAC accepted/rejected totals after this commit (absolute).
    pub mac_accepted: u64,
    pub mac_rejected: u64,
    /// Per-gateway front-half frame indices consumed through this group
    /// (server-wide cumulative, so recovery reseats the pipelines).
    pub frames_cumulative: Vec<u64>,
    /// FB history update this commit made, if the frame was accepted.
    pub fb_learn: Option<(u32, f64)>,
    /// Dedup-cache insertion this commit made, if it was a first copy.
    pub dedup_insert: Option<DedupRecord>,
    /// MAC frame-counter advance this commit made, if accepted.
    pub mac_fcnt: Option<(u32, u16)>,
    /// Capacity eviction the FB learn forced, with the dropped history —
    /// the audit trail; replay re-derives the eviction from the learn.
    pub eviction: Option<(u32, Vec<f64>)>,
}

impl CommitRecord {
    #[cfg(test)]
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_into(&mut e);
        e.into_bytes()
    }

    /// Encodes into a caller-owned encoder — the commit hot path clears
    /// and reuses one per-shard scratch encoder instead of allocating a
    /// fresh buffer per WAL record.
    pub(crate) fn encode_into(&self, e: &mut Encoder) {
        e.u8(VERSION).u64(self.global_seq).u64(self.uplink);
        encode_server_stats(e, &self.stats);
        encode_detection_stats(e, &self.det);
        e.u64(self.mac_accepted).u64(self.mac_rejected);
        encode_frames(e, &self.frames_cumulative);
        e.option(&self.fb_learn, |e, (dev, fb)| {
            e.u32(*dev).f64(*fb);
        });
        e.option(&self.dedup_insert, encode_dedup);
        e.option(&self.mac_fcnt, |e, (dev, fcnt)| {
            e.u32(*dev).u16(*fcnt);
        });
        e.option(&self.eviction, |e, (dev, history)| {
            e.u32(*dev).u32(history.len() as u32);
            for &fb in history {
                e.f64(fb);
            }
        });
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut d = Decoder::new(bytes);
        let version = d.u8()?;
        if version != VERSION {
            return Err(version_error(version));
        }
        Ok(CommitRecord {
            global_seq: d.u64()?,
            uplink: d.u64()?,
            stats: decode_server_stats(&mut d)?,
            det: decode_detection_stats(&mut d)?,
            mac_accepted: d.u64()?,
            mac_rejected: d.u64()?,
            frames_cumulative: decode_frames(&mut d)?,
            fb_learn: d.option(|d| Ok((d.u32()?, d.f64()?)))?,
            dedup_insert: d.option(decode_dedup)?,
            mac_fcnt: d.option(|d| Ok((d.u32()?, d.u16()?)))?,
            eviction: d.option(|d| {
                let dev = d.u32()?;
                let n = d.u32()? as usize;
                let mut history = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    history.push(d.f64()?);
                }
                Ok((dev, history))
            })?,
        })
    }
}

/// One shard's full tail state, as installed in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardSnapshot {
    /// Server-wide commit sequence the snapshot covers through.
    pub global_seq: u64,
    /// Per-gateway frame indices consumed through that commit.
    pub frames_cumulative: Vec<u64>,
    /// Shard statistics (absolute).
    pub stats: ServerStats,
    /// Shard detection statistics (absolute).
    pub det: DetectionStats,
    /// Shard MAC accepted/rejected totals (absolute).
    pub mac_accepted: u64,
    pub mac_rejected: u64,
    /// Per-device last-accepted frame counters, sorted by device.
    pub mac_fcnts: Vec<(u32, u16)>,
    /// FB database update tick.
    pub db_clock: u64,
    /// Every FB history as `(device, LRU tick, FBs oldest first)`.
    pub db_histories: Vec<(u32, u64, Vec<f64>)>,
    /// Dedup-cache entries in insertion order.
    pub dedup: Vec<DedupRecord>,
}

impl ShardSnapshot {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(VERSION).u64(self.global_seq);
        encode_frames(&mut e, &self.frames_cumulative);
        encode_server_stats(&mut e, &self.stats);
        encode_detection_stats(&mut e, &self.det);
        e.u64(self.mac_accepted).u64(self.mac_rejected);
        e.u32(self.mac_fcnts.len() as u32);
        for (dev, fcnt) in &self.mac_fcnts {
            e.u32(*dev).u16(*fcnt);
        }
        e.u64(self.db_clock);
        e.u32(self.db_histories.len() as u32);
        for (dev, tick, fbs) in &self.db_histories {
            e.u32(*dev).u64(*tick).u32(fbs.len() as u32);
            for &fb in fbs {
                e.f64(fb);
            }
        }
        e.u32(self.dedup.len() as u32);
        for r in &self.dedup {
            encode_dedup(&mut e, r);
        }
        e.into_bytes()
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        let mut d = Decoder::new(bytes);
        let version = d.u8()?;
        if version != VERSION {
            return Err(version_error(version));
        }
        let global_seq = d.u64()?;
        let frames_cumulative = decode_frames(&mut d)?;
        let stats = decode_server_stats(&mut d)?;
        let det = decode_detection_stats(&mut d)?;
        let mac_accepted = d.u64()?;
        let mac_rejected = d.u64()?;
        let n = d.u32()? as usize;
        let mut mac_fcnts = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            mac_fcnts.push((d.u32()?, d.u16()?));
        }
        let db_clock = d.u64()?;
        let n = d.u32()? as usize;
        let mut db_histories = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let dev = d.u32()?;
            let tick = d.u64()?;
            let len = d.u32()? as usize;
            let mut fbs = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                fbs.push(d.f64()?);
            }
            db_histories.push((dev, tick, fbs));
        }
        let n = d.u32()? as usize;
        let mut dedup = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            dedup.push(decode_dedup(&mut d)?);
        }
        Ok(ShardSnapshot {
            global_seq,
            frames_cumulative,
            stats,
            det,
            mac_accepted,
            mac_rejected,
            mac_fcnts,
            db_clock,
            db_histories,
            dedup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ServerStats {
        ServerStats {
            uplinks: 10,
            accepted: 7,
            fb_replays_flagged: 1,
            cross_gateway_replays_flagged: 2,
            duplicates_suppressed: 5,
            not_received: 1,
            lorawan_rejected: 1,
        }
    }

    fn det() -> DetectionStats {
        DetectionStats {
            true_positives: 3,
            false_positives: 0,
            false_negatives: 1,
            true_negatives: 6,
        }
    }

    #[test]
    fn commit_record_round_trips() {
        let full = CommitRecord {
            global_seq: 42,
            uplink: 17,
            stats: stats(),
            det: det(),
            mac_accepted: 7,
            mac_rejected: 2,
            frames_cumulative: vec![12, 9, 13],
            fb_learn: Some((0x2601_0001, -22_040.5)),
            dedup_insert: Some(DedupRecord {
                dev_addr: 0x2601_0001,
                fcnt: 9,
                payload_hash: 0xDEAD_BEEF_CAFE_F00D,
                arrival_global_s: 1234.000004,
                gateway: 2,
            }),
            mac_fcnt: Some((0x2601_0001, 9)),
            eviction: Some((0x2601_0009, vec![-21_000.0, -21_010.0])),
        };
        assert_eq!(CommitRecord::decode(&full.encode()).unwrap(), full);

        let sparse = CommitRecord {
            fb_learn: None,
            dedup_insert: None,
            mac_fcnt: None,
            eviction: None,
            ..full
        };
        assert_eq!(CommitRecord::decode(&sparse.encode()).unwrap(), sparse);
    }

    #[test]
    fn shard_snapshot_round_trips() {
        let snap = ShardSnapshot {
            global_seq: 99,
            frames_cumulative: vec![40, 38],
            stats: stats(),
            det: det(),
            mac_accepted: 7,
            mac_rejected: 3,
            mac_fcnts: vec![(0x2601_0001, 12), (0x2601_0002, 4)],
            db_clock: 25,
            db_histories: vec![
                (0x2601_0001, 24, vec![-22_000.0, -22_010.0, -21_995.5]),
                (0x2601_0002, 25, vec![-18_500.0]),
            ],
            dedup: vec![DedupRecord {
                dev_addr: 0x2601_0001,
                fcnt: 12,
                payload_hash: 7,
                arrival_global_s: 2400.0,
                gateway: 0,
            }],
        };
        assert_eq!(ShardSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn unknown_version_refused() {
        let mut bytes = ShardSnapshot {
            global_seq: 0,
            frames_cumulative: vec![],
            stats: ServerStats::default(),
            det: DetectionStats::default(),
            mac_accepted: 0,
            mac_rejected: 0,
            mac_fcnts: vec![],
            db_clock: 0,
            db_histories: vec![],
            dedup: vec![],
        }
        .encode();
        bytes[0] = 99;
        assert!(ShardSnapshot::decode(&bytes).is_err());
        assert!(CommitRecord::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_record_is_an_error() {
        let record = CommitRecord {
            global_seq: 1,
            uplink: 1,
            stats: stats(),
            det: det(),
            mac_accepted: 0,
            mac_rejected: 0,
            frames_cumulative: vec![1],
            fb_learn: None,
            dedup_insert: None,
            mac_fcnt: None,
            eviction: None,
        };
        let bytes = record.encode();
        assert!(CommitRecord::decode(&bytes[..bytes.len() - 2]).is_err());
    }
}
