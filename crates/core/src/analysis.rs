//! The paper's §3.2 overhead arithmetic: synchronization-based versus
//! synchronization-free timestamping, plus the §3.2 accuracy budget.
//!
//! These functions regenerate the numbers the paper uses to motivate the
//! synchronization-free design: 14 sync sessions per hour at 40 ppm for
//! sub-10 ms error, 24 SF12 frames per hour under the 1 % duty cycle, 27 %
//! payload overhead for 8-byte timestamps versus 18 bits for elapsed
//! times, and the ~3 ms end-to-end uncertainty of gateway-side
//! timestamping \[9\].

use softlora_lorawan::elapsed::ELAPSED_BITS;
use softlora_lorawan::region::EU868_DUTY_CYCLE;
use softlora_phy::PhyConfig;

/// Overhead profile of a timestamping strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadProfile {
    /// Clock-sync transmissions required per hour.
    pub sync_sessions_per_hour: f64,
    /// Fraction of the duty-cycle frame budget consumed by sync traffic.
    pub sync_budget_fraction: f64,
    /// Fraction of each data frame's payload spent on time information.
    pub payload_time_fraction: f64,
    /// Extra bytes of time information per record.
    pub time_bytes_per_record: f64,
}

/// Synchronization-based approach: periodic sync sessions plus full
/// 8-byte timestamps in every frame (paper §3.2's strawman).
pub fn sync_based_profile(
    drift_ppm: f64,
    max_clock_error_s: f64,
    phy: &PhyConfig,
    payload_bytes: usize,
) -> OverheadProfile {
    let sessions = crate::analysis::sessions_per_hour(drift_ppm, max_clock_error_s);
    let frames_per_hour = (3600.0 * EU868_DUTY_CYCLE / phy.airtime(payload_bytes)).floor();
    OverheadProfile {
        sync_sessions_per_hour: sessions,
        sync_budget_fraction: if frames_per_hour > 0.0 {
            sessions / frames_per_hour
        } else {
            f64::INFINITY
        },
        payload_time_fraction: 8.0 / payload_bytes as f64,
        time_bytes_per_record: 8.0,
    }
}

/// Synchronization-free approach: no sync traffic, 18-bit elapsed fields.
pub fn sync_free_profile(payload_bytes: usize) -> OverheadProfile {
    let bytes = ELAPSED_BITS as f64 / 8.0;
    OverheadProfile {
        sync_sessions_per_hour: 0.0,
        sync_budget_fraction: 0.0,
        payload_time_fraction: bytes / payload_bytes as f64,
        time_bytes_per_record: bytes,
    }
}

/// Sync sessions per hour needed to hold `max_error_s` at `drift_ppm`
/// (paper: 14.4 per hour for 10 ms at 40 ppm).
pub fn sessions_per_hour(drift_ppm: f64, max_error_s: f64) -> f64 {
    if max_error_s <= 0.0 {
        return f64::INFINITY;
    }
    3600.0 * drift_ppm.abs() * 1e-6 / max_error_s
}

/// End-to-end timestamping uncertainty budget of the synchronization-free
/// approach (paper §3.2 and §6): device-side transmit latency jitter
/// (≈ 3 ms on commodity stacks \[9\]) plus the gateway's PHY timestamping
/// error (microseconds on SoftLoRa) plus propagation (microseconds) plus
/// the elapsed-field quantisation (0.5 ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyBudget {
    /// Device transmit-path latency jitter, seconds.
    pub tx_latency_jitter_s: f64,
    /// Gateway PHY timestamping error, seconds.
    pub phy_timestamp_error_s: f64,
    /// One-way propagation time, seconds.
    pub propagation_s: f64,
    /// Elapsed-field quantisation, seconds.
    pub quantisation_s: f64,
}

impl AccuracyBudget {
    /// The paper's commodity-stack budget: 3 ms TX jitter, 20 µs PHY
    /// timestamping, 1 km propagation, 1 ms-resolution elapsed fields.
    pub fn commodity() -> Self {
        AccuracyBudget {
            tx_latency_jitter_s: 3e-3,
            phy_timestamp_error_s: 20e-6,
            propagation_s: 3.6e-6,
            quantisation_s: 0.5e-3,
        }
    }

    /// Total worst-case uncertainty, seconds.
    pub fn total_s(&self) -> f64 {
        self.tx_latency_jitter_s
            + self.phy_timestamp_error_s
            + self.propagation_s
            + self.quantisation_s
    }

    /// Whether the budget meets a requirement.
    pub fn meets(&self, requirement_s: f64) -> bool {
        self.total_s() <= requirement_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::SpreadingFactor;

    #[test]
    fn paper_sessions_number() {
        assert!((sessions_per_hour(40.0, 0.010) - 14.4).abs() < 0.01);
        assert!(sessions_per_hour(40.0, 0.0).is_infinite());
    }

    #[test]
    fn sync_based_consumes_large_budget_fraction() {
        // At SF12 with ~21–24 frames/hour, 14.4 sync sessions eat more
        // than half the frame budget.
        let phy = PhyConfig::uplink(SpreadingFactor::Sf12);
        let p = sync_based_profile(40.0, 0.010, &phy, 30);
        assert!(p.sync_budget_fraction > 0.5, "{}", p.sync_budget_fraction);
        assert!((p.payload_time_fraction - 0.2667).abs() < 0.01); // 27 %
    }

    #[test]
    fn sync_free_is_cheap() {
        let p = sync_free_profile(30);
        assert_eq!(p.sync_sessions_per_hour, 0.0);
        assert_eq!(p.sync_budget_fraction, 0.0);
        assert!(p.payload_time_fraction < 0.08);
        assert!((p.time_bytes_per_record - 2.25).abs() < 1e-12);
    }

    #[test]
    fn comparison_favours_sync_free_across_payloads() {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf12);
        for payload in [10usize, 20, 30, 51] {
            let based = sync_based_profile(40.0, 0.010, &phy, payload);
            let free = sync_free_profile(payload);
            assert!(free.payload_time_fraction < based.payload_time_fraction);
            assert!(free.sync_budget_fraction < based.sync_budget_fraction);
        }
    }

    #[test]
    fn accuracy_budget_is_millisecond_scale() {
        // Paper: "these issues cause a sum uncertainty of about 3 ms only"
        // — the TX latency dominates; total < 5 ms, meets second-level and
        // 10 ms-level requirements but not microsecond ones.
        let b = AccuracyBudget::commodity();
        assert!(b.total_s() < 5e-3, "{}", b.total_s());
        assert!(b.meets(0.01));
        assert!(b.meets(1.0));
        assert!(!b.meets(100e-6));
        // The gateway-side (SoftLoRa) part is microseconds.
        assert!(b.phy_timestamp_error_s < 50e-6);
    }
}
