//! Replay-attack detection by FB-consistency checking (paper §7.2).
//!
//! After the commodity radio decodes a frame (yielding the *claimed*
//! source device ID), the SoftLoRa gateway compares the FB estimated from
//! the frame's own chirps with the claimed device's tracked FB band. A
//! replayed frame carries the replay chain's additional bias — at least
//! 543 Hz (0.62 ppm) for the paper's USRP, far above the 120 Hz
//! estimation resolution — and is flagged; flagged frames are dropped and
//! never update the database.

use crate::fb_db::{FbCheck, FbDatabase, FbEviction};

/// Detection verdict for one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayVerdict {
    /// FB consistent with the claimed device: accept and timestamp.
    Genuine {
        /// FB deviation from the device's tracked centre, Hz.
        deviation_hz: f64,
    },
    /// FB inconsistent: replay detected, frame dropped.
    ReplayDetected {
        /// FB deviation from the device's tracked centre, Hz.
        deviation_hz: f64,
        /// The exceeded band half-width, Hz.
        band_hz: f64,
    },
    /// No (or insufficient) FB history for the device: accept but learn
    /// (cold-start policy — the paper builds the database "offline or at
    /// run time ... in the absence of attacks").
    LearningPhase,
}

impl ReplayVerdict {
    /// Whether the frame is flagged as a replay.
    pub fn is_replay(&self) -> bool {
        matches!(self, ReplayVerdict::ReplayDetected { .. })
    }

    /// Whether the frame may be used for data timestamping.
    pub fn is_trustworthy(&self) -> bool {
        !self.is_replay()
    }
}

/// Running detection statistics (for ROC-style evaluation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionStats {
    /// Replays correctly flagged.
    pub true_positives: u64,
    /// Genuine frames wrongly flagged.
    pub false_positives: u64,
    /// Replays missed.
    pub false_negatives: u64,
    /// Genuine frames correctly passed.
    pub true_negatives: u64,
}

impl std::ops::AddAssign for DetectionStats {
    fn add_assign(&mut self, rhs: DetectionStats) {
        self.true_positives += rhs.true_positives;
        self.false_positives += rhs.false_positives;
        self.false_negatives += rhs.false_negatives;
        self.true_negatives += rhs.true_negatives;
    }
}

impl DetectionStats {
    /// Detection rate `TP / (TP + FN)`; 1.0 when no replays were seen.
    pub fn detection_rate(&self) -> f64 {
        let total = self.true_positives + self.false_negatives;
        if total == 0 {
            1.0
        } else {
            self.true_positives as f64 / total as f64
        }
    }

    /// False-alarm rate `FP / (FP + TN)`; 0.0 when no genuine frames seen.
    pub fn false_alarm_rate(&self) -> f64 {
        let total = self.false_positives + self.true_negatives;
        if total == 0 {
            0.0
        } else {
            self.false_positives as f64 / total as f64
        }
    }

    /// Records an outcome given ground truth.
    pub fn record(&mut self, flagged: bool, actually_replay: bool) {
        match (flagged, actually_replay) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, true) => self.false_negatives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }
}

/// The FB-based replay detector: database plus accept/learn policy.
#[derive(Debug, Clone)]
pub struct ReplayDetector {
    db: FbDatabase,
    stats: DetectionStats,
}

impl ReplayDetector {
    /// Creates a detector over an FB database.
    pub fn new(db: FbDatabase) -> Self {
        ReplayDetector { db, stats: DetectionStats::default() }
    }

    /// Read access to the database.
    pub fn db(&self) -> &FbDatabase {
        &self.db
    }

    /// Mutable access to the database (state restore).
    pub fn db_mut(&mut self) -> &mut FbDatabase {
        &mut self.db
    }

    /// Accumulated evaluation statistics.
    pub fn stats(&self) -> DetectionStats {
        self.stats
    }

    /// Overwrites the evaluation statistics (state restore).
    pub fn restore_stats(&mut self, stats: DetectionStats) {
        self.stats = stats;
    }

    /// Checks a frame's FB without touching the database.
    pub fn check(&self, claimed_dev: u32, fb_hz: f64) -> ReplayVerdict {
        match self.db.check(claimed_dev, fb_hz) {
            FbCheck::Consistent { deviation_hz } => ReplayVerdict::Genuine { deviation_hz },
            FbCheck::Inconsistent { deviation_hz, band_hz } => {
                ReplayVerdict::ReplayDetected { deviation_hz, band_hz }
            }
            FbCheck::Unknown => ReplayVerdict::LearningPhase,
        }
    }

    /// Records an *accepted* frame's FB into the device history. Callers
    /// must not learn from flagged frames. When the database is at its
    /// capacity bound this may evict another device; the dropped history
    /// is handed back for auditing.
    pub fn learn(&mut self, claimed_dev: u32, fb_hz: f64) -> Option<FbEviction> {
        self.db.update(claimed_dev, fb_hz)
    }

    /// Records a scored outcome (ROC bookkeeping) for a non-learning
    /// verdict.
    pub fn score(&mut self, verdict: ReplayVerdict, actually_replay: bool) {
        if !matches!(verdict, ReplayVerdict::LearningPhase) {
            self.stats.record(verdict.is_replay(), actually_replay);
        }
    }

    /// Checks a frame: `claimed_dev` from the decoded header, `fb_hz` from
    /// the SDR chirp analysis. On a non-flagged verdict the database is
    /// updated with the new FB; flagged frames never update it.
    pub fn check_and_update(&mut self, claimed_dev: u32, fb_hz: f64) -> ReplayVerdict {
        let verdict = self.check(claimed_dev, fb_hz);
        if verdict.is_trustworthy() {
            self.db.update(claimed_dev, fb_hz);
        }
        verdict
    }

    /// Like [`ReplayDetector::check_and_update`], but also scores the
    /// verdict against ground truth for evaluation.
    pub fn check_scored(
        &mut self,
        claimed_dev: u32,
        fb_hz: f64,
        actually_replay: bool,
    ) -> ReplayVerdict {
        let verdict = self.check_and_update(claimed_dev, fb_hz);
        // Learning-phase frames are excluded from scoring: the paper
        // assumes the database is built in the absence of attacks.
        if !matches!(verdict, ReplayVerdict::LearningPhase) {
            self.stats.record(verdict.is_replay(), actually_replay);
        }
        verdict
    }

    /// Pre-loads a device's history (offline database construction).
    pub fn preload(&mut self, dev_addr: u32, fbs_hz: &[f64]) {
        for &fb in fbs_hz {
            self.db.update(dev_addr, fb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> ReplayDetector {
        ReplayDetector::new(FbDatabase::new(16, 3, 360.0, 4.0))
    }

    #[test]
    fn learning_then_genuine_then_replay() {
        let mut det = detector();
        // Cold start: first frames learn.
        for _ in 0..3 {
            let v = det.check_and_update(1, -22_000.0);
            assert_eq!(v, ReplayVerdict::LearningPhase);
        }
        // Genuine frame with normal jitter.
        let v = det.check_and_update(1, -22_040.0);
        assert!(matches!(v, ReplayVerdict::Genuine { .. }));
        // Replay with the USRP's −543 Hz artefact.
        let v = det.check_and_update(1, -22_040.0 - 543.0);
        assert!(v.is_replay());
        assert!(!v.is_trustworthy());
    }

    #[test]
    fn flagged_frames_do_not_poison_database() {
        let mut det = detector();
        det.preload(1, &[-22_000.0, -22_010.0, -21_990.0, -22_005.0]);
        let before = det.db().tracked_center_hz(1).unwrap();
        let v = det.check_and_update(1, -22_700.0);
        assert!(v.is_replay());
        let after = det.db().tracked_center_hz(1).unwrap();
        assert_eq!(before, after, "database changed after flagged frame");
    }

    #[test]
    fn genuine_frames_update_database() {
        let mut det = detector();
        det.preload(1, &[-22_000.0; 4]);
        let len_before = det.db().history_len(1);
        det.check_and_update(1, -22_020.0);
        assert_eq!(det.db().history_len(1), len_before + 1);
    }

    #[test]
    fn scoring_tracks_rates() {
        let mut det = detector();
        det.preload(1, &[-22_000.0; 5]);
        // 10 genuine frames with small jitter.
        for k in 0..10 {
            det.check_scored(1, -22_000.0 + 25.0 * ((k % 3) as f64 - 1.0), false);
        }
        // 10 replays with the USRP artefact.
        for _ in 0..10 {
            det.check_scored(1, -22_600.0, true);
        }
        let s = det.stats();
        assert_eq!(s.detection_rate(), 1.0, "{s:?}");
        assert_eq!(s.false_alarm_rate(), 0.0, "{s:?}");
    }

    #[test]
    fn learning_phase_not_scored() {
        let mut det = detector();
        det.check_scored(9, -20_000.0, false);
        assert_eq!(det.stats(), DetectionStats::default());
    }

    #[test]
    fn sub_resolution_attacker_evades() {
        // Paper: "to bypass the above detection mechanism, the attacker
        // will need SDRs with FBs within 0.14 ppm" — verify the detector's
        // blind spot is exactly the band.
        let mut det = detector();
        det.preload(1, &[-22_000.0; 8]);
        let v = det.check_and_update(1, -22_000.0 - 100.0); // 0.11 ppm chain
        assert!(!v.is_replay(), "sub-band offset should evade: {v:?}");
    }

    #[test]
    fn stats_edge_rates() {
        let s = DetectionStats::default();
        assert_eq!(s.detection_rate(), 1.0);
        assert_eq!(s.false_alarm_rate(), 0.0);
        let mut s2 = DetectionStats::default();
        s2.record(false, true);
        assert_eq!(s2.detection_rate(), 0.0);
        s2.record(true, false);
        assert_eq!(s2.false_alarm_rate(), 1.0);
    }
}
