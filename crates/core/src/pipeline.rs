//! The staged SoftLoRa gateway pipeline (paper §5.3, Fig. 4), as explicit
//! types.
//!
//! The defence is a fixed chain; this module names each link and the typed
//! intermediates flowing between them:
//!
//! ```text
//! RadioFrontEnd ─▶ CaptureSynth ─▶ OnsetStage ─▶ FbStage ─▶ DetectStage ─▶ MacStage
//!  RadioDecision    CaptureOutput    OnsetOutput   FbEstimate  ReplayVerdict  SoftLoraVerdict
//! ```
//!
//! The first four stages — the **front half** — are pure per-delivery
//! functions of `(configuration, gateway seed, frame index)`: they take
//! `&self`, draw all randomness from a per-delivery generator derived from
//! the seed and index, and can therefore run for many deliveries in
//! parallel. The detector and LoRaWAN MAC — the **back half** — are
//! stateful (FB history, frame counters) and must run sequentially in
//! arrival order. [`crate::SoftLoraGateway::process_batch`] exploits
//! exactly this split.
//!
//! The onset is picked **once** per frame, in [`OnsetStage`], and its
//! output feeds both the PHY arrival timestamp and the FB estimator's
//! chirp window. (The previous monolithic `process()` ran the AIC picker
//! twice per frame — the hottest redundant computation in the repo;
//! [`OnsetStage::picker_runs`] exists so tests can pin this down.)

use crate::config::SoftLoraConfig;
use crate::fb_db::FbDatabase;
use crate::fb_estimator::{FbEstimate, FbEstimator, FbMethod};
use crate::observer::Stage;
use crate::phy_timestamp::{PhyTimestamp, PhyTimestamper};
use crate::replay_detect::{DetectionStats, ReplayDetector, ReplayVerdict};
use crate::SoftLoraError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use softlora_dsp::scratch::with_thread_scratch;
use softlora_dsp::DspScratch;
use softlora_lorawan::frame::DataFrame;
use softlora_lorawan::{DeviceKeys, Gateway as LorawanGateway, RxVerdict};
use softlora_phy::noise::{GaussianNoise, NoiseSource};
use softlora_phy::oscillator::Oscillator;
use softlora_phy::rn2483::{ReceptionOutcome, Rn2483Model};
use softlora_phy::sdr::{IqCapture, SdrReceiver};
use softlora_sim::Delivery;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Derives the per-delivery random stream: every draw the front half makes
/// for frame `frame_index` comes from this generator, so processing a
/// delivery is a pure function of `(seed, index)` regardless of whether it
/// runs sequentially or on a batch worker thread.
fn delivery_rng(seed: u64, frame_index: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ frame_index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0x50F7,
    )
}

/// Stage 1 output: what the commodity radio did with the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadioDecision {
    /// The chip-level outcome.
    pub outcome: ReceptionOutcome,
    /// Whether the legitimate frame reached the host (and the SDR path
    /// should therefore analyse the capture).
    pub host_received: bool,
}

/// Stage 1: the commodity radio reception model.
#[derive(Debug, Clone, Default)]
pub struct RadioFrontEnd {
    model: Rn2483Model,
}

impl RadioFrontEnd {
    /// Builds the stage with the paper's Table-1 calibration.
    pub fn new() -> Self {
        RadioFrontEnd { model: Rn2483Model::new() }
    }

    /// Decides whether the frame survives jamming and the demodulation
    /// floor.
    pub fn evaluate(&self, config: &SoftLoraConfig, delivery: &Delivery) -> RadioDecision {
        let outcome = self.model.receive(
            &config.phy,
            delivery.bytes.len(),
            delivery.snr_db,
            delivery.jamming,
        );
        let host_received =
            matches!(outcome, ReceptionOutcome::Legitimate | ReceptionOutcome::BothReceived);
        RadioDecision { outcome, host_received }
    }
}

/// Stage 2 output: the synthesised SDR capture.
#[derive(Debug, Clone)]
pub struct CaptureOutput {
    /// The noisy I/Q capture of the first preamble chirps.
    pub capture: IqCapture,
    /// Noise-only lead samples before the signal onset region.
    pub lead: usize,
}

impl CaptureOutput {
    /// Returns the capture's I/Q buffers to a scratch arena once the
    /// per-frame analysis is done with them — the other half of
    /// [`CaptureSynth::synthesise_with`]'s checkout.
    pub fn recycle(self, scratch: &mut DspScratch) {
        scratch.put_real(self.capture.i);
        scratch.put_real(self.capture.q);
    }
}

/// Stage 2: SDR capture synthesis — the first preamble chirps at 2.4 Msps
/// with the delivery's carrier bias/phase, plus channel noise at the
/// delivery SNR.
#[derive(Debug, Clone)]
pub struct CaptureSynth {
    sdr: SdrReceiver,
    seed: u64,
    capture_chirps: usize,
    capture_lead: usize,
}

impl CaptureSynth {
    /// Builds the stage from the gateway configuration and seed.
    pub fn new(config: &SoftLoraConfig, seed: u64) -> Self {
        let osc = Oscillator::sample_rtl_sdr(config.phy.channel.center_hz, seed);
        let mut sdr = SdrReceiver::new(osc);
        if !config.adc_quantisation {
            sdr = sdr.without_quantisation();
        }
        CaptureSynth {
            sdr,
            seed,
            capture_chirps: config.capture_chirps,
            capture_lead: config.capture_lead,
        }
    }

    /// The SDR receiver's oscillator bias (δRx), Hz.
    pub fn receiver_bias_hz(&self) -> f64 {
        self.sdr.receiver_bias_hz()
    }

    /// The SDR sample rate, Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sdr.sample_rate()
    }

    /// Synthesises the capture for one delivery. Deterministic in
    /// `(gateway seed, frame_index)`; takes `&self` so independent
    /// deliveries can be captured concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Phy`] when chirp synthesis fails.
    pub fn synthesise(
        &self,
        config: &SoftLoraConfig,
        delivery: &Delivery,
        frame_index: u64,
    ) -> Result<CaptureOutput, SoftLoraError> {
        with_thread_scratch(|scratch| self.synthesise_with(config, delivery, frame_index, scratch))
    }

    /// [`CaptureSynth::synthesise`] against a caller-owned scratch arena:
    /// the waveform staging buffer and the capture's I/Q vectors come
    /// from the pool, so a warm worker synthesises captures without
    /// allocating. Return the capture's buffers via
    /// [`CaptureOutput::recycle`] once the onset/FB stages are done with
    /// them. Deterministic in `(gateway seed, frame_index)`, exactly as
    /// the allocating API (which delegates here).
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Phy`] when chirp synthesis fails.
    pub fn synthesise_with(
        &self,
        config: &SoftLoraConfig,
        delivery: &Delivery,
        frame_index: u64,
        scratch: &mut DspScratch,
    ) -> Result<CaptureOutput, SoftLoraError> {
        let mut rng = delivery_rng(self.seed, frame_index);
        let lead = self.capture_lead + (rng.random::<u64>() % 200) as usize;
        let theta_rx = 2.0 * std::f64::consts::PI * rng.random::<f64>();
        let noise_seed = rng.random::<u64>();
        // Capture one chirp beyond the configured analysis window: the
        // real preamble has 8 identical up-chirps, so when a low-SNR onset
        // pick lands late the analysis window still covers genuine
        // preamble signal instead of running off the buffer.
        let mut z = scratch.take_complex_empty();
        let synth = self.sdr.capture_chirps_with_phase_into(
            &config.phy,
            self.capture_chirps + 1,
            delivery.carrier_bias_hz,
            delivery.carrier_phase,
            1.0,
            lead,
            theta_rx,
            &mut z,
        );
        if let Err(e) = synth {
            scratch.put_complex(z);
            return Err(SoftLoraError::Phy(e));
        }
        // Add noise at the delivery SNR (power referenced to the unit-
        // amplitude chirp: signal power = 1).
        let noise_power = 10f64.powf(-delivery.snr_db / 10.0);
        let mut src = GaussianNoise::with_power(noise_power, noise_seed);
        src.add_to(&mut z);
        let mut i = scratch.take_real_empty();
        i.extend(z.iter().map(|c| c.re));
        let mut q = scratch.take_real_empty();
        q.extend(z.iter().map(|c| c.im));
        scratch.put_complex(z);
        Ok(CaptureOutput {
            capture: IqCapture { i, q, sample_rate: self.sdr.sample_rate(), true_onset: lead },
            lead,
        })
    }
}

/// Stage 3 output: the PHY timestamp and its mapping to the gateway clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnsetOutput {
    /// The onset pick within the capture.
    pub timestamp: PhyTimestamp,
    /// PHY arrival instant on the gateway's global clock, seconds.
    pub phy_arrival_s: f64,
}

/// Stage 3: microsecond PHY-layer signal timestamping. The single onset
/// pick made here feeds **both** the data-timestamping path and the FB
/// estimator (paper §6: "microseconds-accurate PHY signal timestamping is
/// a prerequisite of the FB estimation").
#[derive(Debug)]
pub struct OnsetStage {
    timestamper: PhyTimestamper,
    picks: AtomicU64,
}

impl OnsetStage {
    /// Builds the stage around a timestamper.
    pub fn new(timestamper: PhyTimestamper) -> Self {
        OnsetStage { timestamper, picks: AtomicU64::new(0) }
    }

    /// The underlying timestamper.
    pub fn timestamper(&self) -> &PhyTimestamper {
        &self.timestamper
    }

    /// How many times the onset picker has run — exactly once per frame
    /// that reached the SDR path. Tests use this to pin down that the
    /// pick is not recomputed downstream.
    pub fn picker_runs(&self) -> u64 {
        self.picks.load(Ordering::Relaxed)
    }

    /// Picks the onset and maps it to the gateway clock, given the true
    /// arrival time the capture was triggered by.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when the capture is too short.
    pub fn pick(
        &self,
        capture: &IqCapture,
        delivery_arrival_s: f64,
    ) -> Result<OnsetOutput, SoftLoraError> {
        with_thread_scratch(|scratch| self.pick_with(capture, delivery_arrival_s, scratch))
    }

    /// [`OnsetStage::pick`] against a caller-owned scratch arena — the
    /// per-worker steady-state path (identical pick; the picker's
    /// intermediates reuse pooled buffers).
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when the capture is too short.
    pub fn pick_with(
        &self,
        capture: &IqCapture,
        delivery_arrival_s: f64,
        scratch: &mut DspScratch,
    ) -> Result<OnsetOutput, SoftLoraError> {
        self.picks.fetch_add(1, Ordering::Relaxed);
        let timestamp = self.timestamper.timestamp_with(capture, scratch)?;
        // The capture buffer started (true_onset · dt) before the frame
        // arrived; the PHY arrival is the buffer start plus the detected
        // onset.
        let capture_start_s = delivery_arrival_s - capture.true_onset as f64 * capture.dt();
        Ok(OnsetOutput { timestamp, phy_arrival_s: capture_start_s + timestamp.onset_s })
    }
}

/// Stage 4: frequency-bias estimation from the second captured chirp,
/// with the estimator chosen by operating SNR.
#[derive(Debug, Clone)]
pub struct FbStage {
    estimator: FbEstimator,
    ls_below_snr_db: f64,
    ls_method: FbMethod,
}

impl FbStage {
    /// Builds the stage from the gateway configuration and SDR rate.
    pub fn new(config: &SoftLoraConfig, sample_rate: f64) -> Self {
        FbStage {
            estimator: FbEstimator::new(&config.phy, sample_rate),
            ls_below_snr_db: config.ls_below_snr_db,
            ls_method: config.ls_method,
        }
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &FbEstimator {
        &self.estimator
    }

    /// The estimator the SNR policy selects for a delivery.
    pub fn method_for_snr(&self, snr_db: f64) -> FbMethod {
        if snr_db >= self.ls_below_snr_db {
            FbMethod::LinearRegression
        } else {
            self.ls_method
        }
    }

    /// Estimates the FB from the capture, reusing the onset picked by
    /// [`OnsetStage`].
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when the capture does not hold
    /// two chirps after the onset.
    pub fn estimate(
        &self,
        capture: &IqCapture,
        onset: &OnsetOutput,
        snr_db: f64,
    ) -> Result<FbEstimate, SoftLoraError> {
        with_thread_scratch(|scratch| self.estimate_with(capture, onset, snr_db, scratch))
    }

    /// [`FbStage::estimate`] against a caller-owned scratch arena — the
    /// per-worker steady-state path (identical estimate; the estimator's
    /// intermediates reuse pooled buffers).
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when the capture does not hold
    /// two chirps after the onset.
    pub fn estimate_with(
        &self,
        capture: &IqCapture,
        onset: &OnsetOutput,
        snr_db: f64,
        scratch: &mut DspScratch,
    ) -> Result<FbEstimate, SoftLoraError> {
        let noise_power = 10f64.powf(-snr_db / 10.0);
        self.estimator.estimate_from_capture_with(
            capture,
            onset.timestamp.onset_sample,
            self.method_for_snr(snr_db),
            noise_power,
            scratch,
        )
    }
}

/// Stage 5: the stateful FB-consistency replay check. Sequential — the
/// database must observe frames in arrival order.
#[derive(Debug, Clone)]
pub struct DetectStage {
    detector: ReplayDetector,
}

impl DetectStage {
    /// Builds the stage from the gateway configuration.
    pub fn new(config: &SoftLoraConfig) -> Self {
        DetectStage {
            detector: ReplayDetector::new(
                FbDatabase::new(32, config.warmup_frames, config.band_floor_hz, config.band_sigma)
                    .with_max_devices(config.max_tracked_devices),
            ),
        }
    }

    /// Read access to the FB database.
    pub fn db(&self) -> &FbDatabase {
        self.detector.db()
    }

    /// Accumulated evaluation statistics.
    pub fn stats(&self) -> DetectionStats {
        self.detector.stats()
    }

    /// Pre-loads a device's FB history (offline database construction).
    pub fn preload(&mut self, dev_addr: u32, fbs_hz: &[f64]) {
        self.detector.preload(dev_addr, fbs_hz);
    }

    /// Checks a frame's FB against the claimed device's history and scores
    /// the verdict against ground truth. Does **not** learn — learning is
    /// deferred until the MAC layer accepts the frame.
    pub fn check(&mut self, claimed_dev: u32, fb_hz: f64, actually_replay: bool) -> ReplayVerdict {
        let verdict = self.detector.check(claimed_dev, fb_hz);
        self.detector.score(verdict, actually_replay);
        verdict
    }

    /// Records an accepted frame's FB into the claimed device's history;
    /// a capacity eviction comes back as an audit record.
    pub fn learn(&mut self, claimed_dev: u32, fb_hz: f64) -> Option<crate::fb_db::FbEviction> {
        self.detector.learn(claimed_dev, fb_hz)
    }
}

/// Stage 6: LoRaWAN verification (MIC, counter, device lookup) and
/// synchronization-free record timestamping. Sequential — frame counters
/// are per-device monotonic state.
#[derive(Debug, Clone, Default)]
pub struct MacStage {
    lorawan: LorawanGateway,
}

impl MacStage {
    /// Builds an empty MAC stage.
    pub fn new() -> Self {
        MacStage { lorawan: LorawanGateway::new() }
    }

    /// Provisions a device's LoRaWAN session keys.
    pub fn provision(&mut self, dev_addr: u32, keys: DeviceKeys) {
        self.lorawan.provision(dev_addr, keys);
    }

    /// Verifies the frame and timestamps its records at the PHY arrival
    /// instant.
    pub fn verify(&mut self, bytes: &[u8], phy_arrival_s: f64) -> RxVerdict {
        self.lorawan.receive(bytes, phy_arrival_s)
    }

    /// Per-device last-accepted frame counters (state export).
    pub fn session_fcnts(&self) -> Vec<(u32, u16)> {
        self.lorawan.session_fcnts()
    }

    /// Reinstates a device's last-accepted frame counter (state restore);
    /// ignored for unprovisioned devices.
    pub fn restore_session_fcnt(&mut self, dev_addr: u32, fcnt: u16) {
        self.lorawan.restore_session_fcnt(dev_addr, fcnt);
    }

    /// Accepted/rejected frame totals (state export).
    pub fn frame_counts(&self) -> (u64, u64) {
        (self.lorawan.accepted_count(), self.lorawan.rejected_count())
    }

    /// Overwrites the accepted/rejected totals (state restore).
    pub fn restore_frame_counts(&mut self, accepted: u64, rejected: u64) {
        self.lorawan.restore_frame_counts(accepted, rejected);
    }
}

/// A stage timing sample: which stage ran and for how long, seconds.
pub type StageTiming = (Stage, f64);

/// Per-stage latency histograms in the process-wide telemetry registry
/// (`gateway_stage_ns{stage="radio"|…|"mac"}`).
///
/// Handles are resolved once at pipeline construction; recording a
/// sample on the warm path is three relaxed atomic adds — the
/// zero-alloc pins (`zero_alloc_telemetry.rs`) cover this path.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    histograms: [softlora_telemetry::Histogram; Stage::ALL.len()],
}

impl StageMetrics {
    /// Resolves the six per-stage histogram handles.
    pub fn new() -> Self {
        let registry = softlora_telemetry::global();
        StageMetrics {
            histograms: Stage::ALL.map(|stage| {
                registry.histogram_with("gateway_stage_ns", &[("stage", stage.name())])
            }),
        }
    }

    /// Records one stage's elapsed wall time (seconds → nanoseconds).
    #[inline]
    pub fn record(&self, stage: Stage, elapsed_s: f64) {
        self.histograms[stage as usize].record((elapsed_s * 1e9) as u64);
    }
}

impl Default for StageMetrics {
    fn default() -> Self {
        StageMetrics::new()
    }
}

/// The front half's stage-timing samples, held inline: the front half
/// runs at most four stages, so a fixed-size array (instead of the
/// former `Vec<StageTiming>`) keeps per-frame telemetry off the heap —
/// part of the allocation-free steady state pinned by the
/// `softlora-bench` zero-allocation tests.
#[derive(Debug, Clone, Copy)]
pub struct StageTimings {
    len: u8,
    samples: [StageTiming; Self::CAPACITY],
}

impl StageTimings {
    /// The front half has four stages (radio → capture → onset → FB).
    pub const CAPACITY: usize = 4;

    /// An empty sample set.
    pub fn new() -> Self {
        StageTimings { len: 0, samples: [(Stage::RadioFrontEnd, 0.0); Self::CAPACITY] }
    }

    /// Records one stage's elapsed time.
    pub(crate) fn push(&mut self, stage: Stage, elapsed_s: f64) {
        assert!((self.len as usize) < Self::CAPACITY, "more samples than front-half stages");
        self.samples[self.len as usize] = (stage, elapsed_s);
        self.len += 1;
    }

    /// The recorded samples, in stage order.
    pub fn as_slice(&self) -> &[StageTiming] {
        &self.samples[..self.len as usize]
    }
}

impl Default for StageTimings {
    fn default() -> Self {
        StageTimings::new()
    }
}

impl std::ops::Deref for StageTimings {
    type Target = [StageTiming];

    fn deref(&self) -> &[StageTiming] {
        self.as_slice()
    }
}

/// Front-half result for one delivery: either the radio dropped it, or the
/// per-frame analysis (capture → onset → FB) completed.
#[derive(Debug, Clone)]
pub enum FrontFrame {
    /// The host never saw the frame; only [`Stage::RadioFrontEnd`] ran.
    NotReceived {
        /// The chip-level outcome.
        outcome: ReceptionOutcome,
        /// Timing of the stages that ran.
        timings: StageTimings,
    },
    /// The embarrassingly-parallel analysis completed.
    Analyzed(AnalyzedFrame),
}

/// Everything the stateful back half needs about an analysed delivery.
#[derive(Debug, Clone)]
pub struct AnalyzedFrame {
    /// Source address claimed in the (unverified) header.
    pub claimed_dev: u32,
    /// The frame's estimated frequency bias.
    pub fb: FbEstimate,
    /// The single onset pick and its gateway-clock mapping.
    pub onset: OnsetOutput,
    /// Timing of the front-half stages.
    pub timings: StageTimings,
}

/// The assembled six-stage pipeline.
///
/// Construct via [`crate::GatewayBuilder`] (or
/// [`crate::SoftLoraGateway::new`]); drive via
/// [`crate::SoftLoraGateway::process`] /
/// [`crate::SoftLoraGateway::process_batch`], or call the stages directly
/// for experiments that only need part of the chain.
#[derive(Debug)]
pub struct Pipeline {
    config: SoftLoraConfig,
    /// Stage 1: commodity radio model.
    pub radio: RadioFrontEnd,
    /// Stage 2: SDR capture synthesis.
    pub capture: CaptureSynth,
    /// Stage 3: PHY onset timestamping.
    pub onset: OnsetStage,
    /// Stage 4: FB estimation.
    pub fb: FbStage,
    /// Stage 5: replay detection (stateful).
    pub detect: DetectStage,
    /// Stage 6: LoRaWAN MAC (stateful).
    pub mac: MacStage,
    /// Per-stage latency histograms (process-wide registry handles).
    pub stage_metrics: StageMetrics,
}

impl Pipeline {
    /// Assembles the pipeline from a configuration and seed.
    ///
    /// Applies `config.fast_dsp` to the **process-wide** DSP kernel
    /// switch (see [`softlora_dsp::set_fast_kernels`]): scratch arenas
    /// and thread-local planners are shared across pipelines, so the
    /// kernel choice cannot be per-instance. Build pipelines before the
    /// first frame if mixing configurations.
    pub fn new(config: SoftLoraConfig, seed: u64) -> Self {
        softlora_dsp::set_fast_kernels(config.fast_dsp);
        let capture = CaptureSynth::new(&config, seed);
        let fb = FbStage::new(&config, capture.sample_rate());
        let onset = OnsetStage::new(PhyTimestamper::new(config.onset_method));
        let detect = DetectStage::new(&config);
        Pipeline {
            radio: RadioFrontEnd::new(),
            capture,
            onset,
            fb,
            detect,
            mac: MacStage::new(),
            stage_metrics: StageMetrics::new(),
            config,
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SoftLoraConfig {
        &self.config
    }

    /// Runs stages 1–4 for one delivery. Pure in `(seed, frame_index)`:
    /// safe to call concurrently for independent deliveries.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError`] only for infrastructure failures (capture
    /// synthesis or analysis windows); radio-level drops are data, not
    /// errors.
    pub fn front_half(
        &self,
        delivery: &Delivery,
        frame_index: u64,
    ) -> Result<FrontFrame, SoftLoraError> {
        with_thread_scratch(|scratch| self.front_half_with(delivery, frame_index, scratch))
    }

    /// [`Pipeline::front_half`] against a caller-owned scratch arena —
    /// the per-worker steady-state path. The whole per-frame signal chain
    /// (capture synthesis, onset pick, FB estimate) runs on pooled
    /// buffers and cached FFT plans; the ephemeral capture's I/Q vectors
    /// are recycled back into the arena before returning, so a warm
    /// worker analyses a delivery without heap allocations on the DSP
    /// path. Results are bit-for-bit identical to
    /// [`Pipeline::front_half`] (which delegates here with a thread-local
    /// arena).
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::front_half`].
    pub fn front_half_with(
        &self,
        delivery: &Delivery,
        frame_index: u64,
        scratch: &mut DspScratch,
    ) -> Result<FrontFrame, SoftLoraError> {
        let mut timings = StageTimings::new();

        let t = Instant::now();
        let radio = self.radio.evaluate(&self.config, delivery);
        let elapsed = t.elapsed().as_secs_f64();
        timings.push(Stage::RadioFrontEnd, elapsed);
        self.stage_metrics.record(Stage::RadioFrontEnd, elapsed);
        if !radio.host_received {
            return Ok(FrontFrame::NotReceived { outcome: radio.outcome, timings });
        }

        let t = Instant::now();
        let captured =
            self.capture.synthesise_with(&self.config, delivery, frame_index, scratch)?;
        let elapsed = t.elapsed().as_secs_f64();
        timings.push(Stage::CaptureSynth, elapsed);
        self.stage_metrics.record(Stage::CaptureSynth, elapsed);

        let t = Instant::now();
        let onset = self.onset.pick_with(&captured.capture, delivery.arrival_global_s, scratch);
        let onset = match onset {
            Ok(onset) => onset,
            Err(e) => {
                captured.recycle(scratch);
                return Err(e);
            }
        };
        let elapsed = t.elapsed().as_secs_f64();
        timings.push(Stage::Onset, elapsed);
        self.stage_metrics.record(Stage::Onset, elapsed);

        let t = Instant::now();
        let fb = self.fb.estimate_with(&captured.capture, &onset, delivery.snr_db, scratch);
        captured.recycle(scratch);
        let fb = fb?;
        let elapsed = t.elapsed().as_secs_f64();
        timings.push(Stage::Fb, elapsed);
        self.stage_metrics.record(Stage::Fb, elapsed);

        // The replay check needs the *claimed* source; peeking the header
        // requires no keys and no state.
        let claimed_dev = DataFrame::peek_header(&delivery.bytes)
            .map(|(_, addr, _)| addr)
            .unwrap_or(delivery.dev_addr);

        Ok(FrontFrame::Analyzed(AnalyzedFrame { claimed_dev, fb, onset, timings }))
    }
}
