//! Typed construction of [`SoftLoraGateway`]: configuration, device
//! provisioning, FB preloads and observers in one fluent chain.
//!
//! Before the builder, every experiment mutated [`SoftLoraConfig`] fields
//! by hand and then called `provision`/`preload_fb` imperatively; the
//! builder makes the whole gateway definition one expression:
//!
//! ```
//! use softlora::{FbMethod, OnsetMethod, SoftLoraGateway};
//! use softlora_phy::{PhyConfig, SpreadingFactor};
//!
//! let gw = SoftLoraGateway::builder(PhyConfig::uplink(SpreadingFactor::Sf7))
//!     .seed(42)
//!     .adc_quantisation(false)
//!     .onset_method(OnsetMethod::PowerAic)
//!     .ls_method(FbMethod::MatchedFilter)
//!     .warmup_frames(3)
//!     .build();
//! assert_eq!(gw.config().warmup_frames, 3);
//! ```

use crate::config::SoftLoraConfig;
use crate::fb_estimator::FbMethod;
use crate::gateway::SoftLoraGateway;
use crate::observer::GatewayObserver;
use crate::phy_timestamp::OnsetMethod;
use softlora_lorawan::DeviceKeys;
use softlora_phy::PhyConfig;

/// Fluent builder for [`SoftLoraGateway`]; see the module docs.
pub struct GatewayBuilder {
    config: SoftLoraConfig,
    seed: u64,
    devices: Vec<(u32, DeviceKeys)>,
    preloads: Vec<(u32, Vec<f64>)>,
    observers: Vec<Box<dyn GatewayObserver>>,
}

impl std::fmt::Debug for GatewayBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayBuilder")
            .field("config", &self.config)
            .field("seed", &self.seed)
            .field("devices", &self.devices.len())
            .field("preloads", &self.preloads.len())
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl GatewayBuilder {
    /// Starts from the paper-faithful defaults for `phy`.
    pub fn new(phy: PhyConfig) -> Self {
        GatewayBuilder {
            config: SoftLoraConfig::new(phy),
            seed: 0,
            devices: Vec::new(),
            preloads: Vec::new(),
            observers: Vec::new(),
        }
    }

    /// Starts from an existing configuration (all field defaults already
    /// chosen).
    pub fn from_config(config: SoftLoraConfig) -> Self {
        GatewayBuilder {
            config,
            seed: 0,
            devices: Vec::new(),
            preloads: Vec::new(),
            observers: Vec::new(),
        }
    }

    /// Seed for the SDR oscillator draw and all per-delivery randomness
    /// (deterministic runs).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Preamble chirps the SDR analyses per frame (the paper uses two).
    pub fn capture_chirps(mut self, chirps: usize) -> Self {
        self.config.capture_chirps = chirps;
        self
    }

    /// Noise-only lead samples before the signal onset region.
    pub fn capture_lead(mut self, samples: usize) -> Self {
        self.config.capture_lead = samples;
        self
    }

    /// Onset picker for PHY timestamping.
    pub fn onset_method(mut self, method: OnsetMethod) -> Self {
        self.config.onset_method = method;
        self
    }

    /// SNR threshold below which the least-squares FB path is used.
    pub fn ls_below_snr_db(mut self, snr_db: f64) -> Self {
        self.config.ls_below_snr_db = snr_db;
        self
    }

    /// Least-squares FB solver used below the SNR threshold.
    pub fn ls_method(mut self, method: FbMethod) -> Self {
        self.config.ls_method = method;
        self
    }

    /// Replay-detection tolerance band floor, Hz.
    pub fn band_floor_hz(mut self, hz: f64) -> Self {
        self.config.band_floor_hz = hz;
        self
    }

    /// Sigma multiplier of the adaptive tolerance band.
    pub fn band_sigma(mut self, sigma: f64) -> Self {
        self.config.band_sigma = sigma;
        self
    }

    /// Frames required before the FB database gives verdicts for a
    /// device. Stored as given — like setting
    /// [`SoftLoraConfig::warmup_frames`] directly — and the database
    /// itself enforces a minimum of one frame at construction.
    pub fn warmup_frames(mut self, frames: usize) -> Self {
        self.config.warmup_frames = frames;
        self
    }

    /// Device-capacity bound of the FB database (least-recently-updated
    /// devices are evicted beyond it).
    pub fn max_tracked_devices(mut self, devices: usize) -> Self {
        self.config.max_tracked_devices = devices;
        self
    }

    /// Whether to model ADC quantisation in the SDR captures.
    pub fn adc_quantisation(mut self, enabled: bool) -> Self {
        self.config.adc_quantisation = enabled;
        self
    }

    /// Provisions a device's LoRaWAN session keys.
    pub fn provision(mut self, dev_addr: u32, keys: DeviceKeys) -> Self {
        self.devices.push((dev_addr, keys));
        self
    }

    /// Pre-loads a device's FB history (offline database construction,
    /// paper §7.2).
    pub fn preload_fb(mut self, dev_addr: u32, fbs_hz: &[f64]) -> Self {
        self.preloads.push((dev_addr, fbs_hz.to_vec()));
        self
    }

    /// Attaches an event observer; may be called repeatedly.
    pub fn observer(mut self, observer: Box<dyn GatewayObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// The configuration as currently assembled.
    pub fn config(&self) -> &SoftLoraConfig {
        &self.config
    }

    /// Assembles the gateway.
    pub fn build(self) -> SoftLoraGateway {
        let mut gw = SoftLoraGateway::new(self.config, self.seed);
        for (dev_addr, keys) in self.devices {
            gw.provision(dev_addr, keys);
        }
        for (dev_addr, fbs) in self.preloads {
            gw.preload_fb(dev_addr, &fbs);
        }
        for observer in self.observers {
            gw.attach_observer(observer);
        }
        gw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::GatewayStats;
    use softlora_phy::SpreadingFactor;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn phy() -> PhyConfig {
        PhyConfig::uplink(SpreadingFactor::Sf7)
    }

    #[test]
    fn builder_round_trips_every_field() {
        let gw = SoftLoraGateway::builder(phy())
            .seed(9)
            .capture_chirps(3)
            .capture_lead(450)
            .onset_method(OnsetMethod::Aic)
            .ls_below_snr_db(4.0)
            .ls_method(FbMethod::DifferentialEvolution)
            .band_floor_hz(500.0)
            .band_sigma(2.5)
            .warmup_frames(7)
            .max_tracked_devices(5000)
            .adc_quantisation(false)
            .build();
        let c = gw.config();
        assert_eq!(c.capture_chirps, 3);
        assert_eq!(c.capture_lead, 450);
        assert_eq!(c.onset_method, OnsetMethod::Aic);
        assert_eq!(c.ls_below_snr_db, 4.0);
        assert_eq!(c.ls_method, FbMethod::DifferentialEvolution);
        assert_eq!(c.band_floor_hz, 500.0);
        assert_eq!(c.band_sigma, 2.5);
        assert_eq!(c.warmup_frames, 7);
        assert_eq!(c.max_tracked_devices, 5000);
        assert!(!c.adc_quantisation);
    }

    #[test]
    fn builder_equals_manual_construction() {
        // A builder-made gateway and a config-made gateway with the same
        // seed are observably identical (same receiver bias draw).
        let mut config = SoftLoraConfig::new(phy());
        config.adc_quantisation = false;
        config.warmup_frames = 2;
        let manual = SoftLoraGateway::new(config, 1234);
        let built = SoftLoraGateway::builder(phy())
            .adc_quantisation(false)
            .warmup_frames(2)
            .seed(1234)
            .build();
        assert_eq!(manual.receiver_bias_hz(), built.receiver_bias_hz());
        assert_eq!(manual.config().warmup_frames, built.config().warmup_frames);
    }

    #[test]
    fn builder_provisions_and_preloads() {
        let keys = softlora_lorawan::DeviceKeys::derive_for_tests(0xAA);
        let gw = SoftLoraGateway::builder(phy())
            .provision(0xAA, keys)
            .preload_fb(0xAA, &[-21_000.0; 5])
            .build();
        assert_eq!(gw.fb_database().history_len(0xAA), 5);
    }

    #[test]
    fn builder_attaches_observers() {
        let stats = Rc::new(RefCell::new(GatewayStats::default()));
        let gw = SoftLoraGateway::builder(phy()).observer(Box::new(Rc::clone(&stats))).build();
        assert_eq!(stats.borrow().frames(), 0);
        let _ = gw;
    }
}
