//! SoftLoRa gateway configuration.

use crate::fb_estimator::FbMethod;
use crate::phy_timestamp::OnsetMethod;
use softlora_phy::PhyConfig;

/// Tunable parameters of the SoftLoRa pipeline.
#[derive(Debug, Clone)]
pub struct SoftLoraConfig {
    /// PHY parameters of the monitored uplink channel.
    pub phy: PhyConfig,
    /// Preamble chirps the SDR captures per frame (the paper captures two:
    /// one for timestamping, one for FB estimation).
    pub capture_chirps: usize,
    /// Noise-only lead samples in each capture before the signal onset
    /// region (gives the onset pickers a noise baseline).
    pub capture_lead: usize,
    /// Onset picker for PHY timestamping.
    pub onset_method: OnsetMethod,
    /// FB estimator selection policy: SNRs at or above this threshold use
    /// the closed-form linear regression; below it, the least-squares
    /// search. The paper positions LS for "comparably lower SNRs", but the
    /// unwrap-based regression already starts slipping cycles near 0 dB,
    /// so the default hands over at +10 dB (the LS matched filter is cheap
    /// enough to be the workhorse).
    pub ls_below_snr_db: f64,
    /// Which least-squares solver to use below the threshold.
    pub ls_method: FbMethod,
    /// Replay detection tolerance band, Hz: a frame is flagged when its FB
    /// deviates from the device's tracked centre by more than
    /// `max(band_floor_hz, band_sigma × tracked std)`.
    pub band_floor_hz: f64,
    /// Sigma multiplier of the adaptive tolerance band.
    pub band_sigma: f64,
    /// Frames required before the FB database can give verdicts for a
    /// device (warm-up; verdicts are `Unknown` until then).
    pub warmup_frames: usize,
    /// Device-capacity bound of the FB database: beyond it, the
    /// least-recently-updated device's history is evicted. Defaults to
    /// unbounded; a production network server serving millions of devices
    /// sets this to its memory budget.
    pub max_tracked_devices: usize,
    /// Whether to model ADC quantisation in the SDR captures.
    pub adc_quantisation: bool,
    /// Whether the fast DSP kernels run (fused-stage FFT schedule,
    /// chunked dechirp multiplies, and the N/2 real-input transform).
    ///
    /// **Process-wide**: applied via
    /// [`softlora_dsp::set_fast_kernels`] when a pipeline is built,
    /// because scratch arenas and thread-local planners are shared
    /// across pipelines. Every fast path except the real-input
    /// transform is bit-identical to the reference kernels; the
    /// real-input transform is ulp-close and does not feed the default
    /// verdict path. Defaults to the `SOFTLORA_DSP_KERNEL` environment
    /// override if set, else `true`.
    pub fast_dsp: bool,
}

impl SoftLoraConfig {
    /// Defaults for a PHY configuration.
    ///
    /// The 360 Hz band floor is three times the paper's 120 Hz estimation
    /// resolution — comfortably below the ≥ 543 Hz replay artefact, and
    /// above the per-frame oscillator jitter. The onset picker defaults to
    /// the power-trace changepoint variant (an implementation extension
    /// that degrades more gracefully at low SNR than the paper's
    /// per-component AIC; both are available).
    pub fn new(phy: PhyConfig) -> Self {
        SoftLoraConfig {
            phy,
            capture_chirps: 2,
            capture_lead: 600,
            onset_method: OnsetMethod::PowerAic,
            ls_below_snr_db: 10.0,
            ls_method: FbMethod::MatchedFilter,
            band_floor_hz: 360.0,
            band_sigma: 3.0,
            warmup_frames: 3,
            max_tracked_devices: usize::MAX,
            adc_quantisation: true,
            fast_dsp: softlora_dsp::fast_kernels(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::SpreadingFactor;

    #[test]
    fn defaults_are_paper_faithful() {
        let c = SoftLoraConfig::new(PhyConfig::uplink(SpreadingFactor::Sf7));
        assert_eq!(c.capture_chirps, 2);
        assert_eq!(c.onset_method, OnsetMethod::PowerAic);
        // Band floor sits between the estimation resolution (120 Hz) and
        // the smallest replay artefact (543 Hz).
        assert!(c.band_floor_hz > 120.0 && c.band_floor_hz < 543.0);
    }
}
