//! Gateway event observers: per-frame outcomes and per-stage timing.
//!
//! Experiments, examples and operational telemetry all used to
//! pattern-match [`SoftLoraVerdict`](crate::SoftLoraVerdict) by hand.
//! [`GatewayObserver`] inverts that: the gateway pushes typed events —
//! accept / replay-flag / reject plus a timing sample per pipeline stage —
//! and consumers implement only the hooks they care about.
//!
//! Observers are invoked **sequentially in arrival order**, including for
//! [`SoftLoraGateway::process_batch`](crate::SoftLoraGateway::process_batch):
//! stage timings are measured inside the (possibly parallel) front half and
//! replayed to observers when the frame's verdict is committed, so an
//! observer never needs to be thread-safe.

use crate::fb_estimator::FbEstimate;
use crate::phy_timestamp::PhyTimestamp;
use softlora_lorawan::ReceivedUplink;
use softlora_phy::rn2483::ReceptionOutcome;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// The named stages of the SoftLoRa gateway pipeline (paper §5.3, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Commodity-radio reception model (RN2483 under jamming).
    RadioFrontEnd,
    /// SDR capture synthesis of the first preamble chirps.
    CaptureSynth,
    /// AIC onset pick — PHY-layer signal timestamping.
    Onset,
    /// Frequency-bias estimation from the second chirp.
    Fb,
    /// FB-consistency replay check against the device history.
    Detect,
    /// LoRaWAN MIC/counter verification and record timestamping.
    Mac,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::RadioFrontEnd,
        Stage::CaptureSynth,
        Stage::Onset,
        Stage::Fb,
        Stage::Detect,
        Stage::Mac,
    ];

    /// Short lowercase label, used as the `stage` label value of the
    /// `gateway_stage_ns` telemetry series.
    pub fn name(self) -> &'static str {
        match self {
            Stage::RadioFrontEnd => "radio",
            Stage::CaptureSynth => "capture",
            Stage::Onset => "onset",
            Stage::Fb => "fb",
            Stage::Detect => "detect",
            Stage::Mac => "mac",
        }
    }
}

/// Payload of an accepted, timestamped frame.
#[derive(Debug, Clone, Copy)]
pub struct AcceptEvent<'a> {
    /// The verified uplink with reconstructed record timestamps.
    pub uplink: &'a ReceivedUplink,
    /// The frame's estimated frequency bias.
    pub fb: &'a FbEstimate,
    /// The PHY-layer onset timestamp within the capture.
    pub timestamp: PhyTimestamp,
    /// PHY arrival instant on the gateway clock, seconds.
    pub phy_arrival_s: f64,
    /// Whether the FB database was still warming up for this device.
    pub learning: bool,
}

/// Payload of a frame dropped by the FB replay check.
#[derive(Debug, Clone, Copy)]
pub struct ReplayFlagEvent {
    /// Claimed source address.
    pub dev_addr: u32,
    /// FB deviation from the tracked centre, Hz.
    pub deviation_hz: f64,
    /// The exceeded band half-width, Hz.
    pub band_hz: f64,
}

/// Payload of a frame the gateway did not accept (outside the FB check).
#[derive(Debug, Clone, Copy)]
pub enum RejectEvent<'a> {
    /// The commodity radio never handed the frame to the host.
    NotReceived {
        /// What the chip experienced.
        outcome: ReceptionOutcome,
    },
    /// The LoRaWAN layer rejected the frame (MIC, counter, unknown device).
    Lorawan {
        /// Printable rejection reason.
        reason: &'a str,
    },
}

/// Hooks the gateway calls while processing deliveries. All methods have
/// empty defaults; implement only what you consume.
#[allow(unused_variables)]
pub trait GatewayObserver {
    /// A frame was accepted and its records timestamped.
    fn on_accept(&mut self, frame_index: u64, event: AcceptEvent<'_>) {}

    /// A frame was flagged as a replay and dropped before timestamping.
    fn on_replay_flag(&mut self, frame_index: u64, event: ReplayFlagEvent) {}

    /// A frame was rejected for a non-replay reason.
    fn on_reject(&mut self, frame_index: u64, event: RejectEvent<'_>) {}

    /// One pipeline stage ran for `frame_index`, taking `elapsed_s`
    /// seconds. Emitted once per executed stage per frame — a frame that
    /// never reached the host only reports [`Stage::RadioFrontEnd`].
    fn on_stage(&mut self, frame_index: u64, stage: Stage, elapsed_s: f64) {}
}

impl<T: GatewayObserver> GatewayObserver for Rc<RefCell<T>> {
    fn on_accept(&mut self, frame_index: u64, event: AcceptEvent<'_>) {
        self.borrow_mut().on_accept(frame_index, event);
    }
    fn on_replay_flag(&mut self, frame_index: u64, event: ReplayFlagEvent) {
        self.borrow_mut().on_replay_flag(frame_index, event);
    }
    fn on_reject(&mut self, frame_index: u64, event: RejectEvent<'_>) {
        self.borrow_mut().on_reject(frame_index, event);
    }
    fn on_stage(&mut self, frame_index: u64, stage: Stage, elapsed_s: f64) {
        self.borrow_mut().on_stage(frame_index, stage, elapsed_s);
    }
}

impl<T: GatewayObserver> GatewayObserver for Arc<Mutex<T>> {
    fn on_accept(&mut self, frame_index: u64, event: AcceptEvent<'_>) {
        self.lock().expect("observer poisoned").on_accept(frame_index, event);
    }
    fn on_replay_flag(&mut self, frame_index: u64, event: ReplayFlagEvent) {
        self.lock().expect("observer poisoned").on_replay_flag(frame_index, event);
    }
    fn on_reject(&mut self, frame_index: u64, event: RejectEvent<'_>) {
        self.lock().expect("observer poisoned").on_reject(frame_index, event);
    }
    fn on_stage(&mut self, frame_index: u64, stage: Stage, elapsed_s: f64) {
        self.lock().expect("observer poisoned").on_stage(frame_index, stage, elapsed_s);
    }
}

/// A ready-made observer tallying outcomes and per-stage run counts and
/// times — what most experiments and examples need.
///
/// # Example
///
/// ```
/// use softlora::observer::{GatewayStats, Stage};
/// use softlora::{SoftLoraGateway};
/// use softlora_phy::{PhyConfig, SpreadingFactor};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let stats = Rc::new(RefCell::new(GatewayStats::default()));
/// let gw = SoftLoraGateway::builder(PhyConfig::uplink(SpreadingFactor::Sf7))
///     .seed(1)
///     .observer(Box::new(Rc::clone(&stats)))
///     .build();
/// assert_eq!(stats.borrow().stage_runs(Stage::Onset), 0);
/// # let _ = gw;
/// ```
#[derive(Debug, Clone, Default)]
pub struct GatewayStats {
    /// Frames accepted and timestamped.
    pub accepted: u64,
    /// Accepted frames that were still in the FB learning phase.
    pub accepted_learning: u64,
    /// Frames flagged as replays.
    pub replays_flagged: u64,
    /// Frames the radio never delivered.
    pub not_received: u64,
    /// Frames rejected by the LoRaWAN layer.
    pub lorawan_rejected: u64,
    /// Sum of reconstructed-record timestamp count over accepted frames.
    pub records_timestamped: u64,
    stage_runs: [u64; 6],
    stage_time_s: [f64; 6],
}

impl GatewayStats {
    /// Total frames that produced any verdict.
    pub fn frames(&self) -> u64 {
        self.accepted + self.replays_flagged + self.not_received + self.lorawan_rejected
    }

    /// How many times `stage` ran.
    pub fn stage_runs(&self, stage: Stage) -> u64 {
        self.stage_runs[stage_slot(stage)]
    }

    /// Total seconds spent in `stage`.
    pub fn stage_time_s(&self, stage: Stage) -> f64 {
        self.stage_time_s[stage_slot(stage)]
    }
}

fn stage_slot(stage: Stage) -> usize {
    match stage {
        Stage::RadioFrontEnd => 0,
        Stage::CaptureSynth => 1,
        Stage::Onset => 2,
        Stage::Fb => 3,
        Stage::Detect => 4,
        Stage::Mac => 5,
    }
}

impl GatewayObserver for GatewayStats {
    fn on_accept(&mut self, _frame_index: u64, event: AcceptEvent<'_>) {
        self.accepted += 1;
        if event.learning {
            self.accepted_learning += 1;
        }
        self.records_timestamped += event.uplink.records.len() as u64;
    }

    fn on_replay_flag(&mut self, _frame_index: u64, _event: ReplayFlagEvent) {
        self.replays_flagged += 1;
    }

    fn on_reject(&mut self, _frame_index: u64, event: RejectEvent<'_>) {
        match event {
            RejectEvent::NotReceived { .. } => self.not_received += 1,
            RejectEvent::Lorawan { .. } => self.lorawan_rejected += 1,
        }
    }

    fn on_stage(&mut self, _frame_index: u64, stage: Stage, elapsed_s: f64) {
        let slot = stage_slot(stage);
        self.stage_runs[slot] += 1;
        self.stage_time_s[slot] += elapsed_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_tally_events() {
        let mut s = GatewayStats::default();
        s.on_stage(0, Stage::Onset, 1e-4);
        s.on_stage(1, Stage::Onset, 2e-4);
        s.on_replay_flag(1, ReplayFlagEvent { dev_addr: 7, deviation_hz: -600.0, band_hz: 360.0 });
        s.on_reject(2, RejectEvent::NotReceived { outcome: ReceptionOutcome::SilentDrop });
        s.on_reject(3, RejectEvent::Lorawan { reason: "bad mic" });
        assert_eq!(s.stage_runs(Stage::Onset), 2);
        assert!((s.stage_time_s(Stage::Onset) - 3e-4).abs() < 1e-12);
        assert_eq!(s.replays_flagged, 1);
        assert_eq!(s.not_received, 1);
        assert_eq!(s.lorawan_rejected, 1);
        assert_eq!(s.frames(), 3);
    }

    #[test]
    fn shared_handle_observers_delegate() {
        let shared = Rc::new(RefCell::new(GatewayStats::default()));
        let mut handle = Rc::clone(&shared);
        handle.on_stage(0, Stage::Fb, 0.5);
        assert_eq!(shared.borrow().stage_runs(Stage::Fb), 1);

        let sync = Arc::new(Mutex::new(GatewayStats::default()));
        let mut handle = Arc::clone(&sync);
        handle.on_replay_flag(
            0,
            ReplayFlagEvent { dev_addr: 1, deviation_hz: 700.0, band_hz: 360.0 },
        );
        assert_eq!(sync.lock().unwrap().replays_flagged, 1);
    }
}
