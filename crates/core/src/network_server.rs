//! The network-server timestamping service: multi-gateway deduplication
//! over the SoftLoRa pipeline, with a sharded, optionally durable tail.
//!
//! Real LoRaWAN deployments place several gateways so that one uplink is
//! heard by more than one of them; the network server deduplicates the
//! copies and keeps the best. This module lifts the paper's single-link
//! defence to that architecture:
//!
//! * each gateway contributes its **front half** of the staged
//!   [`crate::pipeline`] (radio gate → capture synthesis → onset pick → FB
//!   estimate) — per-gateway state, because every gateway has its own SDR
//!   receiver and oscillator bias;
//! * the server's stateful **back half is sharded by device**: every
//!   uplink group is routed to the `ShardCore` owning its device
//!   (stable hash, [`softlora_store::shard_of`]), and each shard owns
//!   that slice of the FB detector, dedup cache and LoRaWAN MAC tail
//!   state. Because all of that state is per-device, a shard-parallel
//!   tail is **verdict-identical to the sequential one** for any shard
//!   count — `shards(1)` *is* the sequential tail;
//! * FB estimates are normalised into gateway 0's reference frame
//!   (`fb + δRx_g − δRx_0`) so copies from different SDRs share one
//!   per-device history; for gateway 0 the normalisation is exactly
//!   zero, which keeps the one-gateway configuration bit-for-bit
//!   identical to a standalone [`SoftLoraGateway`](crate::SoftLoraGateway);
//! * **dedup with consistency checking** adds a second replay signal on
//!   top of the FB check: copies of one uplink must arrive within the
//!   propagation window, and a repeated `(device, fcnt)` far outside it is
//!   flagged — so the frame-delay attack is caught even at a gateway the
//!   attacker never jammed;
//! * [`NetworkServer::process_batch`] fans the per-gateway front halves
//!   out across worker threads, commits the per-shard tails in parallel,
//!   then replays verdicts and statistics to [`ServerObserver`]s in
//!   uplink order — the observer stream is bit-for-bit what a sequential
//!   tail would have produced.
//!
//! # Persistence
//!
//! [`NetworkServerBuilder::with_persistence`] makes the tail durable: each
//! shard appends one WAL commit record per uplink group to its slice of a
//! [`softlora_store::ShardedStore`] and periodically installs a snapshot.
//! Rebuilding the same server configuration over the same directory
//! recovers the tail (snapshot + WAL tail replay) **bit for bit** — a
//! kill-and-recover run produces verdicts identical to an uninterrupted
//! one, pinned by the `persistence` integration test. The caller must
//! rebuild with the same gateways, devices and tuning; gateway- or
//! shard-count changes are refused at build.

use crate::config::SoftLoraConfig;
use crate::fb_db::{FbDatabase, FbEviction};
use crate::gateway::SoftLoraVerdict;
use crate::persist::{CommitRecord, DedupRecord, ShardSnapshot};
use crate::pipeline::{AnalyzedFrame, FrontFrame, MacStage, Pipeline};
use crate::replay_detect::{DetectionStats, ReplayDetector, ReplayVerdict};
use crate::replication::{CommitHook, SnapshotInstaller};
use crate::SoftLoraError;
use rayon::prelude::*;
use softlora_lorawan::frame::DataFrame;
use softlora_lorawan::{
    best_copy, payload_hash, DedupCache, DedupOutcome, DeviceKeys, RxVerdict, UplinkCopy,
};
use softlora_phy::PhyConfig;
use softlora_sim::{Delivery, FleetDelivery, UplinkDeliveries};
use softlora_store::{shard_of, Encoder, GroupCommitter, ShardedStore, StoreError, WalOptions};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One gateway's stateless analysis front end inside the server.
pub(crate) struct GatewayFront {
    pub(crate) pipeline: Pipeline,
    pub(crate) frames_seen: u64,
}

/// Hooks the network server calls as it commits deduplicated verdicts —
/// the server-tier counterpart of [`crate::GatewayObserver`]. The batch
/// path ([`NetworkServer::process_batch`]) and the streaming paths
/// (`softlora::streaming`) drive the same hooks, so observability does
/// not depend on the execution mode. All methods have empty defaults.
///
/// Observers run on whichever thread commits the verdict (the streaming
/// sink blocks run on scheduler workers), hence the `Send` bound.
#[allow(unused_variables)]
pub trait ServerObserver: Send {
    /// One uplink group was deduplicated to its authoritative verdict.
    fn on_verdict(&mut self, uplink: u64, verdict: &ServerVerdict) {}

    /// Aggregate statistics after committing that uplink.
    fn on_stats(&mut self, stats: ServerStats) {}

    /// The FB database's capacity bound evicted a device while learning
    /// from this uplink; the dropped history rides along so the loss is
    /// auditable (it also lands in the WAL when persistence is on).
    fn on_eviction(&mut self, uplink: u64, eviction: &FbEviction) {}

    /// A gateway front end failed with an infrastructure error; the
    /// stream (or batch) stops after this uplink.
    fn on_error(&mut self, uplink: u64, error: &SoftLoraError) {}
}

impl<T: ServerObserver> ServerObserver for Arc<Mutex<T>> {
    fn on_verdict(&mut self, uplink: u64, verdict: &ServerVerdict) {
        self.lock().expect("server observer poisoned").on_verdict(uplink, verdict);
    }
    fn on_stats(&mut self, stats: ServerStats) {
        self.lock().expect("server observer poisoned").on_stats(stats);
    }
    fn on_eviction(&mut self, uplink: u64, eviction: &FbEviction) {
        self.lock().expect("server observer poisoned").on_eviction(uplink, eviction);
    }
    fn on_error(&mut self, uplink: u64, error: &SoftLoraError) {
        self.lock().expect("server observer poisoned").on_error(uplink, error);
    }
}

/// Attack evidence the server gathered while deduplicating one uplink.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplaySignal {
    /// The chosen copy's FB deviated from the device's tracked band
    /// (the paper's single-gateway detection, paper §7.2).
    FbInconsistent {
        /// Gateway that heard the flagged copy.
        gateway: usize,
        /// FB deviation from the tracked centre, Hz.
        deviation_hz: f64,
        /// The exceeded band half-width, Hz.
        band_hz: f64,
    },
    /// A copy of this uplink arrived far outside the propagation window of
    /// the earliest copy — the cross-gateway timestamp consistency signal.
    ArrivalInconsistent {
        /// Gateway that heard the late copy.
        gateway: usize,
        /// Arrival gap behind the earliest (or first-recorded) copy, s.
        gap_s: f64,
        /// The tolerance that was exceeded, seconds.
        tolerance_s: f64,
    },
    /// Normalised FBs of simultaneous copies disagree across gateways —
    /// one copy went through a replay chain.
    CrossGatewayFb {
        /// Max-minus-min normalised FB across the copies, Hz.
        spread_hz: f64,
        /// The tolerance that was exceeded, Hz.
        tolerance_hz: f64,
    },
}

/// The server's deduplicated verdict for one uplink.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerVerdict {
    /// The authoritative per-uplink verdict (one per uplink, however many
    /// gateways heard it). For replays flagged by a cross-gateway signal,
    /// `ReplayDetected` carries the arrival gap (s → `deviation_hz` is the
    /// spread/gap in the signal's unit) — inspect `signals` for the
    /// precise evidence.
    pub verdict: SoftLoraVerdict,
    /// Gateway whose copy produced the verdict (best SNR among trusted
    /// copies), when any copy was analysed.
    pub gateway: Option<usize>,
    /// Copies that survived their radio front ends.
    pub copies_heard: usize,
    /// Trusted duplicate copies suppressed in favour of the best one.
    pub duplicates_suppressed: usize,
    /// Every replay signal raised while processing this uplink.
    pub signals: Vec<ReplaySignal>,
}

impl ServerVerdict {
    /// Whether the uplink was accepted and timestamped.
    pub fn is_accepted(&self) -> bool {
        self.verdict.is_accepted()
    }

    /// Whether any replay evidence was raised for this uplink.
    pub fn is_replay_flagged(&self) -> bool {
        !self.signals.is_empty()
    }
}

/// Aggregate server statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Uplink groups processed.
    pub uplinks: u64,
    /// Uplinks accepted and timestamped.
    pub accepted: u64,
    /// Uplinks flagged by the FB-consistency check.
    pub fb_replays_flagged: u64,
    /// Replay copies flagged by cross-gateway consistency (arrival gap or
    /// FB spread).
    pub cross_gateway_replays_flagged: u64,
    /// Trusted duplicate copies suppressed by best-SNR dedup.
    pub duplicates_suppressed: u64,
    /// Uplinks no gateway's radio delivered.
    pub not_received: u64,
    /// Uplinks rejected by the LoRaWAN layer.
    pub lorawan_rejected: u64,
}

impl ServerStats {
    /// Field-wise difference against an earlier snapshot of the same
    /// counters (all fields are monotone).
    pub fn delta_since(&self, before: &ServerStats) -> ServerStats {
        ServerStats {
            uplinks: self.uplinks - before.uplinks,
            accepted: self.accepted - before.accepted,
            fb_replays_flagged: self.fb_replays_flagged - before.fb_replays_flagged,
            cross_gateway_replays_flagged: self.cross_gateway_replays_flagged
                - before.cross_gateway_replays_flagged,
            duplicates_suppressed: self.duplicates_suppressed - before.duplicates_suppressed,
            not_received: self.not_received - before.not_received,
            lorawan_rejected: self.lorawan_rejected - before.lorawan_rejected,
        }
    }
}

impl std::ops::AddAssign for ServerStats {
    fn add_assign(&mut self, rhs: ServerStats) {
        self.uplinks += rhs.uplinks;
        self.accepted += rhs.accepted;
        self.fb_replays_flagged += rhs.fb_replays_flagged;
        self.cross_gateway_replays_flagged += rhs.cross_gateway_replays_flagged;
        self.duplicates_suppressed += rhs.duplicates_suppressed;
        self.not_received += rhs.not_received;
        self.lorawan_rejected += rhs.lorawan_rejected;
    }
}

/// Shard count when [`NetworkServerBuilder::shards`] is not called: one
/// shard per available core.
fn default_shard_count() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Fluent builder for [`NetworkServer`].
pub struct NetworkServerBuilder {
    config: SoftLoraConfig,
    gateway_seeds: Vec<u64>,
    devices: Vec<(u32, DeviceKeys)>,
    preloads: Vec<(u32, Vec<f64>)>,
    arrival_tolerance_s: f64,
    fb_spread_tolerance_hz: f64,
    dedup_capacity: usize,
    observers: Vec<Box<dyn ServerObserver>>,
    shards: Option<usize>,
    persist_dir: Option<PathBuf>,
    snapshot_every: u64,
    wal_segment_bytes: u64,
    durability_window: Option<Duration>,
    commit_hook: Option<Arc<dyn CommitHook>>,
}

impl NetworkServerBuilder {
    /// Starts from the paper-faithful defaults for `phy`. Add gateways
    /// with [`NetworkServerBuilder::gateway`]; with none, `build` creates
    /// a single gateway seeded 0.
    pub fn new(phy: PhyConfig) -> Self {
        NetworkServerBuilder {
            config: SoftLoraConfig::new(phy),
            gateway_seeds: Vec::new(),
            devices: Vec::new(),
            preloads: Vec::new(),
            // Fleet copies of one frame differ by propagation (µs); a
            // millisecond already dwarfs any honest geometry.
            arrival_tolerance_s: 1e-3,
            // Normalised FBs of honest simultaneous copies differ by
            // per-gateway estimation noise (tens to low hundreds of Hz at
            // workable SNR); a replay chain adds ≥ 543 Hz.
            fb_spread_tolerance_hz: 450.0,
            dedup_capacity: 4096,
            observers: Vec::new(),
            shards: None,
            persist_dir: None,
            snapshot_every: 1024,
            wal_segment_bytes: WalOptions::default().segment_bytes,
            durability_window: None,
            commit_hook: None,
        }
    }

    /// Starts from an existing configuration.
    pub fn from_config(config: SoftLoraConfig) -> Self {
        let phy = config.phy;
        let mut b = Self::new(phy);
        b.config = config;
        b
    }

    /// Adds a gateway whose SDR oscillator and per-delivery randomness are
    /// drawn from `seed` (the same seed a standalone
    /// [`crate::SoftLoraGateway`] would use).
    pub fn gateway(mut self, seed: u64) -> Self {
        self.gateway_seeds.push(seed);
        self
    }

    /// Provisions a device's LoRaWAN session keys.
    pub fn provision(mut self, dev_addr: u32, keys: DeviceKeys) -> Self {
        self.devices.push((dev_addr, keys));
        self
    }

    /// Pre-loads a device's FB history in gateway-0 reference frame
    /// (offline database construction, paper §7.2).
    pub fn preload_fb(mut self, dev_addr: u32, fbs_hz: &[f64]) -> Self {
        self.preloads.push((dev_addr, fbs_hz.to_vec()));
        self
    }

    /// Frames required before the shared FB database gives verdicts.
    pub fn warmup_frames(mut self, frames: usize) -> Self {
        self.config.warmup_frames = frames;
        self
    }

    /// Device-capacity bound of the shared FB database (split across
    /// shards; each shard holds `⌈bound / shards⌉` devices).
    pub fn max_tracked_devices(mut self, devices: usize) -> Self {
        self.config.max_tracked_devices = devices;
        self
    }

    /// Whether to model ADC quantisation in the SDR captures.
    pub fn adc_quantisation(mut self, enabled: bool) -> Self {
        self.config.adc_quantisation = enabled;
        self
    }

    /// Arrival window within which copies of one uplink are mutually
    /// consistent, seconds.
    pub fn arrival_tolerance_s(mut self, tolerance_s: f64) -> Self {
        self.arrival_tolerance_s = tolerance_s;
        self
    }

    /// Cross-gateway normalised-FB agreement tolerance, Hz.
    pub fn fb_spread_tolerance_hz(mut self, tolerance_hz: f64) -> Self {
        self.fb_spread_tolerance_hz = tolerance_hz;
        self
    }

    /// Capacity of the recent-uplink dedup cache (per shard).
    pub fn dedup_capacity(mut self, uplinks: usize) -> Self {
        self.dedup_capacity = uplinks;
        self
    }

    /// Attaches a [`ServerObserver`] receiving every committed verdict
    /// and the running statistics.
    pub fn observer(mut self, observer: Box<dyn ServerObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Number of device-hashed tail shards (floored at 1). Defaults to
    /// [`std::thread::available_parallelism`]. `shards(1)` reduces the
    /// tail to exactly the sequential commit loop; any other count is
    /// verdict-identical because all tail state is per-device.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Makes the tail durable under `dir`: every committed uplink group
    /// appends a WAL record to its shard's log, snapshots are installed
    /// every [`NetworkServerBuilder::snapshot_every`] records, and
    /// [`NetworkServerBuilder::try_build`] recovers the tail (snapshot +
    /// WAL replay) before serving. Rebuild with the same gateways,
    /// devices, shard count and tuning — shard- and gateway-count changes
    /// are refused.
    pub fn with_persistence(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// WAL records a shard accumulates before installing a snapshot and
    /// compacting (floored at 1; default 1024).
    pub fn snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = records.max(1);
        self
    }

    /// WAL segment rotation threshold, bytes (default 1 MiB).
    pub fn wal_segment_bytes(mut self, bytes: u64) -> Self {
        self.wal_segment_bytes = bytes.max(1);
        self
    }

    /// Enables interval-based group-commit fsync: a background thread
    /// fsyncs every dirty shard WAL once per `window`, so a crash loses
    /// at most the records committed inside the current window. Without
    /// this, appends are flushed per batch but fsync only happens at
    /// explicit [`NetworkServer::sync_persistence`] calls and snapshot
    /// installs. Requires [`NetworkServerBuilder::with_persistence`].
    pub fn durability_window(mut self, window: Duration) -> Self {
        self.durability_window = Some(window);
        self
    }

    /// Attaches a [`CommitHook`] receiving every sealed WAL frame and
    /// snapshot marker — the feed a WAL-shipping replicator (the
    /// `softlora-ha` crate) subscribes to. Only called when persistence
    /// is enabled.
    pub fn commit_hook(mut self, hook: Arc<dyn CommitHook>) -> Self {
        self.commit_hook = Some(hook);
        self
    }

    /// Assembles the server, recovering persisted state when
    /// [`NetworkServerBuilder::with_persistence`] was set.
    ///
    /// # Errors
    ///
    /// Every [`StoreError`] is a persistence failure: the directory is
    /// unusable, was created with a different gateway count, or holds
    /// corrupt data beyond the recoverable torn tail. An explicit
    /// `shards(n)` against a store pinned at a different count is **not**
    /// an error: the store is migrated online (see
    /// [`NetworkServerBuilder::shards`]).
    pub fn try_build(self) -> Result<NetworkServer, StoreError> {
        // Online resharding: when the caller explicitly asks for a shard
        // count different from the pinned one, re-key the device state
        // through a migration pass instead of refusing to open.
        if let (Some(requested), Some(dir)) = (self.shards, self.persist_dir.clone()) {
            if let Some(on_disk) = softlora_store::peek_shard_count(&dir)? {
                if on_disk != requested {
                    self.reshard(&dir, on_disk, requested)?;
                }
            }
        }
        let seeds = if self.gateway_seeds.is_empty() { vec![0] } else { self.gateway_seeds };
        let fronts: Vec<GatewayFront> = seeds
            .into_iter()
            .map(|seed| GatewayFront {
                pipeline: Pipeline::new(self.config.clone(), seed),
                frames_seen: 0,
            })
            .collect();
        let receiver_bias_hz: Arc<Vec<f64>> =
            Arc::new(fronts.iter().map(|f| f.pipeline.capture.receiver_bias_hz()).collect());

        // Explicit `shards(n)` wins; otherwise an existing store's pinned
        // count wins over `available_parallelism()`, so an unchanged
        // deployment reopens its own data after a core-count change.
        let shard_count = match (self.shards, &self.persist_dir) {
            (Some(n), _) => n,
            (None, Some(dir)) => {
                softlora_store::peek_shard_count(dir)?.unwrap_or_else(default_shard_count)
            }
            (None, None) => default_shard_count(),
        }
        .max(1);
        // The device-capacity bound splits across shards; `shards(1)`
        // keeps the exact single-store semantics.
        let per_shard_devices = self.config.max_tracked_devices.div_ceil(shard_count).max(1);

        let mut shards: Vec<ShardCore> = (0..shard_count)
            .map(|index| ShardCore {
                detector: ReplayDetector::new(
                    FbDatabase::new(
                        32,
                        self.config.warmup_frames,
                        self.config.band_floor_hz,
                        self.config.band_sigma,
                    )
                    .with_max_devices(per_shard_devices),
                ),
                mac: MacStage::new(),
                dedup: DedupCache::new(self.dedup_capacity),
                arrival_tolerance_s: self.arrival_tolerance_s,
                fb_spread_tolerance_hz: self.fb_spread_tolerance_hz,
                stats: ServerStats::default(),
                receiver_bias_hz: Arc::clone(&receiver_bias_hz),
                index,
                store: None,
                snapshot_every: self.snapshot_every,
                wal_buf: Encoder::new(),
                pending_count: 0,
                since_snapshot: 0,
                last_global_seq: 0,
                last_frames: Vec::new(),
                installer: None,
                hook: None,
                metrics: ShardMetrics::new(index),
            })
            .collect();
        // Per-device state — MAC sessions included — lives only in the
        // shard owning the device, keeping key storage O(devices)
        // instead of O(devices × shards).
        for (dev_addr, keys) in self.devices {
            shards[shard_of(u64::from(dev_addr), shard_count)].mac.provision(dev_addr, keys);
        }
        for (dev_addr, fbs) in &self.preloads {
            shards[shard_of(u64::from(*dev_addr), shard_count)].detector.preload(*dev_addr, fbs);
        }

        let frames_cumulative = vec![0; fronts.len()];
        let mut server = NetworkServer {
            fronts,
            tail: ServerTail {
                shards,
                observers: self.observers,
                observed_stats: ServerStats::default(),
                committed_groups: 0,
                global_seq: 0,
                frames_cumulative,
                store: None,
            },
            installer: None,
            committer: None,
        };

        if let Some(dir) = self.persist_dir {
            let store = Arc::new(ShardedStore::open(
                dir,
                shard_count,
                WalOptions { segment_bytes: self.wal_segment_bytes, ..WalOptions::default() },
            )?);
            server.recover_from(&store)?;
            let installer = Arc::new(SnapshotInstaller::spawn(Arc::clone(&store)));
            server.tail.store = Some(Arc::clone(&store));
            for shard in &mut server.tail.shards {
                shard.store = Some(Arc::clone(&store));
                shard.installer = Some(Arc::clone(&installer));
                shard.hook = self.commit_hook.clone();
            }
            server.installer = Some(installer);
            if let Some(window) = self.durability_window {
                server.committer = Some(GroupCommitter::spawn(Arc::clone(&store), window));
            }
        }
        Ok(server)
    }

    /// Migrates a store pinned at `on_disk` shards to `new_n`: recover
    /// the tail with the pinned count, decompose the per-device state
    /// (FB histories, dedup entries, MAC counters), re-key everything
    /// under the new placement, and write a fresh store — one snapshot
    /// per new shard, no WAL tail — that atomically replaces the old
    /// directory. Aggregate statistics are indivisible, so they ride on
    /// the new shard 0; per-device state lands exactly where
    /// [`shard_of`] now routes its device, keeping verdicts identical
    /// (the sharded tail is verdict-invariant in the shard count).
    fn reshard(&self, dir: &Path, on_disk: usize, new_n: usize) -> Result<(), StoreError> {
        let mut recovery_builder = NetworkServerBuilder::from_config(self.config.clone());
        recovery_builder.gateway_seeds = self.gateway_seeds.clone();
        recovery_builder.devices = self.devices.clone();
        recovery_builder.preloads = self.preloads.clone();
        recovery_builder.arrival_tolerance_s = self.arrival_tolerance_s;
        recovery_builder.fb_spread_tolerance_hz = self.fb_spread_tolerance_hz;
        recovery_builder.dedup_capacity = self.dedup_capacity;
        recovery_builder.shards = Some(on_disk);
        recovery_builder.persist_dir = Some(dir.to_path_buf());
        recovery_builder.snapshot_every = self.snapshot_every;
        recovery_builder.wal_segment_bytes = self.wal_segment_bytes;
        // Counts now match, so this recursion terminates at depth one.
        let old = recovery_builder.try_build()?;
        let epoch = old.tail.store.as_ref().expect("recovery server has a store").epoch()?;
        let global_seq = old.tail.global_seq;
        let frames = old.tail.frames_cumulative.clone();

        // Decompose: pool every shard's per-device state, plus the
        // indivisible aggregates.
        let mut histories: Vec<(u32, u64, Vec<f64>)> = Vec::new();
        let mut dedups: Vec<DedupRecord> = Vec::new();
        let mut fcnts: Vec<(u32, u16)> = Vec::new();
        let mut stats = ServerStats::default();
        let mut det = DetectionStats::default();
        let (mut mac_accepted, mut mac_rejected) = (0u64, 0u64);
        for shard in &old.tail.shards {
            let db = shard.detector.db();
            histories.extend(db.export_histories());
            dedups.extend(shard.dedup.entries_in_order().map(
                |(dev_addr, fcnt, payload_hash, arrival_global_s, gateway)| DedupRecord {
                    dev_addr,
                    fcnt,
                    payload_hash,
                    arrival_global_s,
                    gateway: gateway as u32,
                },
            ));
            fcnts.extend(shard.mac.session_fcnts());
            stats += shard.stats;
            det += shard.detector.stats();
            let (a, r) = shard.mac.frame_counts();
            mac_accepted += a;
            mac_rejected += r;
        }
        drop(old);
        // Deterministic re-keying: sort by stable keys so the migrated
        // store is identical however the old shards interleaved.
        histories.sort_by_key(|a| (a.1, a.0));
        dedups.sort_by(|a, b| {
            a.arrival_global_s
                .total_cmp(&b.arrival_global_s)
                .then((a.dev_addr, a.fcnt).cmp(&(b.dev_addr, b.fcnt)))
        });
        fcnts.sort_unstable();

        let mut tmp_name = dir.as_os_str().to_owned();
        tmp_name.push(".reshard-tmp");
        let tmp = PathBuf::from(tmp_name);
        let mut old_name = dir.as_os_str().to_owned();
        old_name.push(".reshard-old");
        let retired = PathBuf::from(old_name);
        if tmp.exists() {
            std::fs::remove_dir_all(&tmp)?;
        }
        if retired.exists() {
            std::fs::remove_dir_all(&retired)?;
        }
        {
            let options =
                WalOptions { segment_bytes: self.wal_segment_bytes, ..WalOptions::default() };
            let store = ShardedStore::open(&tmp, new_n, options)?;
            let _ = store.take_recovery();
            store.set_epoch(epoch)?;
            for j in 0..new_n {
                let owned = |dev: u32| shard_of(u64::from(dev), new_n) == j;
                let shard_histories: Vec<(u32, u64, Vec<f64>)> = histories
                    .iter()
                    .filter(|(dev, _, _)| owned(*dev))
                    .enumerate()
                    .map(|(tick, (dev, _, fbs))| (*dev, tick as u64, fbs.clone()))
                    .collect();
                let db_clock = shard_histories.len() as u64;
                let snapshot = ShardSnapshot {
                    global_seq,
                    frames_cumulative: frames.clone(),
                    stats: if j == 0 { stats } else { ServerStats::default() },
                    det: if j == 0 { det } else { DetectionStats::default() },
                    mac_accepted: if j == 0 { mac_accepted } else { 0 },
                    mac_rejected: if j == 0 { mac_rejected } else { 0 },
                    mac_fcnts: fcnts.iter().copied().filter(|(dev, _)| owned(*dev)).collect(),
                    db_clock,
                    db_histories: shard_histories,
                    dedup: dedups.iter().filter(|e| owned(e.dev_addr)).cloned().collect(),
                };
                store
                    .shard(j)
                    .lock()
                    .expect("shard wal poisoned")
                    .install_snapshot(&snapshot.encode())?;
            }
            store.sync()?;
        }
        std::fs::rename(dir, &retired)?;
        std::fs::rename(&tmp, dir)?;
        std::fs::remove_dir_all(&retired)?;
        Ok(())
    }

    /// Assembles the server; panics on a persistence failure (use
    /// [`NetworkServerBuilder::try_build`] to handle recovery errors).
    pub fn build(self) -> NetworkServer {
        self.try_build().expect("network server persistence recovery failed")
    }
}

/// What one shard commit produced: the verdict plus the bookkeeping the
/// ordered observer replay needs.
pub(crate) struct CommitOutcome {
    pub(crate) verdict: ServerVerdict,
    pub(crate) stats_delta: ServerStats,
    pub(crate) eviction: Option<FbEviction>,
}

/// Per-shard telemetry handles into the process-wide registry, resolved
/// once at build time so the commit path records with nothing but
/// relaxed atomic adds. The verdict/dedup/eviction counters share their
/// cells across shards (same series key); the commit-latency histogram
/// is labeled per shard.
pub(crate) struct ShardMetrics {
    commit_ns: softlora_telemetry::Histogram,
    accepted: softlora_telemetry::Counter,
    replays: softlora_telemetry::Counter,
    rejected: softlora_telemetry::Counter,
    dedup_hits: softlora_telemetry::Counter,
    fb_evictions: softlora_telemetry::Counter,
}

impl ShardMetrics {
    pub(crate) fn new(shard: usize) -> Self {
        let registry = softlora_telemetry::global();
        let shard_label = shard.to_string();
        ShardMetrics {
            commit_ns: registry
                .histogram_with("server_commit_ns", &[("shard", shard_label.as_str())]),
            accepted: registry.counter_with("server_verdicts_total", &[("verdict", "accept")]),
            replays: registry.counter_with("server_verdicts_total", &[("verdict", "replay")]),
            rejected: registry.counter_with("server_verdicts_total", &[("verdict", "reject")]),
            dedup_hits: registry.counter("server_dedup_hits_total"),
            fb_evictions: registry.counter("server_fb_evictions_total"),
        }
    }

    /// Folds one commit's statistics delta into the counters.
    fn observe(&self, outcome: &CommitOutcome) {
        let d = &outcome.stats_delta;
        self.accepted.add(d.accepted);
        self.replays.add(d.fb_replays_flagged + d.cross_gateway_replays_flagged);
        self.rejected.add(d.lorawan_rejected + d.not_received);
        self.dedup_hits.add(d.duplicates_suppressed);
        if outcome.eviction.is_some() {
            self.fb_evictions.inc();
        }
    }
}

/// One shard of the server's stateful back half: the slice of the FB
/// detector, LoRaWAN MAC and dedup cache owning every device that hashes
/// to it. All of that state is per-device, so shards never interact —
/// which is exactly why the sharded tail is verdict-identical to the
/// sequential one.
pub(crate) struct ShardCore {
    pub(crate) detector: ReplayDetector,
    pub(crate) mac: MacStage,
    pub(crate) dedup: DedupCache,
    pub(crate) arrival_tolerance_s: f64,
    pub(crate) fb_spread_tolerance_hz: f64,
    pub(crate) stats: ServerStats,
    /// Each gateway's SDR oscillator bias, captured at build time (the
    /// bias is a fixed property of the pipeline's seed).
    pub(crate) receiver_bias_hz: Arc<Vec<f64>>,
    /// This shard's index — its slice of the sharded store.
    pub(crate) index: usize,
    /// The durable store, when persistence is enabled.
    pub(crate) store: Option<Arc<ShardedStore>>,
    /// WAL records between snapshots.
    pub(crate) snapshot_every: u64,
    /// Reusable scratch encoder accumulating this batch's commit records
    /// as an inner-framed run — sealed into **one coalesced WAL frame**
    /// per shard per batch, so the commit path neither allocates a fresh
    /// buffer nor issues a write syscall per uplink group.
    pub(crate) wal_buf: Encoder,
    /// Records accumulated in `wal_buf` since the last seal.
    pub(crate) pending_count: u64,
    /// Records committed since the last snapshot was scheduled — the
    /// deterministic snapshot trigger (checked at seal boundaries, so
    /// the schedule depends only on the record stream, never on how
    /// fast the background installer drains).
    pub(crate) since_snapshot: u64,
    /// Commit metadata of the most recent record, for snapshot capture.
    pub(crate) last_global_seq: u64,
    pub(crate) last_frames: Vec<u64>,
    /// Background snapshot installer, when persistence is enabled.
    pub(crate) installer: Option<Arc<SnapshotInstaller>>,
    /// Replication hook fed every sealed frame and snapshot marker.
    pub(crate) hook: Option<Arc<dyn CommitHook>>,
    /// Telemetry handles (commit latency, verdict/dedup/eviction counts).
    pub(crate) metrics: ShardMetrics,
}

/// The server's complete back half: the device-hashed shards plus the
/// ordered observer replay state. The batch path commits shards in
/// parallel and replays observers in uplink order; the sequential
/// streaming sink drives [`ServerTail::commit_ordered`] directly.
pub(crate) struct ServerTail {
    pub(crate) shards: Vec<ShardCore>,
    pub(crate) observers: Vec<Box<dyn ServerObserver>>,
    /// Running statistics as replayed to observers, in uplink order.
    pub(crate) observed_stats: ServerStats,
    /// Uplink groups committed across all shards (numbers the groups
    /// [`NetworkServer::process_delivery`] synthesises).
    pub(crate) committed_groups: u64,
    /// Server-wide commit sequence (persisted in every WAL record).
    pub(crate) global_seq: u64,
    /// Per-gateway front-half frame indices consumed so far — mirrors
    /// the fronts' counters so commit records can reseat them on
    /// recovery.
    pub(crate) frames_cumulative: Vec<u64>,
    pub(crate) store: Option<Arc<ShardedStore>>,
}

impl ServerTail {
    /// Shard owning `dev_addr`.
    pub(crate) fn shard_for(&self, dev_addr: u32) -> usize {
        shard_of(u64::from(dev_addr), self.shards.len())
    }

    /// Aggregate statistics across the shards.
    pub(crate) fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for shard in &self.shards {
            total += shard.stats;
        }
        total
    }

    /// Aggregate detection statistics across the shards.
    pub(crate) fn detection_stats(&self) -> DetectionStats {
        let mut total = DetectionStats::default();
        for shard in &self.shards {
            total += shard.detector.stats();
        }
        total
    }

    /// Merged read view of every shard's FB database.
    pub(crate) fn fb_database(&self) -> FbDatabase {
        let mut merged = self.shards[0].detector.db().clone();
        for shard in &self.shards[1..] {
            let db = shard.detector.db();
            for (dev, tick, fbs) in db.export_histories() {
                merged.restore_history(dev, tick, &fbs);
            }
            let clock = merged.clock().max(db.clock());
            merged.set_clock(clock);
        }
        merged
    }

    /// Replays one committed group to the observers, in uplink order.
    pub(crate) fn notify(&mut self, uplink: u64, outcome: &CommitOutcome) {
        self.observed_stats += outcome.stats_delta;
        let stats = self.observed_stats;
        for obs in &mut self.observers {
            if let Some(eviction) = &outcome.eviction {
                obs.on_eviction(uplink, eviction);
            }
            obs.on_verdict(uplink, &outcome.verdict);
            obs.on_stats(stats);
        }
    }

    /// Notifies observers of an infrastructure failure.
    pub(crate) fn notify_error(&mut self, uplink: u64, error: &SoftLoraError) {
        for obs in &mut self.observers {
            obs.on_error(uplink, error);
        }
    }

    /// Commits one group in stream order: routes it to its shard,
    /// commits, and replays observers immediately. The sequential tail —
    /// `process_batch` over the same groups is bit-for-bit identical.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when the WAL append fails.
    pub(crate) fn commit_ordered(
        &mut self,
        group: &UplinkDeliveries,
        fronts: Vec<FrontFrame>,
    ) -> Result<ServerVerdict, SoftLoraError> {
        let shard = self.shard_for(group.dev_addr);
        let seq = self.global_seq + 1;
        for copy in &group.copies {
            self.frames_cumulative[copy.gateway] += 1;
        }
        let frames = self.frames_cumulative.clone();
        let outcome = self.shards[shard].commit(group, fronts, seq, &frames)?;
        self.shards[shard].seal_frame()?;
        self.global_seq = seq;
        self.committed_groups += 1;
        self.notify(group.uplink, &outcome);
        Ok(outcome.verdict)
    }

    /// Flushes the durable store, if any.
    pub(crate) fn flush_store(&self) -> Result<(), SoftLoraError> {
        if let Some(store) = &self.store {
            store.flush()?;
        }
        Ok(())
    }
}

/// The multi-gateway network server (see the module docs).
pub struct NetworkServer {
    pub(crate) fronts: Vec<GatewayFront>,
    pub(crate) tail: ServerTail,
    /// Background snapshot installer (persistence only).
    pub(crate) installer: Option<Arc<SnapshotInstaller>>,
    /// Interval-based group-commit fsync thread, when a durability
    /// window was configured.
    pub(crate) committer: Option<GroupCommitter>,
}

impl std::fmt::Debug for NetworkServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkServer")
            .field("gateways", &self.fronts.len())
            .field("shards", &self.tail.shards.len())
            .field("stats", &self.tail.stats())
            .finish_non_exhaustive()
    }
}

impl NetworkServer {
    /// Starts a [`NetworkServerBuilder`] from the paper-faithful defaults.
    pub fn builder(phy: PhyConfig) -> NetworkServerBuilder {
        NetworkServerBuilder::new(phy)
    }

    /// Number of gateways feeding this server.
    pub fn gateway_count(&self) -> usize {
        self.fronts.len()
    }

    /// Number of device-hashed tail shards.
    pub fn shard_count(&self) -> usize {
        self.tail.shards.len()
    }

    /// The durable store's directory, when persistence is enabled.
    pub fn persistence_dir(&self) -> Option<&Path> {
        self.tail.store.as_deref().map(ShardedStore::dir)
    }

    /// Gateway `g`'s SDR oscillator bias (δRx), Hz.
    pub fn receiver_bias_hz(&self, gateway: usize) -> f64 {
        self.fronts[gateway].pipeline.capture.receiver_bias_hz()
    }

    /// Deliveries gateway `g`'s front end has analysed so far.
    pub fn frames_seen(&self, gateway: usize) -> u64 {
        self.fronts[gateway].frames_seen
    }

    /// Provisions a device's LoRaWAN session keys (into the shard owning
    /// the device).
    pub fn provision(&mut self, dev_addr: u32, keys: DeviceKeys) {
        let shard = self.tail.shard_for(dev_addr);
        self.tail.shards[shard].mac.provision(dev_addr, keys);
    }

    /// Pre-loads a device's FB history (gateway-0 reference frame).
    pub fn preload_fb(&mut self, dev_addr: u32, fbs_hz: &[f64]) {
        let shard = self.tail.shard_for(dev_addr);
        self.tail.shards[shard].detector.preload(dev_addr, fbs_hz);
    }

    /// Attaches a [`ServerObserver`] (see [`crate::observer`] for the
    /// gateway-tier counterpart).
    pub fn attach_observer(&mut self, observer: Box<dyn ServerObserver>) {
        self.tail.observers.push(observer);
    }

    /// A merged read view of the per-shard FB databases (one shared
    /// history per device, whatever the shard count).
    pub fn fb_database(&self) -> FbDatabase {
        self.tail.fb_database()
    }

    /// FB detection statistics (scored on deduplicated verdicts),
    /// aggregated across the shards.
    pub fn detection_stats(&self) -> DetectionStats {
        self.tail.detection_stats()
    }

    /// Aggregate server statistics.
    pub fn stats(&self) -> ServerStats {
        self.tail.stats()
    }

    /// Flushes WAL appends to the OS (done automatically at the end of
    /// every batch; a no-op without persistence).
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when a shard's flush fails.
    pub fn flush_persistence(&self) -> Result<(), SoftLoraError> {
        self.tail.flush_store()
    }

    /// Flushes and fsyncs every shard's WAL (a hard durability point; a
    /// no-op without persistence).
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when a shard's sync fails.
    pub fn sync_persistence(&self) -> Result<(), SoftLoraError> {
        if let Some(store) = &self.tail.store {
            store.sync().map_err(SoftLoraError::from)?;
        }
        Ok(())
    }

    /// Installs a snapshot of every shard's tail state right now and
    /// compacts the WALs (a no-op without persistence). Synchronous by
    /// contract — background installs are drained first, so the on-disk
    /// store is deterministic when this returns.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when a snapshot cannot be written.
    pub fn snapshot_now(&mut self) -> Result<(), SoftLoraError> {
        let Some(store) = self.tail.store.clone() else {
            return Ok(());
        };
        self.drain_snapshots()?;
        let seq = self.tail.global_seq;
        let frames = self.tail.frames_cumulative.clone();
        for shard in &mut self.tail.shards {
            let snapshot = shard.snapshot_state(seq, &frames).encode();
            let mut wal = store.shard(shard.index).lock().expect("shard wal poisoned");
            wal.install_snapshot(&snapshot).map_err(SoftLoraError::from)?;
            shard.since_snapshot = 0;
        }
        Ok(())
    }

    /// Blocks until every background snapshot install has completed (a
    /// no-op without persistence). Use before comparing on-disk state —
    /// e.g. `repro_fsck` digests — so pending installs cannot race the
    /// comparison.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when a background install failed.
    pub fn drain_snapshots(&self) -> Result<(), SoftLoraError> {
        if let Some(installer) = &self.installer {
            installer.drain().map_err(SoftLoraError::from)?;
        }
        Ok(())
    }

    /// The store's replication epoch (0 without persistence). See
    /// [`softlora_store::ShardedStore::epoch`]: the monotonic fencing
    /// token replication uses to refuse a deposed primary's frames.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when the epoch file is unreadable.
    pub fn epoch(&self) -> Result<u64, SoftLoraError> {
        match &self.tail.store {
            Some(store) => store.epoch().map_err(SoftLoraError::from),
            None => Ok(0),
        }
    }

    /// Durably advances the store's replication epoch (a no-op without
    /// persistence). Promotion calls this with `deposed_epoch + 1`.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when the write fails or the epoch
    /// would move backwards.
    pub fn set_epoch(&self, epoch: u64) -> Result<(), SoftLoraError> {
        if let Some(store) = &self.tail.store {
            store.set_epoch(epoch).map_err(SoftLoraError::from)?;
        }
        Ok(())
    }

    /// The global commit sequence this tail has reached (0 before the
    /// first committed group). Replication uses it to order records
    /// shipped from shard-parallel commits.
    pub fn global_seq(&self) -> u64 {
        self.tail.global_seq
    }

    /// Reads the global commit sequence out of an encoded commit-record
    /// payload without applying it — what a follower sorts its reorder
    /// buffer by (shard-parallel sealing on the primary can interleave
    /// the per-shard streams).
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when the payload is too short to
    /// carry a record header.
    pub fn peek_replicated_seq(payload: &[u8]) -> Result<u64, SoftLoraError> {
        let mut d = softlora_store::Decoder::new(payload);
        let inner = |d: &mut softlora_store::Decoder<'_>| {
            d.u8()?;
            d.u64()
        };
        inner(&mut d).map_err(|e| SoftLoraError::from(StoreError::from(e)))
    }

    /// Applies one replicated commit record — the follower half of WAL
    /// shipping. The record must be the next in global commit order
    /// (`global_seq == last + 1`); the mutations re-run through the same
    /// live-replay paths recovery uses, and the **original record
    /// bytes** are appended to this server's own WAL, so a promoted
    /// follower's store replays — and `repro_fsck`-digests — exactly
    /// like the primary's. Returns the applied global sequence.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] on an out-of-order record, a
    /// gateway-count mismatch, an undecodable payload or a WAL failure.
    pub fn apply_replicated_record(
        &mut self,
        shard: usize,
        payload: &[u8],
    ) -> Result<u64, SoftLoraError> {
        let record = CommitRecord::decode(payload)?;
        let expected = self.tail.global_seq + 1;
        if record.global_seq != expected {
            return Err(SoftLoraError::Persistence {
                detail: format!(
                    "replicated record {} arrived out of order (expected {expected})",
                    record.global_seq
                ),
            });
        }
        if record.frames_cumulative.len() != self.fronts.len() {
            return Err(SoftLoraError::Persistence {
                detail: format!(
                    "replicated record counts {} gateways, this server has {}",
                    record.frames_cumulative.len(),
                    self.fronts.len()
                ),
            });
        }
        if shard >= self.tail.shards.len() {
            return Err(SoftLoraError::Persistence {
                detail: format!(
                    "replicated record for shard {shard} of a {}-shard server",
                    self.tail.shards.len()
                ),
            });
        }
        let core = &mut self.tail.shards[shard];
        core.apply_record(&record);
        core.since_snapshot += 1;
        if let Some(store) = &self.tail.store {
            let mut wal = store.shard(shard).lock().expect("shard wal poisoned");
            wal.append(payload).map_err(SoftLoraError::from)?;
        }
        self.tail.global_seq = record.global_seq;
        for (front, &n) in self.fronts.iter_mut().zip(&record.frames_cumulative) {
            front.frames_seen = n;
        }
        self.tail.frames_cumulative.clone_from(&record.frames_cumulative);
        self.tail.committed_groups += 1;
        self.tail.observed_stats = self.tail.stats();
        Ok(record.global_seq)
    }

    /// Installs a replica snapshot at a primary's snapshot marker: the
    /// shard's current state is captured with the marker's `global_seq`
    /// and frame indices, so the snapshot bytes are bit-identical to the
    /// ones the primary installed at the same point. Call when the
    /// shard's WAL head equals the marker's `covered_seq` — applying any
    /// further record first would capture a different state.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when the shard's WAL head is not
    /// at the marker, or the install fails.
    pub fn install_replica_snapshot(
        &mut self,
        shard: usize,
        covered_seq: u64,
        global_seq: u64,
        frames_cumulative: &[u64],
    ) -> Result<(), SoftLoraError> {
        let Some(store) = self.tail.store.clone() else {
            return Err(SoftLoraError::Persistence {
                detail: "replica snapshot on a server without persistence".into(),
            });
        };
        let core = &mut self.tail.shards[shard];
        let snapshot = core.snapshot_state(global_seq, frames_cumulative).encode();
        let mut wal = store.shard(shard).lock().expect("shard wal poisoned");
        if wal.last_seq() != covered_seq {
            return Err(SoftLoraError::Persistence {
                detail: format!(
                    "snapshot marker covers shard-{shard} record {covered_seq} but the replica \
                     is at {}",
                    wal.last_seq()
                ),
            });
        }
        wal.install_snapshot(&snapshot).map_err(SoftLoraError::from)?;
        core.since_snapshot = 0;
        Ok(())
    }

    /// Simulates a hard kill for crash-recovery tests and failover
    /// drills: background workers are stopped (a real crash takes them
    /// down with the process) and everything else is leaked **without
    /// flushing**, so the store holds exactly what the per-batch flushes
    /// and group-commit fsyncs made durable — no tidy shutdown flush
    /// papering over the crash window.
    pub fn abandon(mut self) {
        self.committer.take();
        if let Some(installer) = self.installer.take() {
            installer.shutdown();
        }
        std::mem::forget(self);
    }

    /// Rebuilds the tail from a freshly opened store: every shard decodes
    /// its snapshot and replays its WAL tail, then the fronts are
    /// reseated at the recovered frame indices.
    ///
    /// Durability consistency points are batch boundaries (every
    /// `process_batch` flushes all shard WALs) and
    /// [`NetworkServer::sync_persistence`]. A hard kill *mid-batch* can
    /// leave shards flushed to different depths; recovery cross-checks
    /// the shards' commit sequences and refuses a store with a hole —
    /// a group some shard committed durably while an earlier group's
    /// record was still buffered in a dead process — rather than
    /// silently skipping the lost commit and desynchronising the
    /// per-gateway frame indices.
    fn recover_from(&mut self, store: &Arc<ShardedStore>) -> Result<(), StoreError> {
        let gateways = self.fronts.len();
        let frames_check = |frames: &[u64]| -> Result<(), StoreError> {
            if frames.len() != gateways {
                return Err(StoreError::Config {
                    detail: format!(
                        "store was written by a {}-gateway server, this build has {gateways}",
                        frames.len()
                    ),
                });
            }
            Ok(())
        };
        // Decode everything first: the cross-shard consistency check must
        // run before any state is applied.
        let mut decoded: Vec<(Option<ShardSnapshot>, Vec<CommitRecord>)> = Vec::new();
        for recovery in store.take_recovery() {
            let snapshot = match recovery.snapshot {
                Some(bytes) => {
                    let snapshot = ShardSnapshot::decode(&bytes)?;
                    frames_check(&snapshot.frames_cumulative)?;
                    Some(snapshot)
                }
                None => None,
            };
            let mut records = Vec::with_capacity(recovery.records.len());
            for bytes in recovery.records {
                let record = CommitRecord::decode(&bytes)?;
                frames_check(&record.frames_cumulative)?;
                records.push(record);
            }
            decoded.push((snapshot, records));
        }

        // Hole detection: every commit sequence above the newest snapshot
        // floor must be present in some shard's log (records at or below
        // a shard's own snapshot were compacted into it and are fine).
        let floor = decoded
            .iter()
            .filter_map(|(snapshot, _)| snapshot.as_ref().map(|s| s.global_seq))
            .max()
            .unwrap_or(0);
        let seen: std::collections::BTreeSet<u64> =
            decoded.iter().flat_map(|(_, records)| records.iter().map(|r| r.global_seq)).collect();
        let newest_seq = seen.iter().next_back().copied().unwrap_or(0).max(floor);
        for seq in floor + 1..=newest_seq {
            if !seen.contains(&seq) {
                return Err(StoreError::Corrupt {
                    path: store.dir().to_path_buf(),
                    detail: format!(
                        "commit sequence {seq} is missing while {newest_seq} is durable — a \
                         mid-batch crash lost a buffered WAL record; the store cannot be \
                         replayed to a consistent prefix"
                    ),
                });
            }
        }

        // The newest commit across all shards pins the server-wide
        // sequence and the per-gateway frame indices.
        let mut newest: Option<(u64, Vec<u64>)> = None;
        for (k, (snapshot, records)) in decoded.into_iter().enumerate() {
            let shard = &mut self.tail.shards[k];
            // The snapshot trigger resumes where the WAL tail left off —
            // the same counter state an uninterrupted run would carry.
            shard.since_snapshot = records.len() as u64;
            let mut last: Option<(u64, Vec<u64>)> = None;
            if let Some(snapshot) = snapshot {
                shard.restore_snapshot(&snapshot);
                last = Some((snapshot.global_seq, snapshot.frames_cumulative));
            }
            for record in records {
                shard.apply_record(&record);
                last = Some((record.global_seq, record.frames_cumulative));
            }
            if let Some((seq, frames)) = last {
                if newest.as_ref().is_none_or(|(best, _)| seq > *best) {
                    newest = Some((seq, frames));
                }
            }
        }
        if let Some((seq, frames)) = newest {
            self.tail.global_seq = seq;
            for (front, &n) in self.fronts.iter_mut().zip(&frames) {
                front.frames_seen = n;
            }
            self.tail.frames_cumulative = frames;
        }
        self.tail.committed_groups = self.tail.shards.iter().map(|s| s.stats.uplinks).sum();
        self.tail.observed_stats = self.tail.stats();
        Ok(())
    }

    /// Processes one delivery heard by one gateway (a group of one). The
    /// single-gateway compatibility surface: feeding gateway 0 the same
    /// delivery stream a standalone [`crate::SoftLoraGateway`] (same seed)
    /// processes produces bit-identical verdicts.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError`] only for infrastructure failures.
    pub fn process_delivery(
        &mut self,
        gateway: usize,
        delivery: &Delivery,
    ) -> Result<ServerVerdict, SoftLoraError> {
        let group = UplinkDeliveries {
            uplink: self.tail.committed_groups,
            dev_addr: delivery.dev_addr,
            tx_start_global_s: delivery.arrival_global_s,
            airtime_s: 0.0,
            copies: vec![FleetDelivery { gateway, delivery: delivery.clone() }],
        };
        self.process_uplink(&group)
    }

    /// Processes one uplink group: every copy runs its gateway's front
    /// half, then the server dedups to a single verdict.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError`] only for infrastructure failures.
    pub fn process_uplink(
        &mut self,
        group: &UplinkDeliveries,
    ) -> Result<ServerVerdict, SoftLoraError> {
        let mut verdicts = self.process_batch(std::slice::from_ref(group))?;
        Ok(verdicts.pop().expect("one group in, one verdict out"))
    }

    /// Processes a batch of uplink groups. The per-gateway front halves
    /// run across worker threads (randomness is per `(gateway seed,
    /// gateway frame index)`, so results are identical to the sequential
    /// order); the stateful tail commits **shard-parallel** — every group
    /// goes to the shard owning its device, shards proceed independently
    /// — and verdicts plus running statistics are then replayed to
    /// observers in uplink order, bit-for-bit as a sequential tail would
    /// have produced them.
    ///
    /// # Errors
    ///
    /// On an infrastructure failure inside group `k`, groups `0..k` are
    /// committed and the error is returned. Per-gateway frame indices are
    /// consumed up to and including the failing copy (exactly as
    /// [`crate::SoftLoraGateway::process`] consumes an index for an
    /// erroring delivery), so a retried group `k` draws fresh randomness
    /// rather than replaying the failed indices. On a persistence failure
    /// the batch also stops early; groups already committed by *other*
    /// shards remain committed (their verdicts are not returned) — rebuild
    /// from the store to resynchronise.
    pub fn process_batch(
        &mut self,
        groups: &[UplinkDeliveries],
    ) -> Result<Vec<ServerVerdict>, SoftLoraError> {
        // Assign per-gateway frame indices in arrival order, mirroring a
        // sequential loop over every copy, and pre-route every group to
        // its shard with the commit metadata (sequence + cumulative frame
        // indices) the WAL records carry.
        let shard_count = self.tail.shards.len();
        let stride = self.fronts.len();
        let mut counters: Vec<u64> = self.fronts.iter().map(|f| f.frames_seen).collect();
        let mut jobs: Vec<(usize, u64, &Delivery)> = Vec::new();
        // Per-group commit metadata: (shard, wal seq) plus one row of the
        // flat cumulative-frame-index matrix (stride = gateway count) —
        // one allocation for the whole batch instead of one Vec clone per
        // group.
        let mut metas: Vec<(usize, u64)> = Vec::with_capacity(groups.len());
        let mut frame_rows: Vec<u64> = Vec::with_capacity(groups.len() * stride);
        for (i, group) in groups.iter().enumerate() {
            for copy in &group.copies {
                assert!(copy.gateway < self.fronts.len(), "copy for unknown gateway");
                jobs.push((copy.gateway, counters[copy.gateway], &copy.delivery));
                counters[copy.gateway] += 1;
            }
            metas.push((
                shard_of(u64::from(group.dev_addr), shard_count),
                self.tail.global_seq + 1 + i as u64,
            ));
            frame_rows.extend_from_slice(&counters);
        }

        // The embarrassingly parallel front half — one scratch arena per
        // worker *thread*, persistent across batches, so pooled buffers
        // and cached FFT plans (including the 32k-point matched-filter
        // twiddle tables) survive from one `process_batch` to the next.
        let fronts = &self.fronts;
        let analysed: Vec<Result<FrontFrame, SoftLoraError>> = jobs
            .par_iter()
            .map(|(gateway, frame_index, delivery)| {
                softlora_dsp::scratch::with_thread_scratch(|scratch| {
                    fronts[*gateway].pipeline.front_half_with(delivery, *frame_index, scratch)
                })
            })
            .collect();

        // Regroup per uplink; stop at the first front-half failure,
        // consuming frame indices through the failing copy.
        let mut results = analysed.into_iter();
        let mut complete: Vec<(usize, Vec<FrontFrame>)> = Vec::with_capacity(groups.len());
        let mut front_failure: Option<(u64, SoftLoraError)> = None;
        'groups: for (i, group) in groups.iter().enumerate() {
            let mut fronts_of_group = Vec::with_capacity(group.copies.len());
            for copy in &group.copies {
                self.fronts[copy.gateway].frames_seen += 1;
                match results.next().expect("one front per copy") {
                    Ok(front) => fronts_of_group.push(front),
                    Err(e) => {
                        front_failure = Some((group.uplink, e));
                        break 'groups;
                    }
                }
            }
            complete.push((i, fronts_of_group));
        }

        // The shard-parallel tail: every complete group commits on the
        // shard owning its device; shards run independently (their state
        // is disjoint by construction).
        type ShardWork = Vec<(usize, Vec<FrontFrame>)>;
        let mut per_shard: Vec<ShardWork> = (0..shard_count).map(|_| Vec::new()).collect();
        for (i, fronts_of_group) in complete {
            per_shard[metas[i].0].push((i, fronts_of_group));
        }
        let tasks: Vec<Mutex<(&mut ShardCore, ShardWork)>> = self
            .tail
            .shards
            .iter_mut()
            .zip(per_shard)
            .map(|(shard, list)| Mutex::new((shard, list)))
            .collect();
        let metas_ref = &metas;
        let frame_rows_ref = &frame_rows;
        type ShardCommits = Vec<(usize, Result<CommitOutcome, SoftLoraError>)>;
        let committed: Vec<(ShardCommits, Option<SoftLoraError>)> = tasks
            .par_iter()
            .map(|task| {
                let mut guard = task.lock().expect("shard task poisoned");
                let (shard, list) = &mut *guard;
                let list = std::mem::take(list);
                let mut out = Vec::with_capacity(list.len());
                let mut aborted = false;
                for (i, fronts_of_group) in list {
                    let (_, seq) = metas_ref[i];
                    let frames = &frame_rows_ref[i * stride..(i + 1) * stride];
                    let result = shard.commit(&groups[i], fronts_of_group, seq, frames);
                    let failed = result.is_err();
                    out.push((i, result));
                    if failed {
                        aborted = true;
                        break;
                    }
                }
                // One coalesced WAL frame per shard per batch.
                let seal_error = if aborted { None } else { shard.seal_frame().err() };
                (out, seal_error)
            })
            .collect();
        drop(tasks);
        let mut by_group: Vec<Option<Result<CommitOutcome, SoftLoraError>>> =
            groups.iter().map(|_| None).collect();
        let mut seal_failure: Option<SoftLoraError> = None;
        for (list, seal_error) in committed {
            for (i, result) in list {
                by_group[i] = Some(result);
            }
            if let Some(e) = seal_error {
                seal_failure.get_or_insert(e);
            }
        }

        // Ordered observer replay: verdicts and running statistics reach
        // observers in uplink order, exactly as a sequential tail.
        let mut verdicts = Vec::with_capacity(groups.len());
        let mut failure = front_failure;
        for (i, group) in groups.iter().enumerate() {
            match by_group[i].take() {
                Some(Ok(outcome)) => {
                    self.tail.global_seq = metas[i].1;
                    self.tail.frames_cumulative.clear();
                    self.tail
                        .frames_cumulative
                        .extend_from_slice(&frame_rows[i * stride..(i + 1) * stride]);
                    self.tail.committed_groups += 1;
                    self.tail.notify(group.uplink, &outcome);
                    verdicts.push(outcome.verdict);
                }
                Some(Err(e)) => {
                    failure = Some((group.uplink, e));
                    break;
                }
                None => break,
            }
        }
        // Mirror the fronts: on a front failure indices stopped at the
        // failing copy; the tail metadata must agree for the next batch.
        self.tail.frames_cumulative = self.fronts.iter().map(|f| f.frames_seen).collect();

        // A seal failure happened *after* every in-memory commit of its
        // shard succeeded: the verdicts above are real, but the batch
        // reports the persistence failure like any other.
        if failure.is_none() {
            if let Some(e) = seal_failure {
                failure = Some((groups.last().map_or(0, |g| g.uplink), e));
            }
        }
        self.tail.flush_store()?;
        if let Some((uplink, e)) = failure {
            self.tail.notify_error(uplink, &e);
            return Err(e);
        }
        Ok(verdicts)
    }
}

impl ShardCore {
    /// Maps a gateway's FB estimate into gateway 0's reference frame.
    /// Exactly the identity for gateway 0 — the bit-for-bit single-link
    /// compatibility hinge.
    fn normalized_fb(&self, gateway: usize, fb_hz: f64) -> f64 {
        if gateway == 0 {
            fb_hz
        } else {
            fb_hz + self.receiver_bias_hz[gateway] - self.receiver_bias_hz[0]
        }
    }

    /// The stateful back half for one uplink group routed to this shard:
    /// commits the verdict, captures the state mutations for the WAL and
    /// appends the commit record when persistence is on.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when the WAL append or a snapshot
    /// installation fails; the in-memory commit has already happened.
    pub(crate) fn commit(
        &mut self,
        group: &UplinkDeliveries,
        fronts: Vec<FrontFrame>,
        global_seq: u64,
        frames_cumulative: &[u64],
    ) -> Result<CommitOutcome, SoftLoraError> {
        let start = std::time::Instant::now();
        let result = self.commit_impl(group, fronts, global_seq, frames_cumulative);
        self.metrics.commit_ns.record_duration(start.elapsed());
        if let Ok(outcome) = &result {
            self.metrics.observe(outcome);
        }
        result
    }

    /// [`ShardCore::commit`] minus the telemetry wrapper.
    fn commit_impl(
        &mut self,
        group: &UplinkDeliveries,
        fronts: Vec<FrontFrame>,
        global_seq: u64,
        frames_cumulative: &[u64],
    ) -> Result<CommitOutcome, SoftLoraError> {
        let stats_before = self.stats;
        let mut ops = TailOps::default();
        let verdict = self.commit_inner(group, fronts, &mut ops);
        let outcome = CommitOutcome {
            verdict,
            stats_delta: self.stats.delta_since(&stats_before),
            eviction: ops.eviction.clone(),
        };

        if self.store.is_none() {
            return Ok(outcome);
        }
        let (mac_accepted, mac_rejected) = self.mac.frame_counts();
        let record = CommitRecord {
            global_seq,
            uplink: group.uplink,
            stats: self.stats,
            det: self.detector.stats(),
            mac_accepted,
            mac_rejected,
            frames_cumulative: frames_cumulative.to_vec(),
            fb_learn: ops.fb_learn,
            dedup_insert: ops.dedup_insert,
            mac_fcnt: ops.mac_fcnt,
            eviction: ops.eviction.map(|e| (e.dev_addr, e.history)),
        };
        // Buffer the record as one inner-framed run entry; the frame is
        // sealed (one header, one CRC, one write) by `seal_frame` at the
        // batch boundary.
        let mark = self.wal_buf.mark_len();
        record.encode_into(&mut self.wal_buf);
        self.wal_buf.patch_len(mark);
        self.pending_count += 1;
        self.last_global_seq = global_seq;
        self.last_frames.clear();
        self.last_frames.extend_from_slice(frames_cumulative);
        Ok(outcome)
    }

    /// Seals the records buffered since the last seal into one coalesced
    /// WAL frame, announces it to the replication hook, and — when the
    /// snapshot interval elapsed — schedules a background snapshot and
    /// emits its marker. Called once per shard per committed batch.
    ///
    /// # Errors
    ///
    /// [`SoftLoraError::Persistence`] when the WAL append fails (the
    /// in-memory commits have already happened).
    pub(crate) fn seal_frame(&mut self) -> Result<(), SoftLoraError> {
        if self.pending_count == 0 {
            return Ok(());
        }
        let store = self.store.clone().expect("pending records imply a store");
        let count = self.pending_count;
        let (first, covered) = {
            let mut wal = store.shard(self.index).lock().expect("shard wal poisoned");
            let first =
                wal.append_batch(self.wal_buf.as_bytes(), count).map_err(SoftLoraError::from)?;
            (first, wal.last_seq())
        };
        if let Some(hook) = &self.hook {
            hook.on_frame(self.index, first, count, self.wal_buf.as_bytes());
        }
        self.wal_buf.clear();
        self.pending_count = 0;
        self.since_snapshot += count;
        if self.since_snapshot >= self.snapshot_every {
            self.since_snapshot = 0;
            let snapshot = self.snapshot_state(self.last_global_seq, &self.last_frames);
            if let Some(installer) = &self.installer {
                installer.enqueue(self.index, covered, snapshot);
            } else {
                let bytes = snapshot.encode();
                store
                    .shard(self.index)
                    .lock()
                    .expect("shard wal poisoned")
                    .install_snapshot_at(&bytes, covered)
                    .map_err(SoftLoraError::from)?;
            }
            if let Some(hook) = &self.hook {
                hook.on_snapshot_marker(
                    self.index,
                    covered,
                    self.last_global_seq,
                    &self.last_frames,
                );
            }
        }
        Ok(())
    }

    /// This shard's full tail state as a snapshot payload.
    fn snapshot_state(&self, global_seq: u64, frames_cumulative: &[u64]) -> ShardSnapshot {
        let db = self.detector.db();
        let (mac_accepted, mac_rejected) = self.mac.frame_counts();
        ShardSnapshot {
            global_seq,
            frames_cumulative: frames_cumulative.to_vec(),
            stats: self.stats,
            det: self.detector.stats(),
            mac_accepted,
            mac_rejected,
            mac_fcnts: self.mac.session_fcnts(),
            db_clock: db.clock(),
            db_histories: db.export_histories(),
            dedup: self
                .dedup
                .entries_in_order()
                .map(|(dev_addr, fcnt, payload_hash, arrival_global_s, gateway)| DedupRecord {
                    dev_addr,
                    fcnt,
                    payload_hash,
                    arrival_global_s,
                    gateway: gateway as u32,
                })
                .collect(),
        }
    }

    /// Reinstates the shard's tail state from a snapshot, bit for bit.
    fn restore_snapshot(&mut self, snapshot: &ShardSnapshot) {
        let db = self.detector.db_mut();
        db.clear();
        for (dev, tick, fbs) in &snapshot.db_histories {
            db.restore_history(*dev, *tick, fbs);
        }
        db.set_clock(snapshot.db_clock);
        self.detector.restore_stats(snapshot.det);
        self.dedup = DedupCache::new(self.dedup.capacity());
        for e in &snapshot.dedup {
            self.dedup.observe(
                e.dev_addr,
                e.fcnt,
                e.payload_hash,
                e.arrival_global_s,
                e.gateway as usize,
            );
        }
        for (dev, fcnt) in &snapshot.mac_fcnts {
            self.mac.restore_session_fcnt(*dev, *fcnt);
        }
        self.mac.restore_frame_counts(snapshot.mac_accepted, snapshot.mac_rejected);
        self.stats = snapshot.stats;
    }

    /// Replays one WAL commit record: the mutations re-run through the
    /// live state paths (so LRU ticks and evictions re-derive exactly),
    /// the absolute counters overwrite.
    fn apply_record(&mut self, record: &CommitRecord) {
        if let Some((dev, fb)) = record.fb_learn {
            let _ = self.detector.learn(dev, fb);
        }
        if let Some(e) = &record.dedup_insert {
            self.dedup.observe(
                e.dev_addr,
                e.fcnt,
                e.payload_hash,
                e.arrival_global_s,
                e.gateway as usize,
            );
        }
        if let Some((dev, fcnt)) = record.mac_fcnt {
            self.mac.restore_session_fcnt(dev, fcnt);
        }
        self.mac.restore_frame_counts(record.mac_accepted, record.mac_rejected);
        self.detector.restore_stats(record.det);
        self.stats = record.stats;
    }

    fn commit_inner(
        &mut self,
        group: &UplinkDeliveries,
        fronts: Vec<FrontFrame>,
        ops: &mut TailOps,
    ) -> ServerVerdict {
        assert!(!group.copies.is_empty(), "empty uplink group");
        self.stats.uplinks += 1;

        let mut signals = Vec::new();
        let mut analysed: Vec<(usize, AnalyzedFrame)> = Vec::new();
        let mut first_outcome = None;
        for (k, front) in fronts.into_iter().enumerate() {
            match front {
                FrontFrame::NotReceived { outcome, .. } => {
                    if first_outcome.is_none() {
                        first_outcome = Some(outcome);
                    }
                }
                FrontFrame::Analyzed(frame) => analysed.push((k, frame)),
            }
        }
        let copies_heard = analysed.len();
        if analysed.is_empty() {
            self.stats.not_received += 1;
            return ServerVerdict {
                verdict: SoftLoraVerdict::NotReceived {
                    outcome: first_outcome.expect("group has at least one copy"),
                },
                gateway: None,
                copies_heard,
                duplicates_suppressed: 0,
                signals,
            };
        }

        // Cross-gateway timestamp consistency inside the group: copies of
        // one transmission arrive within the propagation window of the
        // earliest copy. Late copies are replay evidence (the frame-delay
        // replay reaches every gateway τ after the original).
        let arrival = |k: usize| group.copies[k].delivery.arrival_global_s;
        let t0 = analysed.iter().map(|(k, _)| arrival(*k)).fold(f64::INFINITY, f64::min);
        let (trusted, late): (Vec<_>, Vec<_>) =
            analysed.into_iter().partition(|(k, _)| arrival(*k) - t0 <= self.arrival_tolerance_s);
        for (k, _) in &late {
            let gateway = group.copies[*k].gateway;
            let gap_s = arrival(*k) - t0;
            signals.push(ReplaySignal::ArrivalInconsistent {
                gateway,
                gap_s,
                tolerance_s: self.arrival_tolerance_s,
            });
            self.stats.cross_gateway_replays_flagged += 1;
            self.detector.score(
                ReplayVerdict::ReplayDetected { deviation_hz: 0.0, band_hz: 0.0 },
                group.copies[*k].delivery.is_replay,
            );
        }

        // Best-SNR pick among the trusted copies.
        let metas: Vec<UplinkCopy> = trusted
            .iter()
            .map(|(k, _)| UplinkCopy {
                gateway: group.copies[*k].gateway,
                snr_db: group.copies[*k].delivery.snr_db,
                arrival_global_s: arrival(*k),
            })
            .collect();
        let best = best_copy(&metas).expect("trusted set is non-empty");
        let duplicates_suppressed = trusted.len() - 1;
        self.stats.duplicates_suppressed += duplicates_suppressed as u64;
        let (best_k, best_frame) = &trusted[best];
        let best_gateway = group.copies[*best_k].gateway;
        let best_delivery = &group.copies[*best_k].delivery;
        let claimed_dev = best_frame.claimed_dev;

        // Cross-gateway FB consistency among simultaneous copies: after
        // normalising out each SDR's own bias, every gateway measured the
        // same transmitter — a disagreement means one copy went through a
        // replay chain (a τ ≈ 0 relay the arrival check cannot see).
        if trusted.len() >= 2 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (k, frame) in &trusted {
                let fb = self.normalized_fb(group.copies[*k].gateway, frame.fb.delta_hz);
                lo = lo.min(fb);
                hi = hi.max(fb);
            }
            let spread_hz = hi - lo;
            if spread_hz > self.fb_spread_tolerance_hz {
                signals.push(ReplaySignal::CrossGatewayFb {
                    spread_hz,
                    tolerance_hz: self.fb_spread_tolerance_hz,
                });
                self.stats.cross_gateway_replays_flagged += 1;
                self.detector.score(
                    ReplayVerdict::ReplayDetected { deviation_hz: spread_hz, band_hz: 0.0 },
                    best_delivery.is_replay,
                );
                return ServerVerdict {
                    verdict: SoftLoraVerdict::ReplayDetected {
                        dev_addr: claimed_dev,
                        deviation_hz: spread_hz,
                        band_hz: self.fb_spread_tolerance_hz,
                    },
                    gateway: Some(best_gateway),
                    copies_heard,
                    duplicates_suppressed,
                    signals,
                };
            }
        }

        // Recent-uplink dedup across groups: a repeated (device, fcnt,
        // frame bytes) far outside the arrival window is the replayed
        // duplicate of a frame some other gateway already delivered — the
        // detection that works at gateways the attacker never jammed. The
        // payload hash in the key keeps counter rollover from aliasing
        // honest frames into replays at scale.
        if let Ok((_, dedup_dev, fcnt)) = DataFrame::peek_header(&best_delivery.bytes) {
            let digest = payload_hash(&best_delivery.bytes);
            match self.dedup.observe(
                dedup_dev,
                fcnt,
                digest,
                best_delivery.arrival_global_s,
                best_gateway,
            ) {
                DedupOutcome::First => {
                    ops.dedup_insert = Some(DedupRecord {
                        dev_addr: dedup_dev,
                        fcnt,
                        payload_hash: digest,
                        arrival_global_s: best_delivery.arrival_global_s,
                        gateway: best_gateway as u32,
                    });
                }
                DedupOutcome::Duplicate { gap_s, .. } => {
                    if gap_s.abs() > self.arrival_tolerance_s {
                        signals.push(ReplaySignal::ArrivalInconsistent {
                            gateway: best_gateway,
                            gap_s,
                            tolerance_s: self.arrival_tolerance_s,
                        });
                        self.stats.cross_gateway_replays_flagged += 1;
                        self.detector.score(
                            ReplayVerdict::ReplayDetected { deviation_hz: 0.0, band_hz: 0.0 },
                            best_delivery.is_replay,
                        );
                        return ServerVerdict {
                            verdict: SoftLoraVerdict::ReplayDetected {
                                dev_addr: claimed_dev,
                                deviation_hz: gap_s,
                                band_hz: self.arrival_tolerance_s,
                            },
                            gateway: Some(best_gateway),
                            copies_heard,
                            duplicates_suppressed,
                            signals,
                        };
                    }
                    // A same-window duplicate from another group: plain
                    // fleet dedup, nothing suspicious.
                    self.stats.duplicates_suppressed += 1;
                    self.stats.lorawan_rejected += 1;
                    return ServerVerdict {
                        verdict: SoftLoraVerdict::LorawanRejected {
                            reason: format!(
                                "duplicate copy of uplink {dedup_dev:#x}/{fcnt} already delivered"
                            ),
                        },
                        gateway: Some(best_gateway),
                        copies_heard,
                        duplicates_suppressed: duplicates_suppressed + 1,
                        signals,
                    };
                }
            }
        }

        // FB-consistency replay check against the shared per-device
        // history, in gateway-0 reference frame.
        let fb_norm = self.normalized_fb(best_gateway, best_frame.fb.delta_hz);
        let fb_verdict = self.detector.check(claimed_dev, fb_norm);
        self.detector.score(fb_verdict, best_delivery.is_replay);
        if let ReplayVerdict::ReplayDetected { deviation_hz, band_hz } = fb_verdict {
            signals.push(ReplaySignal::FbInconsistent {
                gateway: best_gateway,
                deviation_hz,
                band_hz,
            });
            self.stats.fb_replays_flagged += 1;
            return ServerVerdict {
                verdict: SoftLoraVerdict::ReplayDetected {
                    dev_addr: claimed_dev,
                    deviation_hz,
                    band_hz,
                },
                gateway: Some(best_gateway),
                copies_heard,
                duplicates_suppressed,
                signals,
            };
        }

        // LoRaWAN verification + synchronization-free timestamping at the
        // chosen copy's PHY arrival instant.
        let rx = self.mac.verify(&best_delivery.bytes, best_frame.onset.phy_arrival_s);
        let verdict = match rx {
            RxVerdict::Accepted(uplink) => {
                ops.mac_fcnt = Some((uplink.dev_addr, uplink.fcnt));
                ops.eviction = self.detector.learn(claimed_dev, fb_norm);
                ops.fb_learn = Some((claimed_dev, fb_norm));
                self.stats.accepted += 1;
                SoftLoraVerdict::Accepted {
                    uplink,
                    fb: best_frame.fb,
                    phy_arrival_s: best_frame.onset.phy_arrival_s,
                    learning: matches!(fb_verdict, ReplayVerdict::LearningPhase),
                }
            }
            RxVerdict::UnknownDevice { dev_addr } => {
                self.stats.lorawan_rejected += 1;
                SoftLoraVerdict::LorawanRejected { reason: format!("unknown device {dev_addr:#x}") }
            }
            RxVerdict::Rejected(e) => {
                self.stats.lorawan_rejected += 1;
                SoftLoraVerdict::LorawanRejected { reason: e.to_string() }
            }
        };
        ServerVerdict {
            verdict,
            gateway: Some(best_gateway),
            copies_heard,
            duplicates_suppressed,
            signals,
        }
    }
}

/// The state mutations one commit made — what its WAL record carries.
#[derive(Default)]
struct TailOps {
    fb_learn: Option<(u32, f64)>,
    dedup_insert: Option<DedupRecord>,
    mac_fcnt: Option<(u32, u16)>,
    eviction: Option<FbEviction>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_lorawan::{ClassADevice, DeviceConfig};
    use softlora_phy::rn2483::ReceptionOutcome;
    use softlora_phy::{PhyConfig, SpreadingFactor};
    use softlora_sim::Delivery;

    fn phy() -> PhyConfig {
        PhyConfig::uplink(SpreadingFactor::Sf7)
    }

    fn delivery(dev: &mut ClassADevice, t: f64, bias_hz: f64, snr_db: f64) -> Delivery {
        dev.sense(777, t - 1.0).unwrap();
        let tx = dev.try_transmit(t).unwrap();
        Delivery {
            bytes: tx.bytes,
            dev_addr: dev.dev_addr(),
            arrival_global_s: t + 4e-6,
            snr_db,
            carrier_bias_hz: bias_hz,
            carrier_phase: 0.7,
            sf: SpreadingFactor::Sf7,
            jamming: None,
            is_replay: false,
        }
    }

    fn group(copies: Vec<FleetDelivery>) -> UplinkDeliveries {
        UplinkDeliveries {
            uplink: 0,
            dev_addr: copies[0].delivery.dev_addr,
            tx_start_global_s: copies[0].delivery.arrival_global_s,
            airtime_s: 0.046,
            copies,
        }
    }

    fn server(gateways: usize) -> (ClassADevice, NetworkServer) {
        let dev_cfg = DeviceConfig::new(0x2601_0001, phy());
        let mut b = NetworkServer::builder(phy())
            .adc_quantisation(false)
            .provision(dev_cfg.dev_addr, dev_cfg.keys.clone());
        for g in 0..gateways {
            b = b.gateway(99 + g as u64);
        }
        (ClassADevice::new(dev_cfg), b.build())
    }

    #[test]
    fn builder_defaults_one_gateway() {
        let s = NetworkServer::builder(phy()).build();
        assert_eq!(s.gateway_count(), 1);
        assert!(s.shard_count() >= 1);
        assert!(s.persistence_dir().is_none());
    }

    #[test]
    fn shards_override_and_floor() {
        let s = NetworkServer::builder(phy()).shards(5).build();
        assert_eq!(s.shard_count(), 5);
        let s = NetworkServer::builder(phy()).shards(0).build();
        assert_eq!(s.shard_count(), 1, "shard count is floored at one");
    }

    #[test]
    fn dedups_multi_gateway_copies_to_best_snr() {
        let (mut dev, mut srv) = server(3);
        for k in 0..4 {
            let t = 100.0 + 200.0 * k as f64;
            let d = delivery(&mut dev, t, -22_000.0, 0.0);
            let copies = (0..3)
                .map(|g| {
                    let mut c = d.clone();
                    c.snr_db = 4.0 + 3.0 * g as f64; // gateway 2 hears best
                    c.arrival_global_s = d.arrival_global_s + 1e-6 * g as f64;
                    FleetDelivery { gateway: g, delivery: c }
                })
                .collect();
            let v = srv.process_uplink(&group(copies)).unwrap();
            assert!(v.is_accepted(), "uplink {k}: {v:?}");
            assert_eq!(v.gateway, Some(2), "best SNR copy wins");
            assert_eq!(v.copies_heard, 3);
            assert_eq!(v.duplicates_suppressed, 2);
            assert!(v.signals.is_empty(), "{:?}", v.signals);
        }
        let st = srv.stats();
        assert_eq!(st.uplinks, 4);
        assert_eq!(st.accepted, 4);
        assert_eq!(st.duplicates_suppressed, 8);
        // One shared history per device, not one per gateway.
        assert_eq!(srv.fb_database().devices(), 1);
        assert_eq!(srv.fb_database().history_len(0x2601_0001), 4);
    }

    #[test]
    fn late_copy_in_group_is_flagged_cross_gateway() {
        let (mut dev, mut srv) = server(2);
        let d = delivery(&mut dev, 100.0, -22_000.0, 8.0);
        let mut replayed = d.clone();
        replayed.arrival_global_s += 30.0;
        replayed.is_replay = true;
        replayed.carrier_bias_hz -= 600.0;
        let copies = vec![
            FleetDelivery { gateway: 0, delivery: d },
            FleetDelivery { gateway: 1, delivery: replayed },
        ];
        let v = srv.process_uplink(&group(copies)).unwrap();
        // The clean original is accepted; the τ-late copy raised evidence.
        assert!(v.is_accepted(), "{v:?}");
        assert_eq!(v.gateway, Some(0));
        assert!(matches!(v.signals[..], [ReplaySignal::ArrivalInconsistent { gateway: 1, .. }]));
        assert_eq!(srv.stats().cross_gateway_replays_flagged, 1);
    }

    #[test]
    fn cross_group_duplicate_with_tau_gap_is_replay() {
        let (mut dev, mut srv) = server(2);
        let d = delivery(&mut dev, 100.0, -22_000.0, 8.0);
        // Gateway 0 delivers the original.
        let v = srv.process_delivery(0, &d).unwrap();
        assert!(v.is_accepted());
        // The replayed duplicate surfaces at gateway 1, τ = 45 s late, in
        // its own group — caught by dedup consistency, not FB.
        let mut replayed = d;
        replayed.arrival_global_s += 45.0;
        replayed.is_replay = true;
        let v = srv.process_delivery(1, &replayed).unwrap();
        assert!(v.verdict.is_replay_detected(), "{v:?}");
        assert!(matches!(v.signals[..], [ReplaySignal::ArrivalInconsistent { .. }]));
    }

    #[test]
    fn microsecond_duplicate_across_groups_is_benign() {
        let (mut dev, mut srv) = server(2);
        let d = delivery(&mut dev, 100.0, -22_000.0, 8.0);
        assert!(srv.process_delivery(0, &d).unwrap().is_accepted());
        // The same frame via gateway 1, 2 µs later (fleet propagation).
        let mut copy = d;
        copy.arrival_global_s += 2e-6;
        let v = srv.process_delivery(1, &copy).unwrap();
        assert!(!v.is_replay_flagged(), "{v:?}");
        assert!(matches!(v.verdict, SoftLoraVerdict::LorawanRejected { .. }));
        assert_eq!(srv.stats().cross_gateway_replays_flagged, 0);
    }

    #[test]
    fn no_gateway_heard_gives_not_received() {
        let (mut dev, mut srv) = server(2);
        let d = delivery(&mut dev, 100.0, -22_000.0, -15.0); // below floor
        let copies = vec![
            FleetDelivery { gateway: 0, delivery: d.clone() },
            FleetDelivery { gateway: 1, delivery: d },
        ];
        let v = srv.process_uplink(&group(copies)).unwrap();
        assert!(matches!(
            v.verdict,
            SoftLoraVerdict::NotReceived { outcome: ReceptionOutcome::NoSignal }
        ));
        assert_eq!(v.gateway, None);
        assert_eq!(srv.stats().not_received, 1);
    }

    #[test]
    fn fb_check_runs_in_gateway_zero_frame() {
        // Copies land alternately at two gateways with different SDR
        // biases; the shared history still converges because estimates are
        // normalised into gateway 0's frame.
        let (mut dev, mut srv) = server(2);
        for k in 0..8 {
            let t = 100.0 + 200.0 * k as f64;
            let d = delivery(&mut dev, t, -22_000.0, 10.0);
            let v = srv.process_delivery(k % 2, &d).unwrap();
            assert!(v.is_accepted(), "uplink {k}: {v:?}");
        }
        // A replay with the USRP artefact is flagged whichever gateway
        // hears it.
        let d = delivery(&mut dev, 2000.0, -22_000.0 - 700.0, 10.0);
        let v = srv.process_delivery(1, &d).unwrap();
        assert!(v.verdict.is_replay_detected(), "{v:?}");
        assert!(matches!(v.signals[..], [ReplaySignal::FbInconsistent { gateway: 1, .. }]));
    }

    #[test]
    fn batch_matches_sequential_groups() {
        let (mut dev, mut seq_srv) = server(2);
        let (_, mut batch_srv) = {
            let dev_cfg = DeviceConfig::new(0x2601_0001, phy());
            let b = NetworkServer::builder(phy())
                .adc_quantisation(false)
                .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
                .gateway(99)
                .gateway(100);
            (ClassADevice::new(dev_cfg), b.build())
        };
        let groups: Vec<UplinkDeliveries> = (0..6)
            .map(|k| {
                let t = 100.0 + 200.0 * k as f64;
                let d = delivery(&mut dev, t, -22_000.0, 9.0);
                let copies = (0..2)
                    .map(|g| {
                        let mut c = d.clone();
                        c.snr_db = 5.0 + 2.0 * g as f64;
                        FleetDelivery { gateway: g, delivery: c }
                    })
                    .collect();
                group(copies)
            })
            .collect();
        let sequential: Vec<ServerVerdict> =
            groups.iter().map(|g| seq_srv.process_uplink(g).unwrap()).collect();
        let batched = batch_srv.process_batch(&groups).unwrap();
        assert_eq!(sequential, batched);
        assert_eq!(seq_srv.frames_seen(0), batch_srv.frames_seen(0));
        assert_eq!(seq_srv.frames_seen(1), batch_srv.frames_seen(1));
    }

    #[test]
    fn sharded_tail_matches_single_shard_tail() {
        // The same multi-device stream through a 1-shard and a 4-shard
        // server: verdicts, statistics and detection scores must be
        // bit-for-bit equal — the per-device tail state never interacts
        // across devices.
        let build = |shards: usize| {
            let mut b =
                NetworkServer::builder(phy()).adc_quantisation(false).shards(shards).gateway(7);
            let mut devs = Vec::new();
            for k in 0..5u32 {
                let cfg = DeviceConfig::new(0x2601_0100 + k, phy());
                b = b.provision(cfg.dev_addr, cfg.keys.clone());
                devs.push(ClassADevice::new(cfg));
            }
            (devs, b.build())
        };
        let (mut devs, mut seq) = build(1);
        let (_, mut sharded) = build(4);
        let mut groups = Vec::new();
        for round in 0..4 {
            for (j, dev) in devs.iter_mut().enumerate() {
                let t = 100.0 + 300.0 * round as f64 + 40.0 * j as f64;
                let d = delivery(dev, t, -22_000.0 - 500.0 * j as f64, 9.0);
                groups.push(group(vec![FleetDelivery { gateway: 0, delivery: d }]));
            }
        }
        let a = seq.process_batch(&groups).unwrap();
        let b = sharded.process_batch(&groups).unwrap();
        assert_eq!(a, b);
        assert_eq!(seq.stats(), sharded.stats());
        assert_eq!(seq.detection_stats(), sharded.detection_stats());
        let (db1, db4) = (seq.fb_database(), sharded.fb_database());
        assert_eq!(db1.devices(), db4.devices());
        for k in 0..5u32 {
            let dev = 0x2601_0100 + k;
            assert_eq!(db1.history_len(dev), db4.history_len(dev), "device {dev:#x}");
            assert_eq!(db1.tracked_center_hz(dev), db4.tracked_center_hz(dev));
        }
    }

    #[test]
    fn eviction_is_reported_to_observers() {
        #[derive(Default)]
        struct Evictions(Vec<(u64, u32, usize)>);
        impl ServerObserver for Evictions {
            fn on_eviction(&mut self, uplink: u64, eviction: &FbEviction) {
                self.0.push((uplink, eviction.dev_addr, eviction.history.len()));
            }
        }
        let log = Arc::new(Mutex::new(Evictions::default()));
        let mut b = NetworkServer::builder(phy())
            .adc_quantisation(false)
            .shards(1)
            .max_tracked_devices(2)
            .gateway(7)
            .observer(Box::new(Arc::clone(&log)));
        let mut devs = Vec::new();
        for k in 0..3u32 {
            let cfg = DeviceConfig::new(0x2601_0200 + k, phy());
            b = b.provision(cfg.dev_addr, cfg.keys.clone());
            devs.push(ClassADevice::new(cfg));
        }
        let mut srv = b.build();
        let mut t = 100.0;
        for dev in &mut devs {
            let d = delivery(dev, t, -22_000.0, 9.0);
            assert!(srv.process_delivery(0, &d).unwrap().is_accepted());
            t += 200.0;
        }
        // Device 0 was least recently updated — accepting device 2 evicted
        // it, and the observer heard about it with the dropped history.
        let seen = &log.lock().unwrap().0;
        assert_eq!(seen.len(), 1, "{seen:?}");
        assert_eq!(seen[0].1, 0x2601_0200);
        assert_eq!(seen[0].2, 1, "one dropped FB");
        assert_eq!(srv.fb_database().history_len(0x2601_0200), 0);
    }
}
