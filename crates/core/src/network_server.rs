//! The network-server timestamping service: multi-gateway deduplication
//! over the SoftLoRa pipeline.
//!
//! Real LoRaWAN deployments place several gateways so that one uplink is
//! heard by more than one of them; the network server deduplicates the
//! copies and keeps the best. This module lifts the paper's single-link
//! defence to that architecture:
//!
//! * each gateway contributes its **front half** of the staged
//!   [`crate::pipeline`] (radio gate → capture synthesis → onset pick → FB
//!   estimate) — per-gateway state, because every gateway has its own SDR
//!   receiver and oscillator bias;
//! * the server owns the **shared, capacity-bounded
//!   [`crate::FbDatabase`] keyed by device**. FB estimates are
//!   normalised into gateway 0's reference frame (`fb + δRx_g − δRx_0`) so
//!   copies from different SDRs share one per-device history; for gateway
//!   0 the normalisation is exactly zero, which keeps the one-gateway
//!   configuration bit-for-bit identical to a standalone
//!   [`SoftLoraGateway`](crate::SoftLoraGateway);
//! * **dedup with consistency checking** adds a second replay signal on
//!   top of the FB check: copies of one uplink must arrive within the
//!   propagation window, and a repeated `(device, fcnt)` far outside it is
//!   flagged — so the frame-delay attack is caught even at a gateway the
//!   attacker never jammed;
//! * [`NetworkServer::process_batch`] fans the per-gateway front halves
//!   out across worker threads exactly like
//!   [`SoftLoraGateway::process_batch`](crate::SoftLoraGateway::process_batch),
//!   then replays the stateful dedup/detect/MAC tail sequentially in
//!   uplink order.

use crate::config::SoftLoraConfig;
use crate::fb_db::FbDatabase;
use crate::gateway::SoftLoraVerdict;
use crate::pipeline::{AnalyzedFrame, FrontFrame, MacStage, Pipeline};
use crate::replay_detect::{DetectionStats, ReplayDetector, ReplayVerdict};
use crate::SoftLoraError;
use rayon::prelude::*;
use softlora_lorawan::frame::DataFrame;
use softlora_lorawan::{
    best_copy, payload_hash, DedupCache, DedupOutcome, DeviceKeys, RxVerdict, UplinkCopy,
};
use softlora_phy::PhyConfig;
use softlora_sim::{Delivery, FleetDelivery, UplinkDeliveries};

/// One gateway's stateless analysis front end inside the server.
pub(crate) struct GatewayFront {
    pub(crate) pipeline: Pipeline,
    pub(crate) frames_seen: u64,
}

/// Hooks the network server calls as it commits deduplicated verdicts —
/// the server-tier counterpart of [`crate::GatewayObserver`]. Both the
/// batch path ([`NetworkServer::process_batch`]) and the streaming path
/// (`softlora::streaming`) drive the same hooks, so observability does
/// not depend on the execution mode. All methods have empty defaults.
///
/// Observers run on whichever thread commits the verdict (the streaming
/// sink block runs on a scheduler worker), hence the `Send` bound.
#[allow(unused_variables)]
pub trait ServerObserver: Send {
    /// One uplink group was deduplicated to its authoritative verdict.
    fn on_verdict(&mut self, uplink: u64, verdict: &ServerVerdict) {}

    /// Aggregate statistics after committing that uplink.
    fn on_stats(&mut self, stats: ServerStats) {}

    /// A gateway front end failed with an infrastructure error; the
    /// stream (or batch) stops after this uplink.
    fn on_error(&mut self, uplink: u64, error: &SoftLoraError) {}
}

impl<T: ServerObserver> ServerObserver for std::sync::Arc<std::sync::Mutex<T>> {
    fn on_verdict(&mut self, uplink: u64, verdict: &ServerVerdict) {
        self.lock().expect("server observer poisoned").on_verdict(uplink, verdict);
    }
    fn on_stats(&mut self, stats: ServerStats) {
        self.lock().expect("server observer poisoned").on_stats(stats);
    }
    fn on_error(&mut self, uplink: u64, error: &SoftLoraError) {
        self.lock().expect("server observer poisoned").on_error(uplink, error);
    }
}

/// Attack evidence the server gathered while deduplicating one uplink.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplaySignal {
    /// The chosen copy's FB deviated from the device's tracked band
    /// (the paper's single-gateway detection, paper §7.2).
    FbInconsistent {
        /// Gateway that heard the flagged copy.
        gateway: usize,
        /// FB deviation from the tracked centre, Hz.
        deviation_hz: f64,
        /// The exceeded band half-width, Hz.
        band_hz: f64,
    },
    /// A copy of this uplink arrived far outside the propagation window of
    /// the earliest copy — the cross-gateway timestamp consistency signal.
    ArrivalInconsistent {
        /// Gateway that heard the late copy.
        gateway: usize,
        /// Arrival gap behind the earliest (or first-recorded) copy, s.
        gap_s: f64,
        /// The tolerance that was exceeded, seconds.
        tolerance_s: f64,
    },
    /// Normalised FBs of simultaneous copies disagree across gateways —
    /// one copy went through a replay chain.
    CrossGatewayFb {
        /// Max-minus-min normalised FB across the copies, Hz.
        spread_hz: f64,
        /// The tolerance that was exceeded, Hz.
        tolerance_hz: f64,
    },
}

/// The server's deduplicated verdict for one uplink.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerVerdict {
    /// The authoritative per-uplink verdict (one per uplink, however many
    /// gateways heard it). For replays flagged by a cross-gateway signal,
    /// `ReplayDetected` carries the arrival gap (s → `deviation_hz` is the
    /// spread/gap in the signal's unit) — inspect `signals` for the
    /// precise evidence.
    pub verdict: SoftLoraVerdict,
    /// Gateway whose copy produced the verdict (best SNR among trusted
    /// copies), when any copy was analysed.
    pub gateway: Option<usize>,
    /// Copies that survived their radio front ends.
    pub copies_heard: usize,
    /// Trusted duplicate copies suppressed in favour of the best one.
    pub duplicates_suppressed: usize,
    /// Every replay signal raised while processing this uplink.
    pub signals: Vec<ReplaySignal>,
}

impl ServerVerdict {
    /// Whether the uplink was accepted and timestamped.
    pub fn is_accepted(&self) -> bool {
        self.verdict.is_accepted()
    }

    /// Whether any replay evidence was raised for this uplink.
    pub fn is_replay_flagged(&self) -> bool {
        !self.signals.is_empty()
    }
}

/// Aggregate server statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Uplink groups processed.
    pub uplinks: u64,
    /// Uplinks accepted and timestamped.
    pub accepted: u64,
    /// Uplinks flagged by the FB-consistency check.
    pub fb_replays_flagged: u64,
    /// Replay copies flagged by cross-gateway consistency (arrival gap or
    /// FB spread).
    pub cross_gateway_replays_flagged: u64,
    /// Trusted duplicate copies suppressed by best-SNR dedup.
    pub duplicates_suppressed: u64,
    /// Uplinks no gateway's radio delivered.
    pub not_received: u64,
    /// Uplinks rejected by the LoRaWAN layer.
    pub lorawan_rejected: u64,
}

/// Fluent builder for [`NetworkServer`].
pub struct NetworkServerBuilder {
    config: SoftLoraConfig,
    gateway_seeds: Vec<u64>,
    devices: Vec<(u32, DeviceKeys)>,
    preloads: Vec<(u32, Vec<f64>)>,
    arrival_tolerance_s: f64,
    fb_spread_tolerance_hz: f64,
    dedup_capacity: usize,
    observers: Vec<Box<dyn ServerObserver>>,
}

impl NetworkServerBuilder {
    /// Starts from the paper-faithful defaults for `phy`. Add gateways
    /// with [`NetworkServerBuilder::gateway`]; with none, `build` creates
    /// a single gateway seeded 0.
    pub fn new(phy: PhyConfig) -> Self {
        NetworkServerBuilder {
            config: SoftLoraConfig::new(phy),
            gateway_seeds: Vec::new(),
            devices: Vec::new(),
            preloads: Vec::new(),
            // Fleet copies of one frame differ by propagation (µs); a
            // millisecond already dwarfs any honest geometry.
            arrival_tolerance_s: 1e-3,
            // Normalised FBs of honest simultaneous copies differ by
            // per-gateway estimation noise (tens to low hundreds of Hz at
            // workable SNR); a replay chain adds ≥ 543 Hz.
            fb_spread_tolerance_hz: 450.0,
            dedup_capacity: 4096,
            observers: Vec::new(),
        }
    }

    /// Starts from an existing configuration.
    pub fn from_config(config: SoftLoraConfig) -> Self {
        let phy = config.phy;
        let mut b = Self::new(phy);
        b.config = config;
        b
    }

    /// Adds a gateway whose SDR oscillator and per-delivery randomness are
    /// drawn from `seed` (the same seed a standalone
    /// [`crate::SoftLoraGateway`] would use).
    pub fn gateway(mut self, seed: u64) -> Self {
        self.gateway_seeds.push(seed);
        self
    }

    /// Provisions a device's LoRaWAN session keys.
    pub fn provision(mut self, dev_addr: u32, keys: DeviceKeys) -> Self {
        self.devices.push((dev_addr, keys));
        self
    }

    /// Pre-loads a device's FB history in gateway-0 reference frame
    /// (offline database construction, paper §7.2).
    pub fn preload_fb(mut self, dev_addr: u32, fbs_hz: &[f64]) -> Self {
        self.preloads.push((dev_addr, fbs_hz.to_vec()));
        self
    }

    /// Frames required before the shared FB database gives verdicts.
    pub fn warmup_frames(mut self, frames: usize) -> Self {
        self.config.warmup_frames = frames;
        self
    }

    /// Device-capacity bound of the shared FB database.
    pub fn max_tracked_devices(mut self, devices: usize) -> Self {
        self.config.max_tracked_devices = devices;
        self
    }

    /// Whether to model ADC quantisation in the SDR captures.
    pub fn adc_quantisation(mut self, enabled: bool) -> Self {
        self.config.adc_quantisation = enabled;
        self
    }

    /// Arrival window within which copies of one uplink are mutually
    /// consistent, seconds.
    pub fn arrival_tolerance_s(mut self, tolerance_s: f64) -> Self {
        self.arrival_tolerance_s = tolerance_s;
        self
    }

    /// Cross-gateway normalised-FB agreement tolerance, Hz.
    pub fn fb_spread_tolerance_hz(mut self, tolerance_hz: f64) -> Self {
        self.fb_spread_tolerance_hz = tolerance_hz;
        self
    }

    /// Capacity of the recent-uplink dedup cache.
    pub fn dedup_capacity(mut self, uplinks: usize) -> Self {
        self.dedup_capacity = uplinks;
        self
    }

    /// Attaches a [`ServerObserver`] receiving every committed verdict
    /// and the running statistics.
    pub fn observer(mut self, observer: Box<dyn ServerObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Assembles the server.
    pub fn build(self) -> NetworkServer {
        let seeds = if self.gateway_seeds.is_empty() { vec![0] } else { self.gateway_seeds };
        let fronts: Vec<GatewayFront> = seeds
            .into_iter()
            .map(|seed| GatewayFront {
                pipeline: Pipeline::new(self.config.clone(), seed),
                frames_seen: 0,
            })
            .collect();
        let db = FbDatabase::new(
            32,
            self.config.warmup_frames,
            self.config.band_floor_hz,
            self.config.band_sigma,
        )
        .with_max_devices(self.config.max_tracked_devices);
        let mut detector = ReplayDetector::new(db);
        for (dev_addr, fbs) in &self.preloads {
            detector.preload(*dev_addr, fbs);
        }
        let mut mac = MacStage::new();
        for (dev_addr, keys) in self.devices {
            mac.provision(dev_addr, keys);
        }
        let receiver_bias_hz =
            fronts.iter().map(|f| f.pipeline.capture.receiver_bias_hz()).collect();
        NetworkServer {
            fronts,
            core: ServerCore {
                detector,
                mac,
                dedup: DedupCache::new(self.dedup_capacity),
                arrival_tolerance_s: self.arrival_tolerance_s,
                fb_spread_tolerance_hz: self.fb_spread_tolerance_hz,
                stats: ServerStats::default(),
                receiver_bias_hz,
                observers: self.observers,
            },
        }
    }
}

/// The server's stateful back half: the shared FB detector, LoRaWAN MAC,
/// dedup cache and statistics — everything that must observe uplinks
/// sequentially, packaged so the batch path and the streaming sink block
/// (`softlora::streaming`) run the *same* commit code.
pub(crate) struct ServerCore {
    pub(crate) detector: ReplayDetector,
    pub(crate) mac: MacStage,
    pub(crate) dedup: DedupCache,
    pub(crate) arrival_tolerance_s: f64,
    pub(crate) fb_spread_tolerance_hz: f64,
    pub(crate) stats: ServerStats,
    /// Each gateway's SDR oscillator bias, captured at build time (the
    /// bias is a fixed property of the pipeline's seed).
    pub(crate) receiver_bias_hz: Vec<f64>,
    pub(crate) observers: Vec<Box<dyn ServerObserver>>,
}

/// The multi-gateway network server (see the module docs).
pub struct NetworkServer {
    pub(crate) fronts: Vec<GatewayFront>,
    pub(crate) core: ServerCore,
}

impl std::fmt::Debug for NetworkServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkServer")
            .field("gateways", &self.fronts.len())
            .field("stats", &self.core.stats)
            .finish_non_exhaustive()
    }
}

impl NetworkServer {
    /// Starts a [`NetworkServerBuilder`] from the paper-faithful defaults.
    pub fn builder(phy: PhyConfig) -> NetworkServerBuilder {
        NetworkServerBuilder::new(phy)
    }

    /// Number of gateways feeding this server.
    pub fn gateway_count(&self) -> usize {
        self.fronts.len()
    }

    /// Gateway `g`'s SDR oscillator bias (δRx), Hz.
    pub fn receiver_bias_hz(&self, gateway: usize) -> f64 {
        self.fronts[gateway].pipeline.capture.receiver_bias_hz()
    }

    /// Deliveries gateway `g`'s front end has analysed so far.
    pub fn frames_seen(&self, gateway: usize) -> u64 {
        self.fronts[gateway].frames_seen
    }

    /// Provisions a device's LoRaWAN session keys.
    pub fn provision(&mut self, dev_addr: u32, keys: DeviceKeys) {
        self.core.mac.provision(dev_addr, keys);
    }

    /// Pre-loads a device's FB history (gateway-0 reference frame).
    pub fn preload_fb(&mut self, dev_addr: u32, fbs_hz: &[f64]) {
        self.core.detector.preload(dev_addr, fbs_hz);
    }

    /// Attaches a [`ServerObserver`] (see [`crate::observer`] for the
    /// gateway-tier counterpart).
    pub fn attach_observer(&mut self, observer: Box<dyn ServerObserver>) {
        self.core.observers.push(observer);
    }

    /// Read access to the shared FB database.
    pub fn fb_database(&self) -> &FbDatabase {
        self.core.detector.db()
    }

    /// FB detection statistics (scored on deduplicated verdicts).
    pub fn detection_stats(&self) -> DetectionStats {
        self.core.detector.stats()
    }

    /// Aggregate server statistics.
    pub fn stats(&self) -> ServerStats {
        self.core.stats
    }

    /// Processes one delivery heard by one gateway (a group of one). The
    /// single-gateway compatibility surface: feeding gateway 0 the same
    /// delivery stream a standalone [`crate::SoftLoraGateway`] (same seed)
    /// processes produces bit-identical verdicts.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError`] only for infrastructure failures.
    pub fn process_delivery(
        &mut self,
        gateway: usize,
        delivery: &Delivery,
    ) -> Result<ServerVerdict, SoftLoraError> {
        let group = UplinkDeliveries {
            uplink: self.core.stats.uplinks,
            dev_addr: delivery.dev_addr,
            tx_start_global_s: delivery.arrival_global_s,
            airtime_s: 0.0,
            copies: vec![FleetDelivery { gateway, delivery: delivery.clone() }],
        };
        self.process_uplink(&group)
    }

    /// Processes one uplink group: every copy runs its gateway's front
    /// half, then the server dedups to a single verdict.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError`] only for infrastructure failures.
    pub fn process_uplink(
        &mut self,
        group: &UplinkDeliveries,
    ) -> Result<ServerVerdict, SoftLoraError> {
        let mut verdicts = self.process_batch(std::slice::from_ref(group))?;
        Ok(verdicts.pop().expect("one group in, one verdict out"))
    }

    /// Processes a batch of uplink groups: all copies' front halves run
    /// across worker threads (randomness is per `(gateway seed, gateway
    /// frame index)`, so results are identical to the sequential order),
    /// then the stateful dedup/detect/MAC tail replays sequentially.
    ///
    /// # Errors
    ///
    /// On an infrastructure failure inside group `k`, groups `0..k` are
    /// committed and the error is returned. Per-gateway frame indices are
    /// consumed up to and including the failing copy (exactly as
    /// [`crate::SoftLoraGateway::process`] consumes an index for an
    /// erroring delivery), so a retried group `k` draws fresh randomness
    /// rather than replaying the failed indices.
    pub fn process_batch(
        &mut self,
        groups: &[UplinkDeliveries],
    ) -> Result<Vec<ServerVerdict>, SoftLoraError> {
        // Assign per-gateway frame indices in arrival order, mirroring a
        // sequential loop over every copy.
        let mut counters: Vec<u64> = self.fronts.iter().map(|f| f.frames_seen).collect();
        let mut jobs: Vec<(usize, u64, &Delivery)> = Vec::new();
        for group in groups {
            for copy in &group.copies {
                assert!(copy.gateway < self.fronts.len(), "copy for unknown gateway");
                jobs.push((copy.gateway, counters[copy.gateway], &copy.delivery));
                counters[copy.gateway] += 1;
            }
        }
        let fronts = &self.fronts;
        let analysed: Vec<Result<FrontFrame, SoftLoraError>> = jobs
            .par_iter()
            .map(|(gateway, frame_index, delivery)| {
                fronts[*gateway].pipeline.front_half(delivery, *frame_index)
            })
            .collect();

        let mut results = analysed.into_iter();
        let mut verdicts = Vec::with_capacity(groups.len());
        for group in groups {
            let mut fronts_of_group = Vec::with_capacity(group.copies.len());
            let mut failure = None;
            for copy in &group.copies {
                self.fronts[copy.gateway].frames_seen += 1;
                match results.next().expect("one front per copy") {
                    Ok(front) => fronts_of_group.push(front),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            match failure {
                Some(e) => {
                    for obs in &mut self.core.observers {
                        obs.on_error(group.uplink, &e);
                    }
                    return Err(e);
                }
                None => verdicts.push(self.core.commit_group(group, fronts_of_group)),
            }
        }
        Ok(verdicts)
    }
}

impl ServerCore {
    /// Maps a gateway's FB estimate into gateway 0's reference frame.
    /// Exactly the identity for gateway 0 — the bit-for-bit single-link
    /// compatibility hinge.
    fn normalized_fb(&self, gateway: usize, fb_hz: f64) -> f64 {
        if gateway == 0 {
            fb_hz
        } else {
            fb_hz + self.receiver_bias_hz[gateway] - self.receiver_bias_hz[0]
        }
    }

    /// The stateful back half for one uplink group: commits the verdict
    /// and notifies observers. Sequential by construction.
    pub(crate) fn commit_group(
        &mut self,
        group: &UplinkDeliveries,
        fronts: Vec<FrontFrame>,
    ) -> ServerVerdict {
        let verdict = self.commit_group_inner(group, fronts);
        let stats = self.stats;
        for obs in &mut self.observers {
            obs.on_verdict(group.uplink, &verdict);
            obs.on_stats(stats);
        }
        verdict
    }

    /// Notifies observers of an infrastructure failure (streaming path).
    pub(crate) fn notify_error(&mut self, uplink: u64, error: &SoftLoraError) {
        for obs in &mut self.observers {
            obs.on_error(uplink, error);
        }
    }

    fn commit_group_inner(
        &mut self,
        group: &UplinkDeliveries,
        fronts: Vec<FrontFrame>,
    ) -> ServerVerdict {
        assert!(!group.copies.is_empty(), "empty uplink group");
        self.stats.uplinks += 1;

        let mut signals = Vec::new();
        let mut analysed: Vec<(usize, AnalyzedFrame)> = Vec::new();
        let mut first_outcome = None;
        for (k, front) in fronts.into_iter().enumerate() {
            match front {
                FrontFrame::NotReceived { outcome, .. } => {
                    if first_outcome.is_none() {
                        first_outcome = Some(outcome);
                    }
                }
                FrontFrame::Analyzed(frame) => analysed.push((k, frame)),
            }
        }
        let copies_heard = analysed.len();
        if analysed.is_empty() {
            self.stats.not_received += 1;
            return ServerVerdict {
                verdict: SoftLoraVerdict::NotReceived {
                    outcome: first_outcome.expect("group has at least one copy"),
                },
                gateway: None,
                copies_heard,
                duplicates_suppressed: 0,
                signals,
            };
        }

        // Cross-gateway timestamp consistency inside the group: copies of
        // one transmission arrive within the propagation window of the
        // earliest copy. Late copies are replay evidence (the frame-delay
        // replay reaches every gateway τ after the original).
        let arrival = |k: usize| group.copies[k].delivery.arrival_global_s;
        let t0 = analysed.iter().map(|(k, _)| arrival(*k)).fold(f64::INFINITY, f64::min);
        let (trusted, late): (Vec<_>, Vec<_>) =
            analysed.into_iter().partition(|(k, _)| arrival(*k) - t0 <= self.arrival_tolerance_s);
        for (k, _) in &late {
            let gateway = group.copies[*k].gateway;
            let gap_s = arrival(*k) - t0;
            signals.push(ReplaySignal::ArrivalInconsistent {
                gateway,
                gap_s,
                tolerance_s: self.arrival_tolerance_s,
            });
            self.stats.cross_gateway_replays_flagged += 1;
            self.detector.score(
                ReplayVerdict::ReplayDetected { deviation_hz: 0.0, band_hz: 0.0 },
                group.copies[*k].delivery.is_replay,
            );
        }

        // Best-SNR pick among the trusted copies.
        let metas: Vec<UplinkCopy> = trusted
            .iter()
            .map(|(k, _)| UplinkCopy {
                gateway: group.copies[*k].gateway,
                snr_db: group.copies[*k].delivery.snr_db,
                arrival_global_s: arrival(*k),
            })
            .collect();
        let best = best_copy(&metas).expect("trusted set is non-empty");
        let duplicates_suppressed = trusted.len() - 1;
        self.stats.duplicates_suppressed += duplicates_suppressed as u64;
        let (best_k, best_frame) = &trusted[best];
        let best_gateway = group.copies[*best_k].gateway;
        let best_delivery = &group.copies[*best_k].delivery;
        let claimed_dev = best_frame.claimed_dev;

        // Cross-gateway FB consistency among simultaneous copies: after
        // normalising out each SDR's own bias, every gateway measured the
        // same transmitter — a disagreement means one copy went through a
        // replay chain (a τ ≈ 0 relay the arrival check cannot see).
        if trusted.len() >= 2 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (k, frame) in &trusted {
                let fb = self.normalized_fb(group.copies[*k].gateway, frame.fb.delta_hz);
                lo = lo.min(fb);
                hi = hi.max(fb);
            }
            let spread_hz = hi - lo;
            if spread_hz > self.fb_spread_tolerance_hz {
                signals.push(ReplaySignal::CrossGatewayFb {
                    spread_hz,
                    tolerance_hz: self.fb_spread_tolerance_hz,
                });
                self.stats.cross_gateway_replays_flagged += 1;
                self.detector.score(
                    ReplayVerdict::ReplayDetected { deviation_hz: spread_hz, band_hz: 0.0 },
                    best_delivery.is_replay,
                );
                return ServerVerdict {
                    verdict: SoftLoraVerdict::ReplayDetected {
                        dev_addr: claimed_dev,
                        deviation_hz: spread_hz,
                        band_hz: self.fb_spread_tolerance_hz,
                    },
                    gateway: Some(best_gateway),
                    copies_heard,
                    duplicates_suppressed,
                    signals,
                };
            }
        }

        // Recent-uplink dedup across groups: a repeated (device, fcnt,
        // frame bytes) far outside the arrival window is the replayed
        // duplicate of a frame some other gateway already delivered — the
        // detection that works at gateways the attacker never jammed. The
        // payload hash in the key keeps counter rollover from aliasing
        // honest frames into replays at scale.
        if let Ok((_, dedup_dev, fcnt)) = DataFrame::peek_header(&best_delivery.bytes) {
            let digest = payload_hash(&best_delivery.bytes);
            match self.dedup.observe(
                dedup_dev,
                fcnt,
                digest,
                best_delivery.arrival_global_s,
                best_gateway,
            ) {
                DedupOutcome::First => {}
                DedupOutcome::Duplicate { gap_s, .. } => {
                    if gap_s.abs() > self.arrival_tolerance_s {
                        signals.push(ReplaySignal::ArrivalInconsistent {
                            gateway: best_gateway,
                            gap_s,
                            tolerance_s: self.arrival_tolerance_s,
                        });
                        self.stats.cross_gateway_replays_flagged += 1;
                        self.detector.score(
                            ReplayVerdict::ReplayDetected { deviation_hz: 0.0, band_hz: 0.0 },
                            best_delivery.is_replay,
                        );
                        return ServerVerdict {
                            verdict: SoftLoraVerdict::ReplayDetected {
                                dev_addr: claimed_dev,
                                deviation_hz: gap_s,
                                band_hz: self.arrival_tolerance_s,
                            },
                            gateway: Some(best_gateway),
                            copies_heard,
                            duplicates_suppressed,
                            signals,
                        };
                    }
                    // A same-window duplicate from another group: plain
                    // fleet dedup, nothing suspicious.
                    self.stats.duplicates_suppressed += 1;
                    self.stats.lorawan_rejected += 1;
                    return ServerVerdict {
                        verdict: SoftLoraVerdict::LorawanRejected {
                            reason: format!(
                                "duplicate copy of uplink {dedup_dev:#x}/{fcnt} already delivered"
                            ),
                        },
                        gateway: Some(best_gateway),
                        copies_heard,
                        duplicates_suppressed: duplicates_suppressed + 1,
                        signals,
                    };
                }
            }
        }

        // FB-consistency replay check against the shared per-device
        // history, in gateway-0 reference frame.
        let fb_norm = self.normalized_fb(best_gateway, best_frame.fb.delta_hz);
        let fb_verdict = self.detector.check(claimed_dev, fb_norm);
        self.detector.score(fb_verdict, best_delivery.is_replay);
        if let ReplayVerdict::ReplayDetected { deviation_hz, band_hz } = fb_verdict {
            signals.push(ReplaySignal::FbInconsistent {
                gateway: best_gateway,
                deviation_hz,
                band_hz,
            });
            self.stats.fb_replays_flagged += 1;
            return ServerVerdict {
                verdict: SoftLoraVerdict::ReplayDetected {
                    dev_addr: claimed_dev,
                    deviation_hz,
                    band_hz,
                },
                gateway: Some(best_gateway),
                copies_heard,
                duplicates_suppressed,
                signals,
            };
        }

        // LoRaWAN verification + synchronization-free timestamping at the
        // chosen copy's PHY arrival instant.
        let rx = self.mac.verify(&best_delivery.bytes, best_frame.onset.phy_arrival_s);
        let verdict = match rx {
            RxVerdict::Accepted(uplink) => {
                self.detector.learn(claimed_dev, fb_norm);
                self.stats.accepted += 1;
                SoftLoraVerdict::Accepted {
                    uplink,
                    fb: best_frame.fb,
                    phy_arrival_s: best_frame.onset.phy_arrival_s,
                    learning: matches!(fb_verdict, ReplayVerdict::LearningPhase),
                }
            }
            RxVerdict::UnknownDevice { dev_addr } => {
                self.stats.lorawan_rejected += 1;
                SoftLoraVerdict::LorawanRejected { reason: format!("unknown device {dev_addr:#x}") }
            }
            RxVerdict::Rejected(e) => {
                self.stats.lorawan_rejected += 1;
                SoftLoraVerdict::LorawanRejected { reason: e.to_string() }
            }
        };
        ServerVerdict {
            verdict,
            gateway: Some(best_gateway),
            copies_heard,
            duplicates_suppressed,
            signals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_lorawan::{ClassADevice, DeviceConfig};
    use softlora_phy::rn2483::ReceptionOutcome;
    use softlora_phy::{PhyConfig, SpreadingFactor};
    use softlora_sim::Delivery;

    fn phy() -> PhyConfig {
        PhyConfig::uplink(SpreadingFactor::Sf7)
    }

    fn delivery(dev: &mut ClassADevice, t: f64, bias_hz: f64, snr_db: f64) -> Delivery {
        dev.sense(777, t - 1.0).unwrap();
        let tx = dev.try_transmit(t).unwrap();
        Delivery {
            bytes: tx.bytes,
            dev_addr: dev.dev_addr(),
            arrival_global_s: t + 4e-6,
            snr_db,
            carrier_bias_hz: bias_hz,
            carrier_phase: 0.7,
            sf: SpreadingFactor::Sf7,
            jamming: None,
            is_replay: false,
        }
    }

    fn group(copies: Vec<FleetDelivery>) -> UplinkDeliveries {
        UplinkDeliveries {
            uplink: 0,
            dev_addr: copies[0].delivery.dev_addr,
            tx_start_global_s: copies[0].delivery.arrival_global_s,
            airtime_s: 0.046,
            copies,
        }
    }

    fn server(gateways: usize) -> (ClassADevice, NetworkServer) {
        let dev_cfg = DeviceConfig::new(0x2601_0001, phy());
        let mut b = NetworkServer::builder(phy())
            .adc_quantisation(false)
            .provision(dev_cfg.dev_addr, dev_cfg.keys.clone());
        for g in 0..gateways {
            b = b.gateway(99 + g as u64);
        }
        (ClassADevice::new(dev_cfg), b.build())
    }

    #[test]
    fn builder_defaults_one_gateway() {
        let s = NetworkServer::builder(phy()).build();
        assert_eq!(s.gateway_count(), 1);
    }

    #[test]
    fn dedups_multi_gateway_copies_to_best_snr() {
        let (mut dev, mut srv) = server(3);
        for k in 0..4 {
            let t = 100.0 + 200.0 * k as f64;
            let d = delivery(&mut dev, t, -22_000.0, 0.0);
            let copies = (0..3)
                .map(|g| {
                    let mut c = d.clone();
                    c.snr_db = 4.0 + 3.0 * g as f64; // gateway 2 hears best
                    c.arrival_global_s = d.arrival_global_s + 1e-6 * g as f64;
                    FleetDelivery { gateway: g, delivery: c }
                })
                .collect();
            let v = srv.process_uplink(&group(copies)).unwrap();
            assert!(v.is_accepted(), "uplink {k}: {v:?}");
            assert_eq!(v.gateway, Some(2), "best SNR copy wins");
            assert_eq!(v.copies_heard, 3);
            assert_eq!(v.duplicates_suppressed, 2);
            assert!(v.signals.is_empty(), "{:?}", v.signals);
        }
        let st = srv.stats();
        assert_eq!(st.uplinks, 4);
        assert_eq!(st.accepted, 4);
        assert_eq!(st.duplicates_suppressed, 8);
        // One shared history per device, not one per gateway.
        assert_eq!(srv.fb_database().devices(), 1);
        assert_eq!(srv.fb_database().history_len(0x2601_0001), 4);
    }

    #[test]
    fn late_copy_in_group_is_flagged_cross_gateway() {
        let (mut dev, mut srv) = server(2);
        let d = delivery(&mut dev, 100.0, -22_000.0, 8.0);
        let mut replayed = d.clone();
        replayed.arrival_global_s += 30.0;
        replayed.is_replay = true;
        replayed.carrier_bias_hz -= 600.0;
        let copies = vec![
            FleetDelivery { gateway: 0, delivery: d },
            FleetDelivery { gateway: 1, delivery: replayed },
        ];
        let v = srv.process_uplink(&group(copies)).unwrap();
        // The clean original is accepted; the τ-late copy raised evidence.
        assert!(v.is_accepted(), "{v:?}");
        assert_eq!(v.gateway, Some(0));
        assert!(matches!(v.signals[..], [ReplaySignal::ArrivalInconsistent { gateway: 1, .. }]));
        assert_eq!(srv.stats().cross_gateway_replays_flagged, 1);
    }

    #[test]
    fn cross_group_duplicate_with_tau_gap_is_replay() {
        let (mut dev, mut srv) = server(2);
        let d = delivery(&mut dev, 100.0, -22_000.0, 8.0);
        // Gateway 0 delivers the original.
        let v = srv.process_delivery(0, &d).unwrap();
        assert!(v.is_accepted());
        // The replayed duplicate surfaces at gateway 1, τ = 45 s late, in
        // its own group — caught by dedup consistency, not FB.
        let mut replayed = d;
        replayed.arrival_global_s += 45.0;
        replayed.is_replay = true;
        let v = srv.process_delivery(1, &replayed).unwrap();
        assert!(v.verdict.is_replay_detected(), "{v:?}");
        assert!(matches!(v.signals[..], [ReplaySignal::ArrivalInconsistent { .. }]));
    }

    #[test]
    fn microsecond_duplicate_across_groups_is_benign() {
        let (mut dev, mut srv) = server(2);
        let d = delivery(&mut dev, 100.0, -22_000.0, 8.0);
        assert!(srv.process_delivery(0, &d).unwrap().is_accepted());
        // The same frame via gateway 1, 2 µs later (fleet propagation).
        let mut copy = d;
        copy.arrival_global_s += 2e-6;
        let v = srv.process_delivery(1, &copy).unwrap();
        assert!(!v.is_replay_flagged(), "{v:?}");
        assert!(matches!(v.verdict, SoftLoraVerdict::LorawanRejected { .. }));
        assert_eq!(srv.stats().cross_gateway_replays_flagged, 0);
    }

    #[test]
    fn no_gateway_heard_gives_not_received() {
        let (mut dev, mut srv) = server(2);
        let d = delivery(&mut dev, 100.0, -22_000.0, -15.0); // below floor
        let copies = vec![
            FleetDelivery { gateway: 0, delivery: d.clone() },
            FleetDelivery { gateway: 1, delivery: d },
        ];
        let v = srv.process_uplink(&group(copies)).unwrap();
        assert!(matches!(
            v.verdict,
            SoftLoraVerdict::NotReceived { outcome: ReceptionOutcome::NoSignal }
        ));
        assert_eq!(v.gateway, None);
        assert_eq!(srv.stats().not_received, 1);
    }

    #[test]
    fn fb_check_runs_in_gateway_zero_frame() {
        // Copies land alternately at two gateways with different SDR
        // biases; the shared history still converges because estimates are
        // normalised into gateway 0's frame.
        let (mut dev, mut srv) = server(2);
        for k in 0..8 {
            let t = 100.0 + 200.0 * k as f64;
            let d = delivery(&mut dev, t, -22_000.0, 10.0);
            let v = srv.process_delivery(k % 2, &d).unwrap();
            assert!(v.is_accepted(), "uplink {k}: {v:?}");
        }
        // A replay with the USRP artefact is flagged whichever gateway
        // hears it.
        let d = delivery(&mut dev, 2000.0, -22_000.0 - 700.0, 10.0);
        let v = srv.process_delivery(1, &d).unwrap();
        assert!(v.verdict.is_replay_detected(), "{v:?}");
        assert!(matches!(v.signals[..], [ReplaySignal::FbInconsistent { gateway: 1, .. }]));
    }

    #[test]
    fn batch_matches_sequential_groups() {
        let (mut dev, mut seq_srv) = server(2);
        let (_, mut batch_srv) = {
            let dev_cfg = DeviceConfig::new(0x2601_0001, phy());
            let b = NetworkServer::builder(phy())
                .adc_quantisation(false)
                .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
                .gateway(99)
                .gateway(100);
            (ClassADevice::new(dev_cfg), b.build())
        };
        let groups: Vec<UplinkDeliveries> = (0..6)
            .map(|k| {
                let t = 100.0 + 200.0 * k as f64;
                let d = delivery(&mut dev, t, -22_000.0, 9.0);
                let copies = (0..2)
                    .map(|g| {
                        let mut c = d.clone();
                        c.snr_db = 5.0 + 2.0 * g as f64;
                        FleetDelivery { gateway: g, delivery: c }
                    })
                    .collect();
                group(copies)
            })
            .collect();
        let sequential: Vec<ServerVerdict> =
            groups.iter().map(|g| seq_srv.process_uplink(g).unwrap()).collect();
        let batched = batch_srv.process_batch(&groups).unwrap();
        assert_eq!(sequential, batched);
        assert_eq!(seq_srv.frames_seen(0), batch_srv.frames_seen(0));
        assert_eq!(seq_srv.frames_seen(1), batch_srv.frames_seen(1));
    }
}
