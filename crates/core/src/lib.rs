//! **SoftLoRa** — attack-aware, synchronization-free data timestamping for
//! LoRaWAN.
//!
//! This crate is the paper's primary contribution ("Attack-Aware Data
//! Timestamping in Low-Power Synchronization-Free LoRaWAN", ICDCS 2020): a
//! commodity LoRaWAN gateway augmented with a $25 RTL-SDR receiver that
//!
//! 1. **timestamps the radio signal itself** with microsecond accuracy by
//!    picking the preamble onset on the SDR's I/Q capture with an AIC
//!    picker ([`phy_timestamp`], paper §6);
//! 2. **estimates each frame's carrier frequency bias (FB)** from a single
//!    preamble chirp — closed-form linear regression on the unwrapped
//!    phase at workable SNR, a least-squares template fit solved by
//!    differential evolution below the demodulation floor
//!    ([`fb_estimator`], paper §7.1, 0.14 ppm resolution at −25 dB);
//! 3. **detects the frame-delay attack** by checking each frame's FB
//!    against the per-device history ([`fb_db`], [`replay_detect`],
//!    paper §7.2) — a replayed frame carries the replay chain's extra
//!    ≥ 0.6 ppm bias;
//! 4. **reconstructs trustworthy global timestamps** for the sensor
//!    records of accepted frames and refuses to timestamp flagged ones
//!    ([`gateway`], paper §3.2/§5.3).
//!
//! The defence is entirely passive: no extra transmissions, no device
//! modifications, no clock synchronisation ([`analysis`] quantifies the
//! savings).
//!
//! The gateway is an explicit six-stage pipeline ([`pipeline`]): the
//! embarrassingly-parallel front half (radio gate → capture synthesis →
//! onset pick → FB estimate) is a pure function of the gateway seed and
//! frame index, so [`SoftLoraGateway::process_batch`] fans it out across
//! threads and replays the stateful detector/MAC tail sequentially —
//! bit-identical to a sequential [`SoftLoraGateway::process`] loop.
//!
//! For multi-gateway deployments, [`network_server`] lifts the defence to
//! the network-server tier: per-gateway front halves feed a shared,
//! capacity-bounded FB database, copies are deduplicated to the best-SNR
//! one, and cross-gateway timestamp/FB consistency adds a second replay
//! signal — the frame-delay attack is caught even at gateways the
//! attacker never jammed.
//!
//! # Quick start
//!
//! ```
//! use softlora::observer::GatewayStats;
//! use softlora::SoftLoraGateway;
//! use softlora_phy::{PhyConfig, SpreadingFactor};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
//! let stats = Rc::new(RefCell::new(GatewayStats::default()));
//! let mut gw = SoftLoraGateway::builder(phy)
//!     .seed(42)
//!     .warmup_frames(3)
//!     .observer(Box::new(Rc::clone(&stats)))
//!     .build();
//! // Provision devices, then feed deliveries from the simulator:
//! // `gw.process(&delivery)` one at a time, or `gw.process_batch(&batch)`
//! // to run the DSP front half for independent deliveries in parallel.
//! assert_eq!(stats.borrow().frames(), 0);
//! # let _ = &mut gw;
//! ```

pub mod analysis;
pub mod builder;
pub mod config;
pub mod fb_db;
pub mod fb_estimator;
pub mod fsck;
pub mod gateway;
pub mod network_server;
pub mod observer;
pub(crate) mod persist;
pub mod phy_timestamp;
pub mod pipeline;
pub mod replay_detect;
pub mod replication;
pub mod streaming;

pub use builder::GatewayBuilder;
pub use config::SoftLoraConfig;
pub use fb_db::{FbDatabase, FbEviction};
pub use fb_estimator::{FbEstimate, FbEstimator, FbMethod};
pub use fsck::{fsck_store, ShardReport, StoreReport};
pub use gateway::{SoftLoraGateway, SoftLoraVerdict};
pub use network_server::{
    NetworkServer, NetworkServerBuilder, ReplaySignal, ServerObserver, ServerStats, ServerVerdict,
};
pub use observer::{GatewayObserver, GatewayStats, Stage};
pub use phy_timestamp::{OnsetMethod, PhyTimestamp, PhyTimestamper};
pub use pipeline::Pipeline;
pub use replay_detect::{ReplayDetector, ReplayVerdict};
pub use replication::CommitHook;
pub use streaming::{
    FrontEntry, FrontPart, FrontVec, GatewayFrontBlock, RoutedUplink, ServerSinkBlock,
    ShardRouterBlock, ShardSinkBlock,
};

/// Errors returned by SoftLoRa processing stages.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftLoraError {
    /// The SDR capture was unusable (too short, or onset not found).
    Capture {
        /// Description of the capture problem.
        reason: &'static str,
    },
    /// A DSP stage failed.
    Dsp(softlora_dsp::DspError),
    /// A PHY stage failed.
    Phy(softlora_phy::PhyError),
    /// A LoRaWAN stage failed.
    Lorawan(softlora_lorawan::LorawanError),
    /// The durable device-state store failed (WAL append, snapshot or
    /// flush) on a server built with persistence enabled.
    Persistence {
        /// Description of the store failure.
        detail: String,
    },
}

impl std::fmt::Display for SoftLoraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoftLoraError::Capture { reason } => write!(f, "capture error: {reason}"),
            SoftLoraError::Dsp(e) => write!(f, "dsp error: {e}"),
            SoftLoraError::Phy(e) => write!(f, "phy error: {e}"),
            SoftLoraError::Lorawan(e) => write!(f, "lorawan error: {e}"),
            SoftLoraError::Persistence { detail } => write!(f, "persistence error: {detail}"),
        }
    }
}

impl std::error::Error for SoftLoraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoftLoraError::Dsp(e) => Some(e),
            SoftLoraError::Phy(e) => Some(e),
            SoftLoraError::Lorawan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<softlora_dsp::DspError> for SoftLoraError {
    fn from(e: softlora_dsp::DspError) -> Self {
        SoftLoraError::Dsp(e)
    }
}

impl From<softlora_phy::PhyError> for SoftLoraError {
    fn from(e: softlora_phy::PhyError) -> Self {
        SoftLoraError::Phy(e)
    }
}

impl From<softlora_lorawan::LorawanError> for SoftLoraError {
    fn from(e: softlora_lorawan::LorawanError) -> Self {
        SoftLoraError::Lorawan(e)
    }
}

impl From<softlora_store::StoreError> for SoftLoraError {
    fn from(e: softlora_store::StoreError) -> Self {
        SoftLoraError::Persistence { detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        use std::error::Error;
        let d: SoftLoraError =
            softlora_dsp::DspError::InputTooShort { required: 2, actual: 0 }.into();
        assert!(d.source().is_some());
        assert!(d.to_string().contains("dsp"));
        let p: SoftLoraError = softlora_phy::PhyError::HeaderLost.into();
        assert!(p.to_string().contains("phy"));
        let l: SoftLoraError = softlora_lorawan::LorawanError::BadMic.into();
        assert!(l.to_string().contains("lorawan"));
        let c = SoftLoraError::Capture { reason: "too short" };
        assert!(c.source().is_none());
    }
}
