//! The gateway + network-server stack as streaming flowgraph blocks.
//!
//! [`NetworkServer::into_streaming`] splits a built server into the
//! blocks of an always-on flowgraph:
//!
//! ```text
//!                     ┌─▶ GatewayFrontBlock(gw 0) ─▶┐
//!  source (sim crate) ┼─▶ GatewayFrontBlock(gw 1) ─▶┼─▶ ServerSinkBlock
//!                     └─▶ GatewayFrontBlock(gw 2) ─▶┘
//! ```
//!
//! The source (see `softlora_sim::streaming`) broadcasts every
//! [`UplinkDeliveries`] group to all gateway blocks; each gateway block
//! runs the embarrassingly-parallel pipeline front half for **its**
//! copies (assigning per-gateway frame indices exactly as the batch path
//! does, so all randomness matches); the sink reassembles per-gateway
//! parts in uplink order and drives the same sequential back half
//! ([`crate::network_server`]'s dedup → cross-gateway checks → FB check →
//! MAC) that `process_batch` uses. Verdicts therefore come out **bit for
//! bit identical** to the batch path — pinned by the
//! `streaming_runtime` integration test — and flow to the outside through
//! the server's [`ServerObserver`]s.

use crate::network_server::{GatewayFront, NetworkServer, ServerCore, ServerObserver};
use crate::pipeline::FrontFrame;
use crate::SoftLoraError;
use softlora_runtime::{Block, WorkIo, WorkResult};
use softlora_sim::UplinkDeliveries;
use std::sync::Arc;

/// Groups a front block analyses per `work` call before yielding.
const FRONT_BATCH: usize = 16;

/// Groups the sink commits per `work` call before yielding.
const SINK_BATCH: usize = 64;

/// One gateway's front-half analysis of one uplink group.
pub struct FrontPart {
    /// The group's scenario-wide uplink sequence number.
    pub uplink: u64,
    /// Index of the gateway that produced this part.
    pub gateway: usize,
    /// The group itself (shared with every other gateway's part).
    pub group: Arc<UplinkDeliveries>,
    /// Analysed copies, as `(index into group.copies, front result)` for
    /// the copies this gateway heard — empty when the group holds no copy
    /// for this gateway.
    pub fronts: Vec<(usize, Result<FrontFrame, SoftLoraError>)>,
}

/// One gateway's streaming front half: the radio gate → capture → onset →
/// FB chain of [`crate::Pipeline`], applied to this gateway's copies of
/// every group flowing past.
pub struct GatewayFrontBlock {
    name: String,
    gateway: usize,
    front: GatewayFront,
}

impl GatewayFrontBlock {
    /// Deliveries analysed so far (the per-gateway frame index).
    pub fn frames_seen(&self) -> u64 {
        self.front.frames_seen
    }
}

impl Block for GatewayFrontBlock {
    type In = Arc<UplinkDeliveries>;
    type Out = FrontPart;

    fn name(&self) -> &str {
        &self.name
    }

    fn work(&mut self, io: &mut WorkIo<'_, Arc<UplinkDeliveries>, FrontPart>) -> WorkResult {
        let mut produced = 0;
        while produced < FRONT_BATCH {
            if io.output().free() == 0 {
                return if produced > 0 {
                    WorkResult::Produced(produced)
                } else {
                    WorkResult::NeedsOutput
                };
            }
            let group = match io.input().pop() {
                Some(group) => group,
                None if io.input().is_finished() => return WorkResult::Finished,
                None => {
                    return if produced > 0 {
                        WorkResult::Produced(produced)
                    } else {
                        WorkResult::NeedsInput
                    }
                }
            };
            // Per-gateway frame indices advance per copy in group order —
            // the same assignment `NetworkServer::process_batch` makes,
            // so every random draw matches the batch path.
            let mut fronts = Vec::new();
            for (k, copy) in group.copies.iter().enumerate() {
                if copy.gateway != self.gateway {
                    continue;
                }
                let frame_index = self.front.frames_seen;
                self.front.frames_seen += 1;
                fronts.push((k, self.front.pipeline.front_half(&copy.delivery, frame_index)));
            }
            let part = FrontPart { uplink: group.uplink, gateway: self.gateway, group, fronts };
            let pushed = io.output().push(part);
            debug_assert!(pushed.is_ok(), "free slot was checked");
            produced += 1;
        }
        WorkResult::Produced(produced)
    }
}

/// The server's sequential back half as the flowgraph sink: reassembles
/// each group's per-gateway [`FrontPart`]s (one input port per gateway)
/// and commits the deduplicated verdict through the same shared state the
/// batch path uses (FB detector, dedup cache, MAC), notifying the
/// server's [`ServerObserver`]s.
pub struct ServerSinkBlock {
    core: ServerCore,
    /// Set when a gateway front reported an infrastructure error; the
    /// sink finishes early, mirroring `process_batch` aborting a batch.
    failed: bool,
}

impl ServerSinkBlock {
    /// Attaches a [`ServerObserver`] — the streaming path's way to watch
    /// verdicts and statistics.
    pub fn attach_observer(&mut self, observer: Box<dyn ServerObserver>) {
        self.core.observers.push(observer);
    }

    /// Aggregate statistics committed so far.
    pub fn stats(&self) -> crate::ServerStats {
        self.core.stats
    }
}

impl Block for ServerSinkBlock {
    type In = FrontPart;
    type Out = ();

    fn name(&self) -> &str {
        "server-sink"
    }

    fn work(&mut self, io: &mut WorkIo<'_, FrontPart, ()>) -> WorkResult {
        if self.failed {
            return WorkResult::Finished;
        }
        let mut committed = 0;
        while committed < SINK_BATCH {
            // A group's verdict needs every gateway's part; each input
            // port delivers parts in group order, so the heads of all
            // ports always belong to the same group.
            if io.inputs.iter_mut().any(|p| p.is_empty()) {
                return if io.inputs_finished() {
                    WorkResult::Finished
                } else if committed > 0 {
                    WorkResult::Produced(committed)
                } else {
                    WorkResult::NeedsInput
                };
            }
            let parts: Vec<FrontPart> =
                io.inputs.iter_mut().map(|p| p.pop().expect("port checked non-empty")).collect();
            let uplink = parts[0].uplink;
            let group = Arc::clone(&parts[0].group);
            for part in &parts {
                assert_eq!(
                    part.uplink, uplink,
                    "gateway streams out of step: every front block must emit exactly one part \
                     per group"
                );
            }
            // Reassemble the fronts in group-copy order, exactly the
            // order the batch path analyses them in.
            let mut indexed: Vec<(usize, Result<FrontFrame, SoftLoraError>)> =
                parts.into_iter().flat_map(|p| p.fronts).collect();
            indexed.sort_by_key(|(k, _)| *k);
            // Parity with `process_batch`, which asserts every copy maps
            // to a known gateway: a copy no front block claimed would
            // silently shift the positional alignment below and attribute
            // arrival/SNR/replay ground truth to the wrong copies.
            assert_eq!(
                indexed.len(),
                group.copies.len(),
                "uplink {uplink}: copies for a gateway without a front block"
            );
            let mut fronts = Vec::with_capacity(indexed.len());
            let mut failure = None;
            for (_, front) in indexed {
                match front {
                    Ok(front) => fronts.push(front),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failure {
                self.core.notify_error(uplink, &e);
                self.failed = true;
                return WorkResult::Finished;
            }
            self.core.commit_group(&group, fronts);
            committed += 1;
        }
        WorkResult::Produced(committed)
    }
}

impl NetworkServer {
    /// Dismantles the server into streaming blocks: one
    /// [`GatewayFrontBlock`] per gateway plus the [`ServerSinkBlock`]
    /// holding the shared sequential state. Wire them as
    /// `source → fronts → sink` (the sink's input ports in gateway
    /// order); the resulting flowgraph produces verdicts bit-for-bit
    /// identical to [`NetworkServer::process_batch`] on the same groups.
    pub fn into_streaming(self) -> (Vec<GatewayFrontBlock>, ServerSinkBlock) {
        let fronts = self
            .fronts
            .into_iter()
            .enumerate()
            .map(|(gateway, front)| GatewayFrontBlock {
                name: format!("gateway-front-{gateway}"),
                gateway,
                front,
            })
            .collect();
        (fronts, ServerSinkBlock { core: self.core, failed: false })
    }
}
