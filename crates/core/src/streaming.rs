//! The gateway + network-server stack as streaming flowgraph blocks.
//!
//! [`NetworkServer::into_streaming`] splits a built server into the
//! blocks of an always-on flowgraph with a **sequential** tail:
//!
//! ```text
//!                     ┌─▶ GatewayFrontBlock(gw 0) ─▶┐
//!  source (sim crate) ┼─▶ GatewayFrontBlock(gw 1) ─▶┼─▶ ServerSinkBlock
//!                     └─▶ GatewayFrontBlock(gw 2) ─▶┘
//! ```
//!
//! [`NetworkServer::into_sharded_streaming`] goes one step further and
//! parallelises the tail *inside* the flowgraph: a [`ShardRouterBlock`]
//! reassembles each group's per-gateway parts and routes it to the
//! [`ShardSinkBlock`] owning its device, so shard tails commit
//! concurrently on scheduler workers:
//!
//! ```text
//!        ┌─▶ front(gw 0) ─▶┐                ┌─▶ ShardSinkBlock(shard 0)
//!  src ──┼─▶ front(gw 1) ─▶┼─▶ ShardRouter ─┼─▶ ShardSinkBlock(shard 1)
//!        └─▶ front(gw 2) ─▶┘                └─▶ ShardSinkBlock(shard 2)
//! ```
//!
//! The source (see `softlora_sim::streaming`) broadcasts every
//! [`UplinkDeliveries`] group to all gateway blocks; each gateway block
//! runs the embarrassingly-parallel pipeline front half for **its**
//! copies (assigning per-gateway frame indices exactly as the batch path
//! does, so all randomness matches). Both tails commit through the same
//! [`crate::network_server`] shard state the batch path uses, so
//! **verdicts are bit-for-bit identical** to
//! [`NetworkServer::process_batch`] — pinned by the `streaming_runtime`
//! integration tests. With the sequential sink the full observer stream
//! (verdict order *and* running statistics) matches the batch path
//! exactly; with the sharded tail, per-uplink verdicts and final
//! statistics match, but `on_stats` snapshots interleave in commit order
//! across shards (concurrency is the point).

use crate::network_server::{
    CommitOutcome, GatewayFront, NetworkServer, ServerObserver, ServerStats, ServerTail, ShardCore,
};
use crate::pipeline::FrontFrame;
use crate::replay_detect::DetectionStats;
use crate::SoftLoraError;
use softlora_dsp::DspScratch;
use softlora_runtime::{Block, WorkIo, WorkResult};
use softlora_sim::UplinkDeliveries;
use std::sync::{Arc, Mutex};

/// Groups a front block analyses per `work` call before yielding.
const FRONT_BATCH: usize = 16;

/// Groups the sink commits per `work` call before yielding.
const SINK_BATCH: usize = 64;

/// Groups the router reassembles per `work` call before yielding.
const ROUTER_BATCH: usize = 64;

/// One copy's front-half result: `(index into group.copies, result)`.
pub type FrontEntry = (usize, Result<FrontFrame, SoftLoraError>);

/// Inline small-vector for a gateway's per-group front results.
///
/// A group carries at most a handful of copies per gateway (usually
/// exactly one), so a plain `Vec` here meant one heap allocation per
/// analysed group — the "`AnalyzedFrame` box" the ROADMAP flagged as the
/// last per-frame allocation on the batch collection path. The first
/// [`FrontVec::INLINE`] entries live inside the `FrontPart` itself
/// (moved through the ring by value, no heap); only a pathological group
/// with more copies for one gateway spills to the heap. No `unsafe`: the
/// inline slots are `Option`s.
#[derive(Default)]
pub struct FrontVec {
    inline: [Option<FrontEntry>; Self::INLINE],
    inline_len: usize,
    spill: Vec<FrontEntry>,
}

impl FrontVec {
    /// Entries stored inline before spilling to the heap.
    pub const INLINE: usize = 4;

    /// An empty list (allocation-free).
    pub fn new() -> Self {
        FrontVec::default()
    }

    /// Appends an entry, spilling past [`FrontVec::INLINE`].
    pub fn push(&mut self, entry: FrontEntry) {
        if self.inline_len < Self::INLINE {
            self.inline[self.inline_len] = Some(entry);
            self.inline_len += 1;
        } else {
            self.spill.push(entry);
        }
    }

    /// Entries stored so far.
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl IntoIterator for FrontVec {
    type Item = FrontEntry;
    type IntoIter = std::iter::Chain<
        std::iter::Flatten<std::array::IntoIter<Option<FrontEntry>, { FrontVec::INLINE }>>,
        std::vec::IntoIter<FrontEntry>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.inline.into_iter().flatten().chain(self.spill)
    }
}

/// One gateway's front-half analysis of one uplink group.
pub struct FrontPart {
    /// The group's scenario-wide uplink sequence number.
    pub uplink: u64,
    /// Index of the gateway that produced this part.
    pub gateway: usize,
    /// The group itself (shared with every other gateway's part).
    pub group: Arc<UplinkDeliveries>,
    /// Analysed copies, as `(index into group.copies, front result)` for
    /// the copies this gateway heard — empty when the group holds no copy
    /// for this gateway. Inline up to [`FrontVec::INLINE`] copies, so
    /// emitting a part performs no heap allocation.
    pub fronts: FrontVec,
}

/// One gateway's streaming front half: the radio gate → capture → onset →
/// FB chain of [`crate::Pipeline`], applied to this gateway's copies of
/// every group flowing past. The block owns a [`DspScratch`] arena, so a
/// long-running flowgraph analyses frames allocation-free on the DSP
/// path after warm-up.
pub struct GatewayFrontBlock {
    name: String,
    gateway: usize,
    front: GatewayFront,
    scratch: DspScratch,
}

impl GatewayFrontBlock {
    /// Deliveries analysed so far (the per-gateway frame index).
    pub fn frames_seen(&self) -> u64 {
        self.front.frames_seen
    }
}

impl Block for GatewayFrontBlock {
    type In = Arc<UplinkDeliveries>;
    type Out = FrontPart;

    fn name(&self) -> &str {
        &self.name
    }

    fn work(&mut self, io: &mut WorkIo<'_, Arc<UplinkDeliveries>, FrontPart>) -> WorkResult {
        let mut produced = 0;
        while produced < FRONT_BATCH {
            if io.output().free() == 0 {
                return if produced > 0 {
                    WorkResult::Produced(produced)
                } else {
                    WorkResult::NeedsOutput
                };
            }
            let group = match io.input().pop() {
                Some(group) => group,
                None if io.input().is_finished() => return WorkResult::Finished,
                None => {
                    return if produced > 0 {
                        WorkResult::Produced(produced)
                    } else {
                        WorkResult::NeedsInput
                    }
                }
            };
            // Per-gateway frame indices advance per copy in group order —
            // the same assignment `NetworkServer::process_batch` makes,
            // so every random draw matches the batch path.
            let mut fronts = FrontVec::new();
            for (k, copy) in group.copies.iter().enumerate() {
                if copy.gateway != self.gateway {
                    continue;
                }
                let frame_index = self.front.frames_seen;
                self.front.frames_seen += 1;
                fronts.push((
                    k,
                    self.front.pipeline.front_half_with(
                        &copy.delivery,
                        frame_index,
                        &mut self.scratch,
                    ),
                ));
            }
            let part = FrontPart { uplink: group.uplink, gateway: self.gateway, group, fronts };
            let pushed = io.output().push(part);
            debug_assert!(pushed.is_ok(), "free slot was checked");
            produced += 1;
        }
        WorkResult::Produced(produced)
    }
}

/// Reassembles one group's per-gateway [`FrontPart`]s (one input port per
/// gateway, heads always belong to the same group because each port
/// delivers parts in group order) into the group-ordered front list the
/// tail commits. Returns `Err` with the first infrastructure failure.
///
/// `parts` and `indexed` are the calling block's reusable staging
/// buffers: both are drained, so the same allocations carry every group.
fn reassemble(
    parts: &mut Vec<FrontPart>,
    indexed: &mut Vec<FrontEntry>,
) -> (u64, Arc<UplinkDeliveries>, Result<Vec<FrontFrame>, SoftLoraError>) {
    let uplink = parts[0].uplink;
    let group = Arc::clone(&parts[0].group);
    for part in parts.iter() {
        assert_eq!(
            part.uplink, uplink,
            "gateway streams out of step: every front block must emit exactly one part per group"
        );
    }
    // Reassemble the fronts in group-copy order, exactly the order the
    // batch path analyses them in.
    indexed.clear();
    indexed.extend(parts.drain(..).flat_map(|p| p.fronts));
    indexed.sort_by_key(|(k, _)| *k);
    // Parity with `process_batch`, which asserts every copy maps to a
    // known gateway: a copy no front block claimed would silently shift
    // the positional alignment below and attribute arrival/SNR/replay
    // ground truth to the wrong copies.
    assert_eq!(
        indexed.len(),
        group.copies.len(),
        "uplink {uplink}: copies for a gateway without a front block"
    );
    let mut fronts = Vec::with_capacity(indexed.len());
    for (_, front) in indexed.drain(..) {
        match front {
            Ok(front) => fronts.push(front),
            Err(e) => return (uplink, group, Err(e)),
        }
    }
    (uplink, group, Ok(fronts))
}

/// The server's sequential back half as the flowgraph sink: reassembles
/// each group's per-gateway [`FrontPart`]s (one input port per gateway)
/// and commits the deduplicated verdict through the same shard state the
/// batch path uses (FB detector, dedup cache, MAC — and the WAL when
/// persistence is on), notifying the server's [`ServerObserver`]s.
pub struct ServerSinkBlock {
    tail: ServerTail,
    /// Reusable per-group staging buffer for the gateway parts (the
    /// sink's "scratch": the tail is pure state, so its reusable working
    /// memory is the reassembly buffer rather than a DSP arena).
    parts: Vec<FrontPart>,
    /// Reusable copy-order staging buffer for [`reassemble`].
    indexed: Vec<FrontEntry>,
    /// Set when a gateway front reported an infrastructure error; the
    /// sink finishes early, mirroring `process_batch` aborting a batch.
    failed: bool,
}

impl ServerSinkBlock {
    /// Attaches a [`ServerObserver`] — the streaming path's way to watch
    /// verdicts and statistics.
    pub fn attach_observer(&mut self, observer: Box<dyn ServerObserver>) {
        self.tail.observers.push(observer);
    }

    /// Aggregate statistics committed so far.
    pub fn stats(&self) -> ServerStats {
        self.tail.stats()
    }
}

impl Block for ServerSinkBlock {
    type In = FrontPart;
    type Out = ();

    fn name(&self) -> &str {
        "server-sink"
    }

    fn work(&mut self, io: &mut WorkIo<'_, FrontPart, ()>) -> WorkResult {
        if self.failed {
            return WorkResult::Finished;
        }
        let mut committed = 0;
        while committed < SINK_BATCH {
            // A group's verdict needs every gateway's part; each input
            // port delivers parts in group order, so the heads of all
            // ports always belong to the same group.
            if io.inputs.iter_mut().any(|p| p.is_empty()) {
                return if io.inputs_finished() {
                    let _ = self.tail.flush_store();
                    WorkResult::Finished
                } else if committed > 0 {
                    WorkResult::Produced(committed)
                } else {
                    WorkResult::NeedsInput
                };
            }
            self.parts.clear();
            self.parts
                .extend(io.inputs.iter_mut().map(|p| p.pop().expect("port checked non-empty")));
            let (uplink, group, fronts) = reassemble(&mut self.parts, &mut self.indexed);
            let fronts = match fronts {
                Ok(fronts) => fronts,
                Err(e) => {
                    self.tail.notify_error(uplink, &e);
                    self.failed = true;
                    let _ = self.tail.flush_store();
                    return WorkResult::Finished;
                }
            };
            if let Err(e) = self.tail.commit_ordered(&group, fronts) {
                self.tail.notify_error(uplink, &e);
                self.failed = true;
                return WorkResult::Finished;
            }
            committed += 1;
        }
        WorkResult::Produced(committed)
    }
}

/// One reassembled uplink group, routed to the shard owning its device —
/// the item flowing between [`ShardRouterBlock`] and the
/// [`ShardSinkBlock`]s.
pub struct RoutedUplink {
    pub(crate) shard: usize,
    pub(crate) group: Arc<UplinkDeliveries>,
    pub(crate) fronts: Vec<FrontFrame>,
    pub(crate) global_seq: u64,
    pub(crate) frames_cumulative: Vec<u64>,
}

/// The shared observer fan-in of the sharded streaming tail: shard sinks
/// commit concurrently and serialise only the (cheap) observer
/// notification through this hub.
pub(crate) struct ObserverHub {
    observers: Vec<Box<dyn ServerObserver>>,
    observed_stats: ServerStats,
}

impl ObserverHub {
    fn notify(&mut self, uplink: u64, outcome: &CommitOutcome) {
        self.observed_stats += outcome.stats_delta;
        let stats = self.observed_stats;
        for obs in &mut self.observers {
            if let Some(eviction) = &outcome.eviction {
                obs.on_eviction(uplink, eviction);
            }
            obs.on_verdict(uplink, &outcome.verdict);
            obs.on_stats(stats);
        }
    }

    fn notify_error(&mut self, uplink: u64, error: &SoftLoraError) {
        for obs in &mut self.observers {
            obs.on_error(uplink, error);
        }
    }
}

/// Routes reassembled groups to per-shard sinks: one input port per
/// gateway front, one output port per shard (wire the sinks in shard
/// order). Assigns the server-wide commit sequence and the cumulative
/// frame indices each WAL record carries, exactly as the batch path does.
pub struct ShardRouterBlock {
    shards: usize,
    global_seq: u64,
    frames_cumulative: Vec<u64>,
    hub: Arc<Mutex<ObserverHub>>,
    /// Reusable per-group staging buffer for the gateway parts.
    parts: Vec<FrontPart>,
    /// Reusable copy-order staging buffer for [`reassemble`].
    indexed: Vec<FrontEntry>,
    /// Head-of-line item waiting for space in its shard's ring.
    pending: Option<RoutedUplink>,
    failed: bool,
}

impl Block for ShardRouterBlock {
    type In = FrontPart;
    type Out = RoutedUplink;

    fn name(&self) -> &str {
        "shard-router"
    }

    fn work(&mut self, io: &mut WorkIo<'_, FrontPart, RoutedUplink>) -> WorkResult {
        if self.failed {
            return WorkResult::Finished;
        }
        assert_eq!(io.outputs.len(), self.shards, "one output ring per shard");
        let mut produced = 0;
        while produced < ROUTER_BATCH {
            if let Some(item) = self.pending.take() {
                let port = &mut io.outputs[item.shard];
                if port.free() == 0 {
                    self.pending = Some(item);
                    return if produced > 0 {
                        WorkResult::Produced(produced)
                    } else {
                        WorkResult::NeedsOutput
                    };
                }
                let pushed = port.push(item);
                debug_assert!(pushed.is_ok(), "free slot was checked");
                produced += 1;
                continue;
            }
            if io.inputs.iter_mut().any(|p| p.is_empty()) {
                return if io.inputs_finished() {
                    WorkResult::Finished
                } else if produced > 0 {
                    WorkResult::Produced(produced)
                } else {
                    WorkResult::NeedsInput
                };
            }
            self.parts.clear();
            self.parts
                .extend(io.inputs.iter_mut().map(|p| p.pop().expect("port checked non-empty")));
            let (uplink, group, fronts) = reassemble(&mut self.parts, &mut self.indexed);
            let fronts = match fronts {
                Ok(fronts) => fronts,
                Err(e) => {
                    self.hub.lock().expect("observer hub poisoned").notify_error(uplink, &e);
                    self.failed = true;
                    return WorkResult::Finished;
                }
            };
            self.global_seq += 1;
            for copy in &group.copies {
                self.frames_cumulative[copy.gateway] += 1;
            }
            self.pending = Some(RoutedUplink {
                shard: softlora_store::shard_of(u64::from(group.dev_addr), self.shards),
                group,
                fronts,
                global_seq: self.global_seq,
                frames_cumulative: self.frames_cumulative.clone(),
            });
        }
        WorkResult::Produced(produced)
    }
}

/// One shard's tail as a flowgraph sink: commits every routed group on
/// the shard's own detector/dedup/MAC state (and WAL), then serialises
/// the observer notification through the shared hub. Shard sinks run
/// concurrently on scheduler workers — the tail finally parallelises
/// inside the flowgraph.
pub struct ShardSinkBlock {
    name: String,
    core: ShardCore,
    hub: Arc<Mutex<ObserverHub>>,
    failed: bool,
}

impl ShardSinkBlock {
    /// Statistics this shard committed so far.
    pub fn stats(&self) -> ServerStats {
        self.core.stats
    }

    /// Detection statistics this shard scored so far.
    pub fn detection_stats(&self) -> DetectionStats {
        self.core.detector.stats()
    }
}

impl Block for ShardSinkBlock {
    type In = RoutedUplink;
    type Out = ();

    fn name(&self) -> &str {
        &self.name
    }

    fn work(&mut self, io: &mut WorkIo<'_, RoutedUplink, ()>) -> WorkResult {
        if self.failed {
            return WorkResult::Finished;
        }
        let mut committed = 0;
        while committed < SINK_BATCH {
            let routed = match io.input().pop() {
                Some(routed) => routed,
                None if io.input().is_finished() => {
                    if let Some(store) = &self.core.store {
                        let _ = store.shard(self.core.index).lock().expect("wal poisoned").flush();
                    }
                    return WorkResult::Finished;
                }
                None => {
                    return if committed > 0 {
                        WorkResult::Produced(committed)
                    } else {
                        WorkResult::NeedsInput
                    }
                }
            };
            debug_assert_eq!(routed.shard, self.core.index, "router sent a foreign device");
            match self.core.commit(
                &routed.group,
                routed.fronts,
                routed.global_seq,
                &routed.frames_cumulative,
            ) {
                Ok(outcome) => {
                    self.hub
                        .lock()
                        .expect("observer hub poisoned")
                        .notify(routed.group.uplink, &outcome);
                }
                Err(e) => {
                    self.hub
                        .lock()
                        .expect("observer hub poisoned")
                        .notify_error(routed.group.uplink, &e);
                    self.failed = true;
                    return WorkResult::Finished;
                }
            }
            committed += 1;
        }
        WorkResult::Produced(committed)
    }
}

fn front_blocks(fronts: Vec<GatewayFront>) -> Vec<GatewayFrontBlock> {
    fronts
        .into_iter()
        .enumerate()
        .map(|(gateway, front)| GatewayFrontBlock {
            name: format!("gateway-front-{gateway}"),
            gateway,
            front,
            scratch: DspScratch::new(),
        })
        .collect()
}

impl NetworkServer {
    /// Dismantles the server into streaming blocks with a **sequential**
    /// tail: one [`GatewayFrontBlock`] per gateway plus the
    /// [`ServerSinkBlock`] holding the complete tail. Wire them as
    /// `source → fronts → sink` (the sink's input ports in gateway
    /// order); the resulting flowgraph produces verdicts — and a full
    /// observer stream — bit-for-bit identical to
    /// [`NetworkServer::process_batch`] on the same groups.
    pub fn into_streaming(self) -> (Vec<GatewayFrontBlock>, ServerSinkBlock) {
        (
            front_blocks(self.fronts),
            ServerSinkBlock {
                tail: self.tail,
                parts: Vec::new(),
                indexed: Vec::new(),
                failed: false,
            },
        )
    }

    /// Dismantles the server into streaming blocks with a
    /// **shard-parallel** tail: per-gateway fronts, the
    /// [`ShardRouterBlock`], and one [`ShardSinkBlock`] per tail shard.
    /// Wire them as `source → fronts → router → shard sinks` with the
    /// sinks connected in shard order (the router's output port `k` is
    /// shard `k`). Per-uplink verdicts and final statistics are
    /// bit-for-bit identical to the batch path; `on_stats` snapshots
    /// interleave in cross-shard commit order.
    pub fn into_sharded_streaming(
        self,
    ) -> (Vec<GatewayFrontBlock>, ShardRouterBlock, Vec<ShardSinkBlock>) {
        let tail = self.tail;
        let hub = Arc::new(Mutex::new(ObserverHub {
            observers: tail.observers,
            observed_stats: tail.observed_stats,
        }));
        let shards = tail.shards.len();
        let router = ShardRouterBlock {
            shards,
            global_seq: tail.global_seq,
            frames_cumulative: tail.frames_cumulative,
            hub: Arc::clone(&hub),
            parts: Vec::new(),
            indexed: Vec::new(),
            pending: None,
            failed: false,
        };
        let sinks = tail
            .shards
            .into_iter()
            .map(|core| ShardSinkBlock {
                name: format!("shard-sink-{}", core.index),
                core,
                hub: Arc::clone(&hub),
                failed: false,
            })
            .collect();
        (front_blocks(self.fronts), router, sinks)
    }
}
