//! Per-device frequency-bias history database (paper §7.2).
//!
//! The SoftLoRa gateway keeps, for each provisioned device, the FBs
//! estimated from recent *accepted* frames. The store adapts to slow
//! oscillator wander ("time-varying radio frequency skews due to run-time
//! conditions like temperature") by using a sliding window, and never
//! updates from frames flagged as replays — the paper is explicit that a
//! detected frame must not poison the database.

use std::collections::HashMap;
use std::collections::VecDeque;

/// Consistency check result for one frame's FB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FbCheck {
    /// Within the device's tracked band.
    Consistent {
        /// Deviation from the tracked centre, Hz.
        deviation_hz: f64,
    },
    /// Outside the band — replay suspected.
    Inconsistent {
        /// Deviation from the tracked centre, Hz.
        deviation_hz: f64,
        /// The band half-width that was exceeded, Hz.
        band_hz: f64,
    },
    /// Not enough history to decide.
    Unknown,
}

impl FbCheck {
    /// Whether the check flags the frame.
    pub fn is_flagged(&self) -> bool {
        matches!(self, FbCheck::Inconsistent { .. })
    }
}

/// The audit record of a capacity eviction: which device lost its
/// history and what that history was. Emitted by [`FbDatabase::update`]
/// when the capacity bound forces out the least-recently-updated device,
/// so the drop is observable (server observers log it, the WAL keeps it)
/// instead of silent.
#[derive(Debug, Clone, PartialEq)]
pub struct FbEviction {
    /// The evicted device.
    pub dev_addr: u32,
    /// The FB history that was dropped, oldest first, Hz.
    pub history: Vec<f64>,
}

/// Sliding-window FB statistics for one device.
#[derive(Debug, Clone)]
struct DeviceHistory {
    window: VecDeque<f64>,
    capacity: usize,
    /// Database tick of the most recent update (for LRU eviction).
    last_update: u64,
}

impl DeviceHistory {
    fn new(capacity: usize) -> Self {
        DeviceHistory { window: VecDeque::with_capacity(capacity), capacity, last_update: 0 }
    }

    fn push(&mut self, fb_hz: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(fb_hz);
    }

    fn mean(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().sum::<f64>() / self.window.len() as f64
    }

    fn std(&self) -> f64 {
        if self.window.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.window.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.window.len() as f64)
            .sqrt()
    }
}

/// The gateway's FB database.
///
/// # Example
///
/// ```
/// use softlora::FbDatabase;
/// let mut db = FbDatabase::new(16, 3, 360.0, 4.0);
/// for _ in 0..3 {
///     db.update(7, -22_000.0);
/// }
/// assert!(!db.check(7, -22_050.0).is_flagged()); // within band
/// assert!(db.check(7, -22_700.0).is_flagged()); // a USRP-sized jump
/// ```
#[derive(Debug, Clone)]
pub struct FbDatabase {
    histories: HashMap<u32, DeviceHistory>,
    window: usize,
    warmup: usize,
    band_floor_hz: f64,
    band_sigma: f64,
    /// Device-capacity bound; least-recently-updated devices are evicted
    /// beyond it (millions-of-devices safety for a shared server store).
    max_devices: usize,
    /// Monotonic update tick driving LRU eviction.
    clock: u64,
    /// LRU index: `(last_update tick, device)` ordered stalest-first, so
    /// eviction is O(log n) even at millions of tracked devices.
    lru: std::collections::BTreeSet<(u64, u32)>,
}

impl FbDatabase {
    /// Creates a database keeping `window` recent FBs per device, giving
    /// verdicts only after `warmup` frames, with tolerance band
    /// `max(band_floor_hz, band_sigma·σ)`. Device capacity is unbounded;
    /// see [`FbDatabase::with_max_devices`].
    pub fn new(window: usize, warmup: usize, band_floor_hz: f64, band_sigma: f64) -> Self {
        FbDatabase {
            histories: HashMap::new(),
            window: window.max(1),
            warmup: warmup.max(1),
            band_floor_hz,
            band_sigma,
            max_devices: usize::MAX,
            clock: 0,
            lru: std::collections::BTreeSet::new(),
        }
    }

    /// Bounds the number of tracked devices to `max_devices` (≥ 1): when a
    /// new device would exceed the bound, the least-recently-updated
    /// device's history is evicted. A warm device keeps its state for as
    /// long as it keeps reporting.
    pub fn with_max_devices(mut self, max_devices: usize) -> Self {
        self.max_devices = max_devices.max(1);
        self
    }

    /// The configured device-capacity bound.
    pub fn max_devices(&self) -> usize {
        self.max_devices
    }

    /// Number of devices tracked.
    pub fn devices(&self) -> usize {
        self.histories.len()
    }

    /// Number of stored FBs for a device.
    pub fn history_len(&self, dev_addr: u32) -> usize {
        self.histories.get(&dev_addr).map_or(0, |h| h.window.len())
    }

    /// The tracked FB centre for a device, if any history exists.
    pub fn tracked_center_hz(&self, dev_addr: u32) -> Option<f64> {
        self.histories.get(&dev_addr).filter(|h| !h.window.is_empty()).map(|h| h.mean())
    }

    /// The current tolerance band half-width for a device, Hz.
    pub fn band_hz(&self, dev_addr: u32) -> f64 {
        let sigma = self.histories.get(&dev_addr).map_or(0.0, |h| h.std());
        (self.band_sigma * sigma).max(self.band_floor_hz)
    }

    /// Checks a frame's estimated FB against the device's history.
    pub fn check(&self, dev_addr: u32, fb_hz: f64) -> FbCheck {
        let Some(h) = self.histories.get(&dev_addr) else {
            return FbCheck::Unknown;
        };
        if h.window.len() < self.warmup {
            return FbCheck::Unknown;
        }
        let deviation_hz = fb_hz - h.mean();
        let band_hz = self.band_hz(dev_addr);
        if deviation_hz.abs() <= band_hz {
            FbCheck::Consistent { deviation_hz }
        } else {
            FbCheck::Inconsistent { deviation_hz, band_hz }
        }
    }

    /// Records an accepted frame's FB for a device. Callers must *not*
    /// update with FBs from flagged frames (paper §7.2).
    ///
    /// When the device is new and the database is at its capacity bound,
    /// the least-recently-updated device is evicted first (update ticks
    /// are unique, so eviction is deterministic) and the dropped history
    /// is returned as an [`FbEviction`] audit record.
    pub fn update(&mut self, dev_addr: u32, fb_hz: f64) -> Option<FbEviction> {
        self.clock += 1;
        if let Some(h) = self.histories.get_mut(&dev_addr) {
            self.lru.remove(&(h.last_update, dev_addr));
            h.push(fb_hz);
            h.last_update = self.clock;
            self.lru.insert((self.clock, dev_addr));
            return None;
        }
        let mut eviction = None;
        if self.histories.len() >= self.max_devices {
            if let Some(&stalest) = self.lru.iter().next() {
                self.lru.remove(&stalest);
                if let Some(h) = self.histories.remove(&stalest.1) {
                    eviction = Some(FbEviction {
                        dev_addr: stalest.1,
                        history: h.window.into_iter().collect(),
                    });
                }
            }
        }
        let mut h = DeviceHistory::new(self.window);
        h.push(fb_hz);
        h.last_update = self.clock;
        self.histories.insert(dev_addr, h);
        self.lru.insert((self.clock, dev_addr));
        eviction
    }

    /// The monotonic update tick (for state export/restore).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Every tracked history as `(device, last-update tick, FBs oldest
    /// first)`, ordered stalest-first — a deterministic, restorable
    /// export of the database's device state.
    pub fn export_histories(&self) -> Vec<(u32, u64, Vec<f64>)> {
        self.lru
            .iter()
            .map(|&(tick, dev)| {
                let h = &self.histories[&dev];
                (dev, tick, h.window.iter().copied().collect())
            })
            .collect()
    }

    /// Drops every tracked history (state restore entry point); the
    /// configuration (window, warm-up, band, capacity) is kept.
    pub fn clear(&mut self) {
        self.histories.clear();
        self.lru.clear();
        self.clock = 0;
    }

    /// Reinstates one device's exported history verbatim: the window
    /// contents and the LRU tick are restored bit-for-bit, so a
    /// snapshot-restored database behaves identically to the live one.
    /// The clock is raised to at least `tick`.
    pub fn restore_history(&mut self, dev_addr: u32, tick: u64, fbs_hz: &[f64]) {
        self.forget(dev_addr);
        let mut h = DeviceHistory::new(self.window);
        for &fb in fbs_hz {
            h.push(fb);
        }
        h.last_update = tick;
        self.histories.insert(dev_addr, h);
        self.lru.insert((tick, dev_addr));
        self.clock = self.clock.max(tick);
    }

    /// Forces the update tick (the final step of a snapshot restore).
    pub fn set_clock(&mut self, clock: u64) {
        self.clock = clock;
    }

    /// Removes a device's history (e.g. on re-provisioning).
    pub fn forget(&mut self, dev_addr: u32) {
        if let Some(h) = self.histories.remove(&dev_addr) {
            self.lru.remove(&(h.last_update, dev_addr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> FbDatabase {
        FbDatabase::new(16, 3, 360.0, 4.0)
    }

    #[test]
    fn unknown_before_warmup() {
        let mut d = db();
        assert_eq!(d.check(1, -20_000.0), FbCheck::Unknown);
        d.update(1, -20_000.0);
        d.update(1, -20_010.0);
        assert_eq!(d.check(1, -20_000.0), FbCheck::Unknown);
        d.update(1, -19_990.0);
        assert!(matches!(d.check(1, -20_000.0), FbCheck::Consistent { .. }));
    }

    #[test]
    fn detects_usrp_scale_jump() {
        // Device FB stable around −22 kHz ± 30 Hz jitter; a replay adds
        // −543 Hz (the paper's smallest measured artefact).
        let mut d = db();
        for k in 0..10 {
            d.update(7, -22_000.0 + 30.0 * ((k % 3) as f64 - 1.0));
        }
        let verdict = d.check(7, -22_000.0 - 543.0);
        assert!(verdict.is_flagged(), "{verdict:?}");
        if let FbCheck::Inconsistent { deviation_hz, band_hz } = verdict {
            assert!((deviation_hz + 543.0).abs() < 40.0);
            assert!(band_hz >= 360.0);
        }
    }

    #[test]
    fn tolerates_frame_jitter() {
        let mut d = db();
        for k in 0..10 {
            d.update(3, -18_000.0 + 40.0 * ((k % 5) as f64 - 2.0));
        }
        // ±100 Hz excursions stay inside the 360 Hz floor band.
        assert!(!d.check(3, -18_100.0).is_flagged());
        assert!(!d.check(3, -17_900.0).is_flagged());
    }

    #[test]
    fn band_adapts_to_noisy_estimates() {
        // A device observed at low SNR has noisier FB estimates; the
        // 4σ band must widen beyond the floor.
        let mut d = db();
        for k in 0..16 {
            d.update(5, -20_000.0 + 150.0 * ((k % 7) as f64 - 3.0));
        }
        assert!(d.band_hz(5) > 360.0, "band {}", d.band_hz(5));
        // A 500 Hz deviation is now within the widened band.
        assert!(!d.check(5, -20_500.0).is_flagged());
    }

    #[test]
    fn sliding_window_follows_temperature_drift() {
        // Slow wander: the tracked centre follows, so old values drop out.
        let mut d = FbDatabase::new(8, 3, 360.0, 4.0);
        for k in 0..40 {
            d.update(9, -22_000.0 + 20.0 * k as f64); // drifts 780 Hz total
        }
        let center = d.tracked_center_hz(9).unwrap();
        // Centre tracks the recent window (last 8 values avg = -22k + 20*35.5).
        assert!((center - (-22_000.0 + 20.0 * 35.5)).abs() < 1.0, "center {center}");
        // The current value is consistent even though the day-one value
        // would no longer be.
        assert!(!d.check(9, -22_000.0 + 20.0 * 39.0).is_flagged());
        assert!(d.check(9, -22_000.0).is_flagged());
    }

    #[test]
    fn devices_are_independent() {
        let mut d = db();
        for _ in 0..5 {
            d.update(1, -17_000.0);
            d.update(2, -25_000.0);
        }
        assert_eq!(d.devices(), 2);
        // Node 1's FB presented as node 2 is flagged (cross-device check),
        // even though both are legitimate devices.
        assert!(d.check(2, -17_000.0).is_flagged());
        assert!(!d.check(1, -17_000.0).is_flagged());
    }

    #[test]
    fn similar_fbs_do_not_matter_for_detection() {
        // Paper: "the detection does not require uniqueness of the FBs
        // across different LoRa transceivers, because it is based on
        // changes of FB". Two devices with identical FBs both detect the
        // replay offset.
        let mut d = db();
        for _ in 0..5 {
            d.update(3, -21_000.0);
            d.update(8, -21_000.0);
            d.update(14, -21_000.0);
        }
        for dev in [3, 8, 14] {
            assert!(d.check(dev, -21_600.0).is_flagged(), "device {dev}");
        }
    }

    #[test]
    fn forget_clears_history() {
        let mut d = db();
        for _ in 0..4 {
            d.update(1, -20_000.0);
        }
        d.forget(1);
        assert_eq!(d.check(1, -20_000.0), FbCheck::Unknown);
        assert_eq!(d.history_len(1), 0);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_updated() {
        let mut d = FbDatabase::new(16, 3, 360.0, 4.0).with_max_devices(3);
        for dev in [1u32, 2, 3] {
            for _ in 0..4 {
                d.update(dev, -20_000.0);
            }
        }
        // Touch 1 and 3 so device 2 becomes the stalest.
        d.update(1, -20_000.0);
        d.update(3, -20_000.0);
        d.update(4, -21_000.0); // over capacity -> evicts 2
        assert_eq!(d.devices(), 3);
        assert_eq!(d.history_len(2), 0);
        assert_eq!(d.check(2, -20_000.0), FbCheck::Unknown);
        // Survivors keep full state.
        assert_eq!(d.history_len(1), 5);
        assert_eq!(d.history_len(3), 5);
    }

    #[test]
    fn warmup_state_survives_until_eviction() {
        // A device past warm-up keeps giving verdicts while it stays
        // within capacity — and only loses its state once evicted.
        let mut d = FbDatabase::new(16, 3, 360.0, 4.0).with_max_devices(2);
        for _ in 0..4 {
            d.update(10, -22_000.0);
        }
        assert!(matches!(d.check(10, -22_010.0), FbCheck::Consistent { .. }));
        // A second device fills the database; device 10's verdicts hold.
        for _ in 0..4 {
            d.update(11, -19_000.0);
        }
        assert!(matches!(d.check(10, -22_010.0), FbCheck::Consistent { .. }));
        assert!(d.check(10, -22_700.0).is_flagged(), "warm device still detects");
        // A third device forces eviction of the stalest (device 10).
        d.update(12, -18_000.0);
        assert_eq!(d.check(10, -22_010.0), FbCheck::Unknown, "evicted -> cold start");
        assert!(matches!(d.check(11, -19_010.0), FbCheck::Consistent { .. }));
    }

    #[test]
    fn unbounded_by_default_and_bound_floor() {
        let mut d = FbDatabase::new(4, 1, 360.0, 4.0);
        assert_eq!(d.max_devices(), usize::MAX);
        for dev in 0..1000u32 {
            d.update(dev, -20_000.0);
        }
        assert_eq!(d.devices(), 1000);
        let bounded = FbDatabase::new(4, 1, 360.0, 4.0).with_max_devices(0);
        assert_eq!(bounded.max_devices(), 1, "bound is floored at one device");
    }

    #[test]
    fn eviction_is_deterministic_on_ties() {
        // Two devices inserted in one... distinct ticks; craft a tie via
        // fresh databases: same-tick ties cannot occur (clock is strictly
        // monotonic), so determinism reduces to the (last_update, addr)
        // key — verify eviction picks the lowest address among equally
        // stale orderings across runs.
        let run = || {
            let mut d = FbDatabase::new(4, 1, 360.0, 4.0).with_max_devices(2);
            d.update(5, -20_000.0);
            d.update(9, -20_000.0);
            d.update(1, -20_000.0);
            let mut tracked: Vec<u32> =
                [1u32, 5, 9].iter().copied().filter(|a| d.history_len(*a) > 0).collect();
            tracked.sort_unstable();
            tracked
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![1, 9]);
    }

    #[test]
    fn eviction_returns_audit_record() {
        let mut d = FbDatabase::new(16, 3, 360.0, 4.0).with_max_devices(2);
        for k in 0..3 {
            assert_eq!(d.update(1, -20_000.0 + k as f64), None);
        }
        assert_eq!(d.update(2, -21_000.0), None);
        // Device 3 forces device 1 (stalest) out; the dropped history
        // comes back as the audit record, oldest first.
        let ev = d.update(3, -22_000.0).expect("eviction at capacity");
        assert_eq!(ev.dev_addr, 1);
        assert_eq!(ev.history, vec![-20_000.0, -19_999.0, -19_998.0]);
        assert_eq!(d.history_len(1), 0);
    }

    #[test]
    fn export_restore_round_trips_state() {
        let mut d = FbDatabase::new(8, 3, 360.0, 4.0).with_max_devices(2);
        for k in 0..5 {
            d.update(10, -20_000.0 + 10.0 * k as f64);
            d.update(11, -21_000.0 - 10.0 * k as f64);
        }
        let exported = d.export_histories();
        let clock = d.clock();

        let mut r = FbDatabase::new(8, 3, 360.0, 4.0).with_max_devices(2);
        for (dev, tick, fbs) in &exported {
            r.restore_history(*dev, *tick, fbs);
        }
        r.set_clock(clock);
        assert_eq!(r.devices(), d.devices());
        for dev in [10u32, 11] {
            assert_eq!(r.history_len(dev), d.history_len(dev));
            assert_eq!(r.tracked_center_hz(dev), d.tracked_center_hz(dev));
            assert_eq!(r.band_hz(dev), d.band_hz(dev));
        }
        // Restored LRU order matches: the next eviction hits the same
        // device in both databases.
        let ev_live = d.update(12, -1.0).map(|e| e.dev_addr);
        let ev_rest = r.update(12, -1.0).map(|e| e.dev_addr);
        assert_eq!(ev_live, ev_rest);
        assert!(ev_live.is_some());
        assert_eq!(d.clock(), r.clock());
    }

    #[test]
    fn window_capacity_respected() {
        let mut d = FbDatabase::new(4, 1, 360.0, 4.0);
        for k in 0..10 {
            d.update(1, k as f64);
        }
        assert_eq!(d.history_len(1), 4);
        assert!((d.tracked_center_hz(1).unwrap() - 7.5).abs() < 1e-12);
    }
}
