//! Recover-then-verify tooling for the durable device-state store.
//!
//! A persisted [`crate::NetworkServer`] leaves behind a directory of
//! per-shard WAL segments and snapshots. [`fsck_store`] replays that
//! directory **read-only** (the WALs are opened in inspection mode, so
//! even a torn tail is only reported, never repaired) the same way
//! server recovery reads it — newest intact snapshot plus the WAL tail —
//! decoding every record on the way, and reports per-shard statistics
//! plus a stable state digest. Two
//! stores hold the same logical state exactly when their shard digests
//! match, which makes the digest the cheap way to compare a recovered
//! store against a reference, or the same store before and after a
//! migration.
//!
//! The `repro_fsck` binary in `softlora-bench` prints this report from
//! the command line; CI runs it against the `persistent_server`
//! example's output.

use crate::network_server::ServerStats;
use crate::persist::{CommitRecord, ShardSnapshot};
use crate::replay_detect::DetectionStats;
use crate::SoftLoraError;
use softlora_store::{peek_shard_count, ShardedStore, WalOptions};
use std::path::{Path, PathBuf};

/// What [`fsck_store`] found in one shard's directory.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Whether an intact snapshot was found.
    pub has_snapshot: bool,
    /// WAL sequence the snapshot covers through (0 = none).
    pub snapshot_seq: u64,
    /// Commit records replayed after the snapshot.
    pub wal_records: usize,
    /// Whether a torn final record was detected (reported only — the
    /// read-only open leaves the file as it is).
    pub dropped_torn_tail: bool,
    /// Segment files currently on disk.
    pub segments: usize,
    /// Server-wide commit sequence of the shard's newest commit (0 when
    /// the shard never committed).
    pub last_global_seq: u64,
    /// The shard's absolute statistics at its newest commit.
    pub stats: ServerStats,
    /// The shard's detection statistics at its newest commit.
    pub det: DetectionStats,
    /// FNV-1a digest over the snapshot payload and every replayed record
    /// payload, in replay order — a stable fingerprint of the shard's
    /// durable state.
    pub digest: u64,
}

/// The full store report of [`fsck_store`].
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// The store directory that was checked.
    pub dir: PathBuf,
    /// Pinned shard count from the store's `meta` file.
    pub shards: Vec<ShardReport>,
}

impl StoreReport {
    /// Aggregate statistics across shards (sums the per-shard absolutes).
    pub fn stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for shard in &self.shards {
            total += shard.stats;
        }
        total
    }

    /// Total commit records replayed across shards.
    pub fn wal_records(&self) -> usize {
        self.shards.iter().map(|s| s.wal_records).sum()
    }

    /// Digest of the whole store: the per-shard digests folded in shard
    /// order.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for shard in &self.shards {
            for byte in shard.digest.to_le_bytes() {
                h = fnv_byte(h, byte);
            }
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

#[inline]
fn fnv_byte(h: u64, byte: u8) -> u64 {
    (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3)
}

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = fnv_byte(h, b);
    }
    h
}

/// Replays a persisted store directory and reports per-shard state
/// digests plus WAL/snapshot statistics.
///
/// Every snapshot and commit record is fully decoded (version checks,
/// truncation checks), so a clean report also certifies that a server
/// rebuilt over this directory will recover. The WALs are opened with
/// [`WalOptions::read_only`]: a torn final record is *reported*
/// ([`ShardReport::dropped_torn_tail`]) but — unlike server recovery —
/// **not** truncated away, and nothing on disk is created or written.
/// (Still: do not fsck a directory a live server is appending to;
/// in-flight appends can legitimately look like a torn tail.)
///
/// # Errors
///
/// [`SoftLoraError::Persistence`] when the directory is not a store, a
/// shard fails recovery (corrupt non-tail record, unreadable segment
/// chain) or a payload fails to decode.
pub fn fsck_store(dir: impl AsRef<Path>) -> Result<StoreReport, SoftLoraError> {
    let dir = dir.as_ref();
    let shard_count = peek_shard_count(dir)?.ok_or_else(|| SoftLoraError::Persistence {
        detail: format!("{} is not a softlora store (no meta file)", dir.display()),
    })?;
    let store = ShardedStore::open(dir, shard_count, WalOptions::read_only())?;
    let recoveries = store.take_recovery();

    let mut shards = Vec::with_capacity(shard_count);
    for (k, recovery) in recoveries.into_iter().enumerate() {
        let mut digest = FNV_OFFSET;
        let mut stats = ServerStats::default();
        let mut det = DetectionStats::default();
        let mut last_global_seq = 0u64;

        if let Some(snapshot_bytes) = &recovery.snapshot {
            digest = fnv_bytes(digest, snapshot_bytes);
            let snapshot = ShardSnapshot::decode(snapshot_bytes).map_err(|e| {
                SoftLoraError::Persistence { detail: format!("shard {k} snapshot: {e}") }
            })?;
            stats = snapshot.stats;
            det = snapshot.det;
            last_global_seq = snapshot.global_seq;
        }
        for (r, record_bytes) in recovery.records.iter().enumerate() {
            digest = fnv_bytes(digest, record_bytes);
            let record = CommitRecord::decode(record_bytes).map_err(|e| {
                SoftLoraError::Persistence { detail: format!("shard {k} record {r}: {e}") }
            })?;
            stats = record.stats;
            det = record.det;
            last_global_seq = record.global_seq;
        }
        let segments = store
            .shard(k)
            .lock()
            .expect("shard wal poisoned")
            .segment_count()
            .map_err(SoftLoraError::from)?;
        shards.push(ShardReport {
            shard: k,
            has_snapshot: recovery.snapshot.is_some(),
            snapshot_seq: recovery.snapshot_seq,
            wal_records: recovery.records.len(),
            dropped_torn_tail: recovery.dropped_torn_tail,
            segments,
            last_global_seq,
            stats,
            det,
            digest,
        });
    }
    Ok(StoreReport { dir: dir.to_path_buf(), shards })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkServer;
    use softlora_lorawan::{ClassADevice, DeviceConfig};
    use softlora_phy::{PhyConfig, SpreadingFactor};
    use softlora_sim::Delivery;
    use softlora_store::test_dir;

    fn phy() -> PhyConfig {
        PhyConfig::uplink(SpreadingFactor::Sf7)
    }

    fn delivery(dev: &mut ClassADevice, t: f64) -> Delivery {
        dev.sense(7, t - 1.0).unwrap();
        let tx = dev.try_transmit(t).unwrap();
        Delivery {
            bytes: tx.bytes,
            dev_addr: dev.dev_addr(),
            arrival_global_s: t + 4e-6,
            snr_db: 10.0,
            carrier_bias_hz: -22_000.0,
            carrier_phase: 0.7,
            sf: SpreadingFactor::Sf7,
            jamming: None,
            is_replay: false,
        }
    }

    fn run_server(dir: &Path, uplinks: usize) {
        let dev_cfg = DeviceConfig::new(0x2601_0001, phy());
        let mut dev = ClassADevice::new(dev_cfg.clone());
        let mut server = NetworkServer::builder(phy())
            .adc_quantisation(false)
            .gateway(42)
            .shards(2)
            .snapshot_every(3)
            .provision(dev_cfg.dev_addr, dev_cfg.keys)
            .with_persistence(dir)
            .build();
        for k in 0..uplinks {
            let d = delivery(&mut dev, 100.0 + 200.0 * k as f64);
            server.process_delivery(0, &d).unwrap();
        }
        server.sync_persistence().unwrap();
    }

    #[test]
    fn fsck_reports_committed_state_and_stable_digest() {
        let dir = test_dir("fsck-basic");
        run_server(&dir, 6);
        let report = fsck_store(&dir).unwrap();
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.stats().uplinks, 6);
        assert_eq!(report.stats().accepted, 6);
        // One shard owns the single device, the other is empty.
        let owner = report.shards.iter().find(|s| s.stats.uplinks == 6).expect("owning shard");
        assert_eq!(owner.last_global_seq, 6);
        assert!(owner.has_snapshot, "snapshot_every(3) must have installed one");
        // Replaying the same directory gives the same digest.
        let again = fsck_store(&dir).unwrap();
        assert_eq!(report.digest(), again.digest());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_digest_distinguishes_different_histories() {
        let dir_a = test_dir("fsck-a");
        let dir_b = test_dir("fsck-b");
        run_server(&dir_a, 4);
        run_server(&dir_b, 5);
        let a = fsck_store(&dir_a).unwrap();
        let b = fsck_store(&dir_b).unwrap();
        assert_ne!(a.digest(), b.digest());
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn fsck_rejects_non_store_directory() {
        let dir = test_dir("fsck-empty");
        assert!(matches!(fsck_store(&dir), Err(SoftLoraError::Persistence { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
