//! The SoftLoRa gateway: the full attack-aware timestamping pipeline
//! (paper §5.3, Fig. 4).
//!
//! Per uplink delivery:
//!
//! 1. the commodity radio model decides whether the frame survives any
//!    jamming ([`softlora_phy::rn2483`] — silent drops stay silent);
//! 2. the SDR front-end captures the first two preamble chirps at
//!    2.4 Msps;
//! 3. the AIC picker timestamps the signal onset to microseconds;
//! 4. the FB estimator extracts the frame's carrier bias from the second
//!    chirp;
//! 5. the LoRaWAN layer verifies MIC and counter and decodes the claimed
//!    source;
//! 6. the replay detector compares the FB with the claimed device's
//!    history: flagged frames are dropped *before* any record is
//!    timestamped, and never update the database.

use crate::config::SoftLoraConfig;
use crate::fb_db::FbDatabase;
use crate::fb_estimator::{FbEstimate, FbEstimator, FbMethod};
use crate::phy_timestamp::{PhyTimestamp, PhyTimestamper};
use crate::replay_detect::{DetectionStats, ReplayDetector, ReplayVerdict};
use crate::SoftLoraError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use softlora_lorawan::frame::DataFrame;
use softlora_lorawan::{DeviceKeys, Gateway as LorawanGateway, ReceivedUplink, RxVerdict};
use softlora_phy::noise::{GaussianNoise, NoiseSource};
use softlora_phy::oscillator::Oscillator;
use softlora_phy::rn2483::{ReceptionOutcome, Rn2483Model};
use softlora_phy::sdr::{IqCapture, SdrReceiver};
use softlora_sim::Delivery;

/// Outcome of processing one delivery.
#[derive(Debug, Clone)]
pub enum SoftLoraVerdict {
    /// Frame accepted: records carry trustworthy timestamps.
    Accepted {
        /// The verified, timestamped uplink.
        uplink: ReceivedUplink,
        /// The frame's estimated FB.
        fb: FbEstimate,
        /// PHY-layer arrival timestamp (gateway clock), seconds.
        phy_arrival_s: f64,
        /// Whether the FB database was still warming up for this device.
        learning: bool,
    },
    /// The FB check flagged the frame; it was dropped without
    /// timestamping.
    ReplayDetected {
        /// Claimed source address.
        dev_addr: u32,
        /// FB deviation from the tracked centre, Hz.
        deviation_hz: f64,
        /// Band that was exceeded, Hz.
        band_hz: f64,
    },
    /// The radio never handed the frame to the host (jamming or below the
    /// demodulation floor).
    NotReceived {
        /// What the chip experienced.
        outcome: ReceptionOutcome,
    },
    /// The LoRaWAN layer rejected the frame (MIC, counter, unknown
    /// device).
    LorawanRejected {
        /// The rejection reason, printable.
        reason: String,
    },
}

impl SoftLoraVerdict {
    /// Whether the frame was accepted and timestamped.
    pub fn is_accepted(&self) -> bool {
        matches!(self, SoftLoraVerdict::Accepted { .. })
    }

    /// Whether a replay was flagged.
    pub fn is_replay_detected(&self) -> bool {
        matches!(self, SoftLoraVerdict::ReplayDetected { .. })
    }
}

/// The SoftLoRa gateway (commodity radio + SDR receiver + defence).
#[derive(Debug)]
pub struct SoftLoraGateway {
    config: SoftLoraConfig,
    lorawan: LorawanGateway,
    sdr: SdrReceiver,
    timestamper: PhyTimestamper,
    estimator: FbEstimator,
    detector: ReplayDetector,
    rn2483: Rn2483Model,
    rng: StdRng,
    noise_seed: u64,
}

impl SoftLoraGateway {
    /// Creates a gateway with the given configuration; `seed` controls the
    /// SDR oscillator draw and capture noise (deterministic runs).
    pub fn new(config: SoftLoraConfig, seed: u64) -> Self {
        let osc = Oscillator::sample_rtl_sdr(config.phy.channel.center_hz, seed);
        let mut sdr = SdrReceiver::new(osc);
        if !config.adc_quantisation {
            sdr = sdr.without_quantisation();
        }
        let estimator = FbEstimator::new(&config.phy, sdr.sample_rate());
        let detector = ReplayDetector::new(FbDatabase::new(
            32,
            config.warmup_frames,
            config.band_floor_hz,
            config.band_sigma,
        ));
        SoftLoraGateway {
            timestamper: PhyTimestamper::new(config.onset_method),
            lorawan: LorawanGateway::new(),
            sdr,
            estimator,
            detector,
            rn2483: Rn2483Model::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x50F7),
            noise_seed: seed,
            config,
        }
    }

    /// Provisions a device's LoRaWAN session keys.
    pub fn provision(&mut self, dev_addr: u32, keys: DeviceKeys) {
        self.lorawan.provision(dev_addr, keys);
    }

    /// Pre-loads a device's FB history (offline database construction,
    /// paper §7.2).
    pub fn preload_fb(&mut self, dev_addr: u32, fbs_hz: &[f64]) {
        self.detector.preload(dev_addr, fbs_hz);
    }

    /// The SDR receiver's oscillator bias (δRx), Hz.
    pub fn receiver_bias_hz(&self) -> f64 {
        self.sdr.receiver_bias_hz()
    }

    /// Detection statistics accumulated so far.
    pub fn detection_stats(&self) -> DetectionStats {
        self.detector.stats()
    }

    /// Read access to the FB database.
    pub fn fb_database(&self) -> &FbDatabase {
        self.detector.db()
    }

    /// The gateway configuration.
    pub fn config(&self) -> &SoftLoraConfig {
        &self.config
    }

    /// Synthesises the SDR capture for a delivery: the first two preamble
    /// chirps at 2.4 Msps, with the waveform's carrier bias/phase, plus
    /// channel noise matching the delivery's SNR.
    fn capture_delivery(&mut self, delivery: &Delivery) -> Result<IqCapture, SoftLoraError> {
        let lead =
            self.config.capture_lead + (self.rng.random::<u64>() % 200) as usize;
        // Capture one chirp beyond the configured analysis window: the
        // real preamble has 8 identical up-chirps, so when a low-SNR onset
        // pick lands late the analysis window still covers genuine
        // preamble signal instead of running off the buffer.
        let cap = self
            .sdr
            .capture_chirps(
                &self.config.phy,
                self.config.capture_chirps + 1,
                delivery.carrier_bias_hz,
                delivery.carrier_phase,
                1.0,
                lead,
            )
            .map_err(SoftLoraError::Phy)?;
        // Add noise at the delivery SNR (power referenced to the unit-
        // amplitude chirp: signal power = 1).
        let noise_power = 10f64.powf(-delivery.snr_db / 10.0);
        let mut z = cap.to_complex();
        let mut src = GaussianNoise::with_power(noise_power, self.noise_seed.wrapping_add(lead as u64));
        let noise = src.generate(z.len());
        for (s, n) in z.iter_mut().zip(noise.iter()) {
            *s += *n;
        }
        Ok(IqCapture::from_complex(&z, cap.sample_rate, cap.true_onset))
    }

    /// PHY-timestamps a capture and maps the onset to the gateway's global
    /// clock, given the true arrival time the capture was triggered by.
    fn phy_arrival(
        &self,
        capture: &IqCapture,
        delivery_arrival_s: f64,
    ) -> Result<(PhyTimestamp, f64), SoftLoraError> {
        let ts = self.timestamper.timestamp(capture)?;
        // The capture buffer started (true_onset · dt) before the frame
        // arrived; the PHY arrival is the buffer start plus the detected
        // onset.
        let capture_start_s = delivery_arrival_s - capture.true_onset as f64 * capture.dt();
        Ok((ts, capture_start_s + ts.onset_s))
    }

    /// Processes one delivery through the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError`] only for infrastructure failures (capture
    /// synthesis); protocol-level rejections are verdicts, not errors.
    pub fn process(&mut self, delivery: &Delivery) -> Result<SoftLoraVerdict, SoftLoraError> {
        // 1. Does the commodity radio deliver anything to the host?
        let outcome = self.rn2483.receive(
            &self.config.phy,
            delivery.bytes.len(),
            delivery.snr_db,
            delivery.jamming,
        );
        let legit_received = matches!(
            outcome,
            ReceptionOutcome::Legitimate | ReceptionOutcome::BothReceived
        );
        if !legit_received {
            return Ok(SoftLoraVerdict::NotReceived { outcome });
        }

        // 2–3. SDR capture and PHY timestamp.
        let capture = self.capture_delivery(delivery)?;
        let (_, phy_arrival_s) = self.phy_arrival(&capture, delivery.arrival_global_s)?;

        // 4. FB estimation from the second chirp; estimator chosen by SNR.
        let onset = self.timestamper.timestamp(&capture)?.onset_sample;
        let method = if delivery.snr_db >= self.config.ls_below_snr_db {
            FbMethod::LinearRegression
        } else {
            self.config.ls_method
        };
        let noise_power = 10f64.powf(-delivery.snr_db / 10.0);
        let fb = self.estimator.estimate_from_capture(&capture, onset, method, noise_power)?;

        // 5. Replay check against the claimed source (header peek needs no
        // keys), BEFORE consuming LoRaWAN state.
        let claimed = DataFrame::peek_header(&delivery.bytes)
            .map(|(_, addr, _)| addr)
            .unwrap_or(delivery.dev_addr);
        let verdict = self.detector.check(claimed, fb.delta_hz);
        self.detector.score(verdict, delivery.is_replay);
        if let ReplayVerdict::ReplayDetected { deviation_hz, band_hz } = verdict {
            return Ok(SoftLoraVerdict::ReplayDetected {
                dev_addr: claimed,
                deviation_hz,
                band_hz,
            });
        }

        // 6. LoRaWAN verification + synchronization-free timestamping at
        // the PHY arrival instant.
        match self.lorawan.receive(&delivery.bytes, phy_arrival_s) {
            RxVerdict::Accepted(uplink) => {
                // Learn this frame's FB.
                self.detector.learn(claimed, fb.delta_hz);
                Ok(SoftLoraVerdict::Accepted {
                    uplink,
                    fb,
                    phy_arrival_s,
                    learning: matches!(verdict, ReplayVerdict::LearningPhase),
                })
            }
            RxVerdict::UnknownDevice { dev_addr } => Ok(SoftLoraVerdict::LorawanRejected {
                reason: format!("unknown device {dev_addr:#x}"),
            }),
            RxVerdict::Rejected(e) => {
                Ok(SoftLoraVerdict::LorawanRejected { reason: e.to_string() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_lorawan::{ClassADevice, DeviceConfig};
    use softlora_phy::{PhyConfig, SpreadingFactor};
    use softlora_sim::Delivery;

    const FC: f64 = 869.75e6;

    fn phy() -> PhyConfig {
        PhyConfig::uplink(SpreadingFactor::Sf7)
    }

    fn quick_config() -> SoftLoraConfig {
        let mut c = SoftLoraConfig::new(phy());
        c.adc_quantisation = false;
        c
    }

    /// Builds a delivery from a real device transmission.
    fn delivery(
        dev: &mut ClassADevice,
        t: f64,
        bias_hz: f64,
        snr_db: f64,
        delay_s: f64,
        is_replay: bool,
    ) -> Delivery {
        dev.sense(777, t - 1.0).unwrap();
        let tx = dev.try_transmit(t).unwrap();
        Delivery {
            bytes: tx.bytes,
            dev_addr: dev.dev_addr(),
            arrival_global_s: t + delay_s + 4e-6,
            snr_db,
            carrier_bias_hz: bias_hz,
            carrier_phase: 0.7,
            sf: SpreadingFactor::Sf7,
            jamming: None,
            is_replay,
        }
    }

    fn setup() -> (ClassADevice, SoftLoraGateway) {
        let dev_cfg = DeviceConfig::new(0x2601_0001, phy());
        let mut gw = SoftLoraGateway::new(quick_config(), 99);
        gw.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());
        (ClassADevice::new(dev_cfg), gw)
    }

    #[test]
    fn genuine_frames_accept_and_learn() {
        let (mut dev, mut gw) = setup();
        let device_bias = -22_000.0;
        for k in 0..5 {
            let t = 100.0 + 200.0 * k as f64;
            let d = delivery(&mut dev, t, device_bias + 20.0 * (k as f64 - 2.0), 10.0, 0.0, false);
            let v = gw.process(&d).unwrap();
            assert!(v.is_accepted(), "frame {k}: {v:?}");
        }
        assert!(gw.fb_database().history_len(0x2601_0001) >= 5);
        // The tracked centre reflects δTx − δRx.
        let center = gw.fb_database().tracked_center_hz(0x2601_0001).unwrap();
        let expect = device_bias - gw.receiver_bias_hz();
        assert!((center - expect).abs() < 100.0, "center {center} expect {expect}");
    }

    #[test]
    fn replay_with_usrp_bias_is_detected_and_dropped() {
        let (mut dev, mut gw) = setup();
        let device_bias = -22_000.0;
        // Build history.
        for k in 0..5 {
            let d = delivery(&mut dev, 100.0 + 200.0 * k as f64, device_bias, 10.0, 0.0, false);
            assert!(gw.process(&d).unwrap().is_accepted());
        }
        // Frame-delay attack: original suppressed, replay arrives 30 s late
        // with the USRP's −600 Hz chain bias.
        let d = delivery(&mut dev, 1100.0, device_bias - 600.0, 10.0, 30.0, true);
        let v = gw.process(&d).unwrap();
        assert!(v.is_replay_detected(), "{v:?}");
        if let SoftLoraVerdict::ReplayDetected { deviation_hz, .. } = v {
            assert!((deviation_hz + 600.0).abs() < 250.0, "deviation {deviation_hz}");
        }
        // Counter state untouched: a later legitimate frame still accepts.
        let d = delivery(&mut dev, 1300.0, device_bias, 10.0, 0.0, false);
        assert!(gw.process(&d).unwrap().is_accepted());
        let stats = gw.detection_stats();
        assert_eq!(stats.true_positives, 1);
        assert_eq!(stats.false_positives, 0);
    }

    #[test]
    fn timestamps_are_millisecond_accurate() {
        let (mut dev, mut gw) = setup();
        for k in 0..3 {
            let d = delivery(&mut dev, 100.0 + 200.0 * k as f64, -20_000.0, 10.0, 0.0, false);
            let v = gw.process(&d).unwrap();
            if let SoftLoraVerdict::Accepted { uplink, .. } = v {
                // Record's true time of interest was t − 1.
                let t = 100.0 + 200.0 * k as f64;
                let err = (uplink.records[0].global_time_s - (t - 1.0)).abs();
                assert!(err < 2e-3, "timestamp error {err}");
            } else {
                panic!("{v:?}");
            }
        }
    }

    #[test]
    fn jammed_frame_is_silently_dropped() {
        let (mut dev, mut gw) = setup();
        let mut d = delivery(&mut dev, 100.0, -20_000.0, 10.0, 0.0, false);
        d.jamming = Some(softlora_phy::rn2483::JammingAttempt {
            onset_s: 0.02, // inside the SF7 effective window
            relative_power_db: 10.0,
        });
        let v = gw.process(&d).unwrap();
        match v {
            SoftLoraVerdict::NotReceived { outcome } => {
                assert_eq!(outcome, ReceptionOutcome::SilentDrop);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn below_floor_frame_not_received() {
        let (mut dev, mut gw) = setup();
        let d = delivery(&mut dev, 100.0, -20_000.0, -15.0, 0.0, false);
        let v = gw.process(&d).unwrap();
        assert!(matches!(
            v,
            SoftLoraVerdict::NotReceived { outcome: ReceptionOutcome::NoSignal }
        ));
    }

    #[test]
    fn unknown_device_rejected_after_fb_stage() {
        let dev_cfg = DeviceConfig::new(0xBEEF, phy());
        let mut dev = ClassADevice::new(dev_cfg);
        let mut gw = SoftLoraGateway::new(quick_config(), 5);
        let d = delivery(&mut dev, 100.0, -20_000.0, 10.0, 0.0, false);
        let v = gw.process(&d).unwrap();
        assert!(matches!(v, SoftLoraVerdict::LorawanRejected { .. }));
    }

    #[test]
    fn preloaded_database_flags_first_replay() {
        let (mut dev, mut gw) = setup();
        // Offline-built database (paper §7.2).
        let expected_center = -22_000.0 - gw.receiver_bias_hz();
        gw.preload_fb(0x2601_0001, &vec![expected_center; 8]);
        let d = delivery(&mut dev, 100.0, -22_000.0 - 700.0, 10.0, 60.0, true);
        let v = gw.process(&d).unwrap();
        assert!(v.is_replay_detected(), "{v:?}");
    }

    #[test]
    fn low_snr_path_uses_ls_estimator() {
        let (mut dev, mut gw) = setup();
        // SNR −7 dB < the −5 dB threshold -> matched-filter LS path; the
        // frame still decodes (SF7 floor −7.5) and the FB must be close.
        let d = delivery(&mut dev, 100.0, -21_000.0, -7.0, 0.0, false);
        let v = gw.process(&d).unwrap();
        if let SoftLoraVerdict::Accepted { fb, .. } = v {
            assert_eq!(fb.method, FbMethod::MatchedFilter);
            // At this SNR the onset-pick error (tens of microseconds)
            // couples into the FB estimate as chirp-slope × timing error —
            // the physical reason the paper calls µs timestamping a
            // prerequisite of FB estimation. The estimate is therefore only
            // required to stay within the oscillator search range here; the
            // controlled-onset accuracy claims are covered by the
            // fb_estimator tests and the Fig. 14 repro, which follow the
            // paper in taking the onset from the clean trace.
            assert!(fb.delta_hz.abs() < 34_000.0, "fb {}", fb.delta_hz);
        } else {
            panic!("{v:?}");
        }
    }
}
