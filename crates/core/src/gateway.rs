//! The SoftLoRa gateway: the full attack-aware timestamping pipeline
//! (paper §5.3, Fig. 4), staged and batchable.
//!
//! Per uplink delivery the gateway drives the six stages of
//! [`crate::pipeline`]:
//!
//! 1. [`crate::pipeline::RadioFrontEnd`] — the commodity radio model decides
//!    whether the frame survives any jamming (silent drops stay silent);
//! 2. [`crate::pipeline::CaptureSynth`] — the SDR front-end captures the first
//!    preamble chirps at 2.4 Msps;
//! 3. [`crate::pipeline::OnsetStage`] — the AIC picker timestamps the signal
//!    onset to microseconds, **once**; the pick feeds both the timestamp
//!    and the FB window;
//! 4. [`crate::pipeline::FbStage`] — the FB estimator extracts the frame's
//!    carrier bias from the second chirp;
//! 5. [`crate::pipeline::DetectStage`] — the replay detector compares the FB with
//!    the claimed device's history: flagged frames are dropped *before*
//!    any record is timestamped, and never update the database;
//! 6. [`crate::pipeline::MacStage`] — the LoRaWAN layer verifies MIC and counter
//!    and timestamps the records at the PHY arrival instant.
//!
//! Stages 1–4 are pure per-delivery functions; [`SoftLoraGateway::process_batch`]
//! runs them for independent deliveries in parallel and then replays the
//! stateful tail sequentially in arrival order, yielding verdicts
//! bit-identical to a sequential [`SoftLoraGateway::process`] loop.

use crate::builder::GatewayBuilder;
use crate::config::SoftLoraConfig;
use crate::fb_db::FbDatabase;
use crate::fb_estimator::FbEstimate;
use crate::observer::{AcceptEvent, GatewayObserver, RejectEvent, ReplayFlagEvent, Stage};
use crate::pipeline::{AnalyzedFrame, FrontFrame, Pipeline, StageTiming};
use crate::replay_detect::{DetectionStats, ReplayVerdict};
use crate::SoftLoraError;
use rayon::prelude::*;
use softlora_lorawan::{DeviceKeys, ReceivedUplink, RxVerdict};
use softlora_phy::rn2483::ReceptionOutcome;
use softlora_phy::PhyConfig;
use softlora_sim::Delivery;
use std::time::Instant;

/// Outcome of processing one delivery.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftLoraVerdict {
    /// Frame accepted: records carry trustworthy timestamps.
    Accepted {
        /// The verified, timestamped uplink.
        uplink: ReceivedUplink,
        /// The frame's estimated FB.
        fb: FbEstimate,
        /// PHY-layer arrival timestamp (gateway clock), seconds.
        phy_arrival_s: f64,
        /// Whether the FB database was still warming up for this device.
        learning: bool,
    },
    /// The FB check flagged the frame; it was dropped without
    /// timestamping.
    ReplayDetected {
        /// Claimed source address.
        dev_addr: u32,
        /// FB deviation from the tracked centre, Hz.
        deviation_hz: f64,
        /// Band that was exceeded, Hz.
        band_hz: f64,
    },
    /// The radio never handed the frame to the host (jamming or below the
    /// demodulation floor).
    NotReceived {
        /// What the chip experienced.
        outcome: ReceptionOutcome,
    },
    /// The LoRaWAN layer rejected the frame (MIC, counter, unknown
    /// device).
    LorawanRejected {
        /// The rejection reason, printable.
        reason: String,
    },
}

impl SoftLoraVerdict {
    /// Whether the frame was accepted and timestamped.
    pub fn is_accepted(&self) -> bool {
        matches!(self, SoftLoraVerdict::Accepted { .. })
    }

    /// Whether a replay was flagged.
    pub fn is_replay_detected(&self) -> bool {
        matches!(self, SoftLoraVerdict::ReplayDetected { .. })
    }
}

/// The SoftLoRa gateway (commodity radio + SDR receiver + defence).
pub struct SoftLoraGateway {
    pipeline: Pipeline,
    observers: Vec<Box<dyn GatewayObserver>>,
    /// Deliveries processed so far; doubles as the per-delivery random
    /// stream index, so batch and sequential processing draw identically.
    frames_seen: u64,
}

impl std::fmt::Debug for SoftLoraGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SoftLoraGateway")
            .field("pipeline", &self.pipeline)
            .field("observers", &self.observers.len())
            .field("frames_seen", &self.frames_seen)
            .finish()
    }
}

impl SoftLoraGateway {
    /// Creates a gateway with the given configuration; `seed` controls the
    /// SDR oscillator draw and all per-delivery randomness (deterministic
    /// runs).
    pub fn new(config: SoftLoraConfig, seed: u64) -> Self {
        SoftLoraGateway {
            pipeline: Pipeline::new(config, seed),
            observers: Vec::new(),
            frames_seen: 0,
        }
    }

    /// Starts a [`GatewayBuilder`] from the paper-faithful defaults for
    /// `phy` — the preferred way to construct a gateway.
    pub fn builder(phy: PhyConfig) -> GatewayBuilder {
        GatewayBuilder::new(phy)
    }

    /// Provisions a device's LoRaWAN session keys.
    pub fn provision(&mut self, dev_addr: u32, keys: DeviceKeys) {
        self.pipeline.mac.provision(dev_addr, keys);
    }

    /// Pre-loads a device's FB history (offline database construction,
    /// paper §7.2).
    pub fn preload_fb(&mut self, dev_addr: u32, fbs_hz: &[f64]) {
        self.pipeline.detect.preload(dev_addr, fbs_hz);
    }

    /// Attaches an event observer (see [`crate::observer`]).
    pub fn attach_observer(&mut self, observer: Box<dyn GatewayObserver>) {
        self.observers.push(observer);
    }

    /// The SDR receiver's oscillator bias (δRx), Hz.
    pub fn receiver_bias_hz(&self) -> f64 {
        self.pipeline.capture.receiver_bias_hz()
    }

    /// Detection statistics accumulated so far.
    pub fn detection_stats(&self) -> DetectionStats {
        self.pipeline.detect.stats()
    }

    /// Read access to the FB database.
    pub fn fb_database(&self) -> &FbDatabase {
        self.pipeline.detect.db()
    }

    /// The gateway configuration.
    pub fn config(&self) -> &SoftLoraConfig {
        self.pipeline.config()
    }

    /// The staged pipeline (read access, e.g. for stage-level telemetry).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// How many times the onset picker has run (exactly once per frame
    /// that reached the SDR path).
    pub fn onset_picker_runs(&self) -> u64 {
        self.pipeline.onset.picker_runs()
    }

    /// Deliveries processed so far.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Processes one delivery through the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError`] only for infrastructure failures (capture
    /// synthesis); protocol-level rejections are verdicts, not errors.
    pub fn process(&mut self, delivery: &Delivery) -> Result<SoftLoraVerdict, SoftLoraError> {
        let frame_index = self.frames_seen;
        self.frames_seen += 1;
        let front = self.pipeline.front_half(delivery, frame_index)?;
        Ok(self.commit(delivery, frame_index, front))
    }

    /// Processes a batch of deliveries: the embarrassingly-parallel front
    /// half (radio gate, capture synthesis, onset pick, FB estimation)
    /// runs across worker threads, then the stateful detector/MAC tail is
    /// replayed **sequentially in slice order**.
    ///
    /// Verdicts are bit-identical to calling [`SoftLoraGateway::process`]
    /// on each delivery in order: per-delivery randomness is derived from
    /// `(gateway seed, frame index)`, not from a shared sequential stream.
    ///
    /// # Errors
    ///
    /// On an infrastructure failure for delivery `k`, deliveries `0..k`
    /// are committed (exactly as the sequential loop would have) and the
    /// error is returned. Note that the parallel front half may already
    /// have run for deliveries after `k` before the error surfaces, so
    /// [`SoftLoraGateway::onset_picker_runs`] can exceed the committed
    /// frame count on this path; the once-per-frame invariant holds for
    /// every batch that returns `Ok`.
    pub fn process_batch(
        &mut self,
        deliveries: &[Delivery],
    ) -> Result<Vec<SoftLoraVerdict>, SoftLoraError> {
        let start = self.frames_seen;
        let indexed: Vec<(u64, &Delivery)> =
            deliveries.iter().enumerate().map(|(k, d)| (start + k as u64, d)).collect();
        let pipeline = &self.pipeline;
        // One scratch arena per worker *thread*, persistent across batches:
        // pooled buffers and FFT twiddle tables (32k-point tables for the
        // matched filter are the expensive part) are built once per rayon
        // thread, not once per `process_batch` call, so the parallel front
        // half is allocation-free in steady state even for small batches.
        let fronts: Vec<Result<FrontFrame, SoftLoraError>> = indexed
            .par_iter()
            .map(|(frame_index, delivery)| {
                softlora_dsp::scratch::with_thread_scratch(|scratch| {
                    pipeline.front_half_with(delivery, *frame_index, scratch)
                })
            })
            .collect();

        let mut verdicts = Vec::with_capacity(deliveries.len());
        for (k, front) in fronts.into_iter().enumerate() {
            let frame_index = start + k as u64;
            self.frames_seen = frame_index + 1;
            match front {
                Ok(front) => verdicts.push(self.commit(&deliveries[k], frame_index, front)),
                Err(e) => return Err(e),
            }
        }
        Ok(verdicts)
    }

    /// Runs the stateful back half for one front-half result and notifies
    /// observers. Sequential by construction.
    fn commit(
        &mut self,
        delivery: &Delivery,
        frame_index: u64,
        front: FrontFrame,
    ) -> SoftLoraVerdict {
        match front {
            FrontFrame::NotReceived { outcome, timings } => {
                self.notify_stages(frame_index, &timings);
                self.notify(|o| o.on_reject(frame_index, RejectEvent::NotReceived { outcome }));
                SoftLoraVerdict::NotReceived { outcome }
            }
            FrontFrame::Analyzed(frame) => self.commit_analyzed(delivery, frame_index, frame),
        }
    }

    fn commit_analyzed(
        &mut self,
        delivery: &Delivery,
        frame_index: u64,
        frame: AnalyzedFrame,
    ) -> SoftLoraVerdict {
        let AnalyzedFrame { claimed_dev, fb, onset, timings } = frame;
        self.notify_stages(frame_index, &timings);

        // 5. Replay check against the claimed source, BEFORE consuming any
        // LoRaWAN state.
        let t = Instant::now();
        let verdict = self.pipeline.detect.check(claimed_dev, fb.delta_hz, delivery.is_replay);
        let detect_s = t.elapsed().as_secs_f64();
        self.pipeline.stage_metrics.record(Stage::Detect, detect_s);
        self.notify(|o| o.on_stage(frame_index, Stage::Detect, detect_s));
        if let ReplayVerdict::ReplayDetected { deviation_hz, band_hz } = verdict {
            let event = ReplayFlagEvent { dev_addr: claimed_dev, deviation_hz, band_hz };
            self.notify(|o| o.on_replay_flag(frame_index, event));
            return SoftLoraVerdict::ReplayDetected {
                dev_addr: claimed_dev,
                deviation_hz,
                band_hz,
            };
        }

        // 6. LoRaWAN verification + synchronization-free timestamping at
        // the PHY arrival instant.
        let t = Instant::now();
        let rx = self.pipeline.mac.verify(&delivery.bytes, onset.phy_arrival_s);
        let mac_s = t.elapsed().as_secs_f64();
        self.pipeline.stage_metrics.record(Stage::Mac, mac_s);
        self.notify(|o| o.on_stage(frame_index, Stage::Mac, mac_s));
        match rx {
            RxVerdict::Accepted(uplink) => {
                // Learn this frame's FB only once the MAC layer vouches
                // for it.
                self.pipeline.detect.learn(claimed_dev, fb.delta_hz);
                let learning = matches!(verdict, ReplayVerdict::LearningPhase);
                let event = AcceptEvent {
                    uplink: &uplink,
                    fb: &fb,
                    timestamp: onset.timestamp,
                    phy_arrival_s: onset.phy_arrival_s,
                    learning,
                };
                self.notify(|o| o.on_accept(frame_index, event));
                SoftLoraVerdict::Accepted {
                    uplink,
                    fb,
                    phy_arrival_s: onset.phy_arrival_s,
                    learning,
                }
            }
            RxVerdict::UnknownDevice { dev_addr } => {
                let reason = format!("unknown device {dev_addr:#x}");
                self.notify(|o| o.on_reject(frame_index, RejectEvent::Lorawan { reason: &reason }));
                SoftLoraVerdict::LorawanRejected { reason }
            }
            RxVerdict::Rejected(e) => {
                let reason = e.to_string();
                self.notify(|o| o.on_reject(frame_index, RejectEvent::Lorawan { reason: &reason }));
                SoftLoraVerdict::LorawanRejected { reason }
            }
        }
    }

    fn notify_stages(&mut self, frame_index: u64, timings: &[StageTiming]) {
        for &(stage, elapsed_s) in timings {
            self.notify(|o| o.on_stage(frame_index, stage, elapsed_s));
        }
    }

    fn notify(&mut self, mut f: impl FnMut(&mut dyn GatewayObserver)) {
        for observer in &mut self.observers {
            f(observer.as_mut());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::GatewayStats;
    use softlora_lorawan::{ClassADevice, DeviceConfig};
    use softlora_phy::{PhyConfig, SpreadingFactor};
    use softlora_sim::Delivery;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn phy() -> PhyConfig {
        PhyConfig::uplink(SpreadingFactor::Sf7)
    }

    fn quick_gateway(seed: u64) -> GatewayBuilder {
        SoftLoraGateway::builder(phy()).adc_quantisation(false).seed(seed)
    }

    /// Builds a delivery from a real device transmission.
    fn delivery(
        dev: &mut ClassADevice,
        t: f64,
        bias_hz: f64,
        snr_db: f64,
        delay_s: f64,
        is_replay: bool,
    ) -> Delivery {
        dev.sense(777, t - 1.0).unwrap();
        let tx = dev.try_transmit(t).unwrap();
        Delivery {
            bytes: tx.bytes,
            dev_addr: dev.dev_addr(),
            arrival_global_s: t + delay_s + 4e-6,
            snr_db,
            carrier_bias_hz: bias_hz,
            carrier_phase: 0.7,
            sf: SpreadingFactor::Sf7,
            jamming: None,
            is_replay,
        }
    }

    fn setup() -> (ClassADevice, SoftLoraGateway) {
        let dev_cfg = DeviceConfig::new(0x2601_0001, phy());
        let gw = quick_gateway(99).provision(dev_cfg.dev_addr, dev_cfg.keys.clone()).build();
        (ClassADevice::new(dev_cfg), gw)
    }

    #[test]
    fn genuine_frames_accept_and_learn() {
        let (mut dev, mut gw) = setup();
        let device_bias = -22_000.0;
        for k in 0..5 {
            let t = 100.0 + 200.0 * k as f64;
            let d = delivery(&mut dev, t, device_bias + 20.0 * (k as f64 - 2.0), 10.0, 0.0, false);
            let v = gw.process(&d).unwrap();
            assert!(v.is_accepted(), "frame {k}: {v:?}");
        }
        assert!(gw.fb_database().history_len(0x2601_0001) >= 5);
        // The tracked centre reflects δTx − δRx.
        let center = gw.fb_database().tracked_center_hz(0x2601_0001).unwrap();
        let expect = device_bias - gw.receiver_bias_hz();
        assert!((center - expect).abs() < 100.0, "center {center} expect {expect}");
    }

    #[test]
    fn replay_with_usrp_bias_is_detected_and_dropped() {
        let (mut dev, mut gw) = setup();
        let device_bias = -22_000.0;
        // Build history.
        for k in 0..5 {
            let d = delivery(&mut dev, 100.0 + 200.0 * k as f64, device_bias, 10.0, 0.0, false);
            assert!(gw.process(&d).unwrap().is_accepted());
        }
        // Frame-delay attack: original suppressed, replay arrives 30 s late
        // with the USRP's −600 Hz chain bias.
        let d = delivery(&mut dev, 1100.0, device_bias - 600.0, 10.0, 30.0, true);
        let v = gw.process(&d).unwrap();
        assert!(v.is_replay_detected(), "{v:?}");
        if let SoftLoraVerdict::ReplayDetected { deviation_hz, .. } = v {
            assert!((deviation_hz + 600.0).abs() < 250.0, "deviation {deviation_hz}");
        }
        // Counter state untouched: a later legitimate frame still accepts.
        let d = delivery(&mut dev, 1300.0, device_bias, 10.0, 0.0, false);
        assert!(gw.process(&d).unwrap().is_accepted());
        let stats = gw.detection_stats();
        assert_eq!(stats.true_positives, 1);
        assert_eq!(stats.false_positives, 0);
    }

    #[test]
    fn timestamps_are_millisecond_accurate() {
        let (mut dev, mut gw) = setup();
        for k in 0..3 {
            let d = delivery(&mut dev, 100.0 + 200.0 * k as f64, -20_000.0, 10.0, 0.0, false);
            let v = gw.process(&d).unwrap();
            if let SoftLoraVerdict::Accepted { uplink, .. } = v {
                // Record's true time of interest was t − 1.
                let t = 100.0 + 200.0 * k as f64;
                let err = (uplink.records[0].global_time_s - (t - 1.0)).abs();
                assert!(err < 2e-3, "timestamp error {err}");
            } else {
                panic!("{v:?}");
            }
        }
    }

    #[test]
    fn jammed_frame_is_silently_dropped() {
        let (mut dev, mut gw) = setup();
        let mut d = delivery(&mut dev, 100.0, -20_000.0, 10.0, 0.0, false);
        d.jamming = Some(softlora_phy::rn2483::JammingAttempt {
            onset_s: 0.02, // inside the SF7 effective window
            relative_power_db: 10.0,
        });
        let v = gw.process(&d).unwrap();
        match v {
            SoftLoraVerdict::NotReceived { outcome } => {
                assert_eq!(outcome, ReceptionOutcome::SilentDrop);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn below_floor_frame_not_received() {
        let (mut dev, mut gw) = setup();
        let d = delivery(&mut dev, 100.0, -20_000.0, -15.0, 0.0, false);
        let v = gw.process(&d).unwrap();
        assert!(matches!(v, SoftLoraVerdict::NotReceived { outcome: ReceptionOutcome::NoSignal }));
    }

    #[test]
    fn unknown_device_rejected_after_fb_stage() {
        let dev_cfg = DeviceConfig::new(0xBEEF, phy());
        let mut dev = ClassADevice::new(dev_cfg);
        let mut gw = quick_gateway(5).build();
        let d = delivery(&mut dev, 100.0, -20_000.0, 10.0, 0.0, false);
        let v = gw.process(&d).unwrap();
        assert!(matches!(v, SoftLoraVerdict::LorawanRejected { .. }));
    }

    #[test]
    fn preloaded_database_flags_first_replay() {
        let (mut dev, mut gw) = setup();
        // Offline-built database (paper §7.2).
        let expected_center = -22_000.0 - gw.receiver_bias_hz();
        gw.preload_fb(0x2601_0001, &[expected_center; 8]);
        let d = delivery(&mut dev, 100.0, -22_000.0 - 700.0, 10.0, 60.0, true);
        let v = gw.process(&d).unwrap();
        assert!(v.is_replay_detected(), "{v:?}");
    }

    #[test]
    fn low_snr_path_uses_ls_estimator() {
        let (mut dev, mut gw) = setup();
        // SNR −7 dB < the −5 dB threshold -> matched-filter LS path; the
        // frame still decodes (SF7 floor −7.5) and the FB must be close.
        let d = delivery(&mut dev, 100.0, -21_000.0, -7.0, 0.0, false);
        let v = gw.process(&d).unwrap();
        if let SoftLoraVerdict::Accepted { fb, .. } = v {
            assert_eq!(fb.method, crate::FbMethod::MatchedFilter);
            // At this SNR the onset-pick error (tens of microseconds)
            // couples into the FB estimate as chirp-slope × timing error —
            // the physical reason the paper calls µs timestamping a
            // prerequisite of FB estimation. The estimate is therefore only
            // required to stay within the oscillator search range here; the
            // controlled-onset accuracy claims are covered by the
            // fb_estimator tests and the Fig. 14 repro, which follow the
            // paper in taking the onset from the clean trace.
            assert!(fb.delta_hz.abs() < 34_000.0, "fb {}", fb.delta_hz);
        } else {
            panic!("{v:?}");
        }
    }

    #[test]
    fn onset_picker_runs_once_per_processed_frame() {
        let (mut dev, mut gw) = setup();
        for k in 0..4 {
            let d = delivery(&mut dev, 100.0 + 200.0 * k as f64, -22_000.0, 10.0, 0.0, false);
            gw.process(&d).unwrap();
        }
        assert_eq!(gw.onset_picker_runs(), 4);
        assert_eq!(gw.frames_seen(), 4);
    }

    #[test]
    fn observers_see_every_outcome() {
        let stats = Rc::new(RefCell::new(GatewayStats::default()));
        let dev_cfg = DeviceConfig::new(0x2601_0001, phy());
        let mut gw = quick_gateway(99)
            .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
            .observer(Box::new(Rc::clone(&stats)))
            .build();
        let mut dev = ClassADevice::new(dev_cfg);
        // 5 accepted (learning + genuine), then one replay.
        for k in 0..5 {
            let d = delivery(&mut dev, 100.0 + 200.0 * k as f64, -22_000.0, 10.0, 0.0, false);
            gw.process(&d).unwrap();
        }
        let d = delivery(&mut dev, 1100.0, -22_700.0, 10.0, 30.0, true);
        gw.process(&d).unwrap();
        // And one below-floor frame.
        let d = delivery(&mut dev, 1300.0, -22_000.0, -15.0, 0.0, false);
        gw.process(&d).unwrap();

        let s = stats.borrow();
        assert_eq!(s.accepted, 5);
        assert_eq!(s.replays_flagged, 1);
        assert_eq!(s.not_received, 1);
        assert_eq!(s.frames(), 7);
        // The onset stage ran once per frame that reached the SDR path.
        assert_eq!(s.stage_runs(Stage::Onset), 6);
        assert_eq!(s.stage_runs(Stage::RadioFrontEnd), 7);
        // The MAC stage never ran for the flagged or dropped frames.
        assert_eq!(s.stage_runs(Stage::Mac), 5);
    }
}
