//! Frequency-bias estimation from a single preamble chirp (paper §7.1).
//!
//! The captured I/Q of an up chirp obeys
//! `Θ(t) = πW²/2^S·t² − πW·t + 2πδ·t + θ` with `δ = δTx − δRx`; three
//! estimators recover `δ`:
//!
//! * [`FbEstimator::linear_regression`] — the paper's closed-form method
//!   (§7.1.1): rectified `atan2(Q, I)` unwrap, subtract the quadratic,
//!   fit the slope. `O(N)`, accurate at workable SNR, breaks when the
//!   unwrap slips at low SNR.
//! * [`FbEstimator::differential_evolution`] — the paper's low-SNR method
//!   (§7.1.2): least-squares template fit over `(δ, θ)` with the amplitude
//!   estimated from the power split, solved by DE (the paper uses scipy's
//!   implementation; ours lives in `softlora_dsp::optimize`).
//! * [`FbEstimator::matched_filter`] — an algebraically equivalent but much
//!   faster solver for the same least-squares problem: for fixed `δ` the
//!   optimal `θ` is closed-form, reducing the search to maximising
//!   `|⟨z, chirp_δ⟩|` over `δ` alone — a dechirped FFT plus a golden-section
//!   polish. Used as the production path on the gateway.

use crate::SoftLoraError;
use softlora_dsp::fft::next_pow2;
use softlora_dsp::optimize::{golden_section, nelder_mead, DifferentialEvolution};
use softlora_dsp::regression::linear_fit;
use softlora_dsp::scratch::with_thread_scratch;
use softlora_dsp::unwrap::unwrap_iq_with;
use softlora_dsp::{Complex, DspScratch};
use softlora_phy::chirp::cached_chirp_refs;
use softlora_phy::PhyConfig;
use std::sync::Arc;

/// Estimation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FbMethod {
    /// Closed-form phase-unwrap + linear regression (paper §7.1.1).
    LinearRegression,
    /// Dechirp-FFT matched-filter search (fast LS solver).
    MatchedFilter,
    /// Least-squares over `(δ, θ)` via differential evolution
    /// (paper §7.1.2).
    DifferentialEvolution,
}

/// An estimated frequency bias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FbEstimate {
    /// Estimated net bias `δ = δTx − δRx` in Hz.
    pub delta_hz: f64,
    /// Method that produced it.
    pub method: FbMethod,
    /// Method-specific quality score in `[0, 1]` (r² for regression,
    /// normalised correlation peak for the search methods).
    pub quality: f64,
}

/// Frequency-bias estimator bound to a chirp parameterisation.
#[derive(Debug, Clone)]
pub struct FbEstimator {
    bandwidth_hz: f64,
    sf: u32,
    sample_rate: f64,
    /// Search range for the LS methods, Hz.
    pub search_range_hz: (f64, f64),
    /// DE seed (deterministic runs).
    pub de_seed: u64,
    /// Lazily resolved up-dechirp reference (shared via the process-wide
    /// chirp cache; resolved once so the per-frame matched filter never
    /// touches the cache lock).
    dechirp_ref: std::sync::OnceLock<Arc<Vec<Complex>>>,
}

impl FbEstimator {
    /// Creates an estimator for chirps of `cfg` sampled at `sample_rate`.
    ///
    /// The default search range of ±34 kHz covers crystal biases up to
    /// ±39 ppm at 869.75 MHz.
    pub fn new(cfg: &PhyConfig, sample_rate: f64) -> Self {
        FbEstimator {
            bandwidth_hz: cfg.channel.bandwidth.hz(),
            sf: cfg.sf.value(),
            sample_rate,
            search_range_hz: (-34_000.0, 34_000.0),
            de_seed: 0xF0CC,
            dechirp_ref: std::sync::OnceLock::new(),
        }
    }

    /// Samples per chirp at this estimator's rate.
    pub fn samples_per_chirp(&self) -> usize {
        ((1u64 << self.sf) as f64 / self.bandwidth_hz * self.sample_rate).floor() as usize
    }

    /// The quadratic part of the chirp angle at time `t` (symbol-0 chirp,
    /// zero bias/phase): `πW²/2^S·t² − πW·t`.
    fn quadratic_angle(&self, t: f64) -> f64 {
        let a =
            std::f64::consts::PI * self.bandwidth_hz * self.bandwidth_hz / (1u64 << self.sf) as f64;
        a * t * t - std::f64::consts::PI * self.bandwidth_hz * t
    }

    /// Estimates the amplitude `A` of the noiseless templates from the
    /// noisy signal power and a separately measured noise power
    /// (paper §7.1.2: `E[Q² + I²] = A² + noise power`).
    pub fn estimate_amplitude(z: &[Complex], noise_power: f64) -> f64 {
        if z.is_empty() {
            return 0.0;
        }
        let total = z.iter().map(|c| c.norm_sqr()).sum::<f64>() / z.len() as f64;
        (total - noise_power).max(0.0).sqrt()
    }

    /// Closed-form linear-regression estimate from one chirp of I/Q data
    /// (paper §7.1.1). The slices must start at the chirp onset and be at
    /// least one chirp long (extra samples are ignored).
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when fewer than one chirp of
    /// samples is supplied, and propagates regression failures.
    pub fn linear_regression(&self, i: &[f64], q: &[f64]) -> Result<FbEstimate, SoftLoraError> {
        with_thread_scratch(|scratch| self.linear_regression_with(i, q, scratch))
    }

    /// [`FbEstimator::linear_regression`] with arena-held intermediates
    /// (unwrapped phase, time axis, de-quadratic'd phase).
    ///
    /// # Errors
    ///
    /// Same as [`FbEstimator::linear_regression`].
    pub fn linear_regression_with(
        &self,
        i: &[f64],
        q: &[f64],
        scratch: &mut DspScratch,
    ) -> Result<FbEstimate, SoftLoraError> {
        let n = self.samples_per_chirp();
        if i.len() < n || q.len() < n {
            return Err(SoftLoraError::Capture { reason: "need one full chirp for regression" });
        }
        let mut theta = scratch.take_real_empty();
        unwrap_iq_with(&i[..n], &q[..n], scratch, &mut theta);
        let dt = 1.0 / self.sample_rate;
        let mut xs = scratch.take_real_empty();
        xs.extend((0..n).map(|k| k as f64 * dt));
        let mut linear = scratch.take_real_empty();
        linear.extend(
            theta.iter().enumerate().map(|(k, &p)| p - self.quadratic_angle(k as f64 * dt)),
        );
        let fit = linear_fit(&xs, &linear);
        scratch.put_real(linear);
        scratch.put_real(xs);
        scratch.put_real(theta);
        let fit = fit?;
        Ok(FbEstimate {
            delta_hz: fit.slope / (2.0 * std::f64::consts::PI),
            method: FbMethod::LinearRegression,
            quality: fit.r_squared,
        })
    }

    /// The shared up-dechirp reference (`conj` of the clean symbol-0
    /// chirp) for this estimator's parameterisation: resolved through the
    /// process-wide chirp cache on first use, then pinned on the
    /// estimator so the per-frame path never contends on the cache lock.
    fn dechirp_reference(&self) -> Result<Arc<Vec<Complex>>, SoftLoraError> {
        if let Some(reference) = self.dechirp_ref.get() {
            return Ok(Arc::clone(reference));
        }
        let sf = softlora_phy::SpreadingFactor::from_value(self.sf).map_err(SoftLoraError::Phy)?;
        let refs = cached_chirp_refs(sf, self.bandwidth_hz, self.sample_rate)
            .map_err(SoftLoraError::Phy)?;
        Ok(Arc::clone(self.dechirp_ref.get_or_init(|| refs.up_conj)))
    }

    /// Builds the dechirped sequence `z(t)·conj(chirp₀(t))` whose Fourier
    /// transform magnitude at frequency `δ` equals the matched-filter
    /// correlation `|⟨z, chirp_δ⟩|`, into a caller-owned buffer.
    ///
    /// Up to two chirps of input are used: the base chirp's phase returns
    /// to zero at each chirp boundary, so tiling the reference keeps the
    /// dechirped tone phase-continuous and doubles the coherent
    /// integration (+3 dB), which suppresses the occasional noise-peak
    /// outlier at −25 dB.
    fn dechirp_into(&self, z: &[Complex], out: &mut Vec<Complex>) -> Result<(), SoftLoraError> {
        let n = self.samples_per_chirp();
        if z.len() < n {
            return Err(SoftLoraError::Capture {
                reason: "need one full chirp for matched filter",
            });
        }
        let reference = self.dechirp_reference()?;
        let m = z.len().min(2 * n);
        out.clear();
        out.resize(m, Complex::ZERO);
        // Chunked cyclic multiply (the reference tiles per chirp period):
        // same products in the same order as the modular-index loop this
        // replaces, so the dechirped sequence is bit-identical.
        softlora_dsp::kernels::mul_cycle_into(&z[..m], &reference[..n], out);
        Ok(())
    }

    /// Fast least-squares estimate: coarse dechirped FFT, then a
    /// golden-section polish of the correlation magnitude.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when fewer than one chirp of
    /// samples is supplied.
    pub fn matched_filter(&self, z: &[Complex]) -> Result<FbEstimate, SoftLoraError> {
        with_thread_scratch(|scratch| self.matched_filter_with(z, scratch))
    }

    /// [`FbEstimator::matched_filter`] with arena-held intermediates
    /// (blanked trace, dechirped sequence, padded spectrum) — the
    /// per-worker steady-state path of the gateway's low-SNR estimator.
    ///
    /// # Errors
    ///
    /// Same as [`FbEstimator::matched_filter`].
    pub fn matched_filter_with(
        &self,
        z: &[Complex],
        scratch: &mut DspScratch,
    ) -> Result<FbEstimate, SoftLoraError> {
        let mut blanked = scratch.take_complex_empty();
        let mut d = scratch.take_complex_empty();
        let mut padded = scratch.take_complex_empty();
        let result = self.matched_filter_inner(z, scratch, &mut blanked, &mut d, &mut padded);
        scratch.put_complex(padded);
        scratch.put_complex(d);
        scratch.put_complex(blanked);
        result
    }

    fn matched_filter_inner(
        &self,
        z: &[Complex],
        scratch: &mut DspScratch,
        blanked: &mut Vec<Complex>,
        d: &mut Vec<Complex>,
        padded: &mut Vec<Complex>,
    ) -> Result<FbEstimate, SoftLoraError> {
        // Impulse blanking: clip samples above 4x the trace RMS. At the
        // SNRs where this matters the RMS is noise-dominated, so the chirp
        // is untouched while interference bursts (the dominant failure mode
        // under "real" building noise) lose their leverage.
        let rms = (z.iter().map(|v| v.norm_sqr()).sum::<f64>() / z.len().max(1) as f64).sqrt();
        let limit = 4.0 * rms;
        blanked.clear();
        blanked.extend(z.iter().map(|&v| {
            let m = v.norm();
            if m > limit {
                v.scale(limit / m)
            } else {
                v
            }
        }));
        self.dechirp_into(blanked, d)?;
        let n = d.len();
        let dt = 1.0 / self.sample_rate;

        // Coarse: zero-padded FFT of the dechirped sequence; the tone sits
        // at δ. Pad 4x for a bin width well under 1/T.
        let fft_len = next_pow2(n * 4);
        padded.clear();
        padded.extend_from_slice(d);
        padded.resize(fft_len, Complex::ZERO);
        scratch.planner().plan(fft_len).forward(padded);
        let spec: &[Complex] = padded;
        let bin_hz = self.sample_rate / fft_len as f64;
        let (lo, hi) = self.search_range_hz;
        // With 4x zero padding the tone energy spreads over ~4 bins;
        // detecting on a 4-bin energy window (instead of a single bin)
        // matches that spread and suppresses low-SNR noise-peak outliers.
        let window_energy =
            |k: usize| -> f64 { (0..4).map(|j| spec[(k + j) % fft_len].norm_sqr()).sum() };
        let mut best_bin = 0usize;
        let mut best_mag = -1.0;
        for k in 0..fft_len {
            let f = if k < fft_len / 2 { k as f64 } else { k as f64 - fft_len as f64 } * bin_hz;
            if f >= lo && f <= hi {
                let m = window_energy(k);
                if m > best_mag {
                    best_mag = m;
                    best_bin = (k + 1) % fft_len; // centre-ish of the window
                }
            }
        }
        let coarse_hz =
            if best_bin < fft_len / 2 { best_bin as f64 } else { best_bin as f64 - fft_len as f64 }
                * bin_hz;

        // Polish: golden-section on the continuous correlation magnitude,
        // over a window wide enough to cover the 4-bin detection spread.
        let corr_mag = |delta: f64| -> f64 {
            let c: Complex = d
                .iter()
                .enumerate()
                .map(|(k, &v)| {
                    v * Complex::cis(-2.0 * std::f64::consts::PI * delta * k as f64 * dt)
                })
                .sum();
            -c.norm() // golden_section minimises
        };
        let (delta_hz, neg_peak) =
            golden_section(corr_mag, coarse_hz - 3.0 * bin_hz, coarse_hz + 3.0 * bin_hz, 0.5)
                .map_err(SoftLoraError::Dsp)?;
        let energy: f64 = d.iter().map(|v| v.norm_sqr()).sum();
        let quality = if energy > 0.0 {
            ((-neg_peak) * (-neg_peak) / (energy * n as f64)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        Ok(FbEstimate { delta_hz, method: FbMethod::MatchedFilter, quality })
    }

    /// Paper-faithful least-squares estimate over `(δ, θ)` solved by
    /// differential evolution with a Nelder–Mead polish (paper §7.1.2).
    ///
    /// `noise_power` is the separately measured noise power used for the
    /// amplitude estimate; pass 0.0 when unknown (the amplitude then
    /// absorbs the noise, which only scales the objective).
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when fewer than one chirp of
    /// samples is supplied, and propagates optimiser failures.
    pub fn differential_evolution(
        &self,
        z: &[Complex],
        noise_power: f64,
    ) -> Result<FbEstimate, SoftLoraError> {
        let n = self.samples_per_chirp();
        if z.len() < n {
            return Err(SoftLoraError::Capture { reason: "need one full chirp for least squares" });
        }
        let z = &z[..n];
        let amp = Self::estimate_amplitude(z, noise_power);
        let dt = 1.0 / self.sample_rate;
        // Precompute the quadratic angles once.
        let quad: Vec<f64> = (0..n).map(|k| self.quadratic_angle(k as f64 * dt)).collect();

        let objective = |params: &[f64]| -> f64 {
            let (delta, theta) = (params[0], params[1]);
            let mut acc = 0.0;
            for (k, (&sample, &qk)) in z.iter().zip(quad.iter()).enumerate() {
                let angle = qk + 2.0 * std::f64::consts::PI * delta * k as f64 * dt + theta;
                let tmpl = Complex::from_polar(amp, angle);
                acc += (sample - tmpl).norm_sqr();
            }
            acc
        };

        let de = DifferentialEvolution::new(vec![
            self.search_range_hz,
            (0.0, 2.0 * std::f64::consts::PI),
        ])
        .with_seed(self.de_seed)
        .with_population(24)
        .with_max_generations(120)
        .with_tolerance(1e-8);
        let coarse = de.minimize(objective).map_err(SoftLoraError::Dsp)?;
        let fine =
            nelder_mead(objective, &coarse.x, 1e-4, 200, 1e-12).map_err(SoftLoraError::Dsp)?;

        // Quality: residual power against total power.
        let total: f64 = z.iter().map(|v| v.norm_sqr()).sum();
        let quality = if total > 0.0 { (1.0 - fine.value / total).clamp(0.0, 1.0) } else { 0.0 };
        Ok(FbEstimate { delta_hz: fine.x[0], method: FbMethod::DifferentialEvolution, quality })
    }

    /// Estimates the FB from an SDR capture whose signal onset is at sample
    /// `onset` (from the PHY timestamper), using the *second* captured
    /// chirp as the paper prescribes (§5.1: "the second sampled chirp is
    /// used to extract the FB of the transmitter").
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when the capture does not hold
    /// two full chirps after `onset`.
    pub fn estimate_from_capture(
        &self,
        capture: &softlora_phy::sdr::IqCapture,
        onset: usize,
        method: FbMethod,
        noise_power: f64,
    ) -> Result<FbEstimate, SoftLoraError> {
        with_thread_scratch(|scratch| {
            self.estimate_from_capture_with(capture, onset, method, noise_power, scratch)
        })
    }

    /// [`FbEstimator::estimate_from_capture`] against a caller-owned
    /// scratch arena — the per-worker steady-state path: the complex view
    /// of the capture and every estimator intermediate reuse pooled
    /// buffers. (The differential-evolution method keeps its own
    /// allocations; it is the paper-faithful research path, not the
    /// production one.)
    ///
    /// # Errors
    ///
    /// Same as [`FbEstimator::estimate_from_capture`].
    pub fn estimate_from_capture_with(
        &self,
        capture: &softlora_phy::sdr::IqCapture,
        onset: usize,
        method: FbMethod,
        noise_power: f64,
        scratch: &mut DspScratch,
    ) -> Result<FbEstimate, SoftLoraError> {
        let n = self.samples_per_chirp();
        // The onset picker can land a few samples late; tolerate a small
        // shortfall at the capture tail by shifting the analysis window
        // back (bounded; the resulting bias is chirp-slope × shift and is
        // reflected in the estimate's quality/band handling).
        const SLACK: usize = 200;
        let mut start = onset + n;
        if capture.len() < start + n {
            let shortfall = start + n - capture.len();
            if shortfall > SLACK {
                return Err(SoftLoraError::Capture {
                    reason: "capture does not contain two chirps after the onset",
                });
            }
            start -= shortfall;
        }
        match method {
            FbMethod::LinearRegression => {
                self.linear_regression_with(&capture.i[start..], &capture.q[start..], scratch)
            }
            FbMethod::MatchedFilter => {
                // The matched filter integrates over both chirps (the
                // first is also a clean preamble up-chirp).
                let mut z = scratch.take_complex_empty();
                capture.to_complex_into(&mut z);
                let first = start - n;
                let result = self.matched_filter_with(&z[first..], scratch);
                scratch.put_complex(z);
                result
            }
            FbMethod::DifferentialEvolution => {
                let z = capture.to_complex();
                self.differential_evolution(&z[start..], noise_power)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::noise::{add_noise_at_snr, GaussianNoise, NoiseSource};
    use softlora_phy::oscillator::Oscillator;
    use softlora_phy::sdr::SdrReceiver;
    use softlora_phy::{PhyConfig, SpreadingFactor};

    const FC: f64 = 869.75e6;

    fn cfg() -> PhyConfig {
        PhyConfig::uplink(SpreadingFactor::Sf7)
    }

    /// One clean capture: 2 chirps, known net bias, known onset.
    fn clean_capture(
        delta_tx: f64,
        delta_rx_ppm: f64,
        theta: f64,
        seed: u64,
    ) -> softlora_phy::sdr::IqCapture {
        let osc = Oscillator::with_bias_ppm(delta_rx_ppm, FC, seed).with_jitter_hz(0.0);
        let mut rx = SdrReceiver::new(osc).without_quantisation().with_fixed_phase(theta);
        rx.capture_chirps(&cfg(), 2, delta_tx, 0.9, 1.0, 300).unwrap()
    }

    #[test]
    fn linear_regression_recovers_paper_example() {
        // Paper Fig. 12: δ ≈ −22.8 kHz estimated from a real trace.
        let cap = clean_capture(-22_800.0, 0.0, 0.3, 1);
        let est = FbEstimator::new(&cfg(), cap.sample_rate);
        let fb = est
            .estimate_from_capture(&cap, cap.true_onset, FbMethod::LinearRegression, 0.0)
            .unwrap();
        assert!((fb.delta_hz + 22_800.0).abs() < 20.0, "fb {}", fb.delta_hz);
        assert!(fb.quality > 0.999);
    }

    #[test]
    fn net_bias_is_tx_minus_rx() {
        // δTx = −20 kHz, δRx = +4.349 kHz (5 ppm) -> δ ≈ −24.35 kHz.
        let cap = clean_capture(-20_000.0, 5.0, 1.0, 2);
        let est = FbEstimator::new(&cfg(), cap.sample_rate);
        let fb = est
            .estimate_from_capture(&cap, cap.true_onset, FbMethod::LinearRegression, 0.0)
            .unwrap();
        let expect = -20_000.0 - 5.0 * FC / 1e6;
        assert!((fb.delta_hz - expect).abs() < 20.0, "fb {} want {expect}", fb.delta_hz);
    }

    #[test]
    fn matched_filter_matches_regression_on_clean_signal() {
        let cap = clean_capture(-18_500.0, 0.0, 2.0, 3);
        let est = FbEstimator::new(&cfg(), cap.sample_rate);
        let lr = est
            .estimate_from_capture(&cap, cap.true_onset, FbMethod::LinearRegression, 0.0)
            .unwrap();
        let mf =
            est.estimate_from_capture(&cap, cap.true_onset, FbMethod::MatchedFilter, 0.0).unwrap();
        assert!((lr.delta_hz - mf.delta_hz).abs() < 30.0, "{} vs {}", lr.delta_hz, mf.delta_hz);
        assert!(mf.quality > 0.9, "quality {}", mf.quality);
    }

    #[test]
    fn matched_filter_robust_at_minus_25_db() {
        // Paper Fig. 14: FB error ≤ 120 Hz down to −25 dB SNR.
        let mut errs = Vec::new();
        for seed in 0..6 {
            let cap = clean_capture(-21_000.0, 0.0, 0.5, 40 + seed);
            let mut z = cap.to_complex();
            let mut noise = GaussianNoise::new(1.0, 77 + seed);
            add_noise_at_snr(&mut z, &mut noise, -25.0);
            let noisy =
                softlora_phy::sdr::IqCapture::from_complex(&z, cap.sample_rate, cap.true_onset);
            let est = FbEstimator::new(&cfg(), cap.sample_rate);
            let fb = est
                .estimate_from_capture(&noisy, cap.true_onset, FbMethod::MatchedFilter, 0.0)
                .unwrap();
            errs.push((fb.delta_hz + 21_000.0).abs());
        }
        errs.sort_by(f64::total_cmp);
        let median = errs[errs.len() / 2];
        // Paper Fig. 14 reports ≤ 120 Hz at −25 dB; this SNR sits at the
        // nonlinear-estimation threshold, so an occasional outlier trial
        // is expected — require the median to hold the paper's bound.
        assert!(median < 150.0, "median error {median} Hz, errors {errs:?}");
    }

    #[test]
    fn regression_breaks_down_where_ls_survives() {
        // The paper's §7.1.2 motivation: the unwrap-based method degrades
        // at very low SNR while the least-squares search does not.
        let mut lr_err = 0.0;
        let mut mf_err = 0.0;
        for seed in 0..4 {
            let cap = clean_capture(-21_000.0, 0.0, 0.5, 60 + seed);
            let mut z = cap.to_complex();
            let mut noise = GaussianNoise::new(1.0, 90 + seed);
            add_noise_at_snr(&mut z, &mut noise, -15.0);
            let noisy =
                softlora_phy::sdr::IqCapture::from_complex(&z, cap.sample_rate, cap.true_onset);
            let est = FbEstimator::new(&cfg(), cap.sample_rate);
            lr_err += (est
                .estimate_from_capture(&noisy, cap.true_onset, FbMethod::LinearRegression, 0.0)
                .unwrap()
                .delta_hz
                + 21_000.0)
                .abs();
            mf_err += (est
                .estimate_from_capture(&noisy, cap.true_onset, FbMethod::MatchedFilter, 0.0)
                .unwrap()
                .delta_hz
                + 21_000.0)
                .abs();
        }
        assert!(mf_err * 5.0 < lr_err, "mf {mf_err} lr {lr_err}");
    }

    #[test]
    fn de_solves_the_least_squares_problem() {
        // Keep it light for unit tests: clean signal, small DE budget.
        let cap = clean_capture(-23_456.0, 0.0, 1.3, 5);
        let mut est = FbEstimator::new(&cfg(), cap.sample_rate);
        est.de_seed = 11;
        let fb = est
            .estimate_from_capture(&cap, cap.true_onset, FbMethod::DifferentialEvolution, 0.0)
            .unwrap();
        assert!((fb.delta_hz + 23_456.0).abs() < 50.0, "fb {}", fb.delta_hz);
        assert!(fb.quality > 0.9, "quality {}", fb.quality);
    }

    #[test]
    fn amplitude_estimation_power_split() {
        // A = 1 signal plus noise of power 0.5: E|z|² ≈ 1.5.
        let mut gen = GaussianNoise::with_power(0.5, 9);
        let z: Vec<Complex> = gen
            .generate(50_000)
            .into_iter()
            .enumerate()
            .map(|(k, n)| Complex::cis(0.01 * k as f64) + n)
            .collect();
        let a = FbEstimator::estimate_amplitude(&z, 0.5);
        assert!((a - 1.0).abs() < 0.02, "a {a}");
        assert_eq!(FbEstimator::estimate_amplitude(&[], 0.1), 0.0);
        // Noise estimate exceeding total power clamps to zero.
        assert_eq!(FbEstimator::estimate_amplitude(&[Complex::ONE], 5.0), 0.0);
    }

    #[test]
    fn onset_error_biases_estimate_microseconds_matter() {
        // The paper's claim that µs timestamping is a *prerequisite*:
        // a 25-sample (10 µs) onset error biases the regression by
        // ~W²/2^S · ε ≈ 1.25 kHz at SF7. Use a 3-chirp capture so the
        // shifted window still fits without tail-slack correction.
        let osc = Oscillator::with_bias_ppm(0.0, FC, 6).with_jitter_hz(0.0);
        let mut rx = SdrReceiver::new(osc).without_quantisation().with_fixed_phase(0.0);
        let cap = rx.capture_chirps(&cfg(), 3, -20_000.0, 0.9, 1.0, 300).unwrap();
        let est = FbEstimator::new(&cfg(), cap.sample_rate);
        let good = est
            .estimate_from_capture(&cap, cap.true_onset, FbMethod::LinearRegression, 0.0)
            .unwrap();
        let bad = est
            .estimate_from_capture(&cap, cap.true_onset + 25, FbMethod::LinearRegression, 0.0)
            .unwrap();
        let bias = (bad.delta_hz - good.delta_hz).abs();
        assert!(bias > 800.0, "onset error should visibly bias the FB: {bias} Hz");
    }

    #[test]
    fn capture_too_short_is_error() {
        let cap = clean_capture(-20_000.0, 0.0, 0.0, 7);
        let est = FbEstimator::new(&cfg(), cap.sample_rate);
        for m in
            [FbMethod::LinearRegression, FbMethod::MatchedFilter, FbMethod::DifferentialEvolution]
        {
            assert!(est.estimate_from_capture(&cap, cap.len(), m, 0.0).is_err(), "{m:?}");
        }
    }

    #[test]
    fn resolution_is_sub_ppm() {
        // Two biases 300 Hz apart (0.35 ppm) must be distinguishable.
        let cap_a = clean_capture(-20_000.0, 0.0, 0.4, 8);
        let cap_b = clean_capture(-20_300.0, 0.0, 1.9, 9);
        let est = FbEstimator::new(&cfg(), cap_a.sample_rate);
        let a = est
            .estimate_from_capture(&cap_a, cap_a.true_onset, FbMethod::MatchedFilter, 0.0)
            .unwrap();
        let b = est
            .estimate_from_capture(&cap_b, cap_b.true_onset, FbMethod::MatchedFilter, 0.0)
            .unwrap();
        let separation = a.delta_hz - b.delta_hz;
        assert!((separation - 300.0).abs() < 60.0, "separation {separation}");
    }
}
