//! Microsecond PHY-layer signal timestamping (paper §6).
//!
//! SoftLoRa timestamps the *radio signal*, not the decoded frame: the
//! preamble onset is picked on the SDR's I/Q capture with single-sample
//! accuracy (0.42 µs at 2.4 Msps). The pick feeds two consumers — the
//! secure data-timestamping pipeline, and the FB estimator, which needs
//! the chirp boundaries located to microseconds before it can subtract the
//! quadratic phase (paper: "microseconds-accurate PHY signal timestamping
//! is a prerequisite of the FB estimation").

use crate::SoftLoraError;
use softlora_dsp::aic::{aic_onset_iq_with, aic_onset_with, power_aic_onset_with};
use softlora_dsp::envelope::EnvelopeDetector;
use softlora_dsp::scratch::with_thread_scratch;
use softlora_dsp::DspScratch;
use softlora_phy::sdr::IqCapture;

/// Onset-picking algorithm (paper §6.1.2 evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnsetMethod {
    /// Hilbert-envelope amplitude-ratio detector.
    Envelope,
    /// Variance-AIC picker on one trace (I), the paper's choice.
    Aic,
    /// Variance-AIC picker on the joint I+Q curves.
    AicIq,
    /// Exponential-rate changepoint picker on the instantaneous power
    /// trace `I² + Q²` — an implementation extension that stays robust at
    /// low SNR, where the variance contrast seen by the per-component AIC
    /// collapses.
    PowerAic,
}

/// A PHY-layer signal timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhyTimestamp {
    /// Sample index of the detected onset within the capture.
    pub onset_sample: usize,
    /// Onset time in seconds from the start of the capture.
    pub onset_s: f64,
    /// Half the sampling interval: the irreducible quantisation bound on
    /// the timestamp (0.21 µs at 2.4 Msps).
    pub quantisation_bound_s: f64,
}

/// Onset detector bound to a method.
#[derive(Debug, Clone, Copy)]
pub struct PhyTimestamper {
    method: OnsetMethod,
    /// Guard samples excluded at the capture edges.
    guard: usize,
}

impl PhyTimestamper {
    /// Creates a timestamper using `method` with a 16-sample guard.
    pub fn new(method: OnsetMethod) -> Self {
        PhyTimestamper { method, guard: 16 }
    }

    /// The configured method.
    pub fn method(&self) -> OnsetMethod {
        self.method
    }

    /// Picks the signal onset in an I/Q capture.
    ///
    /// # Errors
    ///
    /// Returns [`SoftLoraError::Capture`] when the capture is too short for
    /// the picker.
    pub fn timestamp(&self, capture: &IqCapture) -> Result<PhyTimestamp, SoftLoraError> {
        with_thread_scratch(|scratch| self.timestamp_with(capture, scratch))
    }

    /// [`PhyTimestamper::timestamp`] against a caller-owned scratch arena
    /// — the per-worker steady-state path: every picker's intermediates
    /// (AIC curves, prefix sums, Hilbert buffers) come from the arena, so
    /// after warm-up a pick allocates nothing. The pick itself is
    /// identical to the allocating API (which delegates here with a
    /// thread-local arena).
    ///
    /// # Errors
    ///
    /// Same as [`PhyTimestamper::timestamp`].
    pub fn timestamp_with(
        &self,
        capture: &IqCapture,
        scratch: &mut DspScratch,
    ) -> Result<PhyTimestamp, SoftLoraError> {
        let onset_sample = match self.method {
            OnsetMethod::Envelope => {
                let det = EnvelopeDetector::new();
                det.detect_onset_with(&capture.i, scratch).map_err(|_| SoftLoraError::Capture {
                    reason: "capture too short for envelope",
                })?
            }
            OnsetMethod::Aic => aic_onset_with(&capture.i, self.guard, scratch)
                .map_err(|_| SoftLoraError::Capture { reason: "capture too short for AIC" })?,
            OnsetMethod::AicIq => aic_onset_iq_with(&capture.i, &capture.q, self.guard, scratch)
                .map_err(|_| SoftLoraError::Capture { reason: "capture too short for AIC" })?,
            OnsetMethod::PowerAic => {
                power_aic_onset_with(&capture.i, &capture.q, self.guard, scratch)
                    .map_err(|_| SoftLoraError::Capture { reason: "capture too short for AIC" })?
            }
        };
        Ok(PhyTimestamp {
            onset_sample,
            onset_s: onset_sample as f64 * capture.dt(),
            quantisation_bound_s: capture.dt() / 2.0,
        })
    }

    /// Signed timestamping error against the capture's ground truth,
    /// seconds (positive = picked late). This is the metric of paper
    /// Table 2 / Fig. 10 / Fig. 15.
    ///
    /// # Errors
    ///
    /// Same as [`PhyTimestamper::timestamp`].
    pub fn timestamp_error_s(&self, capture: &IqCapture) -> Result<f64, SoftLoraError> {
        let ts = self.timestamp(capture)?;
        Ok((ts.onset_sample as i64 - capture.true_onset as i64) as f64 * capture.dt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::noise::{add_noise_at_snr, GaussianNoise};
    use softlora_phy::oscillator::Oscillator;
    use softlora_phy::sdr::SdrReceiver;
    use softlora_phy::{PhyConfig, SpreadingFactor};

    fn capture(snr_db: Option<f64>, seed: u64) -> IqCapture {
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf7);
        let osc = Oscillator::with_bias_ppm(2.0, 869.75e6, seed).with_jitter_hz(0.0);
        let mut rx = SdrReceiver::new(osc).without_quantisation();
        let cap = rx.capture_chirps(&cfg, 2, -22_000.0, 0.7, 1.0, 600).unwrap();
        match snr_db {
            None => cap,
            Some(snr) => {
                let mut z = cap.to_complex();
                let mut src = GaussianNoise::new(1.0, seed + 1);
                // The silent lead dilutes the measured signal power by
                // ~10 %; negligible for these tolerance-level tests.
                add_noise_at_snr(&mut z, &mut src, snr);
                IqCapture::from_complex(&z, cap.sample_rate, cap.true_onset)
            }
        }
    }

    #[test]
    fn aic_error_under_two_microseconds_clean() {
        // Paper Table 2: AIC errors < 2 µs at high SNR.
        for seed in 0..10 {
            let cap = capture(None, seed);
            let ts = PhyTimestamper::new(OnsetMethod::Aic);
            let err = ts.timestamp_error_s(&cap).unwrap().abs();
            assert!(err < 2e-6, "seed {seed}: err {err}");
        }
    }

    #[test]
    fn envelope_error_under_ten_microseconds_clean() {
        // Paper Table 2: envelope errors ~2–10 µs.
        for seed in 0..10 {
            let cap = capture(None, seed);
            let ts = PhyTimestamper::new(OnsetMethod::Envelope);
            let err = ts.timestamp_error_s(&cap).unwrap().abs();
            assert!(err < 10e-6, "seed {seed}: err {err}");
        }
    }

    #[test]
    fn aic_beats_envelope_on_average() {
        let mut aic_sum = 0.0;
        let mut env_sum = 0.0;
        for seed in 0..10 {
            let cap = capture(Some(10.0), 100 + seed);
            aic_sum += PhyTimestamper::new(OnsetMethod::Aic).timestamp_error_s(&cap).unwrap().abs();
            env_sum +=
                PhyTimestamper::new(OnsetMethod::Envelope).timestamp_error_s(&cap).unwrap().abs();
        }
        assert!(aic_sum <= env_sum, "aic {aic_sum} env {env_sum}");
    }

    #[test]
    fn error_grows_with_noise_but_stays_bounded() {
        // Paper Fig. 10: ≤ ~20 µs down to −1 dB, ≤ ~25 µs at −20 dB.
        let ts = PhyTimestamper::new(OnsetMethod::Aic);
        let mut high_snr_err = 0.0;
        let mut low_snr_err = 0.0;
        for seed in 0..6 {
            high_snr_err += ts.timestamp_error_s(&capture(Some(13.0), 200 + seed)).unwrap().abs();
            low_snr_err += ts.timestamp_error_s(&capture(Some(-1.0), 300 + seed)).unwrap().abs();
        }
        high_snr_err /= 6.0;
        low_snr_err /= 6.0;
        assert!(high_snr_err <= low_snr_err + 2e-6, "{high_snr_err} vs {low_snr_err}");
        assert!(low_snr_err < 25e-6, "low snr err {low_snr_err}");
    }

    #[test]
    fn quantisation_bound_matches_sample_rate() {
        let cap = capture(None, 1);
        let ts = PhyTimestamper::new(OnsetMethod::Aic).timestamp(&cap).unwrap();
        assert!((ts.quantisation_bound_s - 0.5 / 2.4e6).abs() < 1e-12);
        assert!((ts.onset_s - ts.onset_sample as f64 / 2.4e6).abs() < 1e-15);
    }

    #[test]
    fn iq_joint_method_works() {
        let cap = capture(Some(5.0), 7);
        let ts = PhyTimestamper::new(OnsetMethod::AicIq);
        let err = ts.timestamp_error_s(&cap).unwrap().abs();
        assert!(err < 10e-6, "err {err}");
        assert_eq!(ts.method(), OnsetMethod::AicIq);
    }

    #[test]
    fn short_capture_is_error() {
        let cap = IqCapture { i: vec![0.0; 8], q: vec![0.0; 8], sample_rate: 2.4e6, true_onset: 0 };
        for m in
            [OnsetMethod::Envelope, OnsetMethod::Aic, OnsetMethod::AicIq, OnsetMethod::PowerAic]
        {
            assert!(PhyTimestamper::new(m).timestamp(&cap).is_err());
        }
    }
}
