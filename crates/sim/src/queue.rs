//! Deterministic time-ordered event queue.
//!
//! A thin wrapper over a binary heap that breaks time ties by insertion
//! order, so simulations are reproducible regardless of float equality
//! quirks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulation time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time_s: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour; ties broken by sequence number.
        other.time_s.total_cmp(&self.time_s).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-time priority queue of events.
///
/// # Example
///
/// ```
/// use softlora_sim::queue::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at `time_s`.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is NaN (a NaN time would silently corrupt the
    /// ordering).
    pub fn schedule(&mut self, time_s: f64, event: E) {
        assert!(!time_s.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled { time_s, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|s| (s.time_s, s.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time_s)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule(1.0, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(5.0, ());
        q.schedule(4.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(4.0));
        q.pop();
        assert_eq!(q.peek_time(), Some(5.0));
    }

    #[test]
    fn negative_and_zero_times_allowed() {
        let mut q = EventQueue::new();
        q.schedule(0.0, "zero");
        q.schedule(-1.0, "past");
        assert_eq!(q.pop().unwrap().1, "past");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "c");
        q.schedule(1.0, "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(5.0, "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
