//! The uplink pipeline: frames on the air, interception, and delivery.
//!
//! A device transmission becomes an [`AirFrame`] — bytes plus everything
//! physical about the emission (time, power, position, the oscillator bias
//! of this frame). An [`Interceptor`] turns an air frame into the
//! [`Delivery`]s that actually reach the gateway: the [`HonestChannel`]
//! passes the frame through with propagation delay and the link's SNR,
//! while the frame-delay attack (in `softlora-attack`) jams the direct
//! copy and injects a delayed replay with its own oscillator bias.

use crate::medium::{GatewaySite, Position, RadioMedium};
use softlora_phy::rn2483::JammingAttempt;
use softlora_phy::SpreadingFactor;

/// A frame in flight, as emitted by a device.
#[derive(Debug, Clone)]
pub struct AirFrame {
    /// Claimed source device address (readable from the header).
    pub dev_addr: u32,
    /// Serialized PHY payload.
    pub bytes: Vec<u8>,
    /// Global time the transmission started, seconds.
    pub tx_start_global_s: f64,
    /// Frame air time, seconds.
    pub airtime_s: f64,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Transmitter position.
    pub tx_position: Position,
    /// The transmitter oscillator's frequency bias for this frame, Hz.
    pub tx_bias_hz: f64,
    /// The transmitter's carrier phase for this frame, radians.
    pub tx_phase: f64,
    /// Spreading factor.
    pub sf: SpreadingFactor,
}

/// A copy of a frame arriving at the gateway.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Frame bytes as received (bit-exact replays keep the original).
    pub bytes: Vec<u8>,
    /// Claimed source address.
    pub dev_addr: u32,
    /// Global arrival time of the frame onset at the gateway, seconds.
    pub arrival_global_s: f64,
    /// Received SNR at the gateway, dB.
    pub snr_db: f64,
    /// Net oscillator bias of the arriving waveform, Hz — the original
    /// transmitter's bias, plus the replay chain's bias if this copy went
    /// through the attacker's USRPs.
    pub carrier_bias_hz: f64,
    /// Carrier phase of the arriving waveform, radians.
    pub carrier_phase: f64,
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Concurrent jamming at the gateway overlapping this frame, if any.
    pub jamming: Option<JammingAttempt>,
    /// Ground truth for evaluation: whether this copy is a malicious
    /// replay.
    pub is_replay: bool,
}

/// A copy of a frame arriving at one gateway of a fleet.
#[derive(Debug, Clone)]
pub struct FleetDelivery {
    /// Index of the receiving gateway in the fleet's gateway list.
    pub gateway: usize,
    /// The copy as that gateway observes it.
    pub delivery: Delivery,
}

/// All copies of one uplink across a gateway fleet, as handed to a
/// scenario sink (and consumed by the network server in `softlora`).
///
/// One transmission produces at most one group; the copies share the
/// frame bytes but differ in gateway, SNR, arrival time and (for attack
/// interceptors) jamming exposure and replay provenance.
#[derive(Debug, Clone)]
pub struct UplinkDeliveries {
    /// Monotonic uplink sequence number within the scenario.
    pub uplink: u64,
    /// Transmitting device address.
    pub dev_addr: u32,
    /// Global time the transmission started, seconds.
    pub tx_start_global_s: f64,
    /// Frame air time, seconds.
    pub airtime_s: f64,
    /// Surviving per-gateway copies (collided copies are already removed).
    pub copies: Vec<FleetDelivery>,
}

/// Turns an air frame into the deliveries the gateway observes.
pub trait Interceptor {
    /// Processes one uplink towards a single gateway.
    fn intercept(
        &mut self,
        frame: &AirFrame,
        medium: &RadioMedium,
        gateway_position: &Position,
    ) -> Vec<Delivery>;

    /// Processes one uplink towards a fleet of gateways: the single air
    /// frame fans out into per-gateway copies with independent path loss,
    /// SNR and propagation delay.
    ///
    /// The default treats every gateway as an independent single-gateway
    /// link — correct for the honest channel, where each gateway simply
    /// hears its own copy. Attacks override this: jamming is local to the
    /// attacked gateway, while a replay transmission is heard by the whole
    /// fleet (see `softlora-attack`).
    fn intercept_fleet(
        &mut self,
        frame: &AirFrame,
        medium: &RadioMedium,
        gateways: &[Position],
    ) -> Vec<FleetDelivery> {
        let mut out = Vec::new();
        for (gateway, position) in gateways.iter().enumerate() {
            for delivery in self.intercept(frame, medium, position) {
                out.push(FleetDelivery { gateway, delivery });
            }
        }
        out
    }

    /// Processes one uplink towards a fleet of characterised
    /// [`GatewaySite`]s: the positional fan-out of
    /// [`Interceptor::intercept_fleet`], with every delivery's SNR shifted
    /// by the receiving site's antenna gain and noise-floor offset
    /// ([`GatewaySite::snr_offset_db`]).
    ///
    /// The offset is receiver-side, so it applies uniformly to every
    /// emission arriving at the site — honest originals and replay
    /// transmissions alike — which is why the default adjustment is
    /// correct for attack interceptors too. A reference site (zero gain,
    /// default floor) reproduces `intercept_fleet` exactly.
    fn intercept_fleet_sites(
        &mut self,
        frame: &AirFrame,
        medium: &RadioMedium,
        sites: &[GatewaySite],
    ) -> Vec<FleetDelivery> {
        let positions: Vec<Position> = sites.iter().map(|s| s.position).collect();
        let mut copies = self.intercept_fleet(frame, medium, &positions);
        let default_floor = medium.noise_floor_dbm();
        for copy in &mut copies {
            copy.delivery.snr_db += sites[copy.gateway].snr_offset_db(default_floor);
        }
        copies
    }
}

/// The benign channel: one delivery, delayed by propagation, at the link
/// SNR, with the transmitter's own bias.
#[derive(Debug, Clone, Copy, Default)]
pub struct HonestChannel;

impl Interceptor for HonestChannel {
    fn intercept(
        &mut self,
        frame: &AirFrame,
        medium: &RadioMedium,
        gateway_position: &Position,
    ) -> Vec<Delivery> {
        let link = medium.link(&frame.tx_position, gateway_position, frame.tx_power_dbm);
        let delay = medium.delay_s(&frame.tx_position, gateway_position);
        vec![Delivery {
            bytes: frame.bytes.clone(),
            dev_addr: frame.dev_addr,
            arrival_global_s: frame.tx_start_global_s + delay,
            snr_db: link.snr_db(),
            carrier_bias_hz: frame.tx_bias_hz,
            carrier_phase: frame.tx_phase,
            sf: frame.sf,
            jamming: None,
            is_replay: false,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::FreeSpace;

    fn frame_at(pos: Position) -> AirFrame {
        AirFrame {
            dev_addr: 7,
            bytes: vec![1, 2, 3],
            tx_start_global_s: 100.0,
            airtime_s: 0.05,
            tx_power_dbm: 14.0,
            tx_position: pos,
            tx_bias_hz: -22_000.0,
            tx_phase: 1.0,
            sf: SpreadingFactor::Sf7,
        }
    }

    #[test]
    fn honest_channel_single_delivery() {
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let gw = Position::new(300.0, 0.0, 0.0);
        let mut ch = HonestChannel;
        let deliveries = ch.intercept(&frame_at(Position::default()), &medium, &gw);
        assert_eq!(deliveries.len(), 1);
        let d = &deliveries[0];
        assert_eq!(d.bytes, vec![1, 2, 3]);
        assert!(!d.is_replay);
        assert!(d.jamming.is_none());
        // Arrival = tx start + ~1 µs propagation over 300 m.
        let delay = d.arrival_global_s - 100.0;
        assert!((delay - 1.0e-6).abs() < 0.05e-6, "delay {delay}");
        assert_eq!(d.carrier_bias_hz, -22_000.0);
    }

    #[test]
    fn default_fleet_fan_out_gives_each_gateway_its_own_copy() {
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let gateways =
            [Position::new(300.0, 0.0, 0.0), Position::new(900.0, 0.0, 0.0), Position::default()];
        let mut ch = HonestChannel;
        let copies = ch.intercept_fleet(&frame_at(Position::default()), &medium, &gateways);
        assert_eq!(copies.len(), 3);
        for (g, c) in copies.iter().enumerate() {
            assert_eq!(c.gateway, g);
        }
        // Independent link budgets: nearer gateways hear stronger copies.
        assert!(copies[2].delivery.snr_db > copies[0].delivery.snr_db);
        assert!(copies[0].delivery.snr_db > copies[1].delivery.snr_db);
        // And independent propagation delays.
        assert!(copies[1].delivery.arrival_global_s > copies[0].delivery.arrival_global_s);
    }

    #[test]
    fn single_gateway_fleet_matches_single_link() {
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let gw = Position::new(300.0, 0.0, 0.0);
        let frame = frame_at(Position::default());
        let single = HonestChannel.intercept(&frame, &medium, &gw);
        let fleet = HonestChannel.intercept_fleet(&frame, &medium, &[gw]);
        assert_eq!(fleet.len(), single.len());
        assert_eq!(fleet[0].delivery.snr_db, single[0].snr_db);
        assert_eq!(fleet[0].delivery.arrival_global_s, single[0].arrival_global_s);
    }

    #[test]
    fn site_characteristics_shift_fleet_snrs() {
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let positions = [Position::new(300.0, 0.0, 0.0), Position::new(500.0, 0.0, 0.0)];
        let baseline =
            HonestChannel.intercept_fleet(&frame_at(Position::default()), &medium, &positions);
        let sites = [
            GatewaySite::at(positions[0]).with_antenna_gain_dbi(6.0),
            GatewaySite::at(positions[1]).with_noise_floor_dbm(medium.noise_floor_dbm() + 3.0),
        ];
        let shifted =
            HonestChannel.intercept_fleet_sites(&frame_at(Position::default()), &medium, &sites);
        // Gain adds, a hotter floor subtracts; geometry is untouched.
        assert!((shifted[0].delivery.snr_db - (baseline[0].delivery.snr_db + 6.0)).abs() < 1e-9);
        assert!((shifted[1].delivery.snr_db - (baseline[1].delivery.snr_db - 3.0)).abs() < 1e-9);
        assert_eq!(shifted[0].delivery.arrival_global_s, baseline[0].delivery.arrival_global_s);

        // Reference sites reproduce the positional fan-out bit for bit.
        let reference: Vec<GatewaySite> = positions.iter().map(|p| GatewaySite::at(*p)).collect();
        let same = HonestChannel.intercept_fleet_sites(
            &frame_at(Position::default()),
            &medium,
            &reference,
        );
        for (a, b) in same.iter().zip(baseline.iter()) {
            assert_eq!(a.delivery.snr_db, b.delivery.snr_db);
        }
    }

    #[test]
    fn honest_snr_comes_from_link_budget() {
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let gw_near = Position::new(100.0, 0.0, 0.0);
        let gw_far = Position::new(5000.0, 0.0, 0.0);
        let mut ch = HonestChannel;
        let near = ch.intercept(&frame_at(Position::default()), &medium, &gw_near)[0].snr_db;
        let far = ch.intercept(&frame_at(Position::default()), &medium, &gw_far)[0].snr_db;
        assert!(near > far + 30.0, "near {near} far {far}");
    }
}
