//! Discrete-event multi-device, multi-gateway network scenario.
//!
//! Drives a population of Class A devices through the event queue: traffic
//! generation (periodic, Poisson or bursty), ALOHA uplinks under the EU868
//! duty cycle, co-channel collisions with the LoRa capture effect evaluated
//! independently at every gateway, and fan-out delivery through a
//! [`crate::network::Interceptor`]. Each uplink becomes one
//! [`UplinkDeliveries`] group holding the per-gateway copies, which is what
//! a network server deduplicates.
//!
//! The event model is open: beyond device sensing cycles the queue carries
//! transmission-end events (in-flight pruning), grouped delivery events
//! (decode completes at frame end), scheduled attacker actions (an
//! interceptor moving in or out mid-run) and periodic maintenance ticks.

use crate::clock::DriftingClock;
use crate::medium::{GatewaySite, Position, RadioMedium};
use crate::network::{AirFrame, FleetDelivery, Interceptor, UplinkDeliveries};
use crate::queue::EventQueue;
use softlora_lorawan::{ClassADevice, DeviceConfig};
use softlora_phy::channel::CAPTURE_THRESHOLD_DB;
use softlora_phy::oscillator::Oscillator;
use softlora_phy::PhyConfig;

/// How a device decides when its next sensing cycle happens.
///
/// All models are deterministic: the interval for cycle `k` of device `idx`
/// is a pure hash of `(idx, k)`, so scenario runs are reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Fixed period with ±10 % deterministic jitter (real sensing loops are
    /// not phase-locked; the jitter is what makes ALOHA collisions
    /// possible).
    Periodic {
        /// Nominal reporting period, seconds.
        period_s: f64,
    },
    /// Memoryless reporting: exponentially distributed intervals.
    Poisson {
        /// Mean interval between reports, seconds.
        mean_interval_s: f64,
    },
    /// Bursts of back-to-back reports separated by a long gap (event-driven
    /// telemetry: a threshold crossing triggers a flurry of readings).
    Bursty {
        /// Reports per burst (≥ 1).
        burst: usize,
        /// Gap between reports inside a burst, seconds.
        intra_gap_s: f64,
        /// Gap between the last report of a burst and the first of the
        /// next, seconds.
        period_s: f64,
    },
}

impl TrafficModel {
    /// The model's nominal cycle period (used to stagger first readings).
    pub fn nominal_period_s(&self) -> f64 {
        match *self {
            TrafficModel::Periodic { period_s } => period_s,
            TrafficModel::Poisson { mean_interval_s } => mean_interval_s,
            TrafficModel::Bursty { burst, intra_gap_s, period_s } => {
                (period_s + intra_gap_s * (burst.max(1) - 1) as f64) / burst.max(1) as f64
            }
        }
    }

    /// Deterministic uniform draw in `[0, 1)` for `(idx, cycle)`.
    ///
    /// This exact mix is frozen: it is the pre-fleet scenario's jitter
    /// formula, so periodic schedules (and every stat derived from them)
    /// stay reproducible across the refactor. Do not "unify" it with
    /// other hash helpers without accepting a schedule change.
    fn unit(idx: usize, cycle: u16) -> f64 {
        let h = (idx as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(cycle as u64)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        (h >> 40) as f64 / (1u64 << 24) as f64
    }

    /// Interval between cycle `cycle` and the next one for device `idx`,
    /// seconds. Strictly positive for sane parameters.
    pub fn next_interval_s(&self, idx: usize, cycle: u16) -> f64 {
        let unit = Self::unit(idx, cycle);
        match *self {
            TrafficModel::Periodic { period_s } => period_s + (unit - 0.5) * 0.2 * period_s,
            TrafficModel::Poisson { mean_interval_s } => {
                // Inverse-CDF sample; clamp so pathological draws cannot
                // produce a zero interval (which would starve the queue).
                (-(1.0 - unit).ln() * mean_interval_s).max(1e-3 * mean_interval_s)
            }
            TrafficModel::Bursty { burst, intra_gap_s, period_s } => {
                let burst = burst.max(1);
                if (cycle as usize + 1).is_multiple_of(burst) {
                    period_s
                } else {
                    intra_gap_s
                }
            }
        }
    }
}

/// One device slot in the scenario.
struct Node {
    device: ClassADevice,
    oscillator: Oscillator,
    clock: DriftingClock,
    position: Position,
    traffic: TrafficModel,
}

/// Scenario events. The queue is open-ended: device cycles, transmission
/// ends, grouped gateway deliveries, replay re-transmissions, attacker
/// actions and maintenance all flow through the same deterministic
/// [`EventQueue`].
enum Event {
    /// Device `idx` takes a sensor reading and tries to transmit.
    SenseAndSend { idx: usize, value: u16 },
    /// A transmission left the air; prune the in-flight set.
    TxEnd,
    /// All surviving per-gateway copies of one uplink reach their
    /// gateways (decode completes at frame end).
    Deliver { uplink: UplinkDeliveries },
    /// The attacker's replay chain re-transmits a recorded frame τ after
    /// the original: a real emission that contends for the channel like
    /// any other (checked against the in-flight set, then added to it).
    ReplayTx {
        /// Claimed source device of the replayed frame.
        dev_addr: u32,
        /// Frame air time, seconds.
        airtime_s: f64,
        /// Per-gateway replay copies as the interceptor produced them.
        copies: Vec<FleetDelivery>,
    },
    /// The attacker (or any interceptor) moves in or out.
    AttackerAction { interceptor: Box<dyn Interceptor + Send> },
    /// Periodic housekeeping: prune in-flight state, tally the tick.
    MaintenanceTick { period_s: f64 },
}

/// One emission currently on the air, reduced to what collision checks
/// need: when it ends and how strongly each gateway hears it. Device
/// uplinks get their powers from the medium's link budget (plus site
/// antenna gain); replay transmissions reconstruct theirs from the
/// delivered SNR, so both kinds contend identically.
struct InFlight {
    /// Global time the emission leaves the air, seconds.
    end_s: f64,
    /// Received power at each gateway, dBm (site antenna gain included).
    rx_power_dbm: Vec<f64>,
}

/// Per-gateway delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayLinkStats {
    /// Copies handed towards this gateway.
    pub delivered: u64,
    /// Originals lost to co-channel collisions at this gateway.
    pub collided: u64,
    /// Originals that survived an overlap via the capture effect here.
    pub captured: u64,
}

/// Statistics gathered by a scenario run.
///
/// Stats are mergeable ([`ScenarioStats::merge`] / `+=`) so per-shard or
/// per-phase tallies can be combined into a whole-run view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioStats {
    /// Uplinks put on the air.
    pub transmitted: u64,
    /// Uplinks deferred by the duty cycle.
    pub duty_deferred: u64,
    /// Delivery groups bound for the sink, one per uplink heard anywhere.
    /// Counted at transmit time; the matching sink callback fires when the
    /// frame leaves the air, so a run cut mid-frame may count a group
    /// whose callback fires early in the next `run` call.
    pub uplinks_delivered: u64,
    /// Per-gateway copies bound for the sink, summed over gateways
    /// (counted at transmit time, like [`ScenarioStats::uplinks_delivered`]).
    pub delivered: u64,
    /// Original copies lost to co-channel collisions, summed over
    /// gateways (neither frame captured at that gateway).
    pub collided: u64,
    /// Original copies that survived a collision via the capture effect,
    /// summed over gateways.
    pub captured: u64,
    /// Replay re-transmissions that went on the air (each contends for
    /// the channel like any other emission).
    pub replay_transmissions: u64,
    /// Replay copies lost to co-channel collisions at their gateway,
    /// summed over gateways.
    pub replay_collided: u64,
    /// Replay copies bound for the sink, summed over gateways.
    pub replay_delivered: u64,
    /// Maximum concurrently in-flight frames observed.
    pub peak_in_flight: u64,
    /// Maintenance ticks executed.
    pub maintenance_ticks: u64,
    /// Per-gateway breakdown of `delivered` / `collided` / `captured`.
    pub per_gateway: Vec<GatewayLinkStats>,
}

impl ScenarioStats {
    /// Folds `other` into `self`: counters add, `peak_in_flight` takes the
    /// maximum, and per-gateway entries combine element-wise (shorter
    /// vectors are padded).
    pub fn merge(&mut self, other: &ScenarioStats) {
        self.transmitted += other.transmitted;
        self.duty_deferred += other.duty_deferred;
        self.uplinks_delivered += other.uplinks_delivered;
        self.delivered += other.delivered;
        self.collided += other.collided;
        self.captured += other.captured;
        self.replay_transmissions += other.replay_transmissions;
        self.replay_collided += other.replay_collided;
        self.replay_delivered += other.replay_delivered;
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
        self.maintenance_ticks += other.maintenance_ticks;
        if self.per_gateway.len() < other.per_gateway.len() {
            self.per_gateway.resize(other.per_gateway.len(), GatewayLinkStats::default());
        }
        for (mine, theirs) in self.per_gateway.iter_mut().zip(other.per_gateway.iter()) {
            mine.delivered += theirs.delivered;
            mine.collided += theirs.collided;
            mine.captured += theirs.captured;
        }
    }
}

impl std::ops::AddAssign<&ScenarioStats> for ScenarioStats {
    fn add_assign(&mut self, rhs: &ScenarioStats) {
        self.merge(rhs);
    }
}

impl std::ops::AddAssign for ScenarioStats {
    fn add_assign(&mut self, rhs: ScenarioStats) {
        self.merge(&rhs);
    }
}

/// A multi-device, multi-gateway network scenario on one channel/SF.
///
/// The interceptor is boxed so an attack can move in (or out) mid-run —
/// either immediately via [`Scenario::set_interceptor`] or as a scheduled
/// [`Scenario::schedule_interceptor`] event — without disturbing device
/// state (frame counters, duty cycles, clocks).
pub struct Scenario {
    phy: PhyConfig,
    medium: RadioMedium,
    sites: Vec<GatewaySite>,
    gateway_positions: Vec<Position>,
    interceptor: Box<dyn Interceptor + Send>,
    nodes: Vec<Node>,
    queue: EventQueue<Event>,
    stats: ScenarioStats,
    /// Emissions currently on the air (device uplinks and replays alike).
    in_flight: Vec<InFlight>,
    next_uplink: u64,
}

impl Scenario {
    /// Creates a single-gateway scenario over `medium` with the gateway at
    /// `gateway_position`, delivering through `interceptor`.
    pub fn new(
        phy: PhyConfig,
        medium: RadioMedium,
        gateway_position: Position,
        interceptor: Box<dyn Interceptor + Send>,
    ) -> Self {
        Self::new_fleet(phy, medium, vec![gateway_position], interceptor)
    }

    /// Creates a scenario over a fleet of gateways at the given positions
    /// (reference sites: no extra antenna gain, the medium's noise
    /// floor). Every uplink fans out into per-gateway copies with
    /// independent path loss, SNR, capture and (under attack) jamming
    /// exposure.
    ///
    /// # Panics
    ///
    /// Panics if `gateways` is empty.
    pub fn new_fleet(
        phy: PhyConfig,
        medium: RadioMedium,
        gateways: Vec<Position>,
        interceptor: Box<dyn Interceptor + Send>,
    ) -> Self {
        let sites = gateways.into_iter().map(GatewaySite::at).collect();
        Self::new_fleet_sites(phy, medium, sites, interceptor)
    }

    /// Creates a scenario over a fleet of characterised [`GatewaySite`]s:
    /// per-site antenna gains and noise floors shift each site's delivery
    /// SNRs on top of the medium's link budget.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn new_fleet_sites(
        phy: PhyConfig,
        medium: RadioMedium,
        sites: Vec<GatewaySite>,
        interceptor: Box<dyn Interceptor + Send>,
    ) -> Self {
        assert!(!sites.is_empty(), "a scenario needs at least one gateway");
        let stats = ScenarioStats {
            per_gateway: vec![GatewayLinkStats::default(); sites.len()],
            ..ScenarioStats::default()
        };
        let gateway_positions = sites.iter().map(|s| s.position).collect();
        Scenario {
            phy,
            medium,
            sites,
            gateway_positions,
            interceptor,
            nodes: Vec::new(),
            queue: EventQueue::new(),
            stats,
            in_flight: Vec::new(),
            next_uplink: 0,
        }
    }

    /// Swaps the delivery interceptor (e.g. the attack moving in) while
    /// keeping all device and schedule state.
    pub fn set_interceptor(&mut self, interceptor: Box<dyn Interceptor + Send>) {
        self.interceptor = interceptor;
    }

    /// Schedules an interceptor swap at simulation time `at_s` — the
    /// attacker arriving (or leaving, by scheduling an honest channel) as
    /// a first-class event instead of split `run` calls.
    pub fn schedule_interceptor(&mut self, at_s: f64, interceptor: Box<dyn Interceptor + Send>) {
        self.queue.schedule(at_s, Event::AttackerAction { interceptor });
    }

    /// Enables a periodic maintenance tick starting at `period_s` and
    /// repeating every `period_s` seconds: prunes in-flight state and
    /// tallies [`ScenarioStats::maintenance_ticks`].
    ///
    /// # Panics
    ///
    /// Panics unless `period_s` is positive.
    pub fn enable_maintenance(&mut self, period_s: f64) {
        assert!(period_s > 0.0, "maintenance period must be positive");
        self.queue.schedule(period_s, Event::MaintenanceTick { period_s });
    }

    /// Gateway positions of the fleet.
    pub fn gateways(&self) -> &[Position] {
        &self.gateway_positions
    }

    /// The fleet's gateway sites (positions plus per-site receiver
    /// characteristics).
    pub fn sites(&self) -> &[GatewaySite] {
        &self.sites
    }

    /// Adds a device at `position` reporting every `period_s` seconds
    /// (periodic traffic with deterministic jitter), with a sampled
    /// crystal and oscillator. Returns its device address.
    pub fn add_device(
        &mut self,
        dev_addr: u32,
        position: Position,
        period_s: f64,
        seed: u64,
    ) -> u32 {
        self.add_device_with_traffic(dev_addr, position, TrafficModel::Periodic { period_s }, seed)
    }

    /// Adds a device with an explicit traffic model.
    pub fn add_device_with_traffic(
        &mut self,
        dev_addr: u32,
        position: Position,
        traffic: TrafficModel,
        seed: u64,
    ) -> u32 {
        let cfg = DeviceConfig::new(dev_addr, self.phy);
        let node = Node {
            device: ClassADevice::new(cfg),
            oscillator: Oscillator::sample_end_device(self.phy.channel.center_hz, seed),
            clock: DriftingClock::sample_device_crystal(seed),
            position,
            traffic,
        };
        let idx = self.nodes.len();
        self.nodes.push(node);
        // Stagger the first reading pseudo-randomly to avoid phase lock.
        let nominal = traffic.nominal_period_s();
        let first = 1.0 + (seed % 97) as f64 * nominal / 97.0;
        self.queue.schedule(first, Event::SenseAndSend { idx, value: 0 });
        dev_addr
    }

    /// Device keys for provisioning a gateway (by index).
    pub fn device_config(&self, idx: usize) -> &DeviceConfig {
        self.nodes[idx].device.config()
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.nodes.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ScenarioStats {
        &self.stats
    }

    /// Takes the statistics accumulated so far, resetting the tally (the
    /// per-gateway vector keeps its length). Lets a caller shard one run
    /// into phases whose stats merge back into the whole-run view.
    pub fn take_stats(&mut self) -> ScenarioStats {
        let fresh = ScenarioStats {
            per_gateway: vec![GatewayLinkStats::default(); self.sites.len()],
            ..ScenarioStats::default()
        };
        std::mem::replace(&mut self.stats, fresh)
    }

    /// Runs the scenario until `until_s`, calling `sink` for every uplink
    /// group that survives the collision model at one or more gateways.
    ///
    /// Groups are delivered when their frame leaves the air, so a group
    /// transmitted within one airtime of `until_s` stays queued (and its
    /// callback fires at the start of the next `run` call); the
    /// [`ScenarioStats`] delivery counters are tallied at transmit time
    /// and can therefore briefly lead the sink by the in-flight frames.
    pub fn run<F: FnMut(&UplinkDeliveries)>(&mut self, until_s: f64, mut sink: F) {
        while let Some(t) = self.queue.peek_time() {
            if t > until_s {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked");
            match event {
                Event::SenseAndSend { idx, value } => {
                    self.handle_sense_and_send(now, idx, value);
                }
                Event::TxEnd => {
                    self.in_flight.retain(|f| f.end_s > now);
                }
                Event::Deliver { uplink } => {
                    sink(&uplink);
                }
                Event::ReplayTx { dev_addr, airtime_s, copies } => {
                    self.handle_replay_tx(now, dev_addr, airtime_s, copies);
                }
                Event::AttackerAction { interceptor } => {
                    self.interceptor = interceptor;
                }
                Event::MaintenanceTick { period_s } => {
                    self.in_flight.retain(|f| f.end_s > now);
                    self.stats.maintenance_ticks += 1;
                    self.queue.schedule(now + period_s, Event::MaintenanceTick { period_s });
                }
            }
        }
    }

    /// Received power of a device emission at every gateway, dBm,
    /// including each site's antenna gain — the quantity collision checks
    /// compare.
    fn frame_rx_powers(&self, frame: &AirFrame) -> Vec<f64> {
        self.sites
            .iter()
            .map(|site| {
                self.medium
                    .link(&frame.tx_position, &site.position, frame.tx_power_dbm)
                    .rx_power_dbm()
                    + site.antenna_gain_dbi
            })
            .collect()
    }

    fn handle_sense_and_send(&mut self, now: f64, idx: usize, value: u16) {
        // Schedule the next cycle first, from the node's traffic model
        // (deterministic in `(idx, cycle)`).
        let interval = self.nodes[idx].traffic.next_interval_s(idx, value);
        self.queue
            .schedule(now + interval, Event::SenseAndSend { idx, value: value.wrapping_add(1) });

        // Sense on the device's local clock, then attempt an uplink.
        let local_now = self.nodes[idx].clock.read(now);
        {
            let node = &mut self.nodes[idx];
            if node.device.buffer_full() {
                // Drop the oldest implicitly by skipping — a real app would
                // rotate; the stats show the pressure via duty_deferred.
            } else {
                let _ = node.device.sense(value, local_now);
            }
        }
        let tx = {
            let node = &mut self.nodes[idx];
            match node.device.try_transmit(local_now) {
                Ok(tx) => tx,
                Err(_) => {
                    self.stats.duty_deferred += 1;
                    return;
                }
            }
        };
        self.stats.transmitted += 1;

        let node = &mut self.nodes[idx];
        let frame = AirFrame {
            dev_addr: node.device.dev_addr(),
            bytes: tx.bytes,
            tx_start_global_s: now,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: node.position,
            tx_bias_hz: node.oscillator.frame_bias_hz(),
            tx_phase: 0.3,
            sf: self.phy.sf,
        };

        // Collision bookkeeping: prune ended flights, then check overlap
        // independently at every gateway (near–far geometry means a frame
        // can capture at one gateway and collide at another). The
        // in-flight set holds *every* ongoing emission — device uplinks
        // and replay re-transmissions alike.
        self.in_flight.retain(|f| f.end_s > now);
        let had_overlap = !self.in_flight.is_empty();
        let new_powers = self.frame_rx_powers(&frame);
        let mut survives = vec![true; self.sites.len()];
        for (g, &new_power) in new_powers.iter().enumerate() {
            for other in &self.in_flight {
                if new_power < other.rx_power_dbm[g] + CAPTURE_THRESHOLD_DB {
                    // The new frame does not capture over the ongoing one.
                    survives[g] = false;
                }
            }
        }
        self.in_flight.push(InFlight { end_s: now + frame.airtime_s, rx_power_dbm: new_powers });
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight.len() as u64);
        self.queue.schedule(now + frame.airtime_s, Event::TxEnd);

        for (g, survived) in survives.iter().enumerate() {
            if !survived {
                self.stats.collided += 1;
                self.stats.per_gateway[g].collided += 1;
            } else if had_overlap {
                self.stats.captured += 1;
                self.stats.per_gateway[g].captured += 1;
            }
        }

        // Fan out through the interceptor, then split the copies: original
        // copies are dropped at gateways where the original collided and
        // delivered when this frame leaves the air; replay copies are a
        // *separate transmission* τ later and go back on the event queue,
        // where they face the in-flight overlap check of their own tx
        // window instead of bypassing it.
        let copies = self.interceptor.intercept_fleet_sites(&frame, &self.medium, &self.sites);
        let (replays, originals): (Vec<FleetDelivery>, Vec<FleetDelivery>) =
            copies.into_iter().partition(|c| c.delivery.is_replay);
        let kept: Vec<FleetDelivery> =
            originals.into_iter().filter(|c| survives[c.gateway]).collect();

        if let Some(replay_tx_start) =
            replays.iter().map(|c| c.delivery.arrival_global_s).min_by(f64::total_cmp)
        {
            // One replay emission, heard fleet-wide; its transmission
            // starts when its earliest copy arrives (propagation within
            // the fleet is microseconds).
            self.queue.schedule(
                replay_tx_start,
                Event::ReplayTx {
                    dev_addr: frame.dev_addr,
                    airtime_s: frame.airtime_s,
                    copies: replays,
                },
            );
        }

        let uplink_id = self.next_uplink;
        self.next_uplink += 1;
        if kept.is_empty() {
            return;
        }
        self.stats.uplinks_delivered += 1;
        self.stats.delivered += kept.len() as u64;
        for c in &kept {
            self.stats.per_gateway[c.gateway].delivered += 1;
        }
        let group = UplinkDeliveries {
            uplink: uplink_id,
            dev_addr: frame.dev_addr,
            tx_start_global_s: now,
            airtime_s: frame.airtime_s,
            copies: kept,
        };
        // Decode completes when the frame leaves the air.
        self.queue.schedule(now + frame.airtime_s, Event::Deliver { uplink: group });
    }

    /// The replay chain's re-transmission goes on the air: contend with
    /// whatever is in flight *now* (the original's window has long
    /// passed), join the in-flight set so later uplinks contend with the
    /// replay, and deliver the surviving copies as their own group when
    /// the emission ends.
    fn handle_replay_tx(
        &mut self,
        now: f64,
        dev_addr: u32,
        airtime_s: f64,
        copies: Vec<FleetDelivery>,
    ) {
        self.in_flight.retain(|f| f.end_s > now);
        self.stats.replay_transmissions += 1;

        // Reconstruct the replay's per-gateway received power from the
        // delivered SNR and the site noise floor — the same quantity
        // `frame_rx_powers` computes for device emissions.
        let default_floor = self.medium.noise_floor_dbm();
        let mut replay_powers = vec![f64::NEG_INFINITY; self.sites.len()];
        for c in &copies {
            replay_powers[c.gateway] =
                self.sites[c.gateway].noise_floor_dbm(default_floor) + c.delivery.snr_db;
        }

        let kept: Vec<FleetDelivery> = copies
            .into_iter()
            .filter(|c| {
                let survives = self.in_flight.iter().all(|other| {
                    replay_powers[c.gateway] >= other.rx_power_dbm[c.gateway] + CAPTURE_THRESHOLD_DB
                });
                if !survives {
                    self.stats.replay_collided += 1;
                }
                survives
            })
            .collect();

        self.in_flight.push(InFlight { end_s: now + airtime_s, rx_power_dbm: replay_powers });
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight.len() as u64);
        self.queue.schedule(now + airtime_s, Event::TxEnd);

        let uplink_id = self.next_uplink;
        self.next_uplink += 1;
        if kept.is_empty() {
            return;
        }
        self.stats.uplinks_delivered += 1;
        self.stats.replay_delivered += kept.len() as u64;
        let group = UplinkDeliveries {
            uplink: uplink_id,
            dev_addr,
            tx_start_global_s: now,
            airtime_s,
            copies: kept,
        };
        self.queue.schedule(now + airtime_s, Event::Deliver { uplink: group });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::FreeSpace;
    use crate::network::HonestChannel;
    use softlora_phy::SpreadingFactor;

    fn scenario(n_devices: usize, period_s: f64) -> Scenario {
        scenario_fleet(n_devices, period_s, vec![Position::new(0.0, 0.0, 10.0)])
    }

    fn scenario_fleet(n_devices: usize, period_s: f64, gateways: Vec<Position>) -> Scenario {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
        let mut s = Scenario::new_fleet(phy, medium, gateways, Box::new(HonestChannel));
        for k in 0..n_devices {
            s.add_device(
                0x2601_2000 + k as u32,
                Position::new(100.0 + 40.0 * k as f64, 20.0, 1.5),
                period_s,
                k as u64,
            );
        }
        s
    }

    #[test]
    fn single_device_periodic_reporting() {
        let mut s = scenario(1, 120.0);
        let mut deliveries = 0;
        s.run(3600.0, |u| {
            assert_eq!(u.copies.len(), 1);
            deliveries += 1;
        });
        // ~30 cycles in an hour at 120 s period.
        assert!((25..=31).contains(&deliveries), "deliveries {deliveries}");
        assert_eq!(s.stats().transmitted as usize, deliveries);
        assert_eq!(s.stats().collided, 0);
    }

    #[test]
    fn duty_cycle_defers_aggressive_periods() {
        // SF7 ~46 ms airtime -> silence ~4.6 s at 1 %; a 2 s period must be
        // deferred roughly every other attempt.
        let mut s = scenario(1, 2.0);
        s.run(600.0, |_| {});
        assert!(s.stats().duty_deferred > 100, "{:?}", s.stats());
        assert!(s.stats().transmitted > 60, "{:?}", s.stats());
    }

    #[test]
    fn dense_network_collides() {
        // 60 devices at 5 s periods on one SF: ~46 ms frames with jittered
        // phases make overlaps statistically certain.
        let mut s = scenario(60, 5.0);
        s.run(600.0, |_| {});
        let st = s.stats().clone();
        assert!(st.collided + st.captured > 0, "no overlaps at all: {st:?}");
        assert!(st.delivered > 0);
        // Conservation: every transmission is delivered or collided at the
        // (single) gateway.
        assert_eq!(st.transmitted, st.delivered + st.collided);
        assert_eq!(st.per_gateway[0].delivered, st.delivered);
        assert!(st.peak_in_flight >= 2);
    }

    #[test]
    fn fleet_conserves_copies_per_gateway() {
        let gateways = vec![
            Position::new(0.0, 0.0, 10.0),
            Position::new(400.0, 0.0, 10.0),
            Position::new(0.0, 400.0, 15.0),
        ];
        let mut s = scenario_fleet(40, 5.0, gateways);
        s.run(600.0, |_| {});
        let st = s.stats().clone();
        // Each gateway independently delivers or collides every uplink.
        for g in &st.per_gateway {
            assert_eq!(st.transmitted, g.delivered + g.collided);
        }
        assert_eq!(st.delivered + st.collided, 3 * st.transmitted);
    }

    #[test]
    fn fleet_copies_have_distinct_snrs_and_delays() {
        let gateways = vec![Position::new(0.0, 0.0, 10.0), Position::new(900.0, 0.0, 10.0)];
        let mut s = scenario_fleet(1, 60.0, gateways);
        let mut groups = 0;
        s.run(300.0, |u| {
            groups += 1;
            assert_eq!(u.copies.len(), 2);
            let a = &u.copies[0].delivery;
            let b = &u.copies[1].delivery;
            assert_ne!(a.snr_db, b.snr_db, "per-gateway SNRs must differ");
            assert_ne!(a.arrival_global_s, b.arrival_global_s);
            // Same frame bytes at both gateways.
            assert_eq!(a.bytes, b.bytes);
        });
        assert!(groups > 0);
    }

    #[test]
    fn deliveries_carry_device_identity_and_bias() {
        let mut s = scenario(2, 60.0);
        let mut seen = std::collections::HashSet::new();
        let mut biases = Vec::new();
        s.run(240.0, |u| {
            for c in &u.copies {
                seen.insert(c.delivery.dev_addr);
                biases.push(c.delivery.carrier_bias_hz);
            }
        });
        assert_eq!(seen.len(), 2);
        for b in biases {
            assert!((-26_000.0..=-16_000.0).contains(&b), "bias {b}");
        }
    }

    #[test]
    fn stats_are_deterministic() {
        let run = || {
            let mut s = scenario(5, 30.0);
            s.run(900.0, |_| {});
            s.stats().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_stats_merge_to_whole_run() {
        // One run to T equals the merge of the same run's [0, T/2] and
        // (T/2, T] shards — the satellite aggregation property.
        let mut whole = scenario(8, 20.0);
        whole.run(800.0, |_| {});
        let expect = whole.stats().clone();

        let mut sharded = scenario(8, 20.0);
        sharded.run(400.0, |_| {});
        let mut merged = sharded.take_stats();
        sharded.run(800.0, |_| {});
        merged += sharded.take_stats();
        assert_eq!(merged, expect);
    }

    #[test]
    fn poisson_traffic_spreads_intervals() {
        let model = TrafficModel::Poisson { mean_interval_s: 60.0 };
        let intervals: Vec<f64> = (0..200).map(|k| model.next_interval_s(3, k)).collect();
        let mean = intervals.iter().sum::<f64>() / intervals.len() as f64;
        assert!((30.0..=90.0).contains(&mean), "mean {mean}");
        // Exponential spread: both short and long intervals occur.
        assert!(intervals.iter().any(|&i| i < 20.0));
        assert!(intervals.iter().any(|&i| i > 100.0));
        assert!(intervals.iter().all(|&i| i > 0.0));
    }

    #[test]
    fn bursty_traffic_alternates_gaps() {
        let model = TrafficModel::Bursty { burst: 3, intra_gap_s: 6.0, period_s: 120.0 };
        let pattern: Vec<f64> = (0..6).map(|k| model.next_interval_s(0, k)).collect();
        assert_eq!(pattern, vec![6.0, 6.0, 120.0, 6.0, 6.0, 120.0]);
    }

    #[test]
    fn traffic_models_drive_scenarios() {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
        let mut s =
            Scenario::new(phy, medium, Position::new(0.0, 0.0, 10.0), Box::new(HonestChannel));
        s.add_device_with_traffic(
            1,
            Position::new(100.0, 0.0, 1.5),
            TrafficModel::Poisson { mean_interval_s: 60.0 },
            1,
        );
        s.add_device_with_traffic(
            2,
            Position::new(140.0, 0.0, 1.5),
            TrafficModel::Bursty { burst: 4, intra_gap_s: 8.0, period_s: 300.0 },
            2,
        );
        s.run(1800.0, |_| {});
        let st = s.stats();
        assert!(st.transmitted > 10, "{st:?}");
    }

    /// A bare-bones frame-delay stand-in: every uplink is delivered
    /// honestly and additionally replayed τ seconds later at the same
    /// SNR, fleet-wide.
    struct TestReplayChannel {
        tau_s: f64,
    }
    impl Interceptor for TestReplayChannel {
        fn intercept(
            &mut self,
            frame: &AirFrame,
            medium: &RadioMedium,
            gateway_position: &Position,
        ) -> Vec<crate::network::Delivery> {
            let mut out = HonestChannel.intercept(frame, medium, gateway_position);
            let mut replay = out[0].clone();
            replay.arrival_global_s += self.tau_s;
            replay.is_replay = true;
            out.push(replay);
            out
        }
    }
    #[test]
    fn replays_are_delivered_as_their_own_groups() {
        // Sparse traffic: one device, no contention. Replays must reach
        // the sink τ late as separate groups and be counted separately.
        let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
        let mut s = Scenario::new(
            phy,
            medium,
            Position::new(0.0, 0.0, 10.0),
            Box::new(TestReplayChannel { tau_s: 30.0 }),
        );
        s.add_device(1, Position::new(100.0, 20.0, 1.5), 120.0, 0);
        let mut originals = Vec::new();
        let mut replays = Vec::new();
        s.run(1200.0, |u| {
            assert_eq!(u.copies.len(), 1);
            if u.copies[0].delivery.is_replay {
                replays.push(u.tx_start_global_s);
            } else {
                originals.push(u.tx_start_global_s);
            }
        });
        assert!(!originals.is_empty());
        assert!(!replays.is_empty(), "replay groups reach the sink");
        // Each replay transmission starts ~τ after some original.
        for r in &replays {
            assert!(
                originals.iter().any(|o| (r - o - 30.0).abs() < 0.1),
                "replay at {r} has no original 30 s earlier"
            );
        }
        let st = s.stats().clone();
        assert_eq!(st.replay_transmissions as usize, replays.len());
        assert_eq!(st.replay_delivered as usize, replays.len());
        assert_eq!(st.replay_collided, 0, "no contention in a sparse net");
        assert_eq!(st.delivered as usize, originals.len(), "originals counted separately");
    }

    #[test]
    fn replay_transmissions_contend_for_the_channel() {
        // Dense traffic: 40 devices at 5 s periods keep the channel busy,
        // and every uplink is replayed τ = 7 s later — replays land in
        // other devices' transmission windows, so the in-flight overlap
        // check must kill some of them (they no longer bypass it).
        let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
        let mut s = Scenario::new(
            phy,
            medium,
            Position::new(0.0, 0.0, 10.0),
            Box::new(TestReplayChannel { tau_s: 7.0 }),
        );
        for k in 0..40 {
            s.add_device(
                0x2601_2000 + k as u32,
                Position::new(100.0 + 40.0 * k as f64, 20.0, 1.5),
                5.0,
                k as u64,
            );
        }
        s.run(600.0, |_| {});
        let st = s.stats().clone();
        assert!(st.replay_transmissions > 50, "{st:?}");
        assert!(st.replay_collided > 0, "replays must suffer collisions: {st:?}");
        assert_eq!(
            st.replay_delivered + st.replay_collided,
            st.replay_transmissions,
            "single gateway: every replay copy is delivered or collided"
        );
        // Replays also occupy the air: device uplinks collide against
        // them, so the original collision count exceeds a replay-free run.
        let mut honest = Scenario::new(
            PhyConfig::uplink(SpreadingFactor::Sf7),
            RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 })),
            Position::new(0.0, 0.0, 10.0),
            Box::new(HonestChannel),
        );
        for k in 0..40 {
            honest.add_device(
                0x2601_2000 + k as u32,
                Position::new(100.0 + 40.0 * k as f64, 20.0, 1.5),
                5.0,
                k as u64,
            );
        }
        honest.run(600.0, |_| {});
        assert!(
            st.collided > honest.stats().collided,
            "replay emissions add contention: {} vs {}",
            st.collided,
            honest.stats().collided
        );
    }

    #[test]
    fn site_characteristics_reach_scenario_deliveries() {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
        let make = |gain_dbi: f64| {
            let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
            let site = crate::medium::GatewaySite::at(Position::new(0.0, 0.0, 10.0))
                .with_antenna_gain_dbi(gain_dbi);
            let mut s = Scenario::new_fleet_sites(phy, medium, vec![site], Box::new(HonestChannel));
            s.add_device(1, Position::new(300.0, 0.0, 1.5), 120.0, 0);
            s
        };
        let snr_of = |s: &mut Scenario| {
            let mut snr = None;
            s.run(200.0, |u| snr = Some(u.copies[0].delivery.snr_db));
            snr.expect("one delivery in 200 s")
        };
        let baseline = snr_of(&mut make(0.0));
        let boosted = snr_of(&mut make(8.0));
        assert!((boosted - baseline - 8.0).abs() < 1e-9, "baseline {baseline} boosted {boosted}");
    }

    #[test]
    fn maintenance_ticks_fire_periodically() {
        let mut s = scenario(1, 60.0);
        s.enable_maintenance(100.0);
        s.run(1000.0, |_| {});
        assert_eq!(s.stats().maintenance_ticks, 10);
    }

    #[test]
    fn scheduled_interceptor_swap_takes_effect_mid_run() {
        // A "blackout" interceptor scheduled at t = 300 silences all
        // deliveries for the rest of the run, in a single `run` call.
        struct Blackout;
        impl Interceptor for Blackout {
            fn intercept(
                &mut self,
                _frame: &AirFrame,
                _medium: &RadioMedium,
                _gateway_position: &Position,
            ) -> Vec<crate::network::Delivery> {
                Vec::new()
            }
        }
        let mut s = scenario(1, 30.0);
        s.schedule_interceptor(300.0, Box::new(Blackout));
        let mut arrivals = Vec::new();
        s.run(900.0, |u| arrivals.push(u.tx_start_global_s));
        assert!(!arrivals.is_empty());
        assert!(arrivals.iter().all(|&t| t < 300.0), "{arrivals:?}");
        // Transmissions keep happening; only delivery is suppressed.
        assert!(s.stats().transmitted > arrivals.len() as u64);
    }
}
