//! Discrete-event multi-device network scenario.
//!
//! Drives a population of Class A devices through the event queue: periodic
//! sensing, ALOHA uplinks under the EU868 duty cycle, co-channel collisions
//! with the LoRa capture effect, and delivery through an
//! [`crate::network::Interceptor`]. This is the workload generator behind
//! the multi-device experiments and examples; single-link experiments can
//! keep using the interceptor directly.

use crate::clock::DriftingClock;
use crate::medium::{Position, RadioMedium};
use crate::network::{AirFrame, Delivery, Interceptor};
use crate::queue::EventQueue;
use softlora_lorawan::{ClassADevice, DeviceConfig};
use softlora_phy::channel::CAPTURE_THRESHOLD_DB;
use softlora_phy::oscillator::Oscillator;
use softlora_phy::PhyConfig;

/// One device slot in the scenario.
struct Node {
    device: ClassADevice,
    oscillator: Oscillator,
    clock: DriftingClock,
    position: Position,
    period_s: f64,
}

/// Scenario events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Device `idx` takes a sensor reading and tries to transmit.
    SenseAndSend { idx: usize, value: u16 },
}

/// Statistics gathered by a scenario run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioStats {
    /// Uplinks put on the air.
    pub transmitted: u64,
    /// Uplinks deferred by the duty cycle.
    pub duty_deferred: u64,
    /// Deliveries handed to the sink.
    pub delivered: u64,
    /// Deliveries lost to co-channel collisions (neither frame captured).
    pub collided: u64,
    /// Deliveries that survived a collision via the capture effect.
    pub captured: u64,
}

/// A multi-device network scenario on one channel/SF.
///
/// The interceptor is boxed so an attack can move in (or out) mid-run via
/// [`Scenario::set_interceptor`] without disturbing device state (frame
/// counters, duty cycles, clocks).
pub struct Scenario {
    phy: PhyConfig,
    medium: RadioMedium,
    gateway_position: Position,
    interceptor: Box<dyn Interceptor>,
    nodes: Vec<Node>,
    queue: EventQueue<Event>,
    stats: ScenarioStats,
    /// Frames currently in flight: (air frame, end time).
    in_flight: Vec<(AirFrame, f64)>,
}

impl Scenario {
    /// Creates a scenario over `medium` with the gateway at
    /// `gateway_position`, delivering through `interceptor`.
    pub fn new(
        phy: PhyConfig,
        medium: RadioMedium,
        gateway_position: Position,
        interceptor: Box<dyn Interceptor>,
    ) -> Self {
        Scenario {
            phy,
            medium,
            gateway_position,
            interceptor,
            nodes: Vec::new(),
            queue: EventQueue::new(),
            stats: ScenarioStats::default(),
            in_flight: Vec::new(),
        }
    }

    /// Swaps the delivery interceptor (e.g. the attack moving in) while
    /// keeping all device and schedule state.
    pub fn set_interceptor(&mut self, interceptor: Box<dyn Interceptor>) {
        self.interceptor = interceptor;
    }

    /// Adds a device at `position` reporting every `period_s` seconds,
    /// with a sampled crystal and oscillator. Returns its device address.
    pub fn add_device(
        &mut self,
        dev_addr: u32,
        position: Position,
        period_s: f64,
        seed: u64,
    ) -> u32 {
        let cfg = DeviceConfig::new(dev_addr, self.phy);
        let node = Node {
            device: ClassADevice::new(cfg),
            oscillator: Oscillator::sample_end_device(self.phy.channel.center_hz, seed),
            clock: DriftingClock::sample_device_crystal(seed),
            position,
            period_s,
        };
        let idx = self.nodes.len();
        self.nodes.push(node);
        // Stagger the first reading pseudo-randomly to avoid phase lock.
        let first = 1.0 + (seed % 97) as f64 * period_s / 97.0;
        self.queue.schedule(first, Event::SenseAndSend { idx, value: 0 });
        dev_addr
    }

    /// Device keys for provisioning a gateway (by index).
    pub fn device_config(&self, idx: usize) -> &DeviceConfig {
        self.nodes[idx].device.config()
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.nodes.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ScenarioStats {
        &self.stats
    }

    /// Runs the scenario until `until_s`, calling `sink` for every delivery
    /// that survives the collision model.
    pub fn run<F: FnMut(&Delivery)>(&mut self, until_s: f64, mut sink: F) {
        while let Some(t) = self.queue.peek_time() {
            if t > until_s {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked");
            match event {
                Event::SenseAndSend { idx, value } => {
                    self.handle_sense_and_send(now, idx, value, &mut sink);
                }
            }
        }
    }

    fn handle_sense_and_send<F: FnMut(&Delivery)>(
        &mut self,
        now: f64,
        idx: usize,
        value: u16,
        sink: &mut F,
    ) {
        // Schedule the next cycle first, with deterministic per-cycle
        // jitter (±10 % of the period): real sensing loops are not phase-
        // locked, and the jitter is what makes ALOHA collisions possible.
        let period = self.nodes[idx].period_s;
        let h = (idx as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(value as u64)
            .wrapping_mul(0xBF58476D1CE4E5B9);
        let jitter = ((h >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.2 * period;
        self.queue.schedule(
            now + period + jitter,
            Event::SenseAndSend { idx, value: value.wrapping_add(1) },
        );

        // Sense on the device's local clock, then attempt an uplink.
        let local_now = self.nodes[idx].clock.read(now);
        {
            let node = &mut self.nodes[idx];
            if node.device.buffer_full() {
                // Drop the oldest implicitly by skipping — a real app would
                // rotate; the stats show the pressure via duty_deferred.
            } else {
                let _ = node.device.sense(value, local_now);
            }
        }
        let tx = {
            let node = &mut self.nodes[idx];
            match node.device.try_transmit(local_now) {
                Ok(tx) => tx,
                Err(_) => {
                    self.stats.duty_deferred += 1;
                    return;
                }
            }
        };
        self.stats.transmitted += 1;

        let node = &mut self.nodes[idx];
        let frame = AirFrame {
            dev_addr: node.device.dev_addr(),
            bytes: tx.bytes,
            tx_start_global_s: now,
            airtime_s: tx.airtime_s,
            tx_power_dbm: 14.0,
            tx_position: node.position,
            tx_bias_hz: node.oscillator.frame_bias_hz(),
            tx_phase: 0.3,
            sf: self.phy.sf,
        };

        // Collision bookkeeping: prune ended flights, then check overlap.
        self.in_flight.retain(|(_, end)| *end > now);
        let gw = self.gateway_position;
        let rx_power =
            |f: &AirFrame| self.medium.link(&f.tx_position, &gw, f.tx_power_dbm).rx_power_dbm();
        let new_power = rx_power(&frame);
        let mut survives = true;
        for (other, _) in &self.in_flight {
            let other_power = rx_power(other);
            if new_power < other_power + CAPTURE_THRESHOLD_DB {
                // The new frame does not capture over the ongoing one.
                survives = false;
            }
        }
        let had_overlap = !self.in_flight.is_empty();
        self.in_flight.push((frame.clone(), now + frame.airtime_s));

        if !survives {
            self.stats.collided += 1;
            return;
        }
        if had_overlap {
            self.stats.captured += 1;
        }
        for delivery in self.interceptor.intercept(&frame, &self.medium, &gw) {
            self.stats.delivered += 1;
            sink(&delivery);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::FreeSpace;
    use crate::network::HonestChannel;
    use softlora_phy::SpreadingFactor;

    fn scenario(n_devices: usize, period_s: f64) -> Scenario {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
        let mut s =
            Scenario::new(phy, medium, Position::new(0.0, 0.0, 10.0), Box::new(HonestChannel));
        for k in 0..n_devices {
            s.add_device(
                0x2601_2000 + k as u32,
                Position::new(100.0 + 40.0 * k as f64, 20.0, 1.5),
                period_s,
                k as u64,
            );
        }
        s
    }

    #[test]
    fn single_device_periodic_reporting() {
        let mut s = scenario(1, 120.0);
        let mut deliveries = 0;
        s.run(3600.0, |_| deliveries += 1);
        // ~30 cycles in an hour at 120 s period.
        assert!((25..=31).contains(&deliveries), "deliveries {deliveries}");
        assert_eq!(s.stats().transmitted as usize, deliveries);
        assert_eq!(s.stats().collided, 0);
    }

    #[test]
    fn duty_cycle_defers_aggressive_periods() {
        // SF7 ~46 ms airtime -> silence ~4.6 s at 1 %; a 2 s period must be
        // deferred roughly every other attempt.
        let mut s = scenario(1, 2.0);
        s.run(600.0, |_| {});
        assert!(s.stats().duty_deferred > 100, "{:?}", s.stats());
        assert!(s.stats().transmitted > 60, "{:?}", s.stats());
    }

    #[test]
    fn dense_network_collides() {
        // 60 devices at 5 s periods on one SF: ~46 ms frames with jittered
        // phases make overlaps statistically certain.
        let mut s = scenario(60, 5.0);
        s.run(600.0, |_| {});
        let st = s.stats().clone();
        assert!(st.collided + st.captured > 0, "no overlaps at all: {st:?}");
        assert!(st.delivered > 0);
        // Conservation: every transmission is delivered or collided.
        assert_eq!(st.transmitted, st.delivered + st.collided);
    }

    #[test]
    fn deliveries_carry_device_identity_and_bias() {
        let mut s = scenario(2, 60.0);
        let mut seen = std::collections::HashSet::new();
        let mut biases = Vec::new();
        s.run(240.0, |d| {
            seen.insert(d.dev_addr);
            biases.push(d.carrier_bias_hz);
        });
        assert_eq!(seen.len(), 2);
        for b in biases {
            assert!((-26_000.0..=-16_000.0).contains(&b), "bias {b}");
        }
    }

    #[test]
    fn stats_are_deterministic() {
        let run = || {
            let mut s = scenario(5, 30.0);
            s.run(900.0, |_| {});
            s.stats().clone()
        };
        assert_eq!(run(), run());
    }
}
