//! Radio medium: positions, path-loss evaluation and link budgets.
//!
//! The medium ties node geometry to the channel models of
//! [`softlora_phy::channel`]: given two positions and a path-loss model it
//! produces the [`softlora_phy::channel::LinkBudget`] and propagation delay
//! that the behavioural gateway model and the attack interceptor consume.

use softlora_phy::channel::{
    free_space_path_loss_db, noise_floor_dbm, propagation_delay_s, LinkBudget, LogDistance,
};

/// A 3-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// X coordinate (metres).
    pub x: f64,
    /// Y coordinate (metres).
    pub y: f64,
    /// Z coordinate / height (metres).
    pub z: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Position { x, y, z }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance_m(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// One gateway site of a fleet: its position plus the receiver-side
/// characteristics that differ between real installations — the antenna
/// gain of the site's hardware and, optionally, a site-specific noise
/// floor (urban sites sit on noisier spectrum than rural ones).
///
/// Both parameters act on the receiver, so they shift the SNR of **every**
/// arriving signal at that site identically: [`GatewaySite::snr_offset_db`]
/// is the per-site correction that fleet delivery paths add on top of the
/// medium's baseline link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewaySite {
    /// Antenna/mast position.
    pub position: Position,
    /// Receive antenna gain, dBi (0 = the reference dipole the medium's
    /// link budget assumes).
    pub antenna_gain_dbi: f64,
    /// Site-specific noise floor, dBm; `None` uses the medium's default.
    pub noise_floor_dbm: Option<f64>,
}

impl GatewaySite {
    /// A reference site at `position`: no extra gain, default noise floor.
    pub fn at(position: Position) -> Self {
        GatewaySite { position, antenna_gain_dbi: 0.0, noise_floor_dbm: None }
    }

    /// Sets the receive antenna gain, dBi.
    pub fn with_antenna_gain_dbi(mut self, gain_dbi: f64) -> Self {
        self.antenna_gain_dbi = gain_dbi;
        self
    }

    /// Sets a site-specific noise floor, dBm.
    pub fn with_noise_floor_dbm(mut self, floor_dbm: f64) -> Self {
        self.noise_floor_dbm = Some(floor_dbm);
        self
    }

    /// The site's effective noise floor given the medium's default, dBm.
    pub fn noise_floor_dbm(&self, default_floor_dbm: f64) -> f64 {
        self.noise_floor_dbm.unwrap_or(default_floor_dbm)
    }

    /// SNR shift this site applies relative to a reference site
    /// (`gain − Δfloor`), dB: gain raises the received power, a hotter
    /// noise floor eats into it.
    pub fn snr_offset_db(&self, default_floor_dbm: f64) -> f64 {
        self.antenna_gain_dbi + (default_floor_dbm - self.noise_floor_dbm(default_floor_dbm))
    }
}

/// A path-loss model over positions.
///
/// Implementations add environment-specific structure (walls, floors) on
/// top of distance-based laws. The trait is object-safe so deployments can
/// be swapped at run time.
pub trait PathLoss {
    /// Total path loss in dB between two positions.
    fn path_loss_db(&self, a: &Position, b: &Position) -> f64;
}

/// Free-space propagation at a fixed frequency.
#[derive(Debug, Clone, Copy)]
pub struct FreeSpace {
    /// Carrier frequency in Hz.
    pub freq_hz: f64,
}

impl PathLoss for FreeSpace {
    fn path_loss_db(&self, a: &Position, b: &Position) -> f64 {
        free_space_path_loss_db(a.distance_m(b), self.freq_hz)
    }
}

/// Log-distance propagation (environment captured by the exponent).
#[derive(Debug, Clone, Copy)]
pub struct LogDistanceModel {
    /// Underlying log-distance parameters.
    pub params: LogDistance,
}

impl PathLoss for LogDistanceModel {
    fn path_loss_db(&self, a: &Position, b: &Position) -> f64 {
        self.params.path_loss_db(a.distance_m(b))
    }
}

/// The radio medium: a path-loss model plus receiver noise parameters.
pub struct RadioMedium {
    model: Box<dyn PathLoss + Send + Sync>,
    noise_floor_dbm: f64,
}

impl std::fmt::Debug for RadioMedium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadioMedium")
            .field("noise_floor_dbm", &self.noise_floor_dbm)
            .finish_non_exhaustive()
    }
}

impl RadioMedium {
    /// Creates a medium over `model` with a 125 kHz / 6 dB-NF receiver
    /// noise floor (the paper's channel).
    pub fn new(model: Box<dyn PathLoss + Send + Sync>) -> Self {
        RadioMedium { model, noise_floor_dbm: noise_floor_dbm(125e3, 6.0) }
    }

    /// Overrides the receiver noise floor.
    pub fn with_noise_floor_dbm(mut self, floor: f64) -> Self {
        self.noise_floor_dbm = floor;
        self
    }

    /// The receiver noise floor in dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        self.noise_floor_dbm
    }

    /// Path loss between two positions in dB.
    pub fn path_loss_db(&self, a: &Position, b: &Position) -> f64 {
        self.model.path_loss_db(a, b)
    }

    /// Link budget for a transmission of `tx_power_dbm` from `a` to `b`.
    pub fn link(&self, a: &Position, b: &Position, tx_power_dbm: f64) -> LinkBudget {
        LinkBudget {
            tx_power_dbm,
            path_loss_db: self.path_loss_db(a, b),
            noise_floor_dbm: self.noise_floor_dbm,
        }
    }

    /// One-way propagation delay between two positions, seconds.
    pub fn delay_s(&self, a: &Position, b: &Position) -> f64 {
        propagation_delay_s(a.distance_m(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::SpreadingFactor;

    #[test]
    fn distance_computation() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 0.0);
        assert!((a.distance_m(&b) - 5.0).abs() < 1e-12);
        let c = Position::new(1.0, 2.0, 2.0);
        assert!((a.distance_m(&c) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn free_space_medium_link() {
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(1000.0, 0.0, 0.0);
        let link = medium.link(&a, &b, 14.0);
        // FSPL at 1 km / 868 MHz ≈ 91.2 dB -> SNR ≈ 14 − 91.2 + 117 ≈ 40 dB.
        assert!((link.snr_db() - 39.8).abs() < 1.0, "snr {}", link.snr_db());
        assert!(link.decodable(SpreadingFactor::Sf7));
    }

    #[test]
    fn log_distance_weaker_than_free_space() {
        let fs = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let ld = RadioMedium::new(Box::new(LogDistanceModel { params: LogDistance::indoor_868() }));
        let a = Position::default();
        let b = Position::new(100.0, 0.0, 0.0);
        assert!(ld.path_loss_db(&a, &b) > fs.path_loss_db(&a, &b));
    }

    #[test]
    fn delay_matches_campus_figure() {
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 }));
        let a = Position::default();
        let b = Position::new(1070.0, 0.0, 0.0);
        assert!((medium.delay_s(&a, &b) - 3.57e-6).abs() < 0.02e-6);
    }

    #[test]
    fn gateway_site_offsets() {
        let default_floor = -117.0;
        let plain = GatewaySite::at(Position::default());
        assert_eq!(plain.snr_offset_db(default_floor), 0.0);
        assert_eq!(plain.noise_floor_dbm(default_floor), default_floor);

        let high_gain = GatewaySite::at(Position::default()).with_antenna_gain_dbi(6.0);
        assert_eq!(high_gain.snr_offset_db(default_floor), 6.0);

        // A site 4 dB noisier than the default loses 4 dB of SNR; gain
        // claws some back.
        let urban = GatewaySite::at(Position::default())
            .with_antenna_gain_dbi(3.0)
            .with_noise_floor_dbm(-113.0);
        assert_eq!(urban.noise_floor_dbm(default_floor), -113.0);
        assert!((urban.snr_offset_db(default_floor) - (3.0 - 4.0)).abs() < 1e-12);
    }

    #[test]
    fn custom_noise_floor() {
        let medium =
            RadioMedium::new(Box::new(FreeSpace { freq_hz: 868e6 })).with_noise_floor_dbm(-100.0);
        assert_eq!(medium.noise_floor_dbm(), -100.0);
        let a = Position::default();
        let link = medium.link(&a, &Position::new(10.0, 0.0, 0.0), 0.0);
        assert_eq!(link.noise_floor_dbm, -100.0);
    }
}
