//! Drifting-clock models (paper §3.2).
//!
//! A crystal-driven device clock advances at `1 + ε` times real time, with
//! `ε` of 30–50 ppm for the microcontroller crystals the paper cites \[10\].
//! The paper's arithmetic: at 40 ppm, a device needs 14 synchronisation
//! sessions per hour to hold a sub-10 ms error, while the
//! synchronization-free scheme only requires the *buffer time* between
//! sensing and transmission to stay within 4.1 minutes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A clock with constant frequency error and optional white phase jitter.
///
/// # Example
///
/// ```
/// use softlora_sim::DriftingClock;
/// let clock = DriftingClock::new(40.0, 0.0); // 40 ppm fast, zero offset
/// // After 1000 s of real time, the local clock has gained 40 ms.
/// let local = clock.local_from_global(1000.0);
/// assert!((local - 1000.04).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct DriftingClock {
    /// Frequency error in parts-per-million (positive = runs fast).
    drift_ppm: f64,
    /// Initial offset of the local clock at global time zero, seconds.
    offset_s: f64,
    /// Per-read white jitter standard deviation, seconds.
    jitter_s: f64,
    rng: StdRng,
}

impl DriftingClock {
    /// Creates a deterministic clock (no jitter).
    pub fn new(drift_ppm: f64, offset_s: f64) -> Self {
        DriftingClock { drift_ppm, offset_s, jitter_s: 0.0, rng: StdRng::seed_from_u64(0) }
    }

    /// Adds per-read Gaussian jitter with standard deviation `jitter_s`.
    pub fn with_jitter(mut self, jitter_s: f64, seed: u64) -> Self {
        self.jitter_s = jitter_s;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// A GPS-disciplined gateway clock: sub-ppm drift, microsecond jitter.
    pub fn gps_disciplined(seed: u64) -> Self {
        DriftingClock {
            drift_ppm: 0.001,
            offset_s: 0.0,
            jitter_s: 1e-7,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a typical device crystal: 30–50 ppm drift of random sign and a
    /// random initial offset within ±1 s (the device was never
    /// synchronised).
    pub fn sample_device_crystal(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let magnitude = 30.0 + 20.0 * rng.random::<f64>();
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        let offset = 2.0 * rng.random::<f64>() - 1.0;
        DriftingClock { drift_ppm: magnitude * sign, offset_s: offset, jitter_s: 2e-6, rng }
    }

    /// The clock's frequency error in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// Deterministic local reading at global time `t` (no jitter).
    pub fn local_from_global(&self, global_s: f64) -> f64 {
        global_s * (1.0 + self.drift_ppm * 1e-6) + self.offset_s
    }

    /// Local reading at global time `t`, with jitter if configured.
    pub fn read(&mut self, global_s: f64) -> f64 {
        let jitter = if self.jitter_s > 0.0 { self.jitter_s * self.gaussian() } else { 0.0 };
        self.local_from_global(global_s) + jitter
    }

    /// Inverts the deterministic mapping: the global time at which the
    /// local clock shows `local_s`.
    pub fn global_from_local(&self, local_s: f64) -> f64 {
        (local_s - self.offset_s) / (1.0 + self.drift_ppm * 1e-6)
    }

    /// Clock error accumulated over an *interval* of `dt` seconds:
    /// `dt · drift` (independent of the absolute offset). This is the error
    /// an elapsed-time measurement inherits.
    pub fn interval_error_s(&self, dt_s: f64) -> f64 {
        dt_s * self.drift_ppm * 1e-6
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Number of synchronisation sessions per hour needed to keep a clock of
/// `drift_ppm` within `max_error_s` (paper §3.2's "14 sessions per hour for
/// sub-10 ms at 40 ppm").
pub fn sync_sessions_per_hour(drift_ppm: f64, max_error_s: f64) -> f64 {
    if max_error_s <= 0.0 {
        return f64::INFINITY;
    }
    let seconds_to_drift = max_error_s / (drift_ppm.abs() * 1e-6);
    3600.0 / seconds_to_drift
}

/// Maximum buffer time before an elapsed-time reading of a `drift_ppm`
/// clock exceeds `max_error_s` (paper §3.2's "4.1 minutes for 10 ms at
/// 40 ppm").
pub fn max_buffer_time_s(drift_ppm: f64, max_error_s: f64) -> f64 {
    max_error_s / (drift_ppm.abs() * 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_accumulates_linearly() {
        let c = DriftingClock::new(-40.0, 0.5);
        assert!((c.local_from_global(0.0) - 0.5).abs() < 1e-12);
        // 40 ppm slow: loses 144 ms over an hour.
        let err = c.local_from_global(3600.0) - (3600.0 + 0.5);
        assert!((err + 0.144).abs() < 1e-9, "err {err}");
    }

    #[test]
    fn global_local_round_trip() {
        let c = DriftingClock::new(37.5, -0.25);
        for t in [0.0, 1.0, 1234.5, 86400.0] {
            let back = c.global_from_local(c.local_from_global(t));
            assert!((back - t).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_sync_sessions_number() {
        // Paper: "an end device will need 14 synchronization sessions per
        // hour to ensure a sub-10 ms clock error" at 40 ppm.
        let sessions = sync_sessions_per_hour(40.0, 0.010);
        assert!((sessions - 14.4).abs() < 0.1, "{sessions}");
    }

    #[test]
    fn paper_buffer_time_number() {
        // Paper: "to enforce an upper bound of 10 ms clock drift under a
        // drift rate of 40 ppm, the buffer time needs to be within 4.1
        // minutes".
        let buf = max_buffer_time_s(40.0, 0.010);
        assert!((buf / 60.0 - 4.17).abs() < 0.1, "{buf}");
    }

    #[test]
    fn interval_error_matches_drift() {
        let c = DriftingClock::new(40.0, 100.0);
        // 100 s interval at 40 ppm -> 4 ms.
        assert!((c.interval_error_s(100.0) - 0.004).abs() < 1e-12);
    }

    #[test]
    fn gps_clock_is_tight() {
        let mut c = DriftingClock::gps_disciplined(1);
        let err = (c.read(10_000.0) - 10_000.0).abs();
        assert!(err < 1e-4, "gps clock err {err}");
    }

    #[test]
    fn sampled_crystals_in_paper_range() {
        for seed in 0..32 {
            let c = DriftingClock::sample_device_crystal(seed);
            let d = c.drift_ppm().abs();
            assert!((30.0..=50.0).contains(&d), "seed {seed}: {d} ppm");
        }
    }

    #[test]
    fn sampled_crystals_have_both_signs() {
        let signs: Vec<bool> =
            (0..32).map(|s| DriftingClock::sample_device_crystal(s).drift_ppm() > 0.0).collect();
        assert!(signs.iter().any(|&s| s));
        assert!(signs.iter().any(|&s| !s));
    }

    #[test]
    fn jitter_is_applied_but_small() {
        let mut c = DriftingClock::new(0.0, 0.0).with_jitter(1e-6, 7);
        let reads: Vec<f64> = (0..200).map(|_| c.read(100.0)).collect();
        let spread = reads.iter().cloned().fold(f64::MIN, f64::max)
            - reads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.0 && spread < 1e-5, "spread {spread}");
    }

    #[test]
    fn degenerate_session_count() {
        assert!(sync_sessions_per_hour(40.0, 0.0).is_infinite());
    }
}
