//! Streaming sources: scenario traffic as flowgraph blocks.
//!
//! Each source implements [`softlora_runtime::Block`] with
//! `Out = Arc<UplinkDeliveries>` and broadcasts every uplink group to all
//! of its output rings (one per downstream gateway block), so a whole
//! fleet's front ends tap the same stream without deep-copying frame
//! bytes:
//!
//! * [`FrameSource`] — replays a pre-collected group sequence (what an
//!   equivalence test or captured trace feeds);
//! * [`ScenarioSource`] — drives a live [`Scenario`] incrementally,
//!   converting the discrete-event engine's sink callbacks into stream
//!   items with backpressure;
//! * [`SyntheticFrameSource`] — a high-rate generator cycling template
//!   groups with fresh uplink ids, for stress-testing a flowgraph well
//!   past any plausible air-interface rate.

use crate::network::UplinkDeliveries;
use crate::scenario::Scenario;
use softlora_runtime::{Block, WorkIo, WorkResult};
use std::collections::VecDeque;
use std::sync::Arc;

/// Groups a source hands to the runtime per `work` call before yielding.
const SOURCE_BATCH: usize = 64;

/// Drains a pending queue into every output ring; the common tail of all
/// three sources. Returns the `WorkResult` to report if the queue did not
/// empty (backpressure), or `None` when it drained.
fn flush(
    pending: &mut VecDeque<Arc<UplinkDeliveries>>,
    io: &mut WorkIo<'_, (), Arc<UplinkDeliveries>>,
    produced: &mut usize,
) -> Option<WorkResult> {
    while *produced < SOURCE_BATCH {
        if pending.is_empty() {
            return None;
        }
        if io.min_output_free() == 0 {
            return Some(if *produced > 0 {
                WorkResult::Produced(*produced)
            } else {
                WorkResult::NeedsOutput
            });
        }
        let group = pending.pop_front().expect("checked non-empty");
        io.broadcast(group);
        *produced += 1;
    }
    Some(WorkResult::Produced(*produced))
}

/// Streams a pre-collected sequence of uplink groups.
pub struct FrameSource {
    pending: VecDeque<Arc<UplinkDeliveries>>,
}

impl FrameSource {
    /// A source that emits `groups` in order, then finishes.
    pub fn from_groups(groups: Vec<UplinkDeliveries>) -> Self {
        FrameSource { pending: groups.into_iter().map(Arc::new).collect() }
    }

    /// Groups not yet emitted.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

impl Block for FrameSource {
    type In = ();
    type Out = Arc<UplinkDeliveries>;

    fn name(&self) -> &str {
        "frame-source"
    }

    fn work(&mut self, io: &mut WorkIo<'_, (), Arc<UplinkDeliveries>>) -> WorkResult {
        let mut produced = 0;
        flush(&mut self.pending, io, &mut produced).unwrap_or(WorkResult::Finished)
    }
}

/// Streams a live [`Scenario`]: each `work` call advances simulated time
/// in `step_s` increments until a batch of uplink groups has surfaced
/// (or the ring backpressures), so the discrete-event engine and the
/// gateway blocks overlap in wall-clock time instead of running as
/// separate phases. With sparse traffic one call may advance several
/// steps; `step_s` bounds the granularity of backpressure, not the
/// simulated time per call.
pub struct ScenarioSource {
    scenario: Scenario,
    until_s: f64,
    step_s: f64,
    now_s: f64,
    pending: VecDeque<Arc<UplinkDeliveries>>,
}

impl ScenarioSource {
    /// Streams `scenario` from time zero to `until_s`, advancing the
    /// event queue `step_s` simulated seconds per `work` call.
    ///
    /// # Panics
    ///
    /// Panics unless `step_s` is positive.
    pub fn new(scenario: Scenario, until_s: f64, step_s: f64) -> Self {
        assert!(step_s > 0.0, "scenario step must be positive");
        ScenarioSource { scenario, until_s, step_s, now_s: 0.0, pending: VecDeque::new() }
    }

    /// The wrapped scenario (e.g. to read [`Scenario::stats`] mid-run).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }
}

impl Block for ScenarioSource {
    type In = ();
    type Out = Arc<UplinkDeliveries>;

    fn name(&self) -> &str {
        "scenario-source"
    }

    fn work(&mut self, io: &mut WorkIo<'_, (), Arc<UplinkDeliveries>>) -> WorkResult {
        let mut produced = 0;
        loop {
            if let Some(result) = flush(&mut self.pending, io, &mut produced) {
                return result;
            }
            if self.now_s >= self.until_s {
                return WorkResult::Finished;
            }
            self.now_s = (self.now_s + self.step_s).min(self.until_s);
            let pending = &mut self.pending;
            self.scenario.run(self.now_s, |u| pending.push_back(Arc::new(u.clone())));
        }
    }
}

/// A synthetic high-rate source: cycles a template group sequence with
/// fresh uplink ids until `total` groups have been emitted. The template
/// is typically one scenario-generated burst; cycling it stresses the
/// flowgraph's rings and scheduler at rates far beyond the air interface
/// (repeated cycles carry repeated frame bytes, so downstream dedup
/// rejects them cheaply — the DSP front half still runs per copy, which
/// is the load that matters).
pub struct SyntheticFrameSource {
    template: Vec<Arc<UplinkDeliveries>>,
    total: u64,
    emitted: u64,
    pending: VecDeque<Arc<UplinkDeliveries>>,
}

impl SyntheticFrameSource {
    /// Cycles `template` until `total` groups have been emitted.
    ///
    /// # Panics
    ///
    /// Panics if `template` is empty.
    pub fn new(template: Vec<UplinkDeliveries>, total: u64) -> Self {
        assert!(!template.is_empty(), "synthetic source needs a template group");
        SyntheticFrameSource {
            template: template.into_iter().map(Arc::new).collect(),
            total,
            emitted: 0,
            pending: VecDeque::new(),
        }
    }
}

impl Block for SyntheticFrameSource {
    type In = ();
    type Out = Arc<UplinkDeliveries>;

    fn name(&self) -> &str {
        "synthetic-source"
    }

    fn work(&mut self, io: &mut WorkIo<'_, (), Arc<UplinkDeliveries>>) -> WorkResult {
        let mut produced = 0;
        loop {
            if let Some(result) = flush(&mut self.pending, io, &mut produced) {
                return result;
            }
            if self.emitted >= self.total {
                return WorkResult::Finished;
            }
            let refill = SOURCE_BATCH.min((self.total - self.emitted) as usize);
            for _ in 0..refill {
                let slot = (self.emitted as usize) % self.template.len();
                let mut group = (*self.template[slot]).clone();
                group.uplink = self.emitted;
                self.pending.push_back(Arc::new(group));
                self.emitted += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::{FreeSpace, Position, RadioMedium};
    use crate::network::HonestChannel;
    use softlora_phy::{PhyConfig, SpreadingFactor};
    use softlora_runtime::blocks::FnSink;
    use softlora_runtime::FlowgraphBuilder;
    use std::sync::Mutex;

    fn scenario(devices: usize) -> Scenario {
        let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
        let medium = RadioMedium::new(Box::new(FreeSpace { freq_hz: 869.75e6 }));
        let mut s =
            Scenario::new(phy, medium, Position::new(0.0, 0.0, 10.0), Box::new(HonestChannel));
        for k in 0..devices {
            s.add_device(
                0x2601_2000 + k as u32,
                Position::new(100.0 + 40.0 * k as f64, 20.0, 1.5),
                60.0,
                k as u64,
            );
        }
        s
    }

    fn collect_groups(devices: usize, until_s: f64) -> Vec<UplinkDeliveries> {
        let mut s = scenario(devices);
        let mut groups = Vec::new();
        s.run(until_s, |u| groups.push(u.clone()));
        groups
    }

    #[test]
    fn scenario_source_streams_the_same_groups_as_a_batch_run() {
        let expected = collect_groups(3, 900.0);
        assert!(!expected.is_empty());

        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut b = FlowgraphBuilder::new();
        let src = b.source(ScenarioSource::new(scenario(3), 900.0, 50.0));
        let sink_seen = Arc::clone(&seen);
        b.sink(
            &[src],
            FnSink::new("collect", move |g: Arc<UplinkDeliveries>| {
                sink_seen.lock().unwrap().push((*g).clone());
            }),
        );
        b.build().unwrap().run(2);

        let got = seen.lock().unwrap();
        assert_eq!(got.len(), expected.len());
        for (a, b) in got.iter().zip(expected.iter()) {
            assert_eq!(a.uplink, b.uplink);
            assert_eq!(a.dev_addr, b.dev_addr);
            assert_eq!(a.tx_start_global_s, b.tx_start_global_s);
            assert_eq!(a.copies.len(), b.copies.len());
            assert_eq!(a.copies[0].delivery.bytes, b.copies[0].delivery.bytes);
        }
    }

    #[test]
    fn frame_source_broadcasts_to_every_ring() {
        let groups = collect_groups(2, 400.0);
        let n = groups.len();
        assert!(n >= 4);
        let counts = Arc::new(Mutex::new((0usize, 0usize)));
        let mut b = FlowgraphBuilder::new();
        let src = b.source(FrameSource::from_groups(groups));
        let c1 = Arc::clone(&counts);
        let c2 = Arc::clone(&counts);
        // Two independent sinks tap the same source stream.
        b.sink(
            &[src],
            FnSink::new("left", move |_g: Arc<UplinkDeliveries>| c1.lock().unwrap().0 += 1),
        );
        b.sink(
            &[src],
            FnSink::new("right", move |_g: Arc<UplinkDeliveries>| c2.lock().unwrap().1 += 1),
        );
        let report = b.build().unwrap().run(2);
        assert_eq!(*counts.lock().unwrap(), (n, n));
        assert_eq!(report.block("frame-source").unwrap().items_out as usize, 2 * n);
    }

    #[test]
    fn synthetic_source_cycles_with_fresh_ids() {
        let template = collect_groups(1, 200.0);
        let ids = Arc::new(Mutex::new(Vec::new()));
        let mut b = FlowgraphBuilder::new();
        let src = b.source(SyntheticFrameSource::new(template, 1000));
        let sink_ids = Arc::clone(&ids);
        b.sink(
            &[src],
            FnSink::new("ids", move |g: Arc<UplinkDeliveries>| {
                sink_ids.lock().unwrap().push(g.uplink);
            }),
        );
        b.build().unwrap().run(1);
        let ids = ids.lock().unwrap();
        assert_eq!(ids.len(), 1000);
        assert_eq!(*ids, (0..1000).collect::<Vec<u64>>(), "fresh monotonic uplink ids");
    }
}
