//! Discrete-event network simulator for the SoftLoRa reproduction.
//!
//! Provides the substrate the paper's evaluation (§8) runs on:
//!
//! * [`clock`] — drifting device clocks (30–50 ppm crystals) and the
//!   gateway's GPS-disciplined clock, the asymmetry the whole
//!   synchronization-free scheme exploits;
//! * [`queue`] — a deterministic time-ordered event queue;
//! * [`medium`] — positions, path-loss models, link budgets and
//!   propagation delays between radios;
//! * [`deployment`] — the paper's two testbeds: the 190 m six-floor
//!   concrete building of Fig. 15 and the 1.07 km campus link of §8.2;
//! * [`network`] — the uplink pipeline gluing devices, the medium and the
//!   gateway together, with an [`network::Interceptor`] hook that the
//!   frame-delay attack (in `softlora-attack`) implements.

pub mod clock;
pub mod deployment;
pub mod medium;
pub mod network;
pub mod queue;
pub mod scenario;

pub use clock::DriftingClock;
pub use medium::{Position, RadioMedium};
pub use network::{AirFrame, Delivery, HonestChannel, Interceptor};
pub use scenario::{Scenario, ScenarioStats};
