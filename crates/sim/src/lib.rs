//! Discrete-event network simulator for the SoftLoRa reproduction.
//!
//! Provides the substrate the paper's evaluation (§8) runs on:
//!
//! * [`clock`] — drifting device clocks (30–50 ppm crystals) and the
//!   gateway's GPS-disciplined clock, the asymmetry the whole
//!   synchronization-free scheme exploits;
//! * [`queue`] — a deterministic time-ordered event queue;
//! * [`medium`] — positions, path-loss models, link budgets and
//!   propagation delays between radios;
//! * [`deployment`] — the paper's two testbeds (the 190 m six-floor
//!   concrete building of Fig. 15, the 1.07 km campus link of §8.2) plus
//!   parametric multi-gateway fleet topologies;
//! * [`network`] — the uplink pipeline gluing devices, the medium and the
//!   gateways together, with an [`network::Interceptor`] hook that the
//!   frame-delay attack (in `softlora-attack`) implements, fanning one
//!   air frame out into per-gateway deliveries;
//! * [`scenario`] — the discrete-event workload generator: pluggable
//!   traffic models, per-gateway collisions (replay re-transmissions
//!   contend for the channel too), scheduled attacker actions and grouped
//!   fleet deliveries for a network server to deduplicate;
//! * [`streaming`] — scenario traffic as `softlora-runtime` flowgraph
//!   sources, for the always-on streaming execution mode.

pub mod clock;
pub mod deployment;
pub mod medium;
pub mod network;
pub mod queue;
pub mod scenario;
pub mod streaming;

pub use clock::DriftingClock;
pub use deployment::FleetDeployment;
pub use medium::{GatewaySite, Position, RadioMedium};
pub use network::{
    AirFrame, Delivery, FleetDelivery, HonestChannel, Interceptor, UplinkDeliveries,
};
pub use scenario::{GatewayLinkStats, Scenario, ScenarioStats, TrafficModel};
pub use streaming::{FrameSource, ScenarioSource, SyntheticFrameSource};
