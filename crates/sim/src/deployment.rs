//! The paper's two evaluation deployments.
//!
//! * [`BuildingDeployment`] — the 190 m, six-floor concrete building of
//!   paper Fig. 15: three sections (A, B, C) separated by two junctions,
//!   eleven measurement columns per floor, a fixed transmitter in section A
//!   on the 3rd floor, and measured SNRs from −1 to 13 dB.
//! * [`CampusDeployment`] — the 1.07 km campus link of §8.2 between a roof
//!   top (site A) and an open staircase (site B), evaluated in heavy rain.
//!
//! The building's propagation is modelled as a calibrated linear loss in
//! horizontal distance, floor crossings and section junctions, plus a
//! deterministic per-position shadowing term; the calibration targets the
//! SNR *range and gradient* of the paper's heatmap (see EXPERIMENTS.md).

use crate::medium::{GatewaySite, PathLoss, Position, RadioMedium};
use softlora_phy::channel::{rain_margin_db, LogDistance};

/// Labels of the eleven measurement columns along the building (Fig. 15).
pub const BUILDING_COLUMNS: [&str; 11] =
    ["A1", "A2", "A3", "J", "B1", "B2", "B3", "J", "C1", "C2", "C3"];

/// Number of floors.
pub const BUILDING_FLOORS: usize = 6;

/// Horizontal spacing between measurement columns (190 m / 10 gaps).
pub const COLUMN_SPACING_M: f64 = 19.0;

/// Floor-to-floor height of the concrete building, metres.
pub const FLOOR_HEIGHT_M: f64 = 3.5;

/// The six-floor building testbed.
#[derive(Debug, Clone)]
pub struct BuildingDeployment {
    /// Calibrated propagation parameters.
    pub loss: BuildingPathLoss,
}

impl Default for BuildingDeployment {
    fn default() -> Self {
        Self::new()
    }
}

impl BuildingDeployment {
    /// Creates the deployment with the Fig. 15 calibration.
    pub fn new() -> Self {
        BuildingDeployment { loss: BuildingPathLoss::default() }
    }

    /// Position of measurement column `col` (0..11) on `floor` (1..=6).
    ///
    /// # Panics
    ///
    /// Panics if `col >= 11` or `floor` is outside `1..=6`.
    pub fn position(&self, col: usize, floor: usize) -> Position {
        assert!(col < BUILDING_COLUMNS.len(), "column {col} out of range");
        assert!((1..=BUILDING_FLOORS).contains(&floor), "floor {floor} out of range");
        Position::new(col as f64 * COLUMN_SPACING_M, 0.0, floor as f64 * FLOOR_HEIGHT_M)
    }

    /// The fixed transmitter: section A (column A1) on the 3rd floor
    /// (§8.1, the triangle in Fig. 15).
    pub fn fixed_node(&self) -> Position {
        self.position(0, 3)
    }

    /// Gateway site for the full attack experiment of §8.1.1: section C3 on
    /// the 6th floor.
    pub fn attack_gateway_site(&self) -> Position {
        self.position(10, 6)
    }

    /// Whether a measurement position is accessible (the C3 positions on
    /// the 1st and 2nd floors are not, per Fig. 15).
    pub fn accessible(&self, col: usize, floor: usize) -> bool {
        !(col == 10 && (floor == 1 || floor == 2))
    }

    /// A radio medium over this building's propagation.
    pub fn medium(&self) -> RadioMedium {
        RadioMedium::new(Box::new(self.loss))
    }
}

/// Calibrated building propagation: a base loss plus linear terms in
/// horizontal distance, floors crossed and junctions crossed, plus
/// deterministic per-link shadowing.
#[derive(Debug, Clone, Copy)]
pub struct BuildingPathLoss {
    /// Loss at zero separation, dB (sets the peak SNR ≈ 13 dB at 14 dBm).
    pub base_db: f64,
    /// dB per metre of horizontal separation.
    pub per_meter_db: f64,
    /// dB per floor crossed.
    pub per_floor_db: f64,
    /// dB per section junction crossed.
    pub per_junction_db: f64,
    /// Shadowing amplitude, dB (deterministic, position-hashed).
    pub shadowing_db: f64,
}

impl Default for BuildingPathLoss {
    fn default() -> Self {
        // Calibration targets (paper Fig. 15): SNR ≈ 13 dB adjacent to the
        // fixed node, decaying to ≈ −1 dB at the far corner (190 m away,
        // 3 floors up, 2 junctions), with 14 dBm TX and a −117 dBm floor.
        BuildingPathLoss {
            base_db: 117.0,
            per_meter_db: 0.037,
            per_floor_db: 1.5,
            per_junction_db: 1.5,
            shadowing_db: 1.2,
        }
    }
}

impl BuildingPathLoss {
    fn junctions_between(x1: f64, x2: f64) -> usize {
        // Junction columns sit at indices 3 and 7 (x = 57 m and 133 m).
        let (lo, hi) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
        [3.0 * COLUMN_SPACING_M, 7.0 * COLUMN_SPACING_M]
            .iter()
            .filter(|&&j| lo < j && hi > j)
            .count()
    }

    /// Deterministic zero-mean shadowing from the link endpoints.
    fn shadow(&self, a: &Position, b: &Position) -> f64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for v in [a.x, a.y, a.z, b.x, b.y, b.z] {
            // Quantise to decimetres so nearby queries are stable.
            let q = (v * 10.0).round() as i64 as u64;
            h ^= q;
            h = h.wrapping_mul(0x100000001b3);
        }
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (2.0 * unit - 1.0) * self.shadowing_db
    }
}

impl PathLoss for BuildingPathLoss {
    fn path_loss_db(&self, a: &Position, b: &Position) -> f64 {
        let dx = (a.x - b.x).abs();
        let dy = (a.y - b.y).abs();
        let horizontal = (dx * dx + dy * dy).sqrt();
        let floors = ((a.z - b.z).abs() / FLOOR_HEIGHT_M).round();
        let junctions = Self::junctions_between(a.x, b.x) as f64;
        self.base_db
            + self.per_meter_db * horizontal
            + self.per_floor_db * floors
            + self.per_junction_db * junctions
            + self.shadow(a, b)
    }
}

/// The 1.07 km campus link (§8.2).
#[derive(Debug, Clone)]
pub struct CampusDeployment {
    /// Distance between the sites, metres (1070 in the paper).
    pub distance_m: f64,
    /// Extra obstruction margin beyond log-distance loss, dB (partial
    /// blockage between the roof top and the staircase).
    pub obstruction_db: f64,
    /// Rain rate during the experiment, mm/h (the paper reports heavy
    /// rain).
    pub rain_rate_mm_h: f64,
}

impl Default for CampusDeployment {
    fn default() -> Self {
        CampusDeployment { distance_m: 1070.0, obstruction_db: 15.0, rain_rate_mm_h: 25.0 }
    }
}

impl CampusDeployment {
    /// Site A: the roof top of a building.
    pub fn site_a(&self) -> Position {
        Position::new(0.0, 0.0, 30.0)
    }

    /// Site B: the open staircase of another building, `distance_m` away.
    pub fn site_b(&self) -> Position {
        let dz: f64 = 30.0 - 10.0;
        let horizontal = (self.distance_m * self.distance_m - dz * dz).sqrt();
        Position::new(horizontal, 0.0, 10.0)
    }

    /// A radio medium over the campus propagation.
    pub fn medium(&self) -> RadioMedium {
        RadioMedium::new(Box::new(CampusPathLoss {
            params: LogDistance::campus_868(),
            extra_db: self.obstruction_db
                + rain_margin_db(self.distance_m / 1000.0, self.rain_rate_mm_h),
        }))
    }
}

/// Log-distance loss plus fixed obstruction/rain margin.
#[derive(Debug, Clone, Copy)]
struct CampusPathLoss {
    params: LogDistance,
    extra_db: f64,
}

impl PathLoss for CampusPathLoss {
    fn path_loss_db(&self, a: &Position, b: &Position) -> f64 {
        self.params.path_loss_db(a.distance_m(b)) + self.extra_db
    }
}

/// A parametric multi-gateway fleet deployment: gateways on a ring around
/// a service area, devices scattered deterministically inside it.
///
/// This is the topology generator behind the fleet experiments: real
/// LoRaWAN networks place several gateways so that every uplink is heard
/// by more than one of them, and the network server deduplicates the
/// copies. One gateway degenerates to the classic single-link setup (the
/// gateway sits at the area centre).
#[derive(Debug, Clone)]
pub struct FleetDeployment {
    /// Number of gateways (≥ 1).
    pub gateways: usize,
    /// Radius of the gateway ring, metres.
    pub gateway_ring_m: f64,
    /// Gateway mast height, metres.
    pub gateway_height_m: f64,
    /// Radius of the device area, metres.
    pub device_area_m: f64,
    /// Device antenna height, metres.
    pub device_height_m: f64,
    /// Per-site receive antenna gains, dBi, indexed by gateway; sites
    /// beyond the vector's length use 0 dBi. Real fleets mix hardware —
    /// a rooftop collinear at one site, a stock dipole at another.
    pub site_antenna_gains_dbi: Vec<f64>,
    /// Per-site noise floors, dBm, indexed by gateway; sites beyond the
    /// vector's length use the medium's default floor. Urban sites sit on
    /// noisier spectrum than rural ones.
    pub site_noise_floors_dbm: Vec<f64>,
}

impl Default for FleetDeployment {
    fn default() -> Self {
        FleetDeployment {
            gateways: 3,
            gateway_ring_m: 600.0,
            gateway_height_m: 15.0,
            device_area_m: 450.0,
            device_height_m: 1.5,
            site_antenna_gains_dbi: Vec::new(),
            site_noise_floors_dbm: Vec::new(),
        }
    }
}

impl FleetDeployment {
    /// A fleet with `gateways` gateways and the default geometry.
    pub fn with_gateways(gateways: usize) -> Self {
        FleetDeployment { gateways: gateways.max(1), ..Self::default() }
    }

    /// Sets per-site receive antenna gains (dBi, indexed by gateway).
    pub fn with_site_antenna_gains_dbi(mut self, gains_dbi: Vec<f64>) -> Self {
        self.site_antenna_gains_dbi = gains_dbi;
        self
    }

    /// Sets per-site noise floors (dBm, indexed by gateway).
    pub fn with_site_noise_floors_dbm(mut self, floors_dbm: Vec<f64>) -> Self {
        self.site_noise_floors_dbm = floors_dbm;
        self
    }

    /// Characterised gateway sites: ring positions combined with the
    /// per-site antenna gains and noise floors. Feed these to
    /// [`crate::Scenario::new_fleet_sites`] (or
    /// [`crate::Interceptor::intercept_fleet_sites`]) so the fleet's
    /// delivery SNRs reflect each installation.
    pub fn gateway_sites(&self) -> Vec<GatewaySite> {
        self.gateway_positions()
            .into_iter()
            .enumerate()
            .map(|(g, position)| {
                let mut site = GatewaySite::at(position);
                if let Some(&gain) = self.site_antenna_gains_dbi.get(g) {
                    site = site.with_antenna_gain_dbi(gain);
                }
                if let Some(&floor) = self.site_noise_floors_dbm.get(g) {
                    site = site.with_noise_floor_dbm(floor);
                }
                site
            })
            .collect()
    }

    /// Gateway positions: a single gateway sits at the centre; larger
    /// fleets spread evenly on the ring.
    pub fn gateway_positions(&self) -> Vec<Position> {
        if self.gateways == 1 {
            return vec![Position::new(0.0, 0.0, self.gateway_height_m)];
        }
        (0..self.gateways)
            .map(|k| {
                let angle = k as f64 * std::f64::consts::TAU / self.gateways as f64;
                Position::new(
                    self.gateway_ring_m * angle.cos(),
                    self.gateway_ring_m * angle.sin(),
                    self.gateway_height_m,
                )
            })
            .collect()
    }

    /// `n` device positions scattered deterministically (hash of
    /// `seed`/index) inside the device area.
    pub fn device_positions(&self, n: usize, seed: u64) -> Vec<Position> {
        (0..n)
            .map(|k| {
                let mut h = seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15);
                h ^= h >> 30;
                h = h.wrapping_mul(0xBF58476D1CE4E5B9);
                h ^= h >> 27;
                let radius_unit = ((h >> 11) & 0xFFFF) as f64 / 65536.0;
                let angle = ((h >> 27) & 0xFFFF) as f64 / 65536.0 * std::f64::consts::TAU;
                // sqrt for uniform density over the disc.
                let r = self.device_area_m * radius_unit.sqrt();
                Position::new(r * angle.cos(), r * angle.sin(), self.device_height_m)
            })
            .collect()
    }

    /// A radio medium over the fleet's (open, 869.75 MHz) propagation.
    pub fn medium(&self) -> RadioMedium {
        RadioMedium::new(Box::new(crate::medium::FreeSpace { freq_hz: 869.75e6 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::SpreadingFactor;

    #[test]
    fn building_snr_range_matches_fig15() {
        // Survey all accessible positions; SNR must span roughly −1..13 dB.
        let b = BuildingDeployment::new();
        let medium = b.medium();
        let tx = b.fixed_node();
        let mut min_snr = f64::MAX;
        let mut max_snr = f64::MIN;
        for col in 0..11 {
            for floor in 1..=6 {
                if !b.accessible(col, floor) || (col == 0 && floor == 3) {
                    continue;
                }
                let snr = medium.link(&tx, &b.position(col, floor), 14.0).snr_db();
                min_snr = min_snr.min(snr);
                max_snr = max_snr.max(snr);
            }
        }
        assert!((-2.5..=0.5).contains(&min_snr), "min snr {min_snr}");
        assert!((10.0..=14.5).contains(&max_snr), "max snr {max_snr}");
    }

    #[test]
    fn building_snr_decays_with_distance() {
        // Paper: "the SNR decays with the distance between the two nodes".
        let b = BuildingDeployment::new();
        let medium = b.medium();
        let tx = b.fixed_node();
        let near = medium.link(&tx, &b.position(1, 3), 14.0).snr_db();
        let mid = medium.link(&tx, &b.position(5, 3), 14.0).snr_db();
        let far = medium.link(&tx, &b.position(10, 3), 14.0).snr_db();
        assert!(near > mid && mid > far, "{near} {mid} {far}");
    }

    #[test]
    fn attack_link_needs_sf8_like_paper() {
        // §8.1.1: across the building (A1/3F to C3/6F), SF7 fails but SF8
        // works. Our calibrated far-corner SNR ≈ −1 dB clears both SX1276
        // floors, so verify the *ordering* property on the margin instead:
        // the link must be decodable at SF8 and have only a thin margin
        // (< 9 dB) over the SF7 floor, consistent with SF7 being flaky
        // under fading while SF8 is reliable.
        let b = BuildingDeployment::new();
        let medium = b.medium();
        let link = medium.link(&b.fixed_node(), &b.attack_gateway_site(), 14.0);
        assert!(link.decodable(SpreadingFactor::Sf8));
        let sf7_margin = link.snr_db() - SpreadingFactor::Sf7.demod_floor_db();
        assert!(sf7_margin < 9.0, "sf7 margin {sf7_margin}");
    }

    #[test]
    fn junction_counting() {
        assert_eq!(BuildingPathLoss::junctions_between(0.0, 190.0), 2);
        assert_eq!(BuildingPathLoss::junctions_between(0.0, 38.0), 0);
        assert_eq!(BuildingPathLoss::junctions_between(38.0, 95.0), 1);
        assert_eq!(BuildingPathLoss::junctions_between(95.0, 38.0), 1); // symmetric
        assert_eq!(BuildingPathLoss::junctions_between(57.0, 57.0), 0); // on a junction
    }

    #[test]
    fn geometry_and_accessibility() {
        let b = BuildingDeployment::new();
        let p = b.position(10, 6);
        assert!((p.x - 190.0).abs() < 1e-12);
        assert!((p.z - 21.0).abs() < 1e-12);
        assert!(b.accessible(10, 3));
        assert!(!b.accessible(10, 1));
        assert!(!b.accessible(10, 2));
        assert!(b.accessible(0, 1));
    }

    #[test]
    #[should_panic(expected = "column")]
    fn invalid_column_panics() {
        BuildingDeployment::new().position(11, 1);
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn invalid_floor_panics() {
        BuildingDeployment::new().position(0, 0);
    }

    #[test]
    fn shadowing_is_deterministic_and_bounded() {
        let loss = BuildingPathLoss::default();
        let a = Position::new(0.0, 0.0, 10.5);
        let b = Position::new(100.0, 0.0, 7.0);
        assert_eq!(loss.path_loss_db(&a, &b), loss.path_loss_db(&a, &b));
        let s = loss.shadow(&a, &b);
        assert!(s.abs() <= loss.shadowing_db);
    }

    #[test]
    fn campus_distance_and_delay() {
        let c = CampusDeployment::default();
        let d = c.site_a().distance_m(&c.site_b());
        assert!((d - 1070.0).abs() < 0.5, "distance {d}");
        let medium = c.medium();
        // The paper: one-way propagation 3.57 µs.
        let delay = medium.delay_s(&c.site_a(), &c.site_b());
        assert!((delay - 3.57e-6).abs() < 0.02e-6, "delay {delay}");
    }

    #[test]
    fn fleet_single_gateway_sits_at_centre() {
        let f = FleetDeployment::with_gateways(1);
        let gws = f.gateway_positions();
        assert_eq!(gws.len(), 1);
        assert_eq!((gws[0].x, gws[0].y), (0.0, 0.0));
    }

    #[test]
    fn fleet_gateways_spread_on_ring() {
        let f = FleetDeployment::with_gateways(4);
        let gws = f.gateway_positions();
        assert_eq!(gws.len(), 4);
        let centre = Position::new(0.0, 0.0, f.gateway_height_m);
        for gw in &gws {
            assert!((gw.distance_m(&centre) - f.gateway_ring_m).abs() < 1e-9);
        }
        // Distinct positions.
        for (i, a) in gws.iter().enumerate() {
            for b in &gws[i + 1..] {
                assert!(a.distance_m(b) > 100.0);
            }
        }
    }

    #[test]
    fn fleet_devices_deterministic_and_in_area() {
        let f = FleetDeployment::default();
        let a = f.device_positions(50, 7);
        let b = f.device_positions(50, 7);
        assert_eq!(a, b);
        let centre = Position::new(0.0, 0.0, f.device_height_m);
        for p in &a {
            assert!(p.distance_m(&centre) <= f.device_area_m + 1e-9);
        }
        // Different seeds scatter differently.
        let c = f.device_positions(50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn fleet_sites_carry_per_site_characteristics() {
        let f = FleetDeployment::with_gateways(3)
            .with_site_antenna_gains_dbi(vec![6.0, 0.0])
            .with_site_noise_floors_dbm(vec![-110.0]);
        let sites = f.gateway_sites();
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].antenna_gain_dbi, 6.0);
        assert_eq!(sites[0].noise_floor_dbm, Some(-110.0));
        assert_eq!(sites[1].antenna_gain_dbi, 0.0);
        assert_eq!(sites[1].noise_floor_dbm, None);
        // Sites beyond the vectors fall back to the reference receiver.
        assert_eq!(sites[2].antenna_gain_dbi, 0.0);
        assert_eq!(sites[2].noise_floor_dbm, None);
        // Positions match the plain ring.
        let positions = f.gateway_positions();
        for (site, pos) in sites.iter().zip(positions.iter()) {
            assert_eq!(site.position, *pos);
        }
        // Threading through the fleet link: the high-gain site hears a
        // device louder than the same site without gain.
        let medium = f.medium();
        let device = f.device_positions(1, 5)[0];
        let base_snr = medium.link(&device, &sites[0].position, 14.0).snr_db();
        let site_snr = base_snr + sites[0].snr_offset_db(medium.noise_floor_dbm());
        // Offset = gain + (default floor − site floor) = 6 + (−117 − −110).
        let expected = base_snr + 6.0 + (medium.noise_floor_dbm() - -110.0);
        assert!((site_snr - expected).abs() < 1e-9, "site {site_snr} expected {expected}");
    }

    #[test]
    fn fleet_copies_see_distinct_link_budgets() {
        let f = FleetDeployment::with_gateways(3);
        let medium = f.medium();
        let device = f.device_positions(1, 1)[0];
        let snrs: Vec<f64> = f
            .gateway_positions()
            .iter()
            .map(|gw| medium.link(&device, gw, 14.0).snr_db())
            .collect();
        assert!(snrs.windows(2).any(|w| (w[0] - w[1]).abs() > 0.1), "snrs {snrs:?}");
    }

    #[test]
    fn campus_link_decodable_at_sf12() {
        let c = CampusDeployment::default();
        let link = c.medium().link(&c.site_a(), &c.site_b(), 14.0);
        // SF12 is the paper's default for this experiment.
        assert!(link.decodable(SpreadingFactor::Sf12), "snr {}", link.snr_db());
        // And the SNR should be modest (single-digit dB), not laboratory-
        // grade — the link crosses a kilometre of campus in rain.
        assert!(link.snr_db() < 10.0, "snr {}", link.snr_db());
    }
}
