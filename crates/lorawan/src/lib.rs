//! LoRaWAN 1.0.2 data-link layer for the SoftLoRa reproduction.
//!
//! Implements the pieces of LoRaWAN the paper's system depends on:
//!
//! * the **frame format** — MHDR / FHDR / FPort / encrypted FRMPayload /
//!   MIC — with real AES-CMAC authentication ([`frame`]);
//! * a **Class A end device** with ALOHA access and the EU868 1 % duty
//!   cycle ([`device`], [`region`]) — the device class the paper targets
//!   because it is "supported by all commodity LoRaWAN platforms" (§3.1);
//! * the **synchronization-free timestamping payloads** of paper §3.2:
//!   sensor records carrying 18-bit, 1 ms-resolution *elapsed times*
//!   instead of absolute timestamps ([`elapsed`]);
//! * the **commodity gateway** that verifies, deduplicates and timestamps
//!   uplinks on arrival ([`gateway`]).
//!
//! All time parameters are plain `f64` seconds supplied by the caller; the
//! drifting-clock machinery lives in `softlora-sim` so this crate stays
//! independent of the simulation engine.

pub mod device;
pub mod elapsed;
pub mod frame;
pub mod gateway;
pub mod region;

pub use device::{ClassADevice, DeviceConfig};
pub use elapsed::{ElapsedCodec, SensorRecord};
pub use frame::{DataFrame, DeviceKeys, FrameType};
pub use gateway::{
    best_copy, payload_hash, DedupCache, DedupOutcome, Gateway, ReceivedUplink, RxVerdict,
    UplinkCopy,
};

/// Errors returned by LoRaWAN-layer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LorawanError {
    /// Frame bytes were malformed or truncated.
    Malformed {
        /// Description of the parsing failure.
        reason: &'static str,
    },
    /// The MIC did not verify.
    BadMic,
    /// The frame counter was outside the acceptance window (classic
    /// replay protection — which the frame-delay attack evades by
    /// suppressing the original).
    CounterReplay {
        /// Highest counter accepted so far.
        last_accepted: u32,
        /// Counter in the rejected frame.
        received: u32,
    },
    /// The duty-cycle budget does not allow transmitting now.
    DutyCycleExceeded {
        /// Seconds until the next transmission is allowed.
        wait_s: f64,
    },
    /// A value exceeded its encodable range.
    OutOfRange {
        /// Description of the violated constraint.
        reason: &'static str,
    },
}

impl std::fmt::Display for LorawanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LorawanError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            LorawanError::BadMic => write!(f, "message integrity check failed"),
            LorawanError::CounterReplay { last_accepted, received } => {
                write!(f, "frame counter {received} not above last accepted {last_accepted}")
            }
            LorawanError::DutyCycleExceeded { wait_s } => {
                write!(f, "duty cycle exceeded, wait {wait_s:.1} s")
            }
            LorawanError::OutOfRange { reason } => write!(f, "value out of range: {reason}"),
        }
    }
}

impl std::error::Error for LorawanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(LorawanError::BadMic.to_string().contains("integrity"));
        let e = LorawanError::CounterReplay { last_accepted: 10, received: 5 };
        assert!(e.to_string().contains("10") && e.to_string().contains("5"));
        assert!(LorawanError::DutyCycleExceeded { wait_s: 3.25 }.to_string().contains("3.2"));
    }
}
