//! Class A end device (paper §3.1, §3.2).
//!
//! The device buffers sensor records with local-clock times of interest,
//! and on transmission replaces them with elapsed times (the
//! synchronization-free scheme). It enforces the EU868 duty cycle, runs
//! the Class A receive-window schedule, and needs *no clock
//! synchronisation code at all* — which is the paper's headline efficiency
//! claim for the approach.

use crate::elapsed::{ElapsedCodec, SensorRecord, MAX_ELAPSED_S};
use crate::frame::{DataFrame, DeviceKeys, FrameType};
use crate::region::DutyCycleTracker;
use crate::LorawanError;
use softlora_phy::PhyConfig;

/// Class A receive-window delays (LoRaWAN 1.0.2 defaults).
pub const RX1_DELAY_S: f64 = 1.0;
/// Second receive-window delay.
pub const RX2_DELAY_S: f64 = 2.0;

/// Static device configuration.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Device address.
    pub dev_addr: u32,
    /// Session keys.
    pub keys: DeviceKeys,
    /// PHY parameters for uplinks.
    pub phy: PhyConfig,
    /// Application port used for data frames.
    pub fport: u8,
    /// Maximum records buffered before transmission is forced.
    pub max_buffered: usize,
}

impl DeviceConfig {
    /// Reasonable defaults for an address: test keys, the given PHY,
    /// port 1, up to 6 records per frame.
    pub fn new(dev_addr: u32, phy: PhyConfig) -> Self {
        DeviceConfig {
            dev_addr,
            keys: DeviceKeys::derive_for_tests(dev_addr),
            phy,
            fport: 1,
            max_buffered: 6,
        }
    }
}

/// A frame handed to the radio, with everything the simulator needs.
#[derive(Debug, Clone)]
pub struct UplinkTransmission {
    /// Serialized PHY payload (encrypted + MIC).
    pub bytes: Vec<u8>,
    /// Air time of the frame in seconds.
    pub airtime_s: f64,
    /// Frame counter used.
    pub fcnt: u16,
    /// Number of sensor records inside.
    pub record_count: usize,
    /// Local-clock transmission time the elapsed fields are relative to.
    pub tx_local_s: f64,
}

/// A Class A LoRaWAN end device with synchronization-free timestamping.
///
/// # Example
///
/// ```
/// use softlora_lorawan::{ClassADevice, DeviceConfig};
/// use softlora_phy::{PhyConfig, SpreadingFactor};
///
/// let cfg = DeviceConfig::new(0x2601_0001, PhyConfig::uplink(SpreadingFactor::Sf7));
/// let mut dev = ClassADevice::new(cfg);
/// dev.sense(42, 10.0)?;
/// let tx = dev.try_transmit(12.5)?;
/// assert_eq!(tx.record_count, 1);
/// # Ok::<(), softlora_lorawan::LorawanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassADevice {
    config: DeviceConfig,
    duty: DutyCycleTracker,
    fcnt: u16,
    buffer: Vec<SensorRecord>,
}

impl ClassADevice {
    /// Creates a device with an empty buffer and EU868 duty cycling.
    pub fn new(config: DeviceConfig) -> Self {
        ClassADevice { config, duty: DutyCycleTracker::eu868(), fcnt: 0, buffer: Vec::new() }
    }

    /// The device address.
    pub fn dev_addr(&self) -> u32 {
        self.config.dev_addr
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Current frame counter (next uplink's value).
    pub fn fcnt(&self) -> u16 {
        self.fcnt
    }

    /// Number of buffered records.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer has reached the forced-transmission size.
    pub fn buffer_full(&self) -> bool {
        self.buffer.len() >= self.config.max_buffered
    }

    /// Records a sensor reading taken at `local_time_s` on the device
    /// clock.
    ///
    /// # Errors
    ///
    /// Returns [`LorawanError::OutOfRange`] when the buffer is full —
    /// the application must transmit (or drop data) first.
    pub fn sense(&mut self, value: u16, local_time_s: f64) -> Result<(), LorawanError> {
        if self.buffer_full() {
            return Err(LorawanError::OutOfRange { reason: "record buffer full" });
        }
        self.buffer.push(SensorRecord { value, local_time_s });
        Ok(())
    }

    /// Seconds until the duty cycle allows the next uplink.
    pub fn duty_wait_s(&self, now_local_s: f64) -> f64 {
        self.duty.wait_s(now_local_s)
    }

    /// Oldest buffered record's age at `now_local_s`, if any.
    pub fn oldest_record_age(&self, now_local_s: f64) -> Option<f64> {
        self.buffer
            .iter()
            .map(|r| now_local_s - r.local_time_s)
            .fold(None, |acc, age| Some(acc.map_or(age, |a: f64| a.max(age))))
    }

    /// Whether a record would overflow the elapsed-time range if the device
    /// waited until `now_local_s + margin_s` to transmit.
    pub fn must_transmit_soon(&self, now_local_s: f64, margin_s: f64) -> bool {
        self.oldest_record_age(now_local_s)
            .map(|age| age + margin_s >= MAX_ELAPSED_S)
            .unwrap_or(false)
    }

    /// Attempts to transmit all buffered records at local time
    /// `now_local_s`.
    ///
    /// On success the buffer is drained, the frame counter advances, the
    /// duty-cycle silence period starts, and the serialized frame is
    /// returned for the radio/simulator to put on the air.
    ///
    /// # Errors
    ///
    /// * [`LorawanError::OutOfRange`] if the buffer is empty or a record
    ///   exceeds the elapsed-time range.
    /// * [`LorawanError::DutyCycleExceeded`] when the ETSI rule forbids
    ///   transmitting now (nothing is consumed in that case).
    pub fn try_transmit(&mut self, now_local_s: f64) -> Result<UplinkTransmission, LorawanError> {
        if self.buffer.is_empty() {
            return Err(LorawanError::OutOfRange { reason: "no records to transmit" });
        }
        if !self.duty.can_transmit(now_local_s) {
            return Err(LorawanError::DutyCycleExceeded { wait_s: self.duty.wait_s(now_local_s) });
        }
        // Payload: record count byte + packed records.
        let encoded = ElapsedCodec::encode(&self.buffer, now_local_s)?;
        let mut payload = Vec::with_capacity(1 + encoded.len());
        payload.push(self.buffer.len() as u8);
        payload.extend_from_slice(&encoded);

        let frame = DataFrame {
            frame_type: FrameType::UnconfirmedUp,
            dev_addr: self.config.dev_addr,
            fcnt: self.fcnt,
            fport: self.config.fport,
            payload,
        };
        let bytes = frame.encode(&self.config.keys)?;
        let airtime = self.config.phy.airtime(bytes.len());
        self.duty.record(now_local_s, airtime)?;

        let tx = UplinkTransmission {
            bytes,
            airtime_s: airtime,
            fcnt: self.fcnt,
            record_count: self.buffer.len(),
            tx_local_s: now_local_s,
        };
        self.fcnt = self.fcnt.wrapping_add(1);
        self.buffer.clear();
        Ok(tx)
    }

    /// The two Class A receive windows after an uplink that ended at
    /// `tx_end_local_s`: `(rx1_open, rx2_open)`.
    pub fn rx_windows(&self, tx_end_local_s: f64) -> (f64, f64) {
        (tx_end_local_s + RX1_DELAY_S, tx_end_local_s + RX2_DELAY_S)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::SpreadingFactor;

    fn device() -> ClassADevice {
        ClassADevice::new(DeviceConfig::new(0x2601_0001, PhyConfig::uplink(SpreadingFactor::Sf7)))
    }

    #[test]
    fn transmit_drains_buffer_and_advances_counter() {
        let mut d = device();
        d.sense(1, 0.0).unwrap();
        d.sense(2, 1.0).unwrap();
        assert_eq!(d.buffered(), 2);
        let tx = d.try_transmit(2.0).unwrap();
        assert_eq!(tx.record_count, 2);
        assert_eq!(tx.fcnt, 0);
        assert_eq!(d.buffered(), 0);
        assert_eq!(d.fcnt(), 1);
        assert!(tx.airtime_s > 0.0);
    }

    #[test]
    fn empty_buffer_cannot_transmit() {
        let mut d = device();
        assert!(matches!(d.try_transmit(0.0), Err(LorawanError::OutOfRange { .. })));
    }

    #[test]
    fn duty_cycle_enforced_between_uplinks() {
        let mut d = device();
        d.sense(1, 0.0).unwrap();
        let tx = d.try_transmit(0.1).unwrap();
        d.sense(2, 0.2).unwrap();
        // Immediately after, the silence period blocks.
        let err = d.try_transmit(0.2).unwrap_err();
        assert!(matches!(err, LorawanError::DutyCycleExceeded { .. }));
        // Buffer intact after rejection.
        assert_eq!(d.buffered(), 1);
        // After ~100x the airtime, allowed again.
        let later = 0.1 + tx.airtime_s * 101.0;
        assert!(d.try_transmit(later).is_ok());
    }

    #[test]
    fn buffer_capacity_enforced() {
        let mut d = device();
        for i in 0..6 {
            d.sense(i, i as f64).unwrap();
        }
        assert!(d.buffer_full());
        assert!(d.sense(99, 7.0).is_err());
    }

    #[test]
    fn stale_record_rejected_at_encode() {
        let mut d = device();
        d.sense(1, 0.0).unwrap();
        let err = d.try_transmit(300.0).unwrap_err();
        assert!(matches!(err, LorawanError::OutOfRange { .. }));
    }

    #[test]
    fn must_transmit_soon_logic() {
        let mut d = device();
        assert!(!d.must_transmit_soon(0.0, 10.0));
        d.sense(1, 0.0).unwrap();
        assert!(!d.must_transmit_soon(10.0, 10.0));
        assert!(d.must_transmit_soon(255.0, 10.0)); // 255 + 10 > 262.1
        assert!((d.oldest_record_age(100.0).unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn rx_window_schedule() {
        let d = device();
        let (rx1, rx2) = d.rx_windows(10.0);
        assert_eq!(rx1, 11.0);
        assert_eq!(rx2, 12.0);
    }

    #[test]
    fn frame_decodes_with_matching_keys() {
        let mut d = device();
        d.sense(777, 5.0).unwrap();
        let tx = d.try_transmit(6.25).unwrap();
        let decoded = crate::frame::DataFrame::decode(&tx.bytes, &d.config().keys, 0).unwrap();
        assert_eq!(decoded.dev_addr, 0x2601_0001);
        assert_eq!(decoded.payload[0], 1); // record count
        let recs = ElapsedCodec::decode(&decoded.payload[1..], 1).unwrap();
        assert_eq!(recs[0].0, 777);
        assert!((recs[0].1 - 1.25).abs() < 1e-3);
    }
}
