//! EU868 regional parameters and duty-cycle accounting.
//!
//! The paper's §3.2 overhead argument rests on the ETSI 1 % duty-cycle
//! rule: an SF12 device sending 30-byte frames can only transmit about 24
//! frames per hour, so spending airtime on clock-synchronisation traffic is
//! expensive. [`DutyCycleTracker`] enforces the rule the way commodity
//! stacks do (per-transmission wait time), and [`TxPower`] models the
//! RN2483 power steps swept in paper Fig. 16.

use crate::LorawanError;

/// The EU 868 MHz sub-band duty cycle limit (1 %).
pub const EU868_DUTY_CYCLE: f64 = 0.01;

/// The paper's uplink channel.
pub const PAPER_CHANNEL_HZ: f64 = 869.75e6;

/// Transmit power settings.
///
/// Fig. 16 sweeps the end device's measured output power over
/// 3.6–10.4 dBm; `MAX` mirrors "the maximum level, i.e., 15" used in the
/// full attack experiment (§8.1.1, ≈ 14 dBm EIRP).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxPower {
    /// Output power in dBm.
    pub dbm: f64,
}

impl TxPower {
    /// Maximum EU868 EIRP (14 dBm).
    pub const MAX: TxPower = TxPower { dbm: 14.0 };

    /// The seven measured output steps of paper Fig. 16.
    pub const FIG16_SWEEP: [TxPower; 7] = [
        TxPower { dbm: 3.6 },
        TxPower { dbm: 4.7 },
        TxPower { dbm: 5.8 },
        TxPower { dbm: 6.9 },
        TxPower { dbm: 8.1 },
        TxPower { dbm: 9.3 },
        TxPower { dbm: 10.4 },
    ];
}

/// Per-device duty-cycle enforcement using the "wait time" rule:
/// after a transmission of `t_air`, the device must stay silent for
/// `t_air · (1/duty − 1)`.
#[derive(Debug, Clone)]
pub struct DutyCycleTracker {
    duty: f64,
    next_allowed_s: f64,
    total_airtime_s: f64,
    transmissions: u64,
}

impl DutyCycleTracker {
    /// Creates a tracker for the given duty-cycle fraction.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is not in `(0, 1]`.
    pub fn new(duty: f64) -> Self {
        assert!(duty > 0.0 && duty <= 1.0, "duty cycle must be in (0, 1]");
        DutyCycleTracker { duty, next_allowed_s: 0.0, total_airtime_s: 0.0, transmissions: 0 }
    }

    /// EU868 1 % tracker.
    pub fn eu868() -> Self {
        Self::new(EU868_DUTY_CYCLE)
    }

    /// Whether a transmission may start at `now_s`.
    pub fn can_transmit(&self, now_s: f64) -> bool {
        now_s >= self.next_allowed_s
    }

    /// Seconds until the next transmission is allowed (0 if allowed now).
    pub fn wait_s(&self, now_s: f64) -> f64 {
        (self.next_allowed_s - now_s).max(0.0)
    }

    /// Records a transmission of `airtime_s` starting at `now_s`.
    ///
    /// # Errors
    ///
    /// Returns [`LorawanError::DutyCycleExceeded`] if the silence period of
    /// the previous transmission has not elapsed (the transmission is *not*
    /// recorded in that case).
    pub fn record(&mut self, now_s: f64, airtime_s: f64) -> Result<(), LorawanError> {
        if !self.can_transmit(now_s) {
            return Err(LorawanError::DutyCycleExceeded { wait_s: self.wait_s(now_s) });
        }
        self.next_allowed_s = now_s + airtime_s + airtime_s * (1.0 / self.duty - 1.0);
        self.total_airtime_s += airtime_s;
        self.transmissions += 1;
        Ok(())
    }

    /// Total airtime consumed so far.
    pub fn total_airtime_s(&self) -> f64 {
        self.total_airtime_s
    }

    /// Number of recorded transmissions.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Maximum frames of `airtime_s` each that fit in `window_s` under this
    /// duty cycle (the paper's "24 30-byte frames per hour at SF12").
    pub fn max_frames(&self, airtime_s: f64, window_s: f64) -> u64 {
        if airtime_s <= 0.0 {
            return u64::MAX;
        }
        (window_s * self.duty / airtime_s).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softlora_phy::{PhyConfig, SpreadingFactor};

    #[test]
    fn paper_sf12_frames_per_hour() {
        // Paper §3.2: SF12, 30-byte frames, 1 % duty cycle -> 24 frames/hour
        // (the paper's figure assumes no low-data-rate optimisation; with
        // the LDRO that EU868 mandates at SF12 the count drops to 21).
        let cfg = PhyConfig::uplink(SpreadingFactor::Sf12);
        let tracker = DutyCycleTracker::eu868();
        let frames = tracker.max_frames(cfg.airtime(30), 3600.0);
        assert!((20..=26).contains(&frames), "frames {frames}");
        let mut no_ldro = cfg;
        no_ldro.low_data_rate = false;
        let frames_paper = tracker.max_frames(no_ldro.airtime(30), 3600.0);
        assert_eq!(frames_paper, 24);
    }

    #[test]
    fn wait_time_rule() {
        let mut t = DutyCycleTracker::new(0.01);
        t.record(0.0, 1.0).unwrap();
        // 1 s airtime at 1 % -> silent until t = 100 s.
        assert!(!t.can_transmit(50.0));
        assert!((t.wait_s(50.0) - 50.0).abs() < 1e-9);
        assert!(t.can_transmit(100.0));
        assert!(t.record(100.0, 1.0).is_ok());
    }

    #[test]
    fn rejected_transmission_not_counted() {
        let mut t = DutyCycleTracker::new(0.01);
        t.record(0.0, 2.0).unwrap();
        assert!(t.record(10.0, 2.0).is_err());
        assert_eq!(t.transmissions(), 1);
        assert!((t.total_airtime_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_duty_never_blocks_after_airtime() {
        let mut t = DutyCycleTracker::new(1.0);
        t.record(0.0, 1.0).unwrap();
        assert!(t.can_transmit(1.0));
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_panics() {
        DutyCycleTracker::new(0.0);
    }

    #[test]
    fn fig16_sweep_values() {
        assert_eq!(TxPower::FIG16_SWEEP.len(), 7);
        assert!((TxPower::FIG16_SWEEP[0].dbm - 3.6).abs() < 1e-12);
        assert!((TxPower::FIG16_SWEEP[6].dbm - 10.4).abs() < 1e-12);
        for pair in TxPower::FIG16_SWEEP.windows(2) {
            assert!(pair[1].dbm > pair[0].dbm);
        }
        assert_eq!(TxPower::MAX.dbm, 14.0);
    }

    #[test]
    fn max_frames_degenerate() {
        let t = DutyCycleTracker::eu868();
        assert_eq!(t.max_frames(0.0, 3600.0), u64::MAX);
    }
}
