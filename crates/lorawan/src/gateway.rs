//! Commodity LoRaWAN gateway: frame verification, deduplication and
//! synchronization-free data timestamping (paper §3.2).
//!
//! The gateway holds a GPS-disciplined clock, so the *arrival time* of an
//! uplink is trusted global time. For every accepted frame it reconstructs
//! the global time of interest of each sensor record as
//! `arrival − elapsed`. This module implements the plain (attack-unaware)
//! gateway; the SoftLoRa defence wraps it in the `softlora` core crate.

use crate::elapsed::ElapsedCodec;
use crate::frame::{DataFrame, DeviceKeys};
use crate::LorawanError;
use std::collections::HashMap;

/// A sensor record with its reconstructed global timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimestampedRecord {
    /// Sensor value.
    pub value: u16,
    /// Reconstructed global time of interest, seconds.
    pub global_time_s: f64,
    /// Elapsed time the device reported, seconds.
    pub elapsed_s: f64,
}

/// An accepted uplink with reconstructed record timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedUplink {
    /// Source device address.
    pub dev_addr: u32,
    /// Frame counter.
    pub fcnt: u16,
    /// Frame arrival time on the gateway clock, seconds.
    pub arrival_global_s: f64,
    /// Timestamped sensor records.
    pub records: Vec<TimestampedRecord>,
}

/// The gateway's verdict on an incoming frame.
#[derive(Debug, Clone)]
pub enum RxVerdict {
    /// Frame accepted; records timestamped.
    Accepted(ReceivedUplink),
    /// The claimed device address is not provisioned.
    UnknownDevice {
        /// The unprovisioned address.
        dev_addr: u32,
    },
    /// Authentication or structure failure.
    Rejected(LorawanError),
}

impl RxVerdict {
    /// Whether the frame was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, RxVerdict::Accepted(_))
    }
}

/// Per-device session state.
#[derive(Debug, Clone)]
struct Session {
    keys: DeviceKeys,
    /// Highest accepted frame counter, or None before the first frame.
    last_fcnt: Option<u16>,
}

/// A commodity LoRaWAN gateway with synchronization-free timestamping.
///
/// # Example
///
/// ```
/// use softlora_lorawan::{ClassADevice, DeviceConfig, Gateway};
/// use softlora_phy::{PhyConfig, SpreadingFactor};
///
/// let cfg = DeviceConfig::new(7, PhyConfig::uplink(SpreadingFactor::Sf7));
/// let mut dev = ClassADevice::new(cfg.clone());
/// let mut gw = Gateway::new();
/// gw.provision(cfg.dev_addr, cfg.keys.clone());
///
/// dev.sense(100, 4.0)?;
/// let tx = dev.try_transmit(5.0)?;
/// // Frame arrives (propagation is microseconds; ignore here).
/// let verdict = gw.receive(&tx.bytes, 5.0 + tx.airtime_s);
/// assert!(verdict.is_accepted());
/// # Ok::<(), softlora_lorawan::LorawanError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gateway {
    sessions: HashMap<u32, Session>,
    accepted: u64,
    rejected: u64,
}

impl Gateway {
    /// Creates an empty gateway.
    pub fn new() -> Self {
        Gateway::default()
    }

    /// Provisions a device's session keys (ABP).
    pub fn provision(&mut self, dev_addr: u32, keys: DeviceKeys) {
        self.sessions.insert(dev_addr, Session { keys, last_fcnt: None });
    }

    /// Whether a device is provisioned.
    pub fn knows(&self, dev_addr: u32) -> bool {
        self.sessions.contains_key(&dev_addr)
    }

    /// Total accepted frames.
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Total rejected frames.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Processes an uplink frame that arrived at `arrival_global_s` on the
    /// gateway clock: verifies structure, MIC and counter, decodes the
    /// elapsed-time records and reconstructs their global timestamps.
    pub fn receive(&mut self, bytes: &[u8], arrival_global_s: f64) -> RxVerdict {
        match self.receive_inner(bytes, arrival_global_s) {
            Ok(up) => {
                self.accepted += 1;
                RxVerdict::Accepted(up)
            }
            Err(RxError::Unknown(dev_addr)) => {
                self.rejected += 1;
                RxVerdict::UnknownDevice { dev_addr }
            }
            Err(RxError::Lorawan(e)) => {
                self.rejected += 1;
                RxVerdict::Rejected(e)
            }
        }
    }

    fn receive_inner(
        &mut self,
        bytes: &[u8],
        arrival_global_s: f64,
    ) -> Result<ReceivedUplink, RxError> {
        let (_, dev_addr, _) = DataFrame::peek_header(bytes).map_err(RxError::Lorawan)?;
        let session = self.sessions.get_mut(&dev_addr).ok_or(RxError::Unknown(dev_addr))?;
        let frame = DataFrame::decode(bytes, &session.keys, 0).map_err(RxError::Lorawan)?;

        // Counter replay protection: strictly increasing.
        if let Some(last) = session.last_fcnt {
            if frame.fcnt <= last {
                return Err(RxError::Lorawan(LorawanError::CounterReplay {
                    last_accepted: last as u32,
                    received: frame.fcnt as u32,
                }));
            }
        }
        session.last_fcnt = Some(frame.fcnt);

        // Decode records: count byte + packed elapsed records.
        if frame.payload.is_empty() {
            return Err(RxError::Lorawan(LorawanError::Malformed {
                reason: "empty application payload",
            }));
        }
        let n = frame.payload[0] as usize;
        let pairs = ElapsedCodec::decode(&frame.payload[1..], n).map_err(RxError::Lorawan)?;
        let records = pairs
            .into_iter()
            .map(|(value, elapsed_s)| TimestampedRecord {
                value,
                elapsed_s,
                global_time_s: ElapsedCodec::reconstruct(arrival_global_s, elapsed_s),
            })
            .collect();

        Ok(ReceivedUplink { dev_addr, fcnt: frame.fcnt, arrival_global_s, records })
    }
}

enum RxError {
    Unknown(u32),
    Lorawan(LorawanError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{ClassADevice, DeviceConfig};
    use softlora_phy::{PhyConfig, SpreadingFactor};

    fn setup() -> (ClassADevice, Gateway) {
        let cfg = DeviceConfig::new(0x11, PhyConfig::uplink(SpreadingFactor::Sf7));
        let mut gw = Gateway::new();
        gw.provision(cfg.dev_addr, cfg.keys.clone());
        (ClassADevice::new(cfg), gw)
    }

    #[test]
    fn end_to_end_timestamping_accuracy() {
        let (mut dev, mut gw) = setup();
        // Record taken at device-local 10.0; device clock ~= global here.
        dev.sense(500, 10.0).unwrap();
        let tx = dev.try_transmit(12.0).unwrap();
        let arrival = 12.0 + tx.airtime_s + 3.5e-6; // propagation
        let verdict = gw.receive(&tx.bytes, arrival);
        let RxVerdict::Accepted(up) = verdict else { panic!("not accepted") };
        assert_eq!(up.records.len(), 1);
        // Reconstructed time should be ~ 10.0 + airtime (+ prop): the
        // elapsed field was computed at tx start, so the airtime appears
        // as reconstruction bias; still millisecond-scale for short frames?
        // No: airtime is tens of ms; the *structural* error here is
        // airtime + propagation because our device stamps elapsed at tx
        // start while the gateway stamps arrival at frame end.
        let err = up.records[0].global_time_s - 10.0;
        assert!(err > 0.0 && err < tx.airtime_s + 1e-3, "err {err}");
    }

    #[test]
    fn frame_end_referenced_arrival_removes_airtime_bias() {
        // A gateway that timestamps the frame *onset* (as SoftLoRa's PHY
        // timestamping does) removes the airtime bias entirely.
        let (mut dev, mut gw) = setup();
        dev.sense(500, 10.0).unwrap();
        let tx = dev.try_transmit(12.0).unwrap();
        let onset_arrival = 12.0 + 3.5e-6;
        let RxVerdict::Accepted(up) = gw.receive(&tx.bytes, onset_arrival) else {
            panic!("not accepted")
        };
        let err = (up.records[0].global_time_s - 10.0).abs();
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn counter_replay_rejected() {
        let (mut dev, mut gw) = setup();
        dev.sense(1, 0.0).unwrap();
        let tx = dev.try_transmit(1.0).unwrap();
        assert!(gw.receive(&tx.bytes, 1.1).is_accepted());
        // Bit-exact replay: rejected by the counter (the naive defence).
        match gw.receive(&tx.bytes, 5.0) {
            RxVerdict::Rejected(LorawanError::CounterReplay { .. }) => {}
            other => panic!("expected counter replay rejection, got {other:?}"),
        }
        assert_eq!(gw.accepted_count(), 1);
        assert_eq!(gw.rejected_count(), 1);
    }

    #[test]
    fn suppressed_original_makes_replay_pass() {
        // The frame-delay attack: the gateway never saw the original (it
        // was jammed), so the delayed replay has a *fresh* counter and is
        // accepted — with a wrong arrival time.
        let (mut dev, mut gw) = setup();
        dev.sense(42, 100.0).unwrap();
        let tx = dev.try_transmit(101.0).unwrap();
        // Original suppressed; replayer re-transmits τ = 30 s later.
        let tau = 30.0;
        let verdict = gw.receive(&tx.bytes, 101.0 + tx.airtime_s + tau);
        let RxVerdict::Accepted(up) = verdict else { panic!("replay should be accepted") };
        // Every reconstructed timestamp is off by ~τ.
        let err = up.records[0].global_time_s - 100.0;
        assert!((err - tau).abs() < 0.1, "timestamp shifted by {err}, want ~{tau}");
    }

    #[test]
    fn unknown_device_reported() {
        let (mut dev, _) = setup();
        let mut empty_gw = Gateway::new();
        dev.sense(1, 0.0).unwrap();
        let tx = dev.try_transmit(1.0).unwrap();
        match empty_gw.receive(&tx.bytes, 1.1) {
            RxVerdict::UnknownDevice { dev_addr } => assert_eq!(dev_addr, 0x11),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_rejected() {
        let mut gw = Gateway::new();
        assert!(!gw.receive(&[0u8; 4], 0.0).is_accepted());
        assert!(!gw.receive(&[0x40; 30], 0.0).is_accepted());
    }

    #[test]
    fn tampered_frame_rejected() {
        let (mut dev, mut gw) = setup();
        dev.sense(1, 0.0).unwrap();
        let mut tx = dev.try_transmit(1.0).unwrap();
        tx.bytes[10] ^= 0xFF;
        match gw.receive(&tx.bytes, 1.1) {
            RxVerdict::Rejected(LorawanError::BadMic) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_devices_tracked_independently() {
        let cfg_a = DeviceConfig::new(0xA, PhyConfig::uplink(SpreadingFactor::Sf7));
        let cfg_b = DeviceConfig::new(0xB, PhyConfig::uplink(SpreadingFactor::Sf7));
        let mut gw = Gateway::new();
        gw.provision(0xA, cfg_a.keys.clone());
        gw.provision(0xB, cfg_b.keys.clone());
        let mut a = ClassADevice::new(cfg_a);
        let mut b = ClassADevice::new(cfg_b);
        a.sense(1, 0.0).unwrap();
        b.sense(2, 0.0).unwrap();
        let ta = a.try_transmit(1.0).unwrap();
        let tb = b.try_transmit(1.0).unwrap();
        assert!(gw.receive(&ta.bytes, 1.1).is_accepted());
        assert!(gw.receive(&tb.bytes, 1.1).is_accepted());
        assert!(gw.knows(0xA) && gw.knows(0xB) && !gw.knows(0xC));
    }
}
