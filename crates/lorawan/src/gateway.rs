//! Commodity LoRaWAN gateway: frame verification, deduplication and
//! synchronization-free data timestamping (paper §3.2).
//!
//! The gateway holds a GPS-disciplined clock, so the *arrival time* of an
//! uplink is trusted global time. For every accepted frame it reconstructs
//! the global time of interest of each sensor record as
//! `arrival − elapsed`. This module implements the plain (attack-unaware)
//! gateway; the SoftLoRa defence wraps it in the `softlora` core crate.

use crate::elapsed::ElapsedCodec;
use crate::frame::{DataFrame, DeviceKeys};
use crate::LorawanError;
use std::collections::HashMap;

/// A sensor record with its reconstructed global timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimestampedRecord {
    /// Sensor value.
    pub value: u16,
    /// Reconstructed global time of interest, seconds.
    pub global_time_s: f64,
    /// Elapsed time the device reported, seconds.
    pub elapsed_s: f64,
}

/// An accepted uplink with reconstructed record timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedUplink {
    /// Source device address.
    pub dev_addr: u32,
    /// Frame counter.
    pub fcnt: u16,
    /// Frame arrival time on the gateway clock, seconds.
    pub arrival_global_s: f64,
    /// Timestamped sensor records.
    pub records: Vec<TimestampedRecord>,
}

/// The gateway's verdict on an incoming frame.
#[derive(Debug, Clone)]
pub enum RxVerdict {
    /// Frame accepted; records timestamped.
    Accepted(ReceivedUplink),
    /// The claimed device address is not provisioned.
    UnknownDevice {
        /// The unprovisioned address.
        dev_addr: u32,
    },
    /// Authentication or structure failure.
    Rejected(LorawanError),
}

impl RxVerdict {
    /// Whether the frame was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, RxVerdict::Accepted(_))
    }
}

/// Per-device session state.
#[derive(Debug, Clone)]
struct Session {
    keys: DeviceKeys,
    /// Highest accepted frame counter, or None before the first frame.
    last_fcnt: Option<u16>,
}

/// A commodity LoRaWAN gateway with synchronization-free timestamping.
///
/// # Example
///
/// ```
/// use softlora_lorawan::{ClassADevice, DeviceConfig, Gateway};
/// use softlora_phy::{PhyConfig, SpreadingFactor};
///
/// let cfg = DeviceConfig::new(7, PhyConfig::uplink(SpreadingFactor::Sf7));
/// let mut dev = ClassADevice::new(cfg.clone());
/// let mut gw = Gateway::new();
/// gw.provision(cfg.dev_addr, cfg.keys.clone());
///
/// dev.sense(100, 4.0)?;
/// let tx = dev.try_transmit(5.0)?;
/// // Frame arrives (propagation is microseconds; ignore here).
/// let verdict = gw.receive(&tx.bytes, 5.0 + tx.airtime_s);
/// assert!(verdict.is_accepted());
/// # Ok::<(), softlora_lorawan::LorawanError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gateway {
    sessions: HashMap<u32, Session>,
    accepted: u64,
    rejected: u64,
}

impl Gateway {
    /// Creates an empty gateway.
    pub fn new() -> Self {
        Gateway::default()
    }

    /// Provisions a device's session keys (ABP).
    pub fn provision(&mut self, dev_addr: u32, keys: DeviceKeys) {
        self.sessions.insert(dev_addr, Session { keys, last_fcnt: None });
    }

    /// Whether a device is provisioned.
    pub fn knows(&self, dev_addr: u32) -> bool {
        self.sessions.contains_key(&dev_addr)
    }

    /// Total accepted frames.
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Total rejected frames.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Per-device last-accepted frame counters, sorted by device address
    /// (deterministic state export for persistence).
    pub fn session_fcnts(&self) -> Vec<(u32, u16)> {
        let mut fcnts: Vec<(u32, u16)> =
            self.sessions.iter().filter_map(|(dev, s)| s.last_fcnt.map(|f| (*dev, f))).collect();
        fcnts.sort_unstable();
        fcnts
    }

    /// Reinstates a device's last-accepted frame counter (state restore).
    /// Returns whether the device was provisioned (unknown devices are
    /// ignored — restore always re-provisions first).
    pub fn restore_session_fcnt(&mut self, dev_addr: u32, fcnt: u16) -> bool {
        match self.sessions.get_mut(&dev_addr) {
            Some(s) => {
                s.last_fcnt = Some(fcnt);
                true
            }
            None => false,
        }
    }

    /// Overwrites the accepted/rejected totals (state restore).
    pub fn restore_frame_counts(&mut self, accepted: u64, rejected: u64) {
        self.accepted = accepted;
        self.rejected = rejected;
    }

    /// Processes an uplink frame that arrived at `arrival_global_s` on the
    /// gateway clock: verifies structure, MIC and counter, decodes the
    /// elapsed-time records and reconstructs their global timestamps.
    pub fn receive(&mut self, bytes: &[u8], arrival_global_s: f64) -> RxVerdict {
        match self.receive_inner(bytes, arrival_global_s) {
            Ok(up) => {
                self.accepted += 1;
                RxVerdict::Accepted(up)
            }
            Err(RxError::Unknown(dev_addr)) => {
                self.rejected += 1;
                RxVerdict::UnknownDevice { dev_addr }
            }
            Err(RxError::Lorawan(e)) => {
                self.rejected += 1;
                RxVerdict::Rejected(e)
            }
        }
    }

    fn receive_inner(
        &mut self,
        bytes: &[u8],
        arrival_global_s: f64,
    ) -> Result<ReceivedUplink, RxError> {
        let (_, dev_addr, _) = DataFrame::peek_header(bytes).map_err(RxError::Lorawan)?;
        let session = self.sessions.get_mut(&dev_addr).ok_or(RxError::Unknown(dev_addr))?;
        let frame = DataFrame::decode(bytes, &session.keys, 0).map_err(RxError::Lorawan)?;

        // Counter replay protection: strictly increasing.
        if let Some(last) = session.last_fcnt {
            if frame.fcnt <= last {
                return Err(RxError::Lorawan(LorawanError::CounterReplay {
                    last_accepted: last as u32,
                    received: frame.fcnt as u32,
                }));
            }
        }
        session.last_fcnt = Some(frame.fcnt);

        // Decode records: count byte + packed elapsed records.
        if frame.payload.is_empty() {
            return Err(RxError::Lorawan(LorawanError::Malformed {
                reason: "empty application payload",
            }));
        }
        let n = frame.payload[0] as usize;
        let pairs = ElapsedCodec::decode(&frame.payload[1..], n).map_err(RxError::Lorawan)?;
        let records = pairs
            .into_iter()
            .map(|(value, elapsed_s)| TimestampedRecord {
                value,
                elapsed_s,
                global_time_s: ElapsedCodec::reconstruct(arrival_global_s, elapsed_s),
            })
            .collect();

        Ok(ReceivedUplink { dev_addr, fcnt: frame.fcnt, arrival_global_s, records })
    }
}

enum RxError {
    Unknown(u32),
    Lorawan(LorawanError),
}

/// Metadata describing one gateway's copy of an uplink, as collected by a
/// network server for deduplication (real LoRaWAN: several gateways
/// forward the same frame and the server keeps the best copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkCopy {
    /// Index of the receiving gateway in the fleet.
    pub gateway: usize,
    /// Received SNR at that gateway, dB.
    pub snr_db: f64,
    /// Arrival time on that gateway's clock, seconds.
    pub arrival_global_s: f64,
}

/// Picks the index of the best copy: highest SNR, ties broken by earliest
/// arrival then lowest gateway index (deterministic). `None` when empty.
pub fn best_copy(copies: &[UplinkCopy]) -> Option<usize> {
    copies
        .iter()
        .enumerate()
        .reduce(|best, cand| {
            let ord = cand
                .1
                .snr_db
                .total_cmp(&best.1.snr_db)
                .then(best.1.arrival_global_s.total_cmp(&cand.1.arrival_global_s))
                .then(best.1.gateway.cmp(&cand.1.gateway));
            if ord == std::cmp::Ordering::Greater {
                cand
            } else {
                best
            }
        })
        .map(|(idx, _)| idx)
}

/// A stable 64-bit digest of a frame's raw bytes (FNV-1a), used to key
/// the [`DedupCache`] alongside `(device, fcnt)`: the 16-bit frame
/// counter rolls over every 65 536 uplinks, so at scale an honest frame
/// can legitimately repeat a `(device, fcnt)` pair — but it cannot repeat
/// the pair *and* the exact frame bytes (payload, MIC) of the earlier
/// transmission, while a replayed copy repeats both.
pub fn payload_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// What a [`DedupCache`] says about a newly observed copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DedupOutcome {
    /// First copy of this `(device, fcnt, payload)` within the cache
    /// window.
    First,
    /// A copy of an uplink already observed.
    Duplicate {
        /// Arrival of the first observed copy, seconds.
        first_arrival_s: f64,
        /// Gateway that observed the first copy.
        first_gateway: usize,
        /// This copy's arrival minus the first, seconds. Fleet copies of
        /// one transmission differ by microseconds of propagation; a
        /// frame-delay replay shows up seconds-to-minutes late.
        gap_s: f64,
    },
}

/// A bounded cache of recently observed uplinks for cross-gateway
/// deduplication, keyed by `(device, fcnt, payload hash)` so dedup
/// state survives frame-counter rollover at scale (see [`payload_hash`]).
/// Oldest entries are evicted first.
#[derive(Debug, Clone)]
pub struct DedupCache {
    entries: HashMap<(u32, u16, u64), (f64, usize)>,
    order: std::collections::VecDeque<(u32, u16, u64)>,
    capacity: usize,
}

impl DedupCache {
    /// Creates a cache remembering up to `capacity` recent uplinks.
    pub fn new(capacity: usize) -> Self {
        DedupCache {
            entries: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of uplinks currently remembered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Every remembered uplink as `(dev, fcnt, payload hash, first
    /// arrival, first gateway)`, oldest first — replaying these through
    /// [`DedupCache::observe`] on an empty cache of the same capacity
    /// reproduces this cache exactly (state export for persistence).
    pub fn entries_in_order(&self) -> impl Iterator<Item = (u32, u16, u64, f64, usize)> + '_ {
        self.order.iter().map(|key| {
            let &(arrival, gateway) = self.entries.get(key).expect("order tracks entries");
            (key.0, key.1, key.2, arrival, gateway)
        })
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Observes a copy of `(dev_addr, fcnt)` with frame digest
    /// `payload_hash` (see [`payload_hash`]) arriving at
    /// `arrival_global_s` via `gateway` and reports whether it is the
    /// first copy or a duplicate of a remembered one. A post-rollover
    /// frame reusing an old counter value carries different bytes, so it
    /// is correctly reported as [`DedupOutcome::First`].
    pub fn observe(
        &mut self,
        dev_addr: u32,
        fcnt: u16,
        payload_hash: u64,
        arrival_global_s: f64,
        gateway: usize,
    ) -> DedupOutcome {
        let key = (dev_addr, fcnt, payload_hash);
        if let Some(&(first_arrival_s, first_gateway)) = self.entries.get(&key) {
            return DedupOutcome::Duplicate {
                first_arrival_s,
                first_gateway,
                gap_s: arrival_global_s - first_arrival_s,
            };
        }
        if self.entries.len() == self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (arrival_global_s, gateway));
        self.order.push_back(key);
        DedupOutcome::First
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{ClassADevice, DeviceConfig};
    use softlora_phy::{PhyConfig, SpreadingFactor};

    fn setup() -> (ClassADevice, Gateway) {
        let cfg = DeviceConfig::new(0x11, PhyConfig::uplink(SpreadingFactor::Sf7));
        let mut gw = Gateway::new();
        gw.provision(cfg.dev_addr, cfg.keys.clone());
        (ClassADevice::new(cfg), gw)
    }

    #[test]
    fn end_to_end_timestamping_accuracy() {
        let (mut dev, mut gw) = setup();
        // Record taken at device-local 10.0; device clock ~= global here.
        dev.sense(500, 10.0).unwrap();
        let tx = dev.try_transmit(12.0).unwrap();
        let arrival = 12.0 + tx.airtime_s + 3.5e-6; // propagation
        let verdict = gw.receive(&tx.bytes, arrival);
        let RxVerdict::Accepted(up) = verdict else { panic!("not accepted") };
        assert_eq!(up.records.len(), 1);
        // Reconstructed time should be ~ 10.0 + airtime (+ prop): the
        // elapsed field was computed at tx start, so the airtime appears
        // as reconstruction bias; still millisecond-scale for short frames?
        // No: airtime is tens of ms; the *structural* error here is
        // airtime + propagation because our device stamps elapsed at tx
        // start while the gateway stamps arrival at frame end.
        let err = up.records[0].global_time_s - 10.0;
        assert!(err > 0.0 && err < tx.airtime_s + 1e-3, "err {err}");
    }

    #[test]
    fn frame_end_referenced_arrival_removes_airtime_bias() {
        // A gateway that timestamps the frame *onset* (as SoftLoRa's PHY
        // timestamping does) removes the airtime bias entirely.
        let (mut dev, mut gw) = setup();
        dev.sense(500, 10.0).unwrap();
        let tx = dev.try_transmit(12.0).unwrap();
        let onset_arrival = 12.0 + 3.5e-6;
        let RxVerdict::Accepted(up) = gw.receive(&tx.bytes, onset_arrival) else {
            panic!("not accepted")
        };
        let err = (up.records[0].global_time_s - 10.0).abs();
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn counter_replay_rejected() {
        let (mut dev, mut gw) = setup();
        dev.sense(1, 0.0).unwrap();
        let tx = dev.try_transmit(1.0).unwrap();
        assert!(gw.receive(&tx.bytes, 1.1).is_accepted());
        // Bit-exact replay: rejected by the counter (the naive defence).
        match gw.receive(&tx.bytes, 5.0) {
            RxVerdict::Rejected(LorawanError::CounterReplay { .. }) => {}
            other => panic!("expected counter replay rejection, got {other:?}"),
        }
        assert_eq!(gw.accepted_count(), 1);
        assert_eq!(gw.rejected_count(), 1);
    }

    #[test]
    fn suppressed_original_makes_replay_pass() {
        // The frame-delay attack: the gateway never saw the original (it
        // was jammed), so the delayed replay has a *fresh* counter and is
        // accepted — with a wrong arrival time.
        let (mut dev, mut gw) = setup();
        dev.sense(42, 100.0).unwrap();
        let tx = dev.try_transmit(101.0).unwrap();
        // Original suppressed; replayer re-transmits τ = 30 s later.
        let tau = 30.0;
        let verdict = gw.receive(&tx.bytes, 101.0 + tx.airtime_s + tau);
        let RxVerdict::Accepted(up) = verdict else { panic!("replay should be accepted") };
        // Every reconstructed timestamp is off by ~τ.
        let err = up.records[0].global_time_s - 100.0;
        assert!((err - tau).abs() < 0.1, "timestamp shifted by {err}, want ~{tau}");
    }

    #[test]
    fn unknown_device_reported() {
        let (mut dev, _) = setup();
        let mut empty_gw = Gateway::new();
        dev.sense(1, 0.0).unwrap();
        let tx = dev.try_transmit(1.0).unwrap();
        match empty_gw.receive(&tx.bytes, 1.1) {
            RxVerdict::UnknownDevice { dev_addr } => assert_eq!(dev_addr, 0x11),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_rejected() {
        let mut gw = Gateway::new();
        assert!(!gw.receive(&[0u8; 4], 0.0).is_accepted());
        assert!(!gw.receive(&[0x40; 30], 0.0).is_accepted());
    }

    #[test]
    fn tampered_frame_rejected() {
        let (mut dev, mut gw) = setup();
        dev.sense(1, 0.0).unwrap();
        let mut tx = dev.try_transmit(1.0).unwrap();
        tx.bytes[10] ^= 0xFF;
        match gw.receive(&tx.bytes, 1.1) {
            RxVerdict::Rejected(LorawanError::BadMic) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn best_copy_prefers_snr_then_arrival_then_gateway() {
        let copies = [
            UplinkCopy { gateway: 0, snr_db: 3.0, arrival_global_s: 10.0 },
            UplinkCopy { gateway: 1, snr_db: 9.0, arrival_global_s: 10.000002 },
            UplinkCopy { gateway: 2, snr_db: 9.0, arrival_global_s: 10.000001 },
        ];
        // Highest SNR wins; among the 9 dB tie the earlier arrival wins.
        assert_eq!(best_copy(&copies), Some(2));
        let tie = [
            UplinkCopy { gateway: 5, snr_db: 4.0, arrival_global_s: 1.0 },
            UplinkCopy { gateway: 2, snr_db: 4.0, arrival_global_s: 1.0 },
        ];
        assert_eq!(best_copy(&tie), Some(1), "gateway index breaks full ties");
        assert_eq!(best_copy(&[]), None);
    }

    #[test]
    fn dedup_cache_flags_late_duplicates() {
        let mut cache = DedupCache::new(8);
        let h = payload_hash(&[0x40, 0x11, 0x22]);
        assert_eq!(cache.observe(7, 1, h, 100.0, 0), DedupOutcome::First);
        // Fleet copy: microseconds later at another gateway.
        match cache.observe(7, 1, h, 100.000004, 2) {
            DedupOutcome::Duplicate { first_gateway, gap_s, .. } => {
                assert_eq!(first_gateway, 0);
                assert!(gap_s < 1e-3);
            }
            other => panic!("{other:?}"),
        }
        // Frame-delay replay: the same counter and bytes, τ = 30 s late.
        match cache.observe(7, 1, h, 130.0, 0) {
            DedupOutcome::Duplicate { gap_s, .. } => assert!((gap_s - 30.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
        // A fresh counter is a fresh uplink.
        assert_eq!(cache.observe(7, 2, h, 200.0, 1), DedupOutcome::First);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn dedup_cache_survives_counter_rollover() {
        // After the 16-bit counter wraps, an honest device legitimately
        // reuses (dev, fcnt) — with different frame bytes. The payload
        // hash keeps that from being mistaken for a replayed duplicate,
        // while a bit-exact replay still collides.
        let mut cache = DedupCache::new(8);
        let pre_rollover = payload_hash(&[0x40, 0x01, 0xAA]);
        let post_rollover = payload_hash(&[0x40, 0x01, 0xBB]);
        assert_ne!(pre_rollover, post_rollover);
        assert_eq!(cache.observe(7, 5, pre_rollover, 100.0, 0), DedupOutcome::First);
        assert_eq!(
            cache.observe(7, 5, post_rollover, 900.0, 0),
            DedupOutcome::First,
            "post-rollover frame is a fresh uplink, not a τ = 800 s replay"
        );
        assert!(matches!(
            cache.observe(7, 5, pre_rollover, 950.0, 1),
            DedupOutcome::Duplicate { .. }
        ));
    }

    #[test]
    fn dedup_cache_evicts_oldest_at_capacity() {
        let mut cache = DedupCache::new(2);
        cache.observe(1, 1, 9, 10.0, 0);
        cache.observe(1, 2, 9, 20.0, 0);
        cache.observe(1, 3, 9, 30.0, 0); // evicts (1, 1)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.observe(1, 1, 9, 40.0, 0), DedupOutcome::First, "evicted entry forgotten");
        assert!(matches!(cache.observe(1, 3, 9, 50.0, 0), DedupOutcome::Duplicate { .. }));
    }

    #[test]
    fn multiple_devices_tracked_independently() {
        let cfg_a = DeviceConfig::new(0xA, PhyConfig::uplink(SpreadingFactor::Sf7));
        let cfg_b = DeviceConfig::new(0xB, PhyConfig::uplink(SpreadingFactor::Sf7));
        let mut gw = Gateway::new();
        gw.provision(0xA, cfg_a.keys.clone());
        gw.provision(0xB, cfg_b.keys.clone());
        let mut a = ClassADevice::new(cfg_a);
        let mut b = ClassADevice::new(cfg_b);
        a.sense(1, 0.0).unwrap();
        b.sense(2, 0.0).unwrap();
        let ta = a.try_transmit(1.0).unwrap();
        let tb = b.try_transmit(1.0).unwrap();
        assert!(gw.receive(&ta.bytes, 1.1).is_accepted());
        assert!(gw.receive(&tb.bytes, 1.1).is_accepted());
        assert!(gw.knows(0xA) && gw.knows(0xB) && !gw.knows(0xC));
    }
}
