//! Synchronization-free elapsed-time record encoding (paper §3.2).
//!
//! Instead of absolute timestamps, a device tags each buffered sensor
//! record with the *elapsed time* from the record's time of interest to the
//! moment of transmission, measured on its own (unsynchronised) clock.
//! With a 40 ppm crystal and a ≤ 4.1 minute buffer, 18 bits at 1 ms
//! resolution suffice, versus the 8 bytes of a full timestamp — the paper
//! computes that full timestamps would eat 27 % of a 30-byte frame's
//! payload.
//!
//! The gateway reconstructs the global time of interest as
//! `t_arrival − elapsed` (the one-hop propagation time being microseconds,
//! i.e. negligible at millisecond resolution).

use crate::LorawanError;

/// Number of bits in an encoded elapsed time.
pub const ELAPSED_BITS: u32 = 18;

/// Resolution of the elapsed-time field in seconds (1 ms).
pub const ELAPSED_RESOLUTION_S: f64 = 1e-3;

/// Maximum encodable elapsed time: `(2^18 − 1) ms ≈ 262 s ≈ 4.4 min`.
pub const MAX_ELAPSED_S: f64 = ((1u32 << ELAPSED_BITS) - 1) as f64 * ELAPSED_RESOLUTION_S;

/// A sensor record queued on a device: an opaque value plus the local time
/// of interest at which it was captured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorRecord {
    /// Sensor value (opaque to the timestamping machinery).
    pub value: u16,
    /// Local-clock time of interest, seconds.
    pub local_time_s: f64,
}

/// Codec packing `(value, elapsed)` records into frame payload bytes.
///
/// Layout per record: 2 bytes of value (LE) + 18 bits of elapsed time,
/// bit-packed; records are packed back to back and the tail is padded to a
/// whole byte.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElapsedCodec;

impl ElapsedCodec {
    /// Bytes needed for `n` records.
    pub fn encoded_len(n: usize) -> usize {
        // 16 bits value + 18 bits elapsed = 34 bits per record.
        (34 * n).div_ceil(8)
    }

    /// Encodes records relative to the transmission time `tx_local_s` (same
    /// clock as the records' times of interest).
    ///
    /// # Errors
    ///
    /// Returns [`LorawanError::OutOfRange`] if any record is older than
    /// [`MAX_ELAPSED_S`] or has a time of interest in the future.
    pub fn encode(records: &[SensorRecord], tx_local_s: f64) -> Result<Vec<u8>, LorawanError> {
        let mut bits = BitWriter::new();
        for r in records {
            let elapsed = tx_local_s - r.local_time_s;
            if elapsed < 0.0 {
                return Err(LorawanError::OutOfRange {
                    reason: "record time of interest is in the future",
                });
            }
            if elapsed > MAX_ELAPSED_S {
                return Err(LorawanError::OutOfRange {
                    reason: "record older than the 18-bit elapsed-time range (~4.4 min)",
                });
            }
            let ticks = (elapsed / ELAPSED_RESOLUTION_S).round() as u32;
            bits.write(r.value as u32, 16);
            bits.write(ticks, ELAPSED_BITS);
        }
        Ok(bits.into_bytes())
    }

    /// Decodes `n` records, returning `(value, elapsed_s)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`LorawanError::Malformed`] if the payload is too short for
    /// `n` records.
    pub fn decode(payload: &[u8], n: usize) -> Result<Vec<(u16, f64)>, LorawanError> {
        if payload.len() < Self::encoded_len(n) {
            return Err(LorawanError::Malformed { reason: "payload too short for record count" });
        }
        let mut bits = BitReader::new(payload);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let value = bits.read(16) as u16;
            let ticks = bits.read(ELAPSED_BITS);
            out.push((value, ticks as f64 * ELAPSED_RESOLUTION_S));
        }
        Ok(out)
    }

    /// Gateway-side reconstruction: the global time of interest of a record
    /// with `elapsed_s`, given the frame's arrival time on the gateway's
    /// (GPS-disciplined) clock.
    ///
    /// This is the synchronization-free timestamping equation the paper's
    /// whole security analysis revolves around: a frame-delay attack
    /// inflates `arrival_global_s` and silently shifts every reconstructed
    /// timestamp by the injected delay τ.
    pub fn reconstruct(arrival_global_s: f64, elapsed_s: f64) -> f64 {
        arrival_global_s - elapsed_s
    }
}

/// Overhead comparison of §3.2: fraction of an `n`-byte payload spent on
/// time information for full 8-byte timestamps vs 18-bit elapsed fields.
pub fn timestamp_overhead_fraction(payload_bytes: usize, full_timestamp: bool) -> f64 {
    if payload_bytes == 0 {
        return 0.0;
    }
    let bits = if full_timestamp { 64.0 } else { ELAPSED_BITS as f64 };
    (bits / 8.0) / payload_bytes as f64
}

struct BitWriter {
    bytes: Vec<u8>,
    bit: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { bytes: Vec::new(), bit: 0 }
    }

    fn write(&mut self, value: u32, nbits: u32) {
        for i in (0..nbits).rev() {
            let b = (value >> i) & 1;
            if self.bit == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (b as u8) << (7 - self.bit);
            self.bit = (self.bit + 1) % 8;
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn read(&mut self, nbits: u32) -> u32 {
        let mut v = 0u32;
        for _ in 0..nbits {
            let byte = self.bytes.get(self.pos / 8).copied().unwrap_or(0);
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u32;
            self.pos += 1;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The point of this test is pinning the constants to the paper's
    // prose, so asserting on constants is exactly what we want.
    #[allow(clippy::assertions_on_constants)]
    fn constants_match_paper() {
        // Paper: "18 bits will be sufficient to represent an elapsed time
        // with 1 ms resolution" for a 4.1-minute buffer.
        assert_eq!(ELAPSED_BITS, 18, "paper-prescribed field width");
        assert!(MAX_ELAPSED_S > 4.1 * 60.0, "max {MAX_ELAPSED_S}");
        assert!(MAX_ELAPSED_S < 5.0 * 60.0);
    }

    #[test]
    fn round_trip_single_record() {
        let records = [SensorRecord { value: 1234, local_time_s: 100.0 }];
        let bytes = ElapsedCodec::encode(&records, 130.5).unwrap();
        let decoded = ElapsedCodec::decode(&bytes, 1).unwrap();
        assert_eq!(decoded[0].0, 1234);
        assert!((decoded[0].1 - 30.5).abs() < 1e-3);
    }

    #[test]
    fn round_trip_many_records() {
        let records: Vec<SensorRecord> = (0..10)
            .map(|i| SensorRecord { value: i * 111, local_time_s: 50.0 + i as f64 * 3.7 })
            .collect();
        let tx = 95.0;
        let bytes = ElapsedCodec::encode(&records, tx).unwrap();
        assert_eq!(bytes.len(), ElapsedCodec::encoded_len(10));
        let decoded = ElapsedCodec::decode(&bytes, 10).unwrap();
        for (r, (v, e)) in records.iter().zip(decoded.iter()) {
            assert_eq!(*v, r.value);
            assert!((e - (tx - r.local_time_s)).abs() < 1e-3, "elapsed {e}");
        }
    }

    #[test]
    fn resolution_is_one_millisecond() {
        let r = [SensorRecord { value: 0, local_time_s: 0.0 }];
        let bytes = ElapsedCodec::encode(&r, 0.0123456).unwrap();
        let decoded = ElapsedCodec::decode(&bytes, 1).unwrap();
        assert!((decoded[0].1 - 0.012).abs() < 0.6e-3);
    }

    #[test]
    fn range_validation() {
        let future = [SensorRecord { value: 0, local_time_s: 10.0 }];
        assert!(ElapsedCodec::encode(&future, 5.0).is_err());
        let stale = [SensorRecord { value: 0, local_time_s: 0.0 }];
        assert!(ElapsedCodec::encode(&stale, MAX_ELAPSED_S + 1.0).is_err());
        // Exactly at the limit is fine.
        assert!(ElapsedCodec::encode(&stale, MAX_ELAPSED_S - 0.001).is_ok());
    }

    #[test]
    fn decode_validates_length() {
        assert!(ElapsedCodec::decode(&[0u8; 3], 1).is_err());
        assert!(ElapsedCodec::decode(&[0u8; 5], 1).is_ok());
    }

    #[test]
    fn encoded_len_is_34_bits_per_record() {
        assert_eq!(ElapsedCodec::encoded_len(0), 0);
        assert_eq!(ElapsedCodec::encoded_len(1), 5); // 34 bits -> 5 bytes
        assert_eq!(ElapsedCodec::encoded_len(4), 17); // 136 bits -> 17 bytes
    }

    #[test]
    fn reconstruction_equation() {
        // Gateway receives at t=1000.123 s; record was 2.5 s old.
        let t = ElapsedCodec::reconstruct(1000.123, 2.5);
        assert!((t - 997.623).abs() < 1e-12);
    }

    #[test]
    fn attack_shifts_reconstructed_time_by_tau() {
        // The vulnerability in one assertion: delaying the frame by τ
        // shifts the reconstructed timestamp by exactly τ.
        let tau = 5.0;
        let honest = ElapsedCodec::reconstruct(1000.0, 2.0);
        let attacked = ElapsedCodec::reconstruct(1000.0 + tau, 2.0);
        assert!((attacked - honest - tau).abs() < 1e-12);
    }

    #[test]
    fn overhead_fractions_match_paper() {
        // Paper: 8-byte timestamp in a 30-byte payload = 27 %.
        let full = timestamp_overhead_fraction(30, true);
        assert!((full - 0.2667).abs() < 0.005, "{full}");
        // 18-bit elapsed field: ~7.5 %.
        let elapsed = timestamp_overhead_fraction(30, false);
        assert!(elapsed < 0.08, "{elapsed}");
        assert_eq!(timestamp_overhead_fraction(0, true), 0.0);
    }

    #[test]
    fn bit_writer_reader_round_trip() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xFFFF, 16);
        w.write(0, 5);
        w.write(0x2AAAA, 18);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(16), 0xFFFF);
        assert_eq!(r.read(5), 0);
        assert_eq!(r.read(18), 0x2AAAA);
    }
}
