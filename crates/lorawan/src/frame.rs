//! LoRaWAN 1.0.2 data-frame format.
//!
//! Wire layout of a data frame (`PHYPayload`):
//!
//! ```text
//! | MHDR (1) | DevAddr (4, LE) | FCtrl (1) | FCnt (2, LE) | FPort (1) | FRMPayload (n) | MIC (4) |
//! ```
//!
//! `FRMPayload` is encrypted under `AppSKey`; the MIC covers everything
//! before it under `NwkSKey`. Join procedures are out of scope — devices
//! are provisioned ABP-style with [`DeviceKeys`].

use crate::LorawanError;
use softlora_crypto::lorawan::{compute_mic, crypt_frm_payload, verify_mic, Direction};

/// LoRaWAN message types (MHDR MType field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Unconfirmed data uplink (0b010).
    UnconfirmedUp,
    /// Confirmed data uplink (0b100).
    ConfirmedUp,
    /// Unconfirmed data downlink (0b011).
    UnconfirmedDown,
    /// Confirmed data downlink (0b101).
    ConfirmedDown,
}

impl FrameType {
    fn mhdr(self) -> u8 {
        let mtype = match self {
            FrameType::UnconfirmedUp => 0b010,
            FrameType::ConfirmedUp => 0b100,
            FrameType::UnconfirmedDown => 0b011,
            FrameType::ConfirmedDown => 0b101,
        };
        mtype << 5 // major = 0 (LoRaWAN R1)
    }

    fn from_mhdr(mhdr: u8) -> Result<Self, LorawanError> {
        match mhdr >> 5 {
            0b010 => Ok(FrameType::UnconfirmedUp),
            0b100 => Ok(FrameType::ConfirmedUp),
            0b011 => Ok(FrameType::UnconfirmedDown),
            0b101 => Ok(FrameType::ConfirmedDown),
            _ => Err(LorawanError::Malformed { reason: "unsupported message type" }),
        }
    }

    /// Whether this is an uplink type.
    pub fn is_uplink(self) -> bool {
        matches!(self, FrameType::UnconfirmedUp | FrameType::ConfirmedUp)
    }

    fn direction(self) -> Direction {
        if self.is_uplink() {
            Direction::Uplink
        } else {
            Direction::Downlink
        }
    }
}

/// ABP session keys for one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceKeys {
    /// Network session key (MIC).
    pub nwk_skey: [u8; 16],
    /// Application session key (payload encryption).
    pub app_skey: [u8; 16],
}

impl DeviceKeys {
    /// Derives deterministic per-device test keys from a device address
    /// (simulation convenience; real deployments provision random keys).
    pub fn derive_for_tests(dev_addr: u32) -> Self {
        let mut nwk = [0u8; 16];
        let mut app = [0u8; 16];
        for i in 0..16 {
            nwk[i] = (dev_addr.rotate_left(i as u32) as u8).wrapping_add(0x3A + i as u8);
            app[i] = (dev_addr.rotate_right(i as u32) as u8).wrapping_add(0xC5 ^ i as u8);
        }
        DeviceKeys { nwk_skey: nwk, app_skey: app }
    }
}

/// A parsed (decrypted, verified) LoRaWAN data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Message type.
    pub frame_type: FrameType,
    /// Device address.
    pub dev_addr: u32,
    /// 16-bit frame counter as transmitted.
    pub fcnt: u16,
    /// Application port.
    pub fport: u8,
    /// Decrypted application payload.
    pub payload: Vec<u8>,
}

impl DataFrame {
    /// Builds and serialises a frame: encrypts the payload and appends the
    /// MIC. Returns the complete PHY payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`LorawanError::OutOfRange`] for payloads longer than 222
    /// bytes (the EU868 SF7 limit, a conservative cap for all SFs).
    pub fn encode(&self, keys: &DeviceKeys) -> Result<Vec<u8>, LorawanError> {
        if self.payload.len() > 222 {
            return Err(LorawanError::OutOfRange { reason: "payload exceeds 222 bytes" });
        }
        let dir = self.frame_type.direction();
        let mut frm = self.payload.clone();
        crypt_frm_payload(&keys.app_skey, self.dev_addr, self.fcnt as u32, dir, &mut frm);

        let mut bytes = Vec::with_capacity(9 + frm.len() + 4);
        bytes.push(self.frame_type.mhdr());
        bytes.extend_from_slice(&self.dev_addr.to_le_bytes());
        bytes.push(0x00); // FCtrl: no ADR, no ACK, no FOpts
        bytes.extend_from_slice(&self.fcnt.to_le_bytes());
        bytes.push(self.fport);
        bytes.extend_from_slice(&frm);
        let mic = compute_mic(&keys.nwk_skey, self.dev_addr, self.fcnt as u32, dir, &bytes);
        bytes.extend_from_slice(&mic);
        Ok(bytes)
    }

    /// Parses frame bytes without verifying the MIC or decrypting — enough
    /// to read the claimed source address, which is what the SoftLoRa
    /// gateway needs before consulting its frequency-bias database
    /// (paper §7.2: "applied after the SoftLoRa gateway decodes the frame
    /// to obtain the claimed source node ID").
    ///
    /// # Errors
    ///
    /// Returns [`LorawanError::Malformed`] on truncated or unknown frames.
    pub fn peek_header(bytes: &[u8]) -> Result<(FrameType, u32, u16), LorawanError> {
        if bytes.len() < 13 {
            return Err(LorawanError::Malformed { reason: "frame shorter than minimum 13 bytes" });
        }
        let frame_type = FrameType::from_mhdr(bytes[0])?;
        let dev_addr = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
        let fcnt = u16::from_le_bytes([bytes[6], bytes[7]]);
        Ok((frame_type, dev_addr, fcnt))
    }

    /// Parses, MIC-verifies and decrypts frame bytes.
    ///
    /// `fcnt_high` supplies the upper 16 bits of the 32-bit counter used in
    /// the crypto blocks (0 for short-lived simulations).
    ///
    /// # Errors
    ///
    /// * [`LorawanError::Malformed`] on structural problems.
    /// * [`LorawanError::BadMic`] when authentication fails.
    pub fn decode(
        bytes: &[u8],
        keys: &DeviceKeys,
        fcnt_high: u16,
    ) -> Result<DataFrame, LorawanError> {
        let (frame_type, dev_addr, fcnt) = Self::peek_header(bytes)?;
        let fctrl = bytes[5];
        let fopts_len = (fctrl & 0x0F) as usize;
        if fopts_len != 0 {
            return Err(LorawanError::Malformed { reason: "FOpts not supported" });
        }
        let dir = frame_type.direction();
        let full_fcnt = ((fcnt_high as u32) << 16) | fcnt as u32;

        let mic_start = bytes.len() - 4;
        let mic: [u8; 4] = bytes[mic_start..]
            .try_into()
            .map_err(|_| LorawanError::Malformed { reason: "missing MIC" })?;
        if !verify_mic(&keys.nwk_skey, dev_addr, full_fcnt, dir, &bytes[..mic_start], &mic) {
            return Err(LorawanError::BadMic);
        }
        let fport = bytes[8];
        let mut payload = bytes[9..mic_start].to_vec();
        crypt_frm_payload(&keys.app_skey, dev_addr, full_fcnt, dir, &mut payload);
        Ok(DataFrame { frame_type, dev_addr, fcnt, fport, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        DataFrame {
            frame_type: FrameType::UnconfirmedUp,
            dev_addr: 0x2601_4B2A,
            fcnt: 42,
            fport: 1,
            payload: b"temperature=23.4".to_vec(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let keys = DeviceKeys::derive_for_tests(0x2601_4B2A);
        let bytes = frame().encode(&keys).unwrap();
        let decoded = DataFrame::decode(&bytes, &keys, 0).unwrap();
        assert_eq!(decoded, frame());
    }

    #[test]
    fn wire_layout() {
        let keys = DeviceKeys::derive_for_tests(1);
        let f = DataFrame {
            frame_type: FrameType::UnconfirmedUp,
            dev_addr: 0x0403_0201,
            fcnt: 0x1234,
            fport: 7,
            payload: vec![0xAA; 5],
        };
        let bytes = f.encode(&keys).unwrap();
        assert_eq!(bytes[0] >> 5, 0b010);
        assert_eq!(&bytes[1..5], &[0x01, 0x02, 0x03, 0x04]);
        assert_eq!(bytes[5], 0);
        assert_eq!(&bytes[6..8], &[0x34, 0x12]);
        assert_eq!(bytes[8], 7);
        assert_eq!(bytes.len(), 9 + 5 + 4);
    }

    #[test]
    fn payload_is_encrypted_on_the_wire() {
        let keys = DeviceKeys::derive_for_tests(9);
        let f = DataFrame { payload: b"plaintext!".to_vec(), ..frame() };
        let bytes = f.encode(&keys).unwrap();
        let wire_payload = &bytes[9..bytes.len() - 4];
        assert_ne!(wire_payload, b"plaintext!");
    }

    #[test]
    fn mic_detects_tampering() {
        let keys = DeviceKeys::derive_for_tests(0x2601_4B2A);
        let mut bytes = frame().encode(&keys).unwrap();
        bytes[10] ^= 0x01;
        assert_eq!(DataFrame::decode(&bytes, &keys, 0), Err(LorawanError::BadMic));
    }

    #[test]
    fn wrong_keys_fail_mic() {
        let keys = DeviceKeys::derive_for_tests(0x2601_4B2A);
        let other = DeviceKeys::derive_for_tests(0xDEAD_BEEF);
        let bytes = frame().encode(&keys).unwrap();
        assert_eq!(DataFrame::decode(&bytes, &other, 0), Err(LorawanError::BadMic));
    }

    #[test]
    fn bit_exact_replay_still_verifies() {
        // The property the paper's attack exploits.
        let keys = DeviceKeys::derive_for_tests(5);
        let bytes = frame().encode(&keys).unwrap();
        let replayed = bytes.clone();
        assert!(DataFrame::decode(&replayed, &keys, 0).is_ok());
    }

    #[test]
    fn peek_header_without_keys() {
        let keys = DeviceKeys::derive_for_tests(0x2601_4B2A);
        let bytes = frame().encode(&keys).unwrap();
        let (ft, addr, fcnt) = DataFrame::peek_header(&bytes).unwrap();
        assert_eq!(ft, FrameType::UnconfirmedUp);
        assert_eq!(addr, 0x2601_4B2A);
        assert_eq!(fcnt, 42);
    }

    #[test]
    fn truncated_frames_rejected() {
        assert!(DataFrame::peek_header(&[0x40; 5]).is_err());
        let keys = DeviceKeys::derive_for_tests(1);
        assert!(DataFrame::decode(&[0x40; 12], &keys, 0).is_err());
    }

    #[test]
    fn unknown_mtype_rejected() {
        let mut bytes = frame().encode(&DeviceKeys::derive_for_tests(0x2601_4B2A)).unwrap();
        bytes[0] = 0xE0; // proprietary
        assert!(matches!(DataFrame::peek_header(&bytes), Err(LorawanError::Malformed { .. })));
    }

    #[test]
    fn oversized_payload_rejected() {
        let keys = DeviceKeys::derive_for_tests(1);
        let f = DataFrame { payload: vec![0; 223], ..frame() };
        assert!(matches!(f.encode(&keys), Err(LorawanError::OutOfRange { .. })));
    }

    #[test]
    fn downlink_direction_crypto_differs() {
        let keys = DeviceKeys::derive_for_tests(7);
        let up = DataFrame { frame_type: FrameType::UnconfirmedUp, ..frame() };
        let down = DataFrame { frame_type: FrameType::UnconfirmedDown, ..frame() };
        let ub = up.encode(&keys).unwrap();
        let db = down.encode(&keys).unwrap();
        // Same payload, different keystream/MIC because of the direction bit.
        assert_ne!(ub[9..], db[9..]);
    }

    #[test]
    fn fcnt_high_mismatch_fails_mic() {
        let keys = DeviceKeys::derive_for_tests(3);
        let bytes = frame().encode(&keys).unwrap(); // encoded with high = 0
        assert!(DataFrame::decode(&bytes, &keys, 1).is_err());
    }
}
