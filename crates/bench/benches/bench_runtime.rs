//! Criterion benchmarks for the streaming flowgraph runtime.
//!
//! Two layers:
//!
//! 1. `ring_*` — raw SPSC ring throughput across a thread pair, singleton
//!    vs batched push/pop (the transport cost under every flowgraph
//!    edge);
//! 2. `stream_*` — the gateway + network-server stack end to end:
//!    the same pinned group stream through `NetworkServer::process_batch`
//!    (the rayon batch path) and through the flowgraph
//!    (source → per-gateway fronts → server sink) at 1 and 4 scheduler
//!    workers, in frames (per-gateway copies) per second.

use criterion::{criterion_group, criterion_main, Criterion};
use softlora::NetworkServer;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_runtime::ring::channel;
use softlora_runtime::{FlowgraphBuilder, Scheduler};
use softlora_sim::{FleetDeployment, FrameSource, HonestChannel, Scenario, UplinkDeliveries};
use std::hint::black_box;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

const RING_ITEMS: u64 = 200_000;

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_ring");
    group.sample_size(10);

    group.bench_function(format!("ring_spsc_singleton_{RING_ITEMS}"), |b| {
        b.iter(|| {
            let (mut tx, mut rx) = channel::<u64, 1024>();
            let producer = std::thread::spawn(move || {
                for k in 0..RING_ITEMS {
                    let mut item = k;
                    while let Err(back) = tx.push(item) {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            });
            let mut sum = 0u64;
            let mut seen = 0u64;
            while seen < RING_ITEMS {
                if let Some(v) = rx.pop() {
                    sum = sum.wrapping_add(v);
                    seen += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            producer.join().unwrap();
            black_box(sum)
        })
    });

    group.bench_function(format!("ring_spsc_batched_{RING_ITEMS}"), |b| {
        b.iter(|| {
            let (mut tx, mut rx) = channel::<u64, 1024>();
            let producer = std::thread::spawn(move || {
                let mut pending: Vec<u64> = Vec::with_capacity(256);
                let mut next = 0u64;
                while next < RING_ITEMS || !pending.is_empty() {
                    while pending.len() < 256 && next < RING_ITEMS {
                        pending.push(next);
                        next += 1;
                    }
                    if tx.push_batch(&mut pending) == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            let mut out: Vec<u64> = Vec::with_capacity(256);
            let mut sum = 0u64;
            let mut seen = 0u64;
            while seen < RING_ITEMS {
                if rx.pop_batch(&mut out, 256) == 0 {
                    std::thread::yield_now();
                }
                seen += out.len() as u64;
                for v in out.drain(..) {
                    sum = sum.wrapping_add(v);
                }
            }
            producer.join().unwrap();
            black_box(sum)
        })
    });

    group.finish();
}

/// A fixed stream of uplink groups from the fleet scenario engine.
fn pinned_groups(
    devices: usize,
    gateways: usize,
    until_s: f64,
) -> (Vec<UplinkDeliveries>, Scenario) {
    let fleet = FleetDeployment::with_gateways(gateways);
    let mut scenario = Scenario::new_fleet(
        phy(),
        fleet.medium(),
        fleet.gateway_positions(),
        Box::new(HonestChannel),
    );
    for (k, pos) in fleet.device_positions(devices, 42).iter().enumerate() {
        scenario.add_device(0x2601_6000 + k as u32, *pos, 60.0, k as u64);
    }
    let mut groups = Vec::new();
    scenario.run(until_s, |u| groups.push(u.clone()));
    (groups, scenario)
}

fn build_server(scenario: &Scenario, gateways: usize) -> NetworkServer {
    let mut builder = NetworkServer::builder(phy()).adc_quantisation(false).warmup_frames(2);
    for g in 0..gateways {
        builder = builder.gateway(g as u64);
    }
    for k in 0..scenario.devices() {
        let cfg = scenario.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    builder.build()
}

fn bench_streaming_vs_batch(c: &mut Criterion) {
    let gateways = 2;
    let (groups, scenario) = pinned_groups(4, gateways, 900.0);
    let copies: usize = groups.iter().map(|g| g.copies.len()).sum();

    let mut group = c.benchmark_group("runtime_stream");
    group.sample_size(10);

    group.bench_function(format!("process_batch_{copies}frames"), |b| {
        b.iter(|| {
            let mut server = build_server(&scenario, gateways);
            let verdicts = server.process_batch(black_box(&groups)).expect("batch pipeline");
            black_box(verdicts.len())
        })
    });

    for workers in [1usize, 4] {
        group.bench_function(format!("flowgraph_{workers}workers_{copies}frames"), |b| {
            b.iter(|| {
                let (fronts, sink) = build_server(&scenario, gateways).into_streaming();
                let mut fg = FlowgraphBuilder::new();
                let src = fg.source(FrameSource::from_groups(groups.clone()));
                let parts: Vec<_> = fronts.into_iter().map(|front| fg.stage(src, front)).collect();
                fg.sink(&parts, sink);
                let report = Scheduler::new(workers).run(fg.build().expect("valid flowgraph"));
                black_box(report.block("server-sink").expect("sink report").items_in)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ring, bench_streaming_vs_batch);
criterion_main!(benches);
