//! Wire-protocol microbenchmarks: `PUSH_DATA` encode / decode throughput
//! at realistic batch shapes, and the full encode→decode round trip the
//! listener pays per datagram. No sockets — this isolates the codec cost
//! from kernel scheduling so regressions in the framing layer are visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use softlora_net::protocol::{
    decode_frame, encode_frame, encode_frame_into, Frame, PushData, WireDelivery, WireUplink,
};
use softlora_store::Encoder;

/// One realistic uplink copy: a 23-byte LoRaWAN frame with full radio
/// metadata, as the export layer emits for every fleet gateway.
fn mk_uplink(uplink: u64, copy_index: u16, copies_total: u16) -> WireUplink {
    WireUplink {
        uplink,
        dev_addr: 0x2601_5000,
        tx_start_global_s: 1500.0 + uplink as f64 * 300.0,
        airtime_s: 0.0616,
        copies_total,
        copy_index,
        delivery: Some(WireDelivery {
            bytes: vec![0x40; 23],
            dev_addr: 0x2601_5000,
            arrival_global_s: 1500.0 + uplink as f64 * 300.0 + 1.2e-3,
            snr_db: 7.5,
            carrier_bias_hz: -22_000.0,
            carrier_phase: 0.4,
            sf: 7,
            jamming: None,
            is_replay: false,
        }),
    }
}

fn mk_push_data(copies: usize) -> Frame {
    Frame::PushData(PushData {
        gateway: 17,
        seq: 42,
        watermark: 9,
        uplinks: (0..copies).map(|k| mk_uplink(10 + k as u64 / 4, (k % 4) as u16, 4)).collect(),
    })
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_protocol");
    for &copies in &[1usize, 8, 64] {
        let frame = mk_push_data(copies);
        let encoded = encode_frame(&frame);

        // The loadgen's send path: clear + encode into a reused buffer.
        let mut scratch = Encoder::new();
        group.bench_function(format!("encode_push_data_{copies}"), |b| {
            b.iter(|| {
                scratch.clear();
                encode_frame_into(black_box(&frame), &mut scratch);
                black_box(scratch.len())
            })
        });

        // The listener's receive path: CRC + parse into owned frames.
        group.bench_function(format!("decode_push_data_{copies}"), |b| {
            b.iter(|| decode_frame(black_box(&encoded)).expect("decode"))
        });

        group.bench_function(format!("round_trip_push_data_{copies}"), |b| {
            b.iter(|| {
                scratch.clear();
                encode_frame_into(black_box(&frame), &mut scratch);
                decode_frame(scratch.as_bytes()).expect("decode")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
