//! Criterion benchmarks for the CSS modem: frame modulation and the full
//! dechirp-FFT demodulation path, per spreading factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softlora_dsp::Complex;
use softlora_phy::demodulator::Demodulator;
use softlora_phy::modulator::Modulator;
use softlora_phy::{PhyConfig, SpreadingFactor};
use std::hint::black_box;

fn bench_modulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("modulate_20B");
    for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf9] {
        let m = Modulator::new(PhyConfig::uplink(sf), 1).expect("modulator");
        group.bench_with_input(BenchmarkId::from_parameter(sf), &m, |b, m| {
            b.iter(|| m.modulate(black_box(b"20-byte-payload-data"), -20e3, 0.3, 1.0))
        });
    }
    group.finish();
}

fn bench_demodulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("demodulate_20B");
    group.sample_size(20);
    for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf9] {
        let cfg = PhyConfig::uplink(sf);
        let m = Modulator::new(cfg, 1).expect("modulator");
        let d = Demodulator::new(cfg, 1).expect("demodulator");
        let frame = m.modulate(b"20-byte-payload-data", -20e3, 0.3, 1.0).expect("frame");
        let mut capture = vec![Complex::ZERO; 64];
        capture.extend_from_slice(&frame.samples);
        capture.extend(vec![Complex::ZERO; 256]);
        group.bench_with_input(BenchmarkId::from_parameter(sf), &(d, capture), |b, (d, cap)| {
            b.iter(|| d.demodulate(black_box(cap), 64).expect("demod"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modulate, bench_demodulate);
criterion_main!(benches);
