//! Criterion benchmarks for the durable sharded device-state store.
//!
//! Three questions:
//!
//! 1. raw WAL append throughput — what one commit record costs at the
//!    storage layer, across record sizes and with segment rotation
//!    (`wal_append_*`);
//! 2. recovery cost — reopening a shard with a snapshot plus a WAL tail
//!    of various lengths (`recovery_*`);
//! 3. what the server tail costs end to end: sequential (1 shard) versus
//!    sharded tails, in memory and with persistence on
//!    (`server_tail_*`).

use criterion::{criterion_group, criterion_main, Criterion};
use softlora::NetworkServer;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::{FleetDeployment, HonestChannel, Scenario, UplinkDeliveries};
use softlora_store::{test_dir, ShardWal, WalOptions};
use std::hint::black_box;
use std::path::Path;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_wal");
    group.sample_size(10);
    for record_bytes in [64usize, 256, 1024] {
        group.bench_function(format!("wal_append_1k_records_{record_bytes}B"), |b| {
            let payload = vec![0xA5u8; record_bytes];
            b.iter(|| {
                let dir = test_dir("bench-append");
                let mut wal = ShardWal::open(
                    &dir,
                    WalOptions { segment_bytes: 1 << 18, ..WalOptions::default() },
                )
                .unwrap();
                for _ in 0..1000 {
                    wal.append(black_box(&payload)).unwrap();
                }
                wal.flush().unwrap();
                drop(wal);
                std::fs::remove_dir_all(&dir).ok();
            })
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_recovery");
    group.sample_size(10);
    for (records, with_snapshot) in [(1000usize, false), (1000, true), (5000, false)] {
        // Build the shard once; recovery (open + replay) is what's timed.
        let dir = test_dir("bench-recovery");
        {
            let mut wal = ShardWal::open(
                &dir,
                WalOptions { segment_bytes: 1 << 18, ..WalOptions::default() },
            )
            .unwrap();
            let payload = vec![0x5Au8; 256];
            if with_snapshot {
                for _ in 0..records / 2 {
                    wal.append(&payload).unwrap();
                }
                wal.install_snapshot(&vec![0u8; 64 * 1024]).unwrap();
                for _ in 0..records / 2 {
                    wal.append(&payload).unwrap();
                }
            } else {
                for _ in 0..records {
                    wal.append(&payload).unwrap();
                }
            }
        }
        let label = if with_snapshot { "snapshot_plus_tail" } else { "wal_only" };
        group.bench_function(format!("recovery_{records}rec_{label}"), |b| {
            b.iter(|| {
                let mut wal = ShardWal::open(
                    black_box(&dir),
                    WalOptions { segment_bytes: 1 << 18, ..WalOptions::default() },
                )
                .unwrap();
                let recovery = wal.take_recovery();
                black_box(recovery.records.len())
            })
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn pinned_groups(devices: usize) -> Vec<UplinkDeliveries> {
    let fleet = FleetDeployment::with_gateways(2);
    let mut s = Scenario::new_fleet(
        phy(),
        fleet.medium(),
        fleet.gateway_positions(),
        Box::new(HonestChannel),
    );
    for (k, pos) in fleet.device_positions(devices, 42).iter().enumerate() {
        s.add_device(0x2601_6000 + k as u32, *pos, 120.0, k as u64);
    }
    let mut groups = Vec::new();
    let mut scenario = s;
    scenario.run(1800.0, |u| groups.push(u.clone()));
    groups
}

fn build_server(groups_src: &Scenario, shards: usize, dir: Option<&Path>) -> NetworkServer {
    let mut b = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(2)
        .gateway(0)
        .gateway(1)
        .shards(shards);
    for k in 0..groups_src.devices() {
        let cfg = groups_src.device_config(k).clone();
        b = b.provision(cfg.dev_addr, cfg.keys);
    }
    if let Some(dir) = dir {
        b = b.with_persistence(dir);
    }
    b.build()
}

fn bench_server_tail(c: &mut Criterion) {
    let devices = 8;
    let groups = pinned_groups(devices);
    let scenario = {
        let fleet = FleetDeployment::with_gateways(2);
        let mut s = Scenario::new_fleet(
            phy(),
            fleet.medium(),
            fleet.gateway_positions(),
            Box::new(HonestChannel),
        );
        for (k, pos) in fleet.device_positions(devices, 42).iter().enumerate() {
            s.add_device(0x2601_6000 + k as u32, *pos, 120.0, k as u64);
        }
        s
    };
    let mut group = c.benchmark_group("server_tail");
    group.sample_size(10);
    for shards in [1usize, 4] {
        group.bench_function(format!("server_tail_{shards}shard_memory"), |b| {
            b.iter(|| {
                let mut server = build_server(&scenario, shards, None);
                let verdicts = server.process_batch(black_box(&groups)).unwrap();
                verdicts.len()
            })
        });
        group.bench_function(format!("server_tail_{shards}shard_persistent"), |b| {
            b.iter(|| {
                let dir = test_dir("bench-tail");
                let mut server = build_server(&scenario, shards, Some(&dir));
                let verdicts = server.process_batch(black_box(&groups)).unwrap();
                drop(server);
                std::fs::remove_dir_all(&dir).ok();
                verdicts.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wal_append, bench_recovery, bench_server_tail);
criterion_main!(benches);
