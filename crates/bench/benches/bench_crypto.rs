//! Criterion benchmarks for the cryptographic substrate: AES-128 blocks,
//! CMAC tags and full LoRaWAN frame encode/decode.

use criterion::{criterion_group, criterion_main, Criterion};
use softlora_crypto::{Aes128, Cmac};
use softlora_lorawan::{DataFrame, DeviceKeys, FrameType};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let aes = Aes128::new(&[0x42; 16]);
    let cmac = Cmac::new(&[0x42; 16]);
    let block = [0xA5u8; 16];
    let msg = [0x5Au8; 64];

    let mut group = c.benchmark_group("crypto");
    group.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)))
    });
    group.bench_function("aes128_decrypt_block", |b| {
        b.iter(|| aes.decrypt_block(black_box(&block)))
    });
    group.bench_function("cmac_64B", |b| b.iter(|| cmac.compute(black_box(&msg))));
    group.finish();
}

fn bench_frames(c: &mut Criterion) {
    let keys = DeviceKeys::derive_for_tests(0x2601_0001);
    let frame = DataFrame {
        frame_type: FrameType::UnconfirmedUp,
        dev_addr: 0x2601_0001,
        fcnt: 7,
        fport: 1,
        payload: vec![0x11; 30],
    };
    let bytes = frame.encode(&keys).expect("encode");

    let mut group = c.benchmark_group("lorawan_frame_30B");
    group.bench_function("encode", |b| b.iter(|| frame.encode(black_box(&keys))));
    group.bench_function("decode", |b| {
        b.iter(|| DataFrame::decode(black_box(&bytes), &keys, 0).expect("decode"))
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_frames);
criterion_main!(benches);
