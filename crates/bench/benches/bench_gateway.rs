//! Criterion benchmarks for the SoftLoRa gateway pipeline.
//!
//! Three questions:
//!
//! 1. the cost of being attack-aware per delivery (`process_delivery_sf7`:
//!    capture + AIC timestamp + FB estimate + replay check + LoRaWAN
//!    verify);
//! 2. what the staged refactor bought per frame — the monolithic gateway
//!    ran the AIC onset picker **twice** per frame (once for the
//!    timestamp, once for the FB window); `front_half_single_pick` versus
//!    `front_half_with_redundant_pick` measures exactly that delta;
//! 3. what batching buys — `sequential_16` versus `batch_16` runs the
//!    same 16-delivery stream through a `process` loop and through
//!    `process_batch`'s parallel front half.

use criterion::{criterion_group, criterion_main, Criterion};
use softlora::SoftLoraGateway;
use softlora_lorawan::{ClassADevice, DeviceConfig};
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::Delivery;
use std::hint::black_box;

fn mk_gateway_and_stream(n: usize) -> (SoftLoraGateway, Vec<Delivery>) {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let dev_cfg = DeviceConfig::new(0x2601_0001, phy);
    let mut dev = ClassADevice::new(dev_cfg.clone());
    let mut gw = SoftLoraGateway::builder(phy)
        .adc_quantisation(false)
        .seed(3)
        .provision(dev_cfg.dev_addr, dev_cfg.keys.clone())
        .build();

    let mut mk_delivery = |t: f64, fcnt_time: f64| -> Delivery {
        dev.sense(1, fcnt_time).expect("sense");
        let tx = dev.try_transmit(t).expect("tx");
        Delivery {
            bytes: tx.bytes,
            dev_addr: dev_cfg.dev_addr,
            arrival_global_s: t + 4e-6,
            snr_db: 10.0,
            carrier_bias_hz: -22_000.0,
            carrier_phase: 0.4,
            sf: phy.sf,
            jamming: None,
            is_replay: false,
        }
    };
    // Warm the FB database so the benchmarks measure the steady state.
    for k in 0..5 {
        let d = mk_delivery(100.0 + 200.0 * k as f64, 99.0 + 200.0 * k as f64);
        gw.process(&d).expect("warmup");
    }
    // Representative steady-state deliveries. Re-processing them trips the
    // frame-counter replay guard, which still exercises the whole SDR +
    // DSP front half of the pipeline (the expensive part).
    let stream: Vec<Delivery> =
        (0..n).map(|k| mk_delivery(2000.0 + 200.0 * k as f64, 1999.0 + 200.0 * k as f64)).collect();
    (gw, stream)
}

fn bench_pipeline(c: &mut Criterion) {
    let (mut gw, stream) = mk_gateway_and_stream(1);
    let d = stream[0].clone();

    let mut group = c.benchmark_group("softlora_gateway");
    group.sample_size(20);
    group.bench_function("process_delivery_sf7", |b| {
        b.iter(|| gw.process(black_box(&d)).expect("process"))
    });

    // The per-frame win of the staged refactor: the front half picks the
    // onset once; the monolithic gateway effectively ran it twice.
    let pipeline = gw.pipeline();
    group.bench_function("front_half_single_pick", |b| {
        b.iter(|| pipeline.front_half(black_box(&d), 1_000).expect("front half"))
    });
    let capture = pipeline.capture.synthesise(pipeline.config(), &d, 1_000).expect("capture");
    group.bench_function("front_half_with_redundant_pick", |b| {
        b.iter(|| {
            let front = pipeline.front_half(black_box(&d), 1_000).expect("front half");
            // The second pick the old monolith paid for per frame.
            let again = pipeline
                .onset
                .pick(black_box(&capture.capture), d.arrival_global_s)
                .expect("redundant pick");
            (front, again)
        })
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("softlora_gateway_batch");
    group.sample_size(10);

    let (mut gw, stream) = mk_gateway_and_stream(16);
    group.bench_function("sequential_16", |b| {
        b.iter(|| {
            for d in &stream {
                gw.process(black_box(d)).expect("process");
            }
        })
    });

    let (mut gw, stream) = mk_gateway_and_stream(16);
    group.bench_function("batch_16", |b| {
        b.iter(|| gw.process_batch(black_box(&stream)).expect("batch"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_batch);
criterion_main!(benches);
