//! Criterion benchmark for the full SoftLoRa per-frame pipeline — the cost
//! of being attack-aware: capture + AIC timestamp + FB estimate + LoRaWAN
//! verify + replay check for one delivery.

use criterion::{criterion_group, criterion_main, Criterion};
use softlora::{SoftLoraConfig, SoftLoraGateway};
use softlora_lorawan::{ClassADevice, DeviceConfig};
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::Delivery;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let dev_cfg = DeviceConfig::new(0x2601_0001, phy);
    let mut dev = ClassADevice::new(dev_cfg.clone());
    let mut cfg = SoftLoraConfig::new(phy);
    cfg.adc_quantisation = false;
    let mut gw = SoftLoraGateway::new(cfg, 3);
    gw.provision(dev_cfg.dev_addr, dev_cfg.keys.clone());

    // Warm the FB database so the benchmark measures the steady state.
    let mut mk_delivery = |t: f64, fcnt_time: f64| -> Delivery {
        dev.sense(1, fcnt_time).expect("sense");
        let tx = dev.try_transmit(t).expect("tx");
        Delivery {
            bytes: tx.bytes,
            dev_addr: dev_cfg.dev_addr,
            arrival_global_s: t + 4e-6,
            snr_db: 10.0,
            carrier_bias_hz: -22_000.0,
            carrier_phase: 0.4,
            sf: phy.sf,
            jamming: None,
            is_replay: false,
        }
    };
    for k in 0..5 {
        let d = mk_delivery(100.0 + 200.0 * k as f64, 99.0 + 200.0 * k as f64);
        gw.process(&d).expect("warmup");
    }
    // A representative steady-state delivery. Processing it repeatedly
    // trips the frame-counter replay guard, which still exercises the
    // whole SDR + DSP front half of the pipeline (the expensive part).
    let d = mk_delivery(2000.0, 1999.0);

    let mut group = c.benchmark_group("softlora_gateway");
    group.sample_size(20);
    group.bench_function("process_delivery_sf7", |b| {
        b.iter(|| gw.process(black_box(&d)).expect("process"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
