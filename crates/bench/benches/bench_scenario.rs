//! Criterion benchmarks for the fleet scenario engine and the network
//! server.
//!
//! Two questions:
//!
//! 1. how fast the discrete-event engine turns device populations into
//!    delivery groups across a devices × gateways grid (pure simulation,
//!    no DSP) — `engine_*`;
//! 2. what multi-gateway dedup costs per uplink at the server, where the
//!    per-copy DSP front half dominates — `server_batch_*`.

use criterion::{criterion_group, criterion_main, Criterion};
use softlora::NetworkServer;
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::{FleetDeployment, HonestChannel, Scenario, UplinkDeliveries};
use std::hint::black_box;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

fn build_scenario(devices: usize, gateways: usize) -> Scenario {
    let fleet = FleetDeployment::with_gateways(gateways);
    let mut s = Scenario::new_fleet(
        phy(),
        fleet.medium(),
        fleet.gateway_positions(),
        Box::new(HonestChannel),
    );
    for (k, pos) in fleet.device_positions(devices, 42).iter().enumerate() {
        s.add_device(0x2601_6000 + k as u32, *pos, 60.0, k as u64);
    }
    s
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_engine");
    group.sample_size(10);
    for (devices, gateways) in [(10, 1), (10, 4), (50, 1), (50, 4), (200, 4)] {
        group.bench_function(format!("engine_{devices}dev_{gateways}gw"), |b| {
            b.iter(|| {
                let mut s = build_scenario(devices, gateways);
                let mut copies = 0u64;
                s.run(black_box(1800.0), |u| copies += u.copies.len() as u64);
                copies
            })
        });
    }
    group.finish();
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_server");
    group.sample_size(10);
    for gateways in [1usize, 2] {
        // Pre-collect a fixed stream of groups, then measure the server.
        let mut scenario = build_scenario(4, gateways);
        let mut builder = NetworkServer::builder(phy()).adc_quantisation(false);
        for g in 0..gateways {
            builder = builder.gateway(g as u64);
        }
        for k in 0..scenario.devices() {
            let cfg = scenario.device_config(k).clone();
            builder = builder.provision(cfg.dev_addr, cfg.keys);
        }
        let mut groups: Vec<UplinkDeliveries> = Vec::new();
        scenario.run(300.0, |u| groups.push(u.clone()));
        let mut server = builder.build();
        group.bench_function(format!("server_batch_{}uplinks_{gateways}gw", groups.len()), |b| {
            b.iter(|| server.process_batch(black_box(&groups)).expect("server pipeline"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_server);
criterion_main!(benches);
