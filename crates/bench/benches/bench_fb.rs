//! Criterion benchmarks for the three FB estimators — the ablation behind
//! the paper's remark that the least-squares search "has higher
//! computation overhead" than the closed-form regression (their scipy DE
//! took 0.69 s on a Raspberry Pi).

use criterion::{criterion_group, criterion_main, Criterion};
use softlora::fb_estimator::{FbEstimator, FbMethod};
use softlora_bench::common;
use softlora_phy::{PhyConfig, SpreadingFactor};
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let estimator = FbEstimator::new(&phy, 2.4e6);
    let cap = common::capture(&phy, 2, -22_000.0, 1.0, 400, 1);
    let noisy = common::with_noise(&cap, 0.0, false, 2);

    let mut group = c.benchmark_group("fb_estimation_sf7");
    group.bench_function("linear_regression", |b| {
        b.iter(|| {
            estimator
                .estimate_from_capture(
                    black_box(&noisy),
                    noisy.true_onset,
                    FbMethod::LinearRegression,
                    1.0,
                )
                .expect("lr")
        })
    });
    group.bench_function("matched_filter", |b| {
        b.iter(|| {
            estimator
                .estimate_from_capture(
                    black_box(&noisy),
                    noisy.true_onset,
                    FbMethod::MatchedFilter,
                    1.0,
                )
                .expect("mf")
        })
    });
    group.sample_size(10);
    group.bench_function("differential_evolution", |b| {
        b.iter(|| {
            estimator
                .estimate_from_capture(
                    black_box(&noisy),
                    noisy.true_onset,
                    FbMethod::DifferentialEvolution,
                    1.0,
                )
                .expect("de")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
