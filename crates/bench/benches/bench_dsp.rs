//! Criterion benchmarks for the DSP substrate: FFT, Hilbert envelope and
//! the onset pickers — the per-frame cost of SoftLoRa's PHY timestamping.
//!
//! The `fft` group times the planner path (what the signal path now
//! runs) against the self-contained reference transform, and the
//! `onset_pickers` group times the scratch-backed pickers against their
//! allocating ancestors — the two layers of the allocation-free refactor.
//! The `fft_kernels`, `fft_real`, `dechirp` and `fft_batched` groups
//! time the vector-fast kernels (fused-stage schedule, N/2 real-input
//! transform, chunked dechirp fold, batched multi-frame transforms)
//! against their reference counterparts; `dsp_report` runs the same
//! comparisons as a CI artifact (`BENCH_dsp.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softlora_dsp::aic::{aic_onset_with, aic_pick, power_aic_onset_with, power_aic_pick};
use softlora_dsp::envelope::EnvelopeDetector;
use softlora_dsp::fft::{fft_forward, fft_in_place, FftPlan};
use softlora_dsp::hilbert::envelope;
use softlora_dsp::kernels::dechirp_fold_into;
use softlora_dsp::{Complex, DspScratch, FftKernel, FftPlanner};
use std::hint::black_box;

fn tone(n: usize) -> Vec<Complex> {
    (0..n).map(|i| Complex::cis(0.13 * i as f64)).collect()
}

fn onset_trace(n: usize) -> (Vec<f64>, Vec<f64>) {
    let i: Vec<f64> =
        (0..n).map(|k| if k >= n / 3 { (0.4 * k as f64).cos() } else { 0.01 }).collect();
    let q: Vec<f64> =
        (0..n).map(|k| if k >= n / 3 { (0.4 * k as f64).sin() } else { 0.01 }).collect();
    (i, q)
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [1024usize, 4096, 16384] {
        let data = tone(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| fft_forward(black_box(data)))
        });
    }
    group.finish();
}

/// The planner's two wins, isolated: cached twiddles versus per-call
/// `sin`/`cos`, and a reused buffer versus a fresh allocation per call.
fn bench_fft_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_planner");
    for n in [512usize, 4096] {
        let data = tone(n);
        group.bench_with_input(BenchmarkId::new("reference_in_place", n), &data, |b, data| {
            let mut buf = data.clone();
            b.iter(|| {
                buf.copy_from_slice(black_box(data));
                fft_in_place(&mut buf);
            })
        });
        group.bench_with_input(BenchmarkId::new("planned_in_place", n), &data, |b, data| {
            let mut planner = FftPlanner::new();
            let plan = planner.plan_arc(n);
            let mut buf = data.clone();
            b.iter(|| {
                buf.copy_from_slice(black_box(data));
                plan.forward(&mut buf);
            })
        });
    }
    group.finish();
}

/// The fused-schedule FFT against the reference schedule, plan for plan.
fn bench_fft_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_kernels");
    for n in [4096usize, 16384] {
        let data = tone(n);
        for kernel in [FftKernel::Reference, FftKernel::Fused] {
            let label = format!("{kernel:?}").to_lowercase();
            group.bench_with_input(BenchmarkId::new(label, n), &data, |b, data| {
                let plan = FftPlan::with_kernel(n, kernel);
                let mut buf = data.clone();
                b.iter(|| {
                    buf.copy_from_slice(black_box(data));
                    plan.forward(&mut buf);
                })
            });
        }
    }
    group.finish();
}

/// The real-input transform: N/2 complex-FFT trick vs the zero-imag
/// embed both paths ran before.
fn bench_fft_real(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_real");
    for n in [4096usize, 16384] {
        let trace: Vec<f64> = (0..n).map(|k| (0.13 * k as f64).cos()).collect();
        for kernel in [FftKernel::Reference, FftKernel::Fused] {
            let label = format!("{kernel:?}").to_lowercase();
            group.bench_with_input(BenchmarkId::new(label, n), &trace, |b, trace| {
                let mut planner = FftPlanner::with_kernel(kernel);
                let mut out = Vec::new();
                // Build the plans outside the measured loop.
                planner.forward_real_into(trace, &mut out);
                b.iter(|| planner.forward_real_into(black_box(trace), &mut out))
            });
        }
    }
    group.finish();
}

/// The fused dechirp(+fold) kernel on an SF7-shaped window: conjugate
/// multiply by the reference chirp and boxcar-fold `os` polyphase
/// samples per chip.
fn bench_dechirp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dechirp");
    // SF7 at the SDR rate: 128 chips, 19 samples per chip.
    let (chips, os) = (128usize, 19usize);
    let n = chips * os;
    let window = tone(n);
    let reference: Vec<Complex> = (0..n).map(|i| Complex::cis(-0.07 * i as f64)).collect();
    for kernel in [FftKernel::Reference, FftKernel::Fused] {
        let label = format!("{kernel:?}").to_lowercase();
        group.bench_function(format!("{label}/{n}"), |b| {
            softlora_dsp::set_fast_kernels(kernel == FftKernel::Fused);
            let mut out = vec![Complex::ZERO; chips];
            b.iter(|| dechirp_fold_into(black_box(&window), &reference, os, &mut out));
        });
    }
    softlora_dsp::set_fast_kernels(true);
    group.finish();
}

/// Batched multi-frame transforms: `forward_many` over 1/8/64 frames vs
/// the same frames through per-frame `forward` calls. Reported per
/// batch; divide by the frame count for per-frame cost.
fn bench_fft_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_batched");
    let n = 512usize;
    let plan = FftPlan::new(n);
    for frames in [1usize, 8, 64] {
        let data: Vec<Complex> = (0..frames * n).map(|i| Complex::cis(0.13 * i as f64)).collect();
        group.bench_with_input(BenchmarkId::new("forward_many", frames), &data, |b, data| {
            let mut buf = data.clone();
            b.iter(|| {
                buf.copy_from_slice(black_box(data));
                plan.forward_many(&mut buf);
            })
        });
        group.bench_with_input(BenchmarkId::new("per_frame", frames), &data, |b, data| {
            let mut buf = data.clone();
            b.iter(|| {
                buf.copy_from_slice(black_box(data));
                for frame in buf.chunks_exact_mut(n) {
                    plan.forward(frame);
                }
            })
        });
    }
    group.finish();
}

fn bench_pickers(c: &mut Criterion) {
    // One SF7 two-chirp capture at 2.4 Msps is ~5600 samples.
    let (i, q) = onset_trace(5600);
    let mut group = c.benchmark_group("onset_pickers");
    group.bench_function("aic_pick", |b| b.iter(|| aic_pick(black_box(&i), 16)));
    group.bench_function("aic_onset_scratch", |b| {
        let mut scratch = DspScratch::new();
        b.iter(|| aic_onset_with(black_box(&i), 16, &mut scratch))
    });
    group.bench_function("power_aic_pick", |b| {
        b.iter(|| power_aic_pick(black_box(&i), black_box(&q), 16))
    });
    group.bench_function("power_aic_onset_scratch", |b| {
        let mut scratch = DspScratch::new();
        b.iter(|| power_aic_onset_with(black_box(&i), black_box(&q), 16, &mut scratch))
    });
    group.bench_function("envelope_detector", |b| {
        let det = EnvelopeDetector::new();
        b.iter(|| det.detect(black_box(&i)))
    });
    group.bench_function("envelope_onset_scratch", |b| {
        let det = EnvelopeDetector::new();
        let mut scratch = DspScratch::new();
        b.iter(|| det.detect_onset_with(black_box(&i), &mut scratch))
    });
    group.bench_function("hilbert_envelope", |b| b.iter(|| envelope(black_box(&i))));
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_fft_planner,
    bench_fft_kernels,
    bench_fft_real,
    bench_dechirp,
    bench_fft_batched,
    bench_pickers
);
criterion_main!(benches);
