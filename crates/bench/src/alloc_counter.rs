//! A counting `#[global_allocator]` harness.
//!
//! The allocation-free signal path (FFT planner + per-worker scratch
//! arenas) claims that a warm receiver demodulates and timestamps frames
//! without touching the heap. That claim is cheap to regress silently —
//! one stray `collect()` in a helper brings the allocations back with no
//! test failing — so the `zero_alloc` integration test installs this
//! allocator and pins the count to **zero** per steady-state frame.
//!
//! Install it in a test or bench binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//! ```
//!
//! and bracket the region of interest with [`CountingAllocator::snapshot`].
//! Counters are process-global and lock-free (relaxed atomics): exact
//! when the measured region is single-threaded, which is what the
//! steady-state test arranges.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts every allocation.
///
/// `alloc`, `alloc_zeroed` and growing/shrinking `realloc` each count as
/// one allocation event; `dealloc` counts separately. The interesting
/// metric for the zero-allocation pin is [`CountingAllocator::allocations`]
/// staying flat across a region.
pub struct CountingAllocator {
    allocations: AtomicU64,
    deallocations: AtomicU64,
    bytes_allocated: AtomicU64,
}

/// A point-in-time reading of the counters, for deltas over a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events (alloc + alloc_zeroed + realloc) so far.
    pub allocations: u64,
    /// Deallocation events so far.
    pub deallocations: u64,
    /// Total bytes requested from the system allocator so far.
    pub bytes_allocated: u64,
}

impl CountingAllocator {
    /// Creates the allocator (const, so it can be a `static`).
    pub const fn new() -> Self {
        CountingAllocator {
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            bytes_allocated: AtomicU64::new(0),
        }
    }

    /// Allocation events so far.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Deallocation events so far.
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested so far.
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations(),
            deallocations: self.deallocations(),
            bytes_allocated: self.bytes_allocated(),
        }
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocSnapshot {
    /// Allocation events between this snapshot and a later one.
    pub fn allocations_since(&self, later: &AllocSnapshot) -> u64 {
        later.allocations - self.allocations
    }
}

// SAFETY: delegates every operation to `System`; the counters are
// side-effect-only bookkeeping.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes_allocated.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
