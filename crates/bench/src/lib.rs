//! Reproduction harness for every table and figure in the paper's
//! evaluation.
//!
//! Each experiment lives in [`experiments`] as a pure function returning
//! structured rows; the `repro_*` binaries print them in the paper's
//! layout. The mapping from paper artefact to module is indexed in the
//! repository's `DESIGN.md`; the measured-versus-paper comparison is
//! recorded in `EXPERIMENTS.md`.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p softlora-bench --bin repro_table1
//! cargo run --release -p softlora-bench --bin repro_fig14
//! ```

pub mod alloc_counter;
pub mod experiments;
pub mod table;

/// Shared helpers for building captures and deliveries across experiments.
pub mod common {
    use softlora_dsp::Complex;
    use softlora_phy::noise::{GaussianNoise, NoiseSource, RealNoiseEmulator};
    use softlora_phy::oscillator::Oscillator;
    use softlora_phy::sdr::{IqCapture, SdrReceiver};
    use softlora_phy::PhyConfig;

    /// The paper's carrier frequency.
    pub const FC: f64 = 869.75e6;

    /// Builds a clean two-chirp SDR capture with the given transmitter
    /// bias (Hz), receiver bias (ppm) and lead samples.
    pub fn capture(
        phy: &PhyConfig,
        chirps: usize,
        delta_tx_hz: f64,
        rx_bias_ppm: f64,
        lead: usize,
        seed: u64,
    ) -> IqCapture {
        let osc = Oscillator::with_bias_ppm(rx_bias_ppm, FC, seed).with_jitter_hz(0.0);
        let mut rx = SdrReceiver::new(osc).without_quantisation();
        let theta = 0.1 + 0.61 * (seed % 10) as f64;
        rx.capture_chirps(phy, chirps, delta_tx_hz, theta, 1.0, lead).expect("capture construction")
    }

    /// Adds noise at an SNR referenced to the unit-amplitude chirp (the
    /// silent lead does not dilute the reference).
    pub fn with_noise(cap: &IqCapture, snr_db: f64, real_noise: bool, seed: u64) -> IqCapture {
        let noise_power = 10f64.powf(-snr_db / 10.0);
        let mut z = cap.to_complex();
        let noise: Vec<Complex> = if real_noise {
            let mut src = RealNoiseEmulator::with_power(noise_power, seed);
            src.generate(z.len())
        } else {
            let mut src = GaussianNoise::with_power(noise_power, seed);
            src.generate(z.len())
        };
        for (s, n) in z.iter_mut().zip(noise.iter()) {
            *s += *n;
        }
        IqCapture::from_complex(&z, cap.sample_rate, cap.true_onset)
    }
}
