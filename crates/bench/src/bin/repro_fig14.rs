//! Reproduces paper Fig. 14: least-squares FB error vs SNR under Gaussian
//! and "real" noise.
use softlora::fb_estimator::FbMethod;
use softlora_bench::experiments::fig14;
use softlora_bench::table::Table;

fn main() {
    println!("Fig. 14 — LS FB estimation error vs SNR (matched-filter solver, 9 trials)\n");
    let snrs = fig14::paper_snrs();
    let gauss = fig14::run(&snrs, false, 9, FbMethod::MatchedFilter);
    let real = fig14::run(&snrs, true, 9, FbMethod::MatchedFilter);
    let mut t = Table::new([
        "SNR(dB)",
        "Gauss median(Hz)",
        "Gauss mean(Hz)",
        "Real median(Hz)",
        "Real mean(Hz)",
    ]);
    for (g, r) in gauss.iter().zip(real.iter()) {
        t.row([
            format!("{:.0}", g.snr_db),
            format!("{:.0}", g.median_error_hz),
            format!("{:.0}", g.mean_error_hz),
            format!("{:.0}", r.median_error_hz),
            format!("{:.0}", r.mean_error_hz),
        ]);
    }
    println!("{t}");
    println!("Paper bound: {} Hz (0.14 ppm) down to −25 dB.", fig14::PAPER_BOUND_HZ);
    println!();
    println!("Paper-faithful DE solver at selected SNRs (3 trials — slower):");
    let de = fig14::run(&[-10.0, 0.0, 10.0], false, 3, FbMethod::DifferentialEvolution);
    let mut t2 = Table::new(["SNR(dB)", "DE median(Hz)"]);
    for p in &de {
        t2.row([format!("{:.0}", p.snr_db), format!("{:.0}", p.median_error_hz)]);
    }
    println!("{t2}");
}
