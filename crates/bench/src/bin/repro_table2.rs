//! Reproduces paper Table 2: onset-detection error upper bounds, ENV vs AIC.
use softlora_bench::experiments::table2;
use softlora_bench::table::Table;

fn main() {
    println!("Table 2 — Signal timestamping error upper bound (µs), 10 trials\n");
    let rows = table2::run(10);
    let mut t = Table::new(["Detector", "Trace", "per-trial errors (µs)", "max", "mean"]);
    for row in &rows {
        let errs: Vec<String> = row.errors_us.iter().map(|e| format!("{e:.1}")).collect();
        t.row([
            row.detector.to_string(),
            row.component.to_string(),
            errs.join(" "),
            format!("{:.2}", row.max_us()),
            format!("{:.2}", row.mean_us()),
        ]);
    }
    println!("{t}");
    let (aic, env) = table2::paper_bounds();
    println!("Paper: AIC errors < {aic} µs; envelope errors up to ~{env} µs.");
}
