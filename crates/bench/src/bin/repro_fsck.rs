//! `repro_fsck` — replay a persisted device-state store and print
//! per-shard state digests plus WAL/snapshot statistics.
//!
//! Usage:
//!
//! ```text
//! repro_fsck <store-dir>     # check an existing store directory
//! repro_fsck                 # self-drill: write a small persistent
//!                            # server workload, then fsck its own output
//! ```
//!
//! Every snapshot and WAL record is fully decoded, so a clean report also
//! certifies that a `NetworkServer` rebuilt over the directory will
//! recover. Exit code is non-zero on any corruption. CI runs this against
//! the `persistent_server` example's store.

use softlora::fsck_store;
use softlora_bench::table::Table;

fn report(dir: &std::path::Path) -> Result<(), String> {
    let report = fsck_store(dir).map_err(|e| format!("fsck {}: {e}", dir.display()))?;
    println!("Store {} — {} shards\n", report.dir.display(), report.shards.len());
    let mut t = Table::new([
        "Shard",
        "Snapshot@",
        "WAL recs",
        "Segs",
        "TornTail",
        "LastSeq",
        "Uplinks",
        "Accepted",
        "Flagged",
        "Digest",
    ]);
    for s in &report.shards {
        t.row([
            s.shard.to_string(),
            if s.has_snapshot { s.snapshot_seq.to_string() } else { "-".into() },
            s.wal_records.to_string(),
            s.segments.to_string(),
            if s.dropped_torn_tail { "yes".into() } else { "no".into() },
            s.last_global_seq.to_string(),
            s.stats.uplinks.to_string(),
            s.stats.accepted.to_string(),
            (s.stats.fb_replays_flagged + s.stats.cross_gateway_replays_flagged).to_string(),
            format!("{:016x}", s.digest),
        ]);
    }
    println!("{t}");
    let stats = report.stats();
    println!(
        "Totals: {} uplinks committed ({} accepted, {} flagged, {} duplicates suppressed), \
         {} WAL records replayed",
        stats.uplinks,
        stats.accepted,
        stats.fb_replays_flagged + stats.cross_gateway_replays_flagged,
        stats.duplicates_suppressed,
        report.wal_records(),
    );
    println!("Store digest: {:016x}", report.digest());
    Ok(())
}

/// Writes a small deterministic persistent workload and returns its
/// directory (the no-argument self-drill).
fn self_drill() -> std::path::PathBuf {
    use softlora::NetworkServer;
    use softlora_lorawan::{ClassADevice, DeviceConfig};
    use softlora_phy::{PhyConfig, SpreadingFactor};
    use softlora_sim::Delivery;

    let phy = PhyConfig::uplink(SpreadingFactor::Sf7);
    let dir = softlora_store::test_dir("repro-fsck-drill");
    let mut builder = NetworkServer::builder(phy)
        .adc_quantisation(false)
        .gateway(17)
        .shards(2)
        .snapshot_every(4)
        .with_persistence(&dir);
    let mut devices: Vec<ClassADevice> = Vec::new();
    for k in 0..3u32 {
        let cfg = DeviceConfig::new(0x2601_A000 + k, phy);
        builder = builder.provision(cfg.dev_addr, cfg.keys.clone());
        devices.push(ClassADevice::new(cfg));
    }
    let mut server = builder.build();

    for round in 0..6u16 {
        for dev in devices.iter_mut() {
            let t = 100.0 + 150.0 * f64::from(round);
            dev.sense(round, t - 1.0).expect("sense");
            let tx = dev.try_transmit(t).expect("tx");
            let d = Delivery {
                bytes: tx.bytes,
                dev_addr: dev.dev_addr(),
                arrival_global_s: t + 4e-6,
                snr_db: 10.0,
                carrier_bias_hz: -21_500.0,
                carrier_phase: 0.4,
                sf: SpreadingFactor::Sf7,
                jamming: None,
                is_replay: false,
            };
            server.process_delivery(0, &d).expect("process");
        }
    }
    server.sync_persistence().expect("sync");
    drop(server);
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, cleanup) = match args.first() {
        Some(path) => (std::path::PathBuf::from(path), false),
        None => {
            println!("No store directory given — running the self-drill workload first.\n");
            (self_drill(), true)
        }
    };
    let result = report(&dir);
    if cleanup {
        std::fs::remove_dir_all(&dir).ok();
    }
    if let Err(e) = result {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
