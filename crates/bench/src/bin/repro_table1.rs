//! Reproduces paper Table 1: jamming attack time windows for the RN2483.
use softlora_bench::experiments::table1;
use softlora_bench::table::Table;

fn main() {
    println!("Table 1 — Jamming attack time windows (measured by onset sweep)\n");
    let mut t = Table::new([
        "SF",
        "Chirp(ms)",
        "Preamble(ms)",
        "Payload(B)",
        "w1(ms)",
        "w2(ms)",
        "w3(ms)",
        "paper w1/w2/w3",
        "effective(ms)",
    ]);
    for row in table1::run() {
        t.row([
            row.sf.to_string(),
            format!("{:.3}", row.chirp_ms),
            format!("{:.1}", row.preamble_ms),
            row.payload.to_string(),
            format!("{:.1}", row.w1_ms),
            format!("{:.1}", row.w2_ms),
            format!("{:.1}", row.w3_ms),
            format!("{}/{}/{}", row.paper_ms.0, row.paper_ms.1, row.paper_ms.2),
            format!("{:.1}", row.effective_ms()),
        ]);
    }
    println!("{t}");
    println!("The effective attack window [w1, w2] is tens of milliseconds for");
    println!("every configuration — the stealthy jamming opportunity of paper §4.3.");
}
