//! Reproduces paper §8.2: long-distance timing over the 1.07 km campus
//! link in heavy rain.
use softlora_bench::experiments::campus;

fn main() {
    println!("§8.2 — campus long-distance signal timestamping\n");
    let r = campus::run(4);
    println!(
        "Link: {:.0} m, one-way propagation {:.2} µs, SNR {:.1} dB (rain margin applied)",
        r.distance_m, r.propagation_us, r.snr_db
    );
    println!();
    println!("Timing error upper bounds over 4 tests (µs):");
    for (k, e) in r.timing_errors_us.iter().enumerate() {
        println!(
            "  test {}: {:.2} µs   (paper test {}: {:.2} µs)",
            k + 1,
            e,
            k + 1,
            campus::PAPER_ERRORS_US[k]
        );
    }
}
