//! Reproduces paper §8.1.1: the full frame-delay attack in the building,
//! against both a commodity gateway and the SoftLoRa gateway.
use softlora_bench::experiments::attack_e2e;

fn main() {
    println!("§8.1.1 — full frame-delay attack in the six-floor building\n");
    let r = attack_e2e::run(5, 8, 30.0);
    println!("Cross-building link (A1/3F -> C3/6F):");
    println!("  SF7 margin over demod floor : {:.1} dB (paper: SF7 unusable)", r.sf7_margin_db);
    println!("  SF8 margin over demod floor : {:.1} dB (paper: SF8 reliable)", r.sf8_margin_db);
    println!();
    println!("Attack (τ = {} s) over {} frames ({} attacked):", r.tau_s, r.frames, 8);
    println!("  originals silently suppressed : {}", r.originals_suppressed);
    println!(
        "  commodity gateway: accepted replays with mean timestamp error {:.2} s",
        r.commodity_timestamp_error_s
    );
    println!(
        "  SoftLoRa gateway : {} replays flagged, {} genuine frames accepted",
        r.softlora_detections, r.softlora_accepted
    );
}
