//! `repro_failover` — kill a primary mid-attacked-fleet, promote its
//! WAL-shipping follower, and prove the failover cost nothing:
//! verdicts, statistics and store digests all match an uninterrupted
//! run bit for bit.
//!
//! Usage:
//!
//! ```text
//! repro_failover [--out BENCH_ha.json]
//! ```
//!
//! The drill:
//!
//! 1. simulate a deterministic 2-gateway fleet under the frame-delay
//!    attack (the paper's Section V adversary);
//! 2. run the whole stream through an uninterrupted persisted baseline;
//! 3. run the first half through a primary whose commit hook ships
//!    every sealed WAL frame to a live follower over loopback UDP,
//!    measuring per-batch replication catch-up and peak lag;
//! 4. hard-kill the primary (`abandon` — no shutdown flush), promote
//!    the follower (timed: the epoch fsync + handoff), and run the
//!    second half on the promoted server;
//! 5. compare the joined verdict stream, final statistics and per-shard
//!    `fsck` digests against the baseline. Any mismatch exits non-zero.
//!
//! CI uploads the JSON artifact (`--out`) with the replication-lag and
//! failover-time numbers.

use softlora::{fsck_store, NetworkServer, ServerVerdict};
use softlora_attack::FrameDelayAttack;
use softlora_bench::table::Table;
use softlora_ha::{Follower, Shipper, ShipperConfig};
use softlora_phy::{PhyConfig, SpreadingFactor};
use softlora_sim::{FleetDeployment, HonestChannel, Position, Scenario, UplinkDeliveries};
use softlora_store::test_dir;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const GATEWAYS: usize = 2;
const DEVICES: usize = 4;
const CHUNK: usize = 4;

fn phy() -> PhyConfig {
    PhyConfig::uplink(SpreadingFactor::Sf7)
}

fn scenario() -> Scenario {
    let fleet = FleetDeployment::with_gateways(GATEWAYS);
    let gateways = fleet.gateway_positions();
    let mut scenario =
        Scenario::new_fleet(phy(), fleet.medium(), gateways.clone(), Box::new(HonestChannel));
    let positions = fleet.device_positions(DEVICES, 33);
    for (k, pos) in positions.iter().enumerate() {
        scenario.add_device(0x2602_6000 + k as u32, *pos, 300.0, k as u64);
    }
    let target = positions[0];
    let attack = FrameDelayAttack::near_gateway(
        Position::new(target.x + 2.0, target.y + 1.0, target.z),
        &gateways,
        0,
        2.0,
        40.0,
        phy(),
        7,
    )
    .with_targets(vec![0x2602_6000]);
    scenario.schedule_interceptor(1500.0, Box::new(attack));
    scenario
}

fn build_server(dir: Option<&Path>, hook: Option<Arc<Shipper>>) -> NetworkServer {
    let reference = scenario();
    let mut builder = NetworkServer::builder(phy())
        .adc_quantisation(false)
        .warmup_frames(2)
        .gateway(1)
        .gateway(2)
        .shards(2)
        .snapshot_every(8)
        .wal_segment_bytes(4096)
        .durability_window(Duration::from_millis(2));
    for k in 0..reference.devices() {
        let cfg = reference.device_config(k).clone();
        builder = builder.provision(cfg.dev_addr, cfg.keys);
    }
    if let Some(dir) = dir {
        builder = builder.with_persistence(dir);
    }
    if let Some(hook) = hook {
        builder = builder.commit_hook(hook);
    }
    builder.build()
}

fn main() {
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next(),
            other => {
                eprintln!("unknown argument {other}; usage: repro_failover [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let mut sim = scenario();
    let mut groups: Vec<UplinkDeliveries> = Vec::new();
    sim.run(3600.0, |u| groups.push(u.clone()));
    let mid = (groups.len() / 2 / CHUNK) * CHUNK;
    println!(
        "Fleet: {GATEWAYS} gateways, {DEVICES} devices, {} uplink groups (failover after {mid})",
        groups.len()
    );

    // Uninterrupted baseline.
    let dir_c = test_dir("repro-failover-baseline");
    let mut baseline = build_server(Some(&dir_c), None);
    let mut expected: Vec<ServerVerdict> = Vec::new();
    for chunk in groups.chunks(CHUNK) {
        expected.extend(baseline.process_batch(chunk).expect("baseline pipeline"));
    }

    // Primary shipping to a live follower.
    let dir_a = test_dir("repro-failover-primary");
    let dir_b = test_dir("repro-failover-follower");
    let standby = build_server(Some(&dir_b), None);
    let mut follower = Follower::new(standby).expect("follower");
    let shipper = Arc::new(
        Shipper::new(follower.local_addr().expect("follower addr"), 0, ShipperConfig::default())
            .expect("shipper"),
    );
    let mut primary = build_server(Some(&dir_a), Some(Arc::clone(&shipper)));
    follower.subscribe(shipper.local_addr().expect("shipper addr")).expect("subscribe");

    let mut first_half: Vec<ServerVerdict> = Vec::new();
    let mut peak_lag_records = 0u64;
    let mut catchup_total = Duration::ZERO;
    let mut catchup_worst = Duration::ZERO;
    let mut batches = 0u64;
    for chunk in groups[..mid].chunks(CHUNK) {
        first_half.extend(primary.process_batch(chunk).expect("primary pipeline"));
        let target = primary.global_seq();
        let start = Instant::now();
        peak_lag_records = peak_lag_records.max(target - follower.server().global_seq());
        let mut spins = 0u32;
        while follower.server().global_seq() < target
            || follower.lag() > 0
            || shipper.pending_len() > 0
        {
            shipper.pump().expect("shipper pump");
            follower.poll().expect("follower poll");
            spins += 1;
            if spins > 10_000 {
                eprintln!("FAIL: follower never caught up to {target}");
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        let elapsed = start.elapsed();
        catchup_total += elapsed;
        catchup_worst = catchup_worst.max(elapsed);
        batches += 1;
    }

    // Hard kill, timed promotion.
    primary.abandon();
    let promote_start = Instant::now();
    let mut promoted = follower.promote().expect("promotion");
    let failover = promote_start.elapsed();
    let epoch = promoted.epoch().expect("epoch");

    let mut second_half: Vec<ServerVerdict> = Vec::new();
    for chunk in groups[mid..].chunks(CHUNK) {
        second_half.extend(promoted.process_batch(chunk).expect("promoted pipeline"));
    }

    // Verification.
    let rejoined: Vec<ServerVerdict> =
        first_half.iter().cloned().chain(second_half.iter().cloned()).collect();
    let verdicts_ok = rejoined == expected;
    let stats_ok = promoted.stats() == baseline.stats()
        && promoted.detection_stats() == baseline.detection_stats();
    promoted.drain_snapshots().expect("promoted installs");
    baseline.drain_snapshots().expect("baseline installs");
    drop(promoted);
    drop(baseline);
    let report_b = fsck_store(&dir_b).expect("fsck follower store");
    let report_c = fsck_store(&dir_c).expect("fsck baseline store");
    let digests_ok = report_b.digest() == report_c.digest()
        && report_b
            .shards
            .iter()
            .zip(&report_c.shards)
            .all(|(b, c)| b.digest == c.digest && b.wal_records == c.wal_records);

    let snapshot = softlora_telemetry::global().snapshot();
    let shipped_bytes = snapshot.counter_sum("ha_shipped_bytes_total");
    let shipped_records = snapshot.counter_sum("ha_shipped_records_total");
    let resends = snapshot.counter_sum("ha_resends_total");
    let snapshots_installed = snapshot.counter_sum("ha_snapshots_installed_total");

    let catchup_mean_us = catchup_total.as_micros() as f64 / batches.max(1) as f64;
    let mut t = Table::new(["Measure", "Value"]);
    t.row(["Uplink groups replicated".into(), format!("{mid} of {}", groups.len())]);
    t.row(["Shipped".into(), format!("{shipped_records} records, {shipped_bytes} bytes")]);
    t.row(["Resends".into(), resends.to_string()]);
    t.row(["Replica snapshots installed".into(), snapshots_installed.to_string()]);
    t.row(["Peak replication lag".into(), format!("{peak_lag_records} records")]);
    t.row(["Catch-up per batch (mean)".into(), format!("{catchup_mean_us:.0} µs")]);
    t.row(["Catch-up per batch (worst)".into(), format!("{} µs", catchup_worst.as_micros())]);
    t.row(["Failover (epoch fsync + handoff)".into(), format!("{} µs", failover.as_micros())]);
    t.row(["Promoted epoch".into(), epoch.to_string()]);
    t.row(["Verdicts bit-identical".into(), verdicts_ok.to_string()]);
    t.row(["Stats identical".into(), stats_ok.to_string()]);
    t.row(["fsck digests identical".into(), digests_ok.to_string()]);
    println!("\n{t}");

    if let Some(path) = out {
        let json = format!(
            concat!(
                "{{\"groups\":{},\"failover_at\":{},\"shipped_records\":{},",
                "\"shipped_bytes\":{},\"resends\":{},\"snapshots_installed\":{},",
                "\"peak_lag_records\":{},\"catchup_mean_us\":{:.1},\"catchup_worst_us\":{},",
                "\"failover_us\":{},\"promoted_epoch\":{},\"verdicts_identical\":{},",
                "\"stats_identical\":{},\"digests_identical\":{}}}"
            ),
            groups.len(),
            mid,
            shipped_records,
            shipped_bytes,
            resends,
            snapshots_installed,
            peak_lag_records,
            catchup_mean_us,
            catchup_worst.as_micros(),
            failover.as_micros(),
            epoch,
            verdicts_ok,
            stats_ok,
            digests_ok,
        );
        std::fs::write(&path, json).expect("write JSON artifact");
        println!("Wrote {path}");
    }

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&dir_c).ok();

    if !(verdicts_ok && stats_ok && digests_ok) {
        eprintln!("FAIL: failover changed the observable history");
        std::process::exit(1);
    }
    println!("PASS: failover preserved every verdict, statistic and digest");
}
