//! `dsp_report` — time the vector-fast DSP kernels against their
//! reference counterparts and emit the numbers as JSON (the
//! `BENCH_dsp.json` CI artifact, alongside the loadgen's
//! `BENCH_net.json`).
//!
//! Usage:
//!
//! ```text
//! dsp_report [--out FILE] [--quiet]
//! ```
//!
//! Each entry times one kernel/size pair (median over repeated runs, a
//! warm plan, no allocation in the measured loop) for both the fused and
//! the reference schedule:
//!
//! * `fft/N` — planned complex forward transform;
//! * `fft_real/N` — real-input transform (N/2 trick vs zero-imag embed);
//! * `dechirp/N` — conjugate-multiply + fold to chip rate, SF7-shaped;
//! * `fft_many/FxN` — batched multi-frame transform, per batch.

use softlora_dsp::fft::FftPlan;
use softlora_dsp::kernels::dechirp_fold_into;
use softlora_dsp::{set_fast_kernels, Complex, FftKernel, FftPlanner};
use std::hint::black_box;
use std::time::Instant;

/// Timing repetitions: the median of `REPS` runs of `iters` calls each.
const REPS: usize = 7;

struct Args {
    out: Option<String>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!("usage: dsp_report [--out FILE] [--quiet]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args { out: None, quiet: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => args.out = Some(it.next().unwrap_or_else(|| usage())),
            "--quiet" => args.quiet = true,
            _ => usage(),
        }
    }
    args
}

/// One measured kernel/size pair.
struct Entry {
    name: String,
    kernel: &'static str,
    ns: f64,
}

fn kernel_name(kernel: FftKernel) -> &'static str {
    match kernel {
        FftKernel::Reference => "reference",
        FftKernel::Fused => "fused",
    }
}

/// Median time per call, nanoseconds: `iters` calls per rep, median of
/// [`REPS`] reps, after one untimed warm-up rep.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(REPS);
    for rep in 0..=REPS {
        let started = Instant::now();
        for _ in 0..iters {
            f();
        }
        if rep > 0 {
            samples.push(started.elapsed().as_secs_f64() / iters as f64 * 1e9);
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[REPS / 2]
}

fn tone(n: usize) -> Vec<Complex> {
    (0..n).map(|i| Complex::cis(0.13 * i as f64)).collect()
}

/// Calls per rep, scaled so every entry measures a similar wall-clock
/// slice regardless of transform size.
fn iters_for(work: usize) -> usize {
    (2_000_000 / work.max(1)).clamp(8, 4096)
}

fn run() -> Vec<Entry> {
    let mut entries = Vec::new();

    // Planned complex forward transforms.
    for n in [1024usize, 4096, 16384] {
        let data = tone(n);
        for kernel in [FftKernel::Reference, FftKernel::Fused] {
            let plan = FftPlan::with_kernel(n, kernel);
            let mut buf = data.clone();
            let ns = time_ns(iters_for(n), || {
                buf.copy_from_slice(black_box(&data));
                plan.forward(&mut buf);
            });
            entries.push(Entry { name: format!("fft/{n}"), kernel: kernel_name(kernel), ns });
        }
    }

    // Real-input transforms: the fused planner runs the N/2 trick, the
    // reference planner the zero-imag embed.
    for n in [4096usize, 16384] {
        let trace: Vec<f64> = (0..n).map(|k| (0.13 * k as f64).cos()).collect();
        for kernel in [FftKernel::Reference, FftKernel::Fused] {
            let mut planner = FftPlanner::with_kernel(kernel);
            let mut out = Vec::new();
            planner.forward_real_into(&trace, &mut out);
            let ns = time_ns(iters_for(n), || {
                planner.forward_real_into(black_box(&trace), &mut out);
            });
            entries.push(Entry { name: format!("fft_real/{n}"), kernel: kernel_name(kernel), ns });
        }
    }

    // Dechirp + fold on an SF7-shaped window (128 chips, 19 samples per
    // chip at the SDR rate). The kernel follows the process-wide switch.
    let (chips, os) = (128usize, 19usize);
    let n = chips * os;
    let window = tone(n);
    let reference: Vec<Complex> = (0..n).map(|i| Complex::cis(-0.07 * i as f64)).collect();
    for kernel in [FftKernel::Reference, FftKernel::Fused] {
        set_fast_kernels(kernel == FftKernel::Fused);
        let mut out = vec![Complex::ZERO; chips];
        let ns = time_ns(iters_for(n), || {
            dechirp_fold_into(black_box(&window), &reference, os, &mut out);
        });
        entries.push(Entry { name: format!("dechirp/{n}"), kernel: kernel_name(kernel), ns });
    }
    set_fast_kernels(true);

    // Batched multi-frame transforms (per batch).
    let n = 512usize;
    for frames in [1usize, 8, 64] {
        let data = tone(frames * n);
        for kernel in [FftKernel::Reference, FftKernel::Fused] {
            let plan = FftPlan::with_kernel(n, kernel);
            let mut buf = data.clone();
            let ns = time_ns(iters_for(frames * n), || {
                buf.copy_from_slice(black_box(&data));
                plan.forward_many(&mut buf);
            });
            entries.push(Entry {
                name: format!("fft_many/{frames}x{n}"),
                kernel: kernel_name(kernel),
                ns,
            });
        }
    }

    entries
}

/// Serialises the entries as a JSON object (hand-rolled — the workspace
/// is dependency-free).
fn to_json(entries: &[Entry]) -> String {
    let body: Vec<String> = entries
        .iter()
        .map(|e| {
            format!("{{\"name\":\"{}\",\"kernel\":\"{}\",\"ns\":{:.1}}}", e.name, e.kernel, e.ns)
        })
        .collect();
    format!("{{\"benches\":[{}]}}", body.join(","))
}

fn main() {
    let args = parse_args();
    let entries = run();

    if !args.quiet {
        println!("{:<18} {:>12} {:>12} {:>8}", "bench", "reference", "fused", "speedup");
        let mut k = 0;
        while k + 1 < entries.len() {
            let (a, b) = (&entries[k], &entries[k + 1]);
            assert_eq!(a.name, b.name, "entries come in reference/fused pairs");
            println!("{:<18} {:>9.1} ns {:>9.1} ns {:>7.2}x", a.name, a.ns, b.ns, a.ns / b.ns);
            k += 2;
        }
    }

    let json = to_json(&entries);
    match &args.out {
        Some(path) => std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("dsp_report: write {path}: {e}");
            std::process::exit(1);
        }),
        None => println!("{json}"),
    }
}
