//! Reproduces paper Fig. 16: estimated FB vs the end device's TX power for
//! the three observation paths.
use softlora_bench::experiments::fig16;
use softlora_bench::table::Table;

fn main() {
    println!("Fig. 16 — estimated FB vs transmission power (box stats, 10 frames)\n");
    let s = fig16::run(10);
    for (name, series) in [
        ("End device -> Eavesdropper", &s.device_to_eavesdropper),
        ("End device -> SoftLoRa gateway", &s.device_to_gateway),
        ("Replayer -> SoftLoRa gateway", &s.replayer_to_gateway),
    ] {
        println!("{name}:");
        let mut t = Table::new(["TX power(dBm)", "min(kHz)", "q25(kHz)", "q75(kHz)", "max(kHz)"]);
        for b in series {
            t.row([
                format!("{:.1}", b.tx_power_dbm),
                format!("{:.2}", b.min_khz),
                format!("{:.2}", b.q25_khz),
                format!("{:.2}", b.q75_khz),
                format!("{:.2}", b.max_khz),
            ]);
        }
        println!("{t}");
    }
    println!("Paper: TX power has little impact on the FB; the two-USRP replay");
    println!("chain shifts the gateway's estimate by ~2 kHz (2.3 ppm).");
}
