//! Reproduces paper Fig. 15: SNR survey and timing accuracy in the
//! six-floor building.
use softlora_bench::experiments::fig15;

fn main() {
    println!("Fig. 15 — building SNR survey (dB) and timing error bound (µs)");
    println!("Fixed node at column A1, floor 3 (marked *)\n");
    let cells = fig15::run(3);
    // SNR heat map, floors top-down.
    print!("{:>6}", "floor");
    for col in 0..11 {
        print!("{:>7}", fig15::column_label(col));
    }
    println!("\n--- SNR (dB) ---");
    for floor in (1..=6).rev() {
        print!("{floor:>6}");
        for col in 0..11 {
            let cell = cells.iter().find(|c| c.col == col && c.floor == floor).unwrap();
            let mark = if col == 0 && floor == 3 { "*" } else { "" };
            print!("{:>7}", format!("{:.1}{mark}", cell.snr_db));
        }
        println!();
    }
    println!("\n--- timing error upper bound (µs); '-' = inaccessible ---");
    for floor in (1..=6).rev() {
        print!("{floor:>6}");
        for col in 0..11 {
            let cell = cells.iter().find(|c| c.col == col && c.floor == floor).unwrap();
            match cell.timing_error_us {
                Some(e) => print!("{:>7}", format!("{e:.1}")),
                None => print!("{:>7}", "-"),
            }
        }
        println!();
    }
    println!("\nPaper: SNRs −1..13 dB; timing bounds 0.07–8.03 µs (sub-10 µs).");
}
