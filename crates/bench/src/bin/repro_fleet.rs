//! Fleet-scale sweep: devices × gateways through the scenario engine and
//! the network-server pipeline, reporting throughput and detection.
use softlora_bench::experiments::fleet;

fn main() {
    println!("Fleet sweep — multi-gateway dedup + attack-aware timestamping\n");
    println!("Per cell: 30 min clean warm-up, then 30 min under the frame-delay");
    println!("attack (τ = 45 s, chain parked at gateway 0, one targeted meter).\n");
    let cells = fleet::run(&[5, 10, 20], &[1, 2, 4], 120.0, 1800.0, 1800.0, 45.0);
    println!(
        "{:>7} {:>4} | {:>7} {:>7} {:>9} | {:>8} {:>6} {:>6} {:>5} {:>6}",
        "devices", "gws", "uplinks", "copies", "frames/s", "accepted", "fb", "xgw", "det%", "fa%"
    );
    for c in &cells {
        println!(
            "{:>7} {:>4} | {:>7} {:>7} {:>9.0} | {:>8} {:>6} {:>6} {:>5.0} {:>6.2}",
            c.devices,
            c.gateways,
            c.uplinks,
            c.copies,
            c.frames_per_s,
            c.stats.accepted,
            c.stats.fb_replays_flagged,
            c.stats.cross_gateway_replays_flagged,
            c.detection_rate * 100.0,
            c.false_alarm_rate * 100.0,
        );
    }
    println!("\nSingle-gateway cells flag replays by FB only (the paper's defence);");
    println!("fleet cells also catch them by cross-gateway arrival consistency and");
    println!("keep delivering the attacked meter's uplinks from clean gateways.");
}
