//! Detector ablation (extension): detection vs false-alarm trade-off across
//! the tolerance-band policy, in the two regimes the paper's experiments
//! exercise.
use softlora_bench::experiments::roc;
use softlora_bench::table::Table;

fn main() {
    println!("Ablation — FB-band policy ROC (extension beyond the paper)\n");
    let sigmas = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0];
    for regime in &roc::REGIMES {
        println!(
            "Regime: {} (noise {} Hz, artefact {} Hz)",
            regime.label, regime.fb_noise_hz, regime.artefact_hz
        );
        let pts = roc::run(regime, &sigmas, 400, 7);
        let mut t = Table::new(["band_sigma", "detection", "false alarms"]);
        for p in &pts {
            t.row([
                format!("{:.1}", p.band_sigma),
                format!("{:.1}%", p.detection_rate * 100.0),
                format!("{:.2}%", p.false_alarm_rate * 100.0),
            ]);
        }
        println!("{t}");
    }
    println!("At bench SNR the 360 Hz floor dominates and any sigma <= 6 detects");
    println!("the single-USRP artefact perfectly. At the building's SNR the FB");
    println!("noise widens the adaptive band: sigma = 2-3 trades ~1-25% false");
    println!("alarms against >75% single-frame detection — and because every");
    println!("*frame* of a sustained attack is an independent trial, the attack");
    println!("itself is still caught within a frame or two.");
}
