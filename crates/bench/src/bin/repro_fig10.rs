//! Reproduces paper Fig. 10: AIC timestamping error vs received SNR.
use softlora::phy_timestamp::OnsetMethod;
use softlora_bench::experiments::fig10;
use softlora_bench::table::Table;

fn main() {
    println!("Fig. 10 — AIC timestamping error vs SNR (20 trials per point)\n");
    let snrs = fig10::paper_snrs();
    let aic = fig10::run(&snrs, 20, OnsetMethod::Aic);
    let power = fig10::run(&snrs, 20, OnsetMethod::PowerAic);
    let mut t = Table::new([
        "SNR(dB)",
        "AIC mean(µs)",
        "AIC max(µs)",
        "PowerAIC mean(µs)",
        "PowerAIC max(µs)",
    ]);
    for (a, p) in aic.iter().zip(power.iter()) {
        t.row([
            format!("{:.0}", a.snr_db),
            format!("{:.1}", a.mean_error_us),
            format!("{:.1}", a.max_error_us),
            format!("{:.1}", p.mean_error_us),
            format!("{:.1}", p.max_error_us),
        ]);
    }
    println!("{t}");
    println!("Paper: average error within ~20 µs for the building SNR range");
    println!("(−1..13 dB) and ~25 µs at −20 dB. Our amplitude-domain pickers match");
    println!("the first regime; see EXPERIMENTS.md for the low-SNR divergence.");
}
