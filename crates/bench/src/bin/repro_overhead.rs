//! Reproduces the §3.2 overhead arithmetic and the §4.4 round-trip-timing
//! cost comparison.
use softlora_bench::experiments::overhead;
use softlora_bench::table::Table;

fn main() {
    let r = overhead::run();
    println!("§3.2 — synchronization-based vs synchronization-free overhead\n");
    println!("Clock: 40 ppm crystal, sub-10 ms requirement");
    println!("  sync sessions needed per hour : {:.1} (paper: 14)", r.sessions_per_hour);
    println!(
        "  SF12 30B frames/hour at 1% duty: {} (paper: 24; {} with mandatory LDRO)",
        r.frames_per_hour_no_ldro, r.frames_per_hour_ldro
    );
    println!();
    let mut t = Table::new([
        "",
        "sync sessions/h",
        "budget fraction",
        "payload time fraction",
        "time bytes/record",
    ]);
    t.row([
        "sync-based".to_string(),
        format!("{:.1}", r.sync_based.sync_sessions_per_hour),
        format!("{:.0}%", r.sync_based.sync_budget_fraction * 100.0),
        format!("{:.0}%", r.sync_based.payload_time_fraction * 100.0),
        format!("{:.2}", r.sync_based.time_bytes_per_record),
    ]);
    t.row([
        "sync-free".to_string(),
        format!("{:.1}", r.sync_free.sync_sessions_per_hour),
        format!("{:.0}%", r.sync_free.sync_budget_fraction * 100.0),
        format!("{:.0}%", r.sync_free.payload_time_fraction * 100.0),
        format!("{:.2}", r.sync_free.time_bytes_per_record),
    ]);
    println!("{t}");
    println!("Sync-free end-to-end accuracy budget: {:.2} ms total", r.accuracy.total_s() * 1e3);
    println!();
    println!("§4.4 — round-trip-timing defence cost (100 devices, 21 uplinks/h):");
    println!("  downlinks per uplink          : {:.0}", r.rtt.rtt_downlinks_per_uplink);
    println!("  airtime multiplier            : {:.1}x", r.rtt.rtt_airtime_multiplier);
    println!(
        "  gateway downlink utilisation  : {:.0}%",
        r.rtt.gateway_downlink_utilisation * 100.0
    );
    println!("  SoftLoRa extra transmissions  : {:.0}", r.rtt.softlora_extra_transmissions);
}
